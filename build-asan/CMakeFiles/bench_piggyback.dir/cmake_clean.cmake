file(REMOVE_RECURSE
  "CMakeFiles/bench_piggyback.dir/bench/bench_piggyback.cpp.o"
  "CMakeFiles/bench_piggyback.dir/bench/bench_piggyback.cpp.o.d"
  "bench_piggyback"
  "bench_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
