# Empty dependencies file for bench_piggyback.
# This may be replaced when dependencies are built.
