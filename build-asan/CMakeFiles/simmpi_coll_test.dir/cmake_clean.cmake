file(REMOVE_RECURSE
  "CMakeFiles/simmpi_coll_test.dir/tests/simmpi_coll_test.cpp.o"
  "CMakeFiles/simmpi_coll_test.dir/tests/simmpi_coll_test.cpp.o.d"
  "simmpi_coll_test"
  "simmpi_coll_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_coll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
