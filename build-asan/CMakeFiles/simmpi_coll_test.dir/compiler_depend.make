# Empty compiler generated dependencies file for simmpi_coll_test.
# This may be replaced when dependencies are built.
