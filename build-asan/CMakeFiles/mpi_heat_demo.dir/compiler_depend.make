# Empty compiler generated dependencies file for mpi_heat_demo.
# This may be replaced when dependencies are built.
