file(REMOVE_RECURSE
  "CMakeFiles/mpi_heat_demo.dir/examples/mpi_heat_demo.cpp.o"
  "CMakeFiles/mpi_heat_demo.dir/examples/mpi_heat_demo.cpp.o.d"
  "CMakeFiles/mpi_heat_demo.dir/heat_mpi_instrumented.c.o"
  "CMakeFiles/mpi_heat_demo.dir/heat_mpi_instrumented.c.o.d"
  "heat_mpi_instrumented.c"
  "mpi_heat_demo"
  "mpi_heat_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/mpi_heat_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
