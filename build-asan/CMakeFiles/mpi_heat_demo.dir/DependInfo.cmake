
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build-asan/heat_mpi_instrumented.c" "CMakeFiles/mpi_heat_demo.dir/heat_mpi_instrumented.c.o" "gcc" "CMakeFiles/mpi_heat_demo.dir/heat_mpi_instrumented.c.o.d"
  "/root/repo/examples/mpi_heat_demo.cpp" "CMakeFiles/mpi_heat_demo.dir/examples/mpi_heat_demo.cpp.o" "gcc" "CMakeFiles/mpi_heat_demo.dir/examples/mpi_heat_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/c3.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/ccift.dir/DependInfo.cmake"
  "/root/repo/build-asan/CMakeFiles/c3mpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
