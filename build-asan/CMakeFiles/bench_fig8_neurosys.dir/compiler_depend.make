# Empty compiler generated dependencies file for bench_fig8_neurosys.
# This may be replaced when dependencies are built.
