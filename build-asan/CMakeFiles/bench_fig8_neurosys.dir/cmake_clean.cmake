file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_neurosys.dir/bench/bench_fig8_neurosys.cpp.o"
  "CMakeFiles/bench_fig8_neurosys.dir/bench/bench_fig8_neurosys.cpp.o.d"
  "bench_fig8_neurosys"
  "bench_fig8_neurosys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_neurosys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
