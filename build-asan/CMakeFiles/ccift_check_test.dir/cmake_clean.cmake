file(REMOVE_RECURSE
  "CMakeFiles/ccift_check_test.dir/tests/ccift_check_test.cpp.o"
  "CMakeFiles/ccift_check_test.dir/tests/ccift_check_test.cpp.o.d"
  "ccift_check_test"
  "ccift_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccift_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
