# Empty dependencies file for ckptstore_test.
# This may be replaced when dependencies are built.
