file(REMOVE_RECURSE
  "CMakeFiles/ckptstore_test.dir/tests/ckptstore_test.cpp.o"
  "CMakeFiles/ckptstore_test.dir/tests/ckptstore_test.cpp.o.d"
  "ckptstore_test"
  "ckptstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
