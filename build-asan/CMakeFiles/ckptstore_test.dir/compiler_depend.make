# Empty compiler generated dependencies file for ckptstore_test.
# This may be replaced when dependencies are built.
