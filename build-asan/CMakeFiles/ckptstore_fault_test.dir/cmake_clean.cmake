file(REMOVE_RECURSE
  "CMakeFiles/ckptstore_fault_test.dir/tests/ckptstore_fault_test.cpp.o"
  "CMakeFiles/ckptstore_fault_test.dir/tests/ckptstore_fault_test.cpp.o.d"
  "ckptstore_fault_test"
  "ckptstore_fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptstore_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
