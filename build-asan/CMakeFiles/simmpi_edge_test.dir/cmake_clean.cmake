file(REMOVE_RECURSE
  "CMakeFiles/simmpi_edge_test.dir/tests/simmpi_edge_test.cpp.o"
  "CMakeFiles/simmpi_edge_test.dir/tests/simmpi_edge_test.cpp.o.d"
  "simmpi_edge_test"
  "simmpi_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
