# Empty dependencies file for simmpi_edge_test.
# This may be replaced when dependencies are built.
