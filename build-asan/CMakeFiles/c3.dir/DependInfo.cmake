
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckptstore/codec.cpp" "CMakeFiles/c3.dir/src/ckptstore/codec.cpp.o" "gcc" "CMakeFiles/c3.dir/src/ckptstore/codec.cpp.o.d"
  "/root/repo/src/ckptstore/pipeline.cpp" "CMakeFiles/c3.dir/src/ckptstore/pipeline.cpp.o" "gcc" "CMakeFiles/c3.dir/src/ckptstore/pipeline.cpp.o.d"
  "/root/repo/src/ckptstore/store.cpp" "CMakeFiles/c3.dir/src/ckptstore/store.cpp.o" "gcc" "CMakeFiles/c3.dir/src/ckptstore/store.cpp.o.d"
  "/root/repo/src/core/coordinator/control_plane.cpp" "CMakeFiles/c3.dir/src/core/coordinator/control_plane.cpp.o" "gcc" "CMakeFiles/c3.dir/src/core/coordinator/control_plane.cpp.o.d"
  "/root/repo/src/core/job.cpp" "CMakeFiles/c3.dir/src/core/job.cpp.o" "gcc" "CMakeFiles/c3.dir/src/core/job.cpp.o.d"
  "/root/repo/src/core/logrec.cpp" "CMakeFiles/c3.dir/src/core/logrec.cpp.o" "gcc" "CMakeFiles/c3.dir/src/core/logrec.cpp.o.d"
  "/root/repo/src/core/mpistate.cpp" "CMakeFiles/c3.dir/src/core/mpistate.cpp.o" "gcc" "CMakeFiles/c3.dir/src/core/mpistate.cpp.o.d"
  "/root/repo/src/core/piggyback.cpp" "CMakeFiles/c3.dir/src/core/piggyback.cpp.o" "gcc" "CMakeFiles/c3.dir/src/core/piggyback.cpp.o.d"
  "/root/repo/src/core/process.cpp" "CMakeFiles/c3.dir/src/core/process.cpp.o" "gcc" "CMakeFiles/c3.dir/src/core/process.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "CMakeFiles/c3.dir/src/net/transport.cpp.o" "gcc" "CMakeFiles/c3.dir/src/net/transport.cpp.o.d"
  "/root/repo/src/replica/replicated_storage.cpp" "CMakeFiles/c3.dir/src/replica/replicated_storage.cpp.o" "gcc" "CMakeFiles/c3.dir/src/replica/replicated_storage.cpp.o.d"
  "/root/repo/src/simmpi/api.cpp" "CMakeFiles/c3.dir/src/simmpi/api.cpp.o" "gcc" "CMakeFiles/c3.dir/src/simmpi/api.cpp.o.d"
  "/root/repo/src/simmpi/collectives.cpp" "CMakeFiles/c3.dir/src/simmpi/collectives.cpp.o" "gcc" "CMakeFiles/c3.dir/src/simmpi/collectives.cpp.o.d"
  "/root/repo/src/simmpi/reduce.cpp" "CMakeFiles/c3.dir/src/simmpi/reduce.cpp.o" "gcc" "CMakeFiles/c3.dir/src/simmpi/reduce.cpp.o.d"
  "/root/repo/src/simmpi/runtime.cpp" "CMakeFiles/c3.dir/src/simmpi/runtime.cpp.o" "gcc" "CMakeFiles/c3.dir/src/simmpi/runtime.cpp.o.d"
  "/root/repo/src/statesave/checkpoint.cpp" "CMakeFiles/c3.dir/src/statesave/checkpoint.cpp.o" "gcc" "CMakeFiles/c3.dir/src/statesave/checkpoint.cpp.o.d"
  "/root/repo/src/statesave/heap.cpp" "CMakeFiles/c3.dir/src/statesave/heap.cpp.o" "gcc" "CMakeFiles/c3.dir/src/statesave/heap.cpp.o.d"
  "/root/repo/src/util/buffer_pool.cpp" "CMakeFiles/c3.dir/src/util/buffer_pool.cpp.o" "gcc" "CMakeFiles/c3.dir/src/util/buffer_pool.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "CMakeFiles/c3.dir/src/util/crc32.cpp.o" "gcc" "CMakeFiles/c3.dir/src/util/crc32.cpp.o.d"
  "/root/repo/src/util/fault_injection.cpp" "CMakeFiles/c3.dir/src/util/fault_injection.cpp.o" "gcc" "CMakeFiles/c3.dir/src/util/fault_injection.cpp.o.d"
  "/root/repo/src/util/gf256.cpp" "CMakeFiles/c3.dir/src/util/gf256.cpp.o" "gcc" "CMakeFiles/c3.dir/src/util/gf256.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/c3.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/c3.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/c3.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/c3.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stable_storage.cpp" "CMakeFiles/c3.dir/src/util/stable_storage.cpp.o" "gcc" "CMakeFiles/c3.dir/src/util/stable_storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
