file(REMOVE_RECURSE
  "libc3.a"
)
