# Empty dependencies file for c3.
# This may be replaced when dependencies are built.
