# Empty dependencies file for ccift.
# This may be replaced when dependencies are built.
