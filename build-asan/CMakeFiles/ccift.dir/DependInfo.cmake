
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccift/analysis.cpp" "CMakeFiles/ccift.dir/src/ccift/analysis.cpp.o" "gcc" "CMakeFiles/ccift.dir/src/ccift/analysis.cpp.o.d"
  "/root/repo/src/ccift/check.cpp" "CMakeFiles/ccift.dir/src/ccift/check.cpp.o" "gcc" "CMakeFiles/ccift.dir/src/ccift/check.cpp.o.d"
  "/root/repo/src/ccift/emit.cpp" "CMakeFiles/ccift.dir/src/ccift/emit.cpp.o" "gcc" "CMakeFiles/ccift.dir/src/ccift/emit.cpp.o.d"
  "/root/repo/src/ccift/lexer.cpp" "CMakeFiles/ccift.dir/src/ccift/lexer.cpp.o" "gcc" "CMakeFiles/ccift.dir/src/ccift/lexer.cpp.o.d"
  "/root/repo/src/ccift/parser.cpp" "CMakeFiles/ccift.dir/src/ccift/parser.cpp.o" "gcc" "CMakeFiles/ccift.dir/src/ccift/parser.cpp.o.d"
  "/root/repo/src/ccift/runtime_abi.cpp" "CMakeFiles/ccift.dir/src/ccift/runtime_abi.cpp.o" "gcc" "CMakeFiles/ccift.dir/src/ccift/runtime_abi.cpp.o.d"
  "/root/repo/src/ccift/transform.cpp" "CMakeFiles/ccift.dir/src/ccift/transform.cpp.o" "gcc" "CMakeFiles/ccift.dir/src/ccift/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/c3.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
