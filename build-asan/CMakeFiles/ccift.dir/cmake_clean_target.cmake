file(REMOVE_RECURSE
  "libccift.a"
)
