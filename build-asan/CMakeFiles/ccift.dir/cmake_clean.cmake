file(REMOVE_RECURSE
  "CMakeFiles/ccift.dir/src/ccift/analysis.cpp.o"
  "CMakeFiles/ccift.dir/src/ccift/analysis.cpp.o.d"
  "CMakeFiles/ccift.dir/src/ccift/check.cpp.o"
  "CMakeFiles/ccift.dir/src/ccift/check.cpp.o.d"
  "CMakeFiles/ccift.dir/src/ccift/emit.cpp.o"
  "CMakeFiles/ccift.dir/src/ccift/emit.cpp.o.d"
  "CMakeFiles/ccift.dir/src/ccift/lexer.cpp.o"
  "CMakeFiles/ccift.dir/src/ccift/lexer.cpp.o.d"
  "CMakeFiles/ccift.dir/src/ccift/parser.cpp.o"
  "CMakeFiles/ccift.dir/src/ccift/parser.cpp.o.d"
  "CMakeFiles/ccift.dir/src/ccift/runtime_abi.cpp.o"
  "CMakeFiles/ccift.dir/src/ccift/runtime_abi.cpp.o.d"
  "CMakeFiles/ccift.dir/src/ccift/transform.cpp.o"
  "CMakeFiles/ccift.dir/src/ccift/transform.cpp.o.d"
  "libccift.a"
  "libccift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
