# Empty compiler generated dependencies file for bench_logging_baseline.
# This may be replaced when dependencies are built.
