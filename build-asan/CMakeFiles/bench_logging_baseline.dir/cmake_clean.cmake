file(REMOVE_RECURSE
  "CMakeFiles/bench_logging_baseline.dir/bench/bench_logging_baseline.cpp.o"
  "CMakeFiles/bench_logging_baseline.dir/bench/bench_logging_baseline.cpp.o.d"
  "bench_logging_baseline"
  "bench_logging_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logging_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
