# Empty dependencies file for statesave_test.
# This may be replaced when dependencies are built.
