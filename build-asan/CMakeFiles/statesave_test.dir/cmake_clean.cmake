file(REMOVE_RECURSE
  "CMakeFiles/statesave_test.dir/tests/statesave_test.cpp.o"
  "CMakeFiles/statesave_test.dir/tests/statesave_test.cpp.o.d"
  "statesave_test"
  "statesave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statesave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
