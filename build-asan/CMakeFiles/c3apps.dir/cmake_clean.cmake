file(REMOVE_RECURSE
  "CMakeFiles/c3apps.dir/src/apps/cg.cpp.o"
  "CMakeFiles/c3apps.dir/src/apps/cg.cpp.o.d"
  "CMakeFiles/c3apps.dir/src/apps/laplace.cpp.o"
  "CMakeFiles/c3apps.dir/src/apps/laplace.cpp.o.d"
  "CMakeFiles/c3apps.dir/src/apps/neurosys.cpp.o"
  "CMakeFiles/c3apps.dir/src/apps/neurosys.cpp.o.d"
  "libc3apps.a"
  "libc3apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c3apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
