# Empty dependencies file for c3apps.
# This may be replaced when dependencies are built.
