file(REMOVE_RECURSE
  "libc3apps.a"
)
