# Empty dependencies file for scale_smoke_test.
# This may be replaced when dependencies are built.
