file(REMOVE_RECURSE
  "CMakeFiles/scale_smoke_test.dir/tests/scale_smoke_test.cpp.o"
  "CMakeFiles/scale_smoke_test.dir/tests/scale_smoke_test.cpp.o.d"
  "scale_smoke_test"
  "scale_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
