# Empty dependencies file for ccift_compile_test.
# This may be replaced when dependencies are built.
