file(REMOVE_RECURSE
  "CMakeFiles/ccift_compile_test.dir/tests/ccift_compile_test.cpp.o"
  "CMakeFiles/ccift_compile_test.dir/tests/ccift_compile_test.cpp.o.d"
  "ccift_compile_test"
  "ccift_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccift_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
