file(REMOVE_RECURSE
  "CMakeFiles/ckpt_stress_test.dir/tests/ckpt_stress_test.cpp.o"
  "CMakeFiles/ckpt_stress_test.dir/tests/ckpt_stress_test.cpp.o.d"
  "ckpt_stress_test"
  "ckpt_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
