# Empty compiler generated dependencies file for ckpt_stress_test.
# This may be replaced when dependencies are built.
