# Empty compiler generated dependencies file for instrumented_restart.
# This may be replaced when dependencies are built.
