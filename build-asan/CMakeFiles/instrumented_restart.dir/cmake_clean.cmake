file(REMOVE_RECURSE
  "CMakeFiles/instrumented_restart.dir/examples/instrumented_restart.cpp.o"
  "CMakeFiles/instrumented_restart.dir/examples/instrumented_restart.cpp.o.d"
  "instrumented_restart"
  "instrumented_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumented_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
