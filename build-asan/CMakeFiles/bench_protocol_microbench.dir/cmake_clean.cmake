file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_microbench.dir/bench/bench_protocol_microbench.cpp.o"
  "CMakeFiles/bench_protocol_microbench.dir/bench/bench_protocol_microbench.cpp.o.d"
  "bench_protocol_microbench"
  "bench_protocol_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
