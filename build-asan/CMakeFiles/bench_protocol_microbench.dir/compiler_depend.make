# Empty compiler generated dependencies file for bench_protocol_microbench.
# This may be replaced when dependencies are built.
