file(REMOVE_RECURSE
  "CMakeFiles/bench_interval_sweep.dir/bench/bench_interval_sweep.cpp.o"
  "CMakeFiles/bench_interval_sweep.dir/bench/bench_interval_sweep.cpp.o.d"
  "bench_interval_sweep"
  "bench_interval_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interval_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
