# Empty compiler generated dependencies file for bench_interval_sweep.
# This may be replaced when dependencies are built.
