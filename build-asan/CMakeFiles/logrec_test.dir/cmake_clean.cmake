file(REMOVE_RECURSE
  "CMakeFiles/logrec_test.dir/tests/logrec_test.cpp.o"
  "CMakeFiles/logrec_test.dir/tests/logrec_test.cpp.o.d"
  "logrec_test"
  "logrec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logrec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
