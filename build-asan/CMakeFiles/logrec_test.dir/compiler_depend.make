# Empty compiler generated dependencies file for logrec_test.
# This may be replaced when dependencies are built.
