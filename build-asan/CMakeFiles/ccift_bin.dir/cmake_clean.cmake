file(REMOVE_RECURSE
  "CMakeFiles/ccift_bin.dir/src/ccift/ccift_main.cpp.o"
  "CMakeFiles/ccift_bin.dir/src/ccift/ccift_main.cpp.o.d"
  "ccift"
  "ccift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccift_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
