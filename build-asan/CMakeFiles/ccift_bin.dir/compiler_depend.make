# Empty compiler generated dependencies file for ccift_bin.
# This may be replaced when dependencies are built.
