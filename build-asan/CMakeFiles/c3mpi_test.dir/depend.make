# Empty dependencies file for c3mpi_test.
# This may be replaced when dependencies are built.
