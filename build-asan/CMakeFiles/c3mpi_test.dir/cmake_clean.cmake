file(REMOVE_RECURSE
  "CMakeFiles/c3mpi_test.dir/tests/c3mpi_test.cpp.o"
  "CMakeFiles/c3mpi_test.dir/tests/c3mpi_test.cpp.o.d"
  "c3mpi_test"
  "c3mpi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c3mpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
