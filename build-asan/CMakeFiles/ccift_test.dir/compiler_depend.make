# Empty compiler generated dependencies file for ccift_test.
# This may be replaced when dependencies are built.
