file(REMOVE_RECURSE
  "CMakeFiles/ccift_test.dir/tests/ccift_test.cpp.o"
  "CMakeFiles/ccift_test.dir/tests/ccift_test.cpp.o.d"
  "ccift_test"
  "ccift_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
