file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cg.dir/bench/bench_fig8_cg.cpp.o"
  "CMakeFiles/bench_fig8_cg.dir/bench/bench_fig8_cg.cpp.o.d"
  "bench_fig8_cg"
  "bench_fig8_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
