file(REMOVE_RECURSE
  "CMakeFiles/piggyback_test.dir/tests/piggyback_test.cpp.o"
  "CMakeFiles/piggyback_test.dir/tests/piggyback_test.cpp.o.d"
  "piggyback_test"
  "piggyback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
