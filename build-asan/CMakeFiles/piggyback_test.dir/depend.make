# Empty dependencies file for piggyback_test.
# This may be replaced when dependencies are built.
