# Empty dependencies file for ccift_demo.
# This may be replaced when dependencies are built.
