file(REMOVE_RECURSE
  "CMakeFiles/ccift_demo.dir/examples/ccift_demo.cpp.o"
  "CMakeFiles/ccift_demo.dir/examples/ccift_demo.cpp.o.d"
  "ccift_demo"
  "ccift_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccift_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
