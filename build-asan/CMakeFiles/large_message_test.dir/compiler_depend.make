# Empty compiler generated dependencies file for large_message_test.
# This may be replaced when dependencies are built.
