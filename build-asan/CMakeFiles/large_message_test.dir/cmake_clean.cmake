file(REMOVE_RECURSE
  "CMakeFiles/large_message_test.dir/tests/large_message_test.cpp.o"
  "CMakeFiles/large_message_test.dir/tests/large_message_test.cpp.o.d"
  "large_message_test"
  "large_message_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
