# Empty dependencies file for neurosys_demo.
# This may be replaced when dependencies are built.
