file(REMOVE_RECURSE
  "CMakeFiles/neurosys_demo.dir/examples/neurosys_demo.cpp.o"
  "CMakeFiles/neurosys_demo.dir/examples/neurosys_demo.cpp.o.d"
  "neurosys_demo"
  "neurosys_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosys_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
