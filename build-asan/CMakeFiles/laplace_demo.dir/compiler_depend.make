# Empty compiler generated dependencies file for laplace_demo.
# This may be replaced when dependencies are built.
