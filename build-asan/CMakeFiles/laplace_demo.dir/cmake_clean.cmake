file(REMOVE_RECURSE
  "CMakeFiles/laplace_demo.dir/examples/laplace_demo.cpp.o"
  "CMakeFiles/laplace_demo.dir/examples/laplace_demo.cpp.o.d"
  "laplace_demo"
  "laplace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
