file(REMOVE_RECURSE
  "libc3mpi.a"
)
