file(REMOVE_RECURSE
  "CMakeFiles/c3mpi.dir/src/c3mpi/c3mpi.cpp.o"
  "CMakeFiles/c3mpi.dir/src/c3mpi/c3mpi.cpp.o.d"
  "libc3mpi.a"
  "libc3mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c3mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
