# Empty dependencies file for c3mpi.
# This may be replaced when dependencies are built.
