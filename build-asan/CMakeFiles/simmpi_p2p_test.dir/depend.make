# Empty dependencies file for simmpi_p2p_test.
# This may be replaced when dependencies are built.
