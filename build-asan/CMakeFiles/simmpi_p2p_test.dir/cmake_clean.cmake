file(REMOVE_RECURSE
  "CMakeFiles/simmpi_p2p_test.dir/tests/simmpi_p2p_test.cpp.o"
  "CMakeFiles/simmpi_p2p_test.dir/tests/simmpi_p2p_test.cpp.o.d"
  "simmpi_p2p_test"
  "simmpi_p2p_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_p2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
