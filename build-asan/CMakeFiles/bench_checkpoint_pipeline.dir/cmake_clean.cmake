file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_pipeline.dir/bench/bench_checkpoint_pipeline.cpp.o"
  "CMakeFiles/bench_checkpoint_pipeline.dir/bench/bench_checkpoint_pipeline.cpp.o.d"
  "bench_checkpoint_pipeline"
  "bench_checkpoint_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
