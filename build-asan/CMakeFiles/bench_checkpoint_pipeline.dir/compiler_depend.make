# Empty compiler generated dependencies file for bench_checkpoint_pipeline.
# This may be replaced when dependencies are built.
