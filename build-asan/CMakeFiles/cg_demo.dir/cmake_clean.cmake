file(REMOVE_RECURSE
  "CMakeFiles/cg_demo.dir/examples/cg_demo.cpp.o"
  "CMakeFiles/cg_demo.dir/examples/cg_demo.cpp.o.d"
  "cg_demo"
  "cg_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
