# Empty dependencies file for cg_demo.
# This may be replaced when dependencies are built.
