file(REMOVE_RECURSE
  "CMakeFiles/ckptstore_cow_test.dir/tests/ckptstore_cow_test.cpp.o"
  "CMakeFiles/ckptstore_cow_test.dir/tests/ckptstore_cow_test.cpp.o.d"
  "ckptstore_cow_test"
  "ckptstore_cow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptstore_cow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
