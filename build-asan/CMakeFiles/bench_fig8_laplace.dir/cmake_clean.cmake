file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_laplace.dir/bench/bench_fig8_laplace.cpp.o"
  "CMakeFiles/bench_fig8_laplace.dir/bench/bench_fig8_laplace.cpp.o.d"
  "bench_fig8_laplace"
  "bench_fig8_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
