// Shared harness for the paper-reproduction benchmarks.
//
// Every Figure-8 binary measures the same four program versions the paper
// compares (Section 6.2):
//   1. the unmodified program            (InstrumentLevel::kRaw)
//   2. + piggybacked data on messages    (kPiggybackOnly)
//   3. + protocol logs & MPI lib state   (kNoAppState)
//   4. + full checkpoints w/ app state   (kFull)
// and prints a paper-style table (rows = problem size, columns = versions,
// plus overhead % over the unmodified program).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/job.hpp"

namespace c3::bench {

using core::InstrumentLevel;
using core::Job;
using core::JobConfig;
using core::Process;

inline const char* level_name(InstrumentLevel level) {
  switch (level) {
    case InstrumentLevel::kRaw: return "unmodified";
    case InstrumentLevel::kPiggybackOnly: return "piggyback";
    case InstrumentLevel::kNoAppState: return "no-app-state";
    case InstrumentLevel::kFull: return "full-ckpt";
  }
  return "?";
}

inline constexpr InstrumentLevel kAllLevels[] = {
    InstrumentLevel::kRaw, InstrumentLevel::kPiggybackOnly,
    InstrumentLevel::kNoAppState, InstrumentLevel::kFull};

/// Wall-clock one full job execution (seconds).
inline double time_job(const JobConfig& cfg,
                       const std::function<void(Process&)>& app) {
  Job job(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  job.run(app);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One row of a Figure-8-style table.
struct Fig8Row {
  std::string label;        ///< problem size label
  std::string state_label;  ///< application state size (paper annotates bars)
  double seconds[4] = {0, 0, 0, 0};  ///< per version, kAllLevels order
};

inline void print_fig8_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(paper: %s)\n", paper_note);
  std::printf("%-14s %-12s %11s %11s %13s %11s %10s\n", "size", "state/rank",
              "unmodified", "piggyback", "no-app-state", "full-ckpt",
              "overhead%");
}

inline void print_fig8_row(const Fig8Row& row) {
  const double raw = row.seconds[0];
  const double full = row.seconds[3];
  const double overhead = raw > 0 ? (full / raw - 1.0) * 100.0 : 0.0;
  std::printf("%-14s %-12s %10.3fs %10.3fs %12.3fs %10.3fs %9.1f%%\n",
              row.label.c_str(), row.state_label.c_str(), row.seconds[0],
              row.seconds[1], row.seconds[2], row.seconds[3], overhead);
}

/// Calibrate an iteration count so the unmodified run lasts ~target_secs.
/// `probe` runs the workload with the given iteration count and returns its
/// wall time in seconds. Two probe points subtract the fixed per-job setup
/// cost (thread spawn, matrix generation) from the per-iteration slope.
inline int calibrate_iterations(const std::function<double(int)>& probe,
                                double target_secs, int probe_iters = 10,
                                int min_iters = 20, int max_iters = 100000) {
  const double t1 = probe(probe_iters);
  const double t3 = probe(3 * probe_iters);
  const double per_iter = (t3 - t1) / (2 * probe_iters);
  if (per_iter <= 0) return min_iters;
  const double setup = std::max(0.0, t1 - per_iter * probe_iters);
  const int iters =
      static_cast<int>(std::max(1.0, (target_secs - setup) / per_iter));
  return std::max(min_iters, std::min(max_iters, iters));
}

/// Bandwidth-modelled stable storage standing in for the paper's 40 MB/s
/// local checkpoint disks: a throttled in-memory store (pure bandwidth
/// model, no real-I/O noise).
class ModelledDisk {
 public:
  explicit ModelledDisk(std::uint64_t bytes_per_sec)
      : storage_(std::make_shared<util::MemoryStorage>(bytes_per_sec)) {}
  std::shared_ptr<util::StableStorage> storage() { return storage_; }

 private:
  std::shared_ptr<util::MemoryStorage> storage_;
};

inline std::string human_bytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace c3::bench
