// Figure 8b: Laplace solver, four program versions per grid size. The paper
// measured 512^2 / 1024^2 / 2048^2 with tiny application state (138KB ..
// 2.1MB) and found at most 2.1% total overhead: the state is small relative
// to the work between checkpoints, and each message is large relative to
// the piggybacked word. Run under the same regime as the CG bench (timed
// checkpoint interval, bandwidth-modelled disk), the overhead here must
// stay flat and small -- the contrast with Figure 8a is the point.
#include <benchmark/benchmark.h>

#include "apps/laplace.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

constexpr int kRanks = 4;
constexpr double kTargetSecs = 0.8;
constexpr std::uint64_t kDiskBytesPerSec = 160ull * 1024 * 1024;

double run_version(std::size_t n, int iters, InstrumentLevel level,
                   std::chrono::milliseconds interval,
                   apps::LaplaceResult* probe) {
  ModelledDisk disk(kDiskBytesPerSec);
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.level = level;
  cfg.policy = core::CheckpointPolicy::timed(interval);
  cfg.storage = disk.storage();
  return time_job(cfg, [&](Process& p) {
    apps::LaplaceConfig app;
    app.n = n;
    app.iterations = iters;
    app.checkpoints = (level == InstrumentLevel::kNoAppState ||
                       level == InstrumentLevel::kFull);
    auto result = apps::run_laplace(p, app);
    if (p.rank() == 0 && probe) *probe = result;
  });
}

void paper_table() {
  print_fig8_header(
      "Figure 8b: Laplace Solver",
      "sizes 512^2..2048^2, state 138KB..2.1MB; total overhead <= 2.1% at "
      "every size (small state, large messages)");
  for (std::size_t n : {128u, 256u, 512u}) {
    // Large probe counts: per-iteration time at 128^2 is tens of
    // microseconds, so small probes are swamped by job-setup jitter.
    const int iters = calibrate_iterations(
        [&](int probe_iters) {
          return run_version(n, probe_iters, InstrumentLevel::kRaw,
                             std::chrono::milliseconds(0), nullptr);
        },
        kTargetSecs, /*probe_iters=*/200, /*min_iters=*/100,
        /*max_iters=*/20000);
    const auto interval = std::chrono::milliseconds(
        static_cast<int>(kTargetSecs * 1000 / 3));
    Fig8Row row;
    row.label = std::to_string(n) + "x" + std::to_string(n);
    apps::LaplaceResult probe;
    for (int v = 0; v < 4; ++v) {
      row.seconds[v] = run_version(n, iters, kAllLevels[v], interval, &probe);
    }
    row.state_label = human_bytes(probe.state_bytes);
    print_fig8_row(row);
  }
}

void BM_LaplaceVersion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto level = static_cast<InstrumentLevel>(state.range(1));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = kRanks;
    cfg.level = level;
    cfg.policy = core::CheckpointPolicy::every(15);
    Job job(cfg);
    job.run([&](Process& p) {
      apps::LaplaceConfig app;
      app.n = n;
      app.iterations = 60;
      app.checkpoints = (level == InstrumentLevel::kNoAppState ||
                         level == InstrumentLevel::kFull);
      apps::run_laplace(p, app);
    });
  }
  state.SetLabel(level_name(level));
}

BENCHMARK(BM_LaplaceVersion)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
