// Checkpoint storage pipeline benchmark: full synchronous dumps vs the
// ckptstore pipeline (incremental deltas + compression + async commit),
// under the paper's 40 MB/s stable-storage bandwidth model.
//
// Three synthetic state shapes bracket the paper's applications:
//   laplace  -- large per-rank state, mostly stable between checkpoints
//               (an iterative stencil converging: most chunks unchanged);
//   cg       -- medium state, about half churning per epoch (solver
//               vectors churn, preconditioner data stable);
//   neurosys -- small state, fully rewritten every epoch (dense weight
//               updates): the delta-hostile worst case.
//
// A second experiment sweeps rank counts to measure the commit-barrier
// cost model: with one serialized writer the barrier pays sum-over-ranks
// write time; with one writer lane per rank (each draining onto its own
// modelled per-node disk) it pays max-over-ranks, so the per-epoch stall
// should stay nearly flat as ranks grow.
//
// Emits BENCH_checkpoint.json: bytes/epoch (raw vs stored) and checkpoint
// stall seconds (rank time blocked in put + initiator time draining the
// queue at commit) for each (shape, mode), plus the rank-sweep
// commit-stall curves.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "replica/replicated_storage.hpp"
#include "util/rng.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

constexpr int kRanks = 4;
constexpr int kIters = 24;
constexpr int kCkptEvery = 2;
constexpr std::uint64_t kDiskBandwidth = 40ull << 20;  // the paper's 40 MB/s

struct Shape {
  const char* name;
  std::size_t state_bytes;   ///< per rank
  double dirty_fraction;     ///< fraction rewritten each iteration
};

constexpr Shape kShapes[] = {
    {"laplace", 4u << 20, 1.0 / 32.0},
    {"cg", 1u << 20, 0.5},
    {"neurosys", 128u << 10, 1.0},
};

struct Mode {
  const char* name;
  ckptstore::StoreOptions opts;
};

Mode full_mode() {
  Mode m{"full", {}};
  m.opts.delta = false;
  m.opts.async = false;
  m.opts.codec = ckptstore::CodecId::kNone;
  return m;
}

Mode pipeline_mode() {
  Mode m{"delta+lz+async", {}};
  m.opts.delta = true;
  m.opts.async = true;
  m.opts.codec = ckptstore::CodecId::kLz;
  return m;
}

struct Result {
  std::string shape;
  std::string mode;
  int epochs = 0;
  double raw_per_epoch = 0;
  double stored_per_epoch = 0;
  double delta_hit_rate = 0;
  double stall_secs_per_epoch = 0;
  double wall_secs = 0;
};

/// Iterative app over a registered state blob: each iteration rewrites the
/// leading `dirty_fraction` of the state with fresh pseudo-random bytes
/// (the working set churns, the remainder is stable -- a converged stencil
/// interior, a factored preconditioner) and synchronizes via a tiny
/// allreduce, then offers a checkpoint.
void state_app(Process& p, const Shape& shape) {
  util::Rng rng(0xC3C4 + static_cast<std::uint64_t>(p.rank()));
  std::vector<std::uint64_t> state(shape.state_bytes / 8);
  for (auto& w : state) w = rng.next_u64();  // incompressible baseline
  int iter = 0;
  p.register_state("state", state.data(), state.size() * 8);
  p.register_value("iter", iter);
  p.complete_registration();
  const std::size_t dirty_words = static_cast<std::size_t>(
      static_cast<double>(state.size()) * shape.dirty_fraction);
  while (iter < kIters) {
    for (std::size_t i = 0; i < dirty_words; ++i) {
      state[i] = rng.next_u64();
    }
    double acc = static_cast<double>(state[0] & 0xFFFF);
    double sum = 0.0;
    p.allreduce(util::as_bytes(acc), {reinterpret_cast<std::byte*>(&sum), 8},
                simmpi::Datatype::kDouble, simmpi::Op::kSum);
    ++iter;
    p.potential_checkpoint();
  }
}

Result run_one(const Shape& shape, const Mode& mode) {
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.level = InstrumentLevel::kFull;
  cfg.policy = core::CheckpointPolicy::every(kCkptEvery);
  cfg.storage = std::make_shared<util::MemoryStorage>(kDiskBandwidth);
  cfg.ckpt = mode.opts;
  Job job(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = job.run([&](Process& p) { state_app(p, shape); });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats = job.storage_stats();

  Result r;
  r.shape = shape.name;
  r.mode = mode.name;
  r.epochs = report.last_committed_epoch.value_or(0);
  if (r.epochs > 0) {
    r.raw_per_epoch =
        static_cast<double>(stats.raw_bytes) / r.epochs;
    r.stored_per_epoch =
        static_cast<double>(stats.stored_bytes) / r.epochs;
    r.stall_secs_per_epoch =
        static_cast<double>(stats.put_stall_ns + stats.commit_stall_ns) /
        1e9 / r.epochs;
  }
  r.delta_hit_rate = stats.delta_hit_rate();
  r.wall_secs = wall;
  return r;
}

// ------------------------------------------------------------- rank sweep
//
// Measures only the commit-barrier stall, with everything else pinned:
// constant-size incompressible blobs (no delta, no codec), one put per
// rank per epoch, a slow modelled per-node disk so the write time
// dominates the encode CPU. Drives the store directly (no protocol) so
// the numbers are pure pipeline.

constexpr int kSweepRanks[] = {1, 2, 4, 8, 16, 64, 128, 256};
constexpr int kSweepEpochs = 4;
constexpr std::size_t kSweepBlobBytes = 256u << 10;
constexpr std::uint64_t kSweepBandwidth = 4ull << 20;  // 64 ms per blob
/// The serialized curve is capped here: one lane pays sum-over-ranks, so
/// 256 ranks x 64 ms x 4 epochs would burn ~65 s of wall clock proving a
/// point already unambiguous at 16. The per-rank-lanes curve -- the claim
/// under test -- runs the full sweep.
constexpr int kSerializedCap = 16;
/// The parity lane: per-rank lanes PLUS the erasure-coded replica tier
/// (XOR parity over groups of 4, persisted on the tier's background pool
/// so the shard write overlaps the members' own data writes). Gate:
/// commit stall <= 1.5x the unreplicated laned stall at every count.
constexpr int kParityRanks[] = {8, 16, 64};
/// The COW lane: capture-and-return at the checkpoint site (put_capture
/// copies the inline chunks into pooled staging and returns), encode +
/// persist behind the app on the per-rank lanes, commit deferred to the
/// committer thread. Same blobs, same disks; delta off so the write
/// volume matches the laned curve byte for byte. Its stall number is the
/// whole app-visible cost -- capture copy plus the commit *enqueue* --
/// because the drain happens behind the app. Gate: stall <= 0.25x the
/// laned synchronous commit stall at every count.
constexpr int kCowRanks[] = {8, 16, 64};

struct SweepResult {
  int ranks = 0;
  std::string mode;
  std::size_t lanes = 0;
  double commit_stall_per_epoch = 0;
  double vs_one_rank = 0;  ///< stall relative to this mode's 1-rank run
  double vs_laned = 0;     ///< parity lane: stall vs per-rank-lanes, same P
  /// Contended metadata-lock acquisitions across the run: with the delta
  /// index partitioned per lane these stay near zero at 256 lanes where
  /// the single meta mutex convoyed every encode and drop.
  std::uint64_t meta_lock_waits = 0;
  std::uint64_t gc_lock_waits = 0;
};

SweepResult run_sweep_one(int ranks, bool per_rank_lanes,
                          bool replicate = false, bool cow = false) {
  auto inner = std::make_shared<util::MemoryStorage>(kSweepBandwidth);
  std::shared_ptr<util::StableStorage> base = inner;
  if (replicate) {
    replica::ReplicaConfig rc;
    rc.group_size = 4;
    rc.parity_k = 1;
    base = std::make_shared<replica::ReplicatedStorage>(inner, ranks, rc);
  }
  ckptstore::StoreOptions o;
  o.delta = false;
  o.async = true;
  o.codec = ckptstore::CodecId::kNone;
  o.writer_lanes = per_rank_lanes ? static_cast<std::size_t>(ranks) : 1;
  o.queue_max_blobs = static_cast<std::size_t>(2 * ranks);
  o.queue_max_bytes = std::size_t{256} << 20;
  o.cow = cow;
  ckptstore::CheckpointStore store(base, o);

  std::vector<util::Bytes> blobs(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    util::Rng rng(0x5EED + static_cast<std::uint64_t>(r));
    auto& b = blobs[static_cast<std::size_t>(r)];
    b.resize(kSweepBlobBytes);
    for (auto& x : b) x = static_cast<std::byte>(rng.next_u64() & 0xFF);
  }

  for (int epoch = 1; epoch <= kSweepEpochs; ++epoch) {
    std::vector<std::thread> producers;
    producers.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      producers.emplace_back([&, r, epoch] {
        const auto& b = blobs[static_cast<std::size_t>(r)];
        if (cow) {
          std::vector<ckptstore::CaptureSection> sections;
          sections.push_back({"state", std::span<const std::byte>(b), {}});
          store.put_capture({epoch, r, "state"}, std::move(sections));
        } else {
          store.put({epoch, r, "state"}, util::Bytes(b));
        }
      });
    }
    for (auto& t : producers) t.join();
    store.commit(epoch);
    if (epoch > 1) store.drop_epoch(epoch - 1);
  }
  // Deferred commits finalize behind the app; settle them so the stats
  // describe a drained store (the settle wait is the driver's, not a rank
  // stall -- a real app would be computing through it).
  if (cow) store.flush();

  SweepResult sr;
  sr.ranks = ranks;
  sr.mode = cow ? "cow"
                : (replicate ? "parity-replicated"
                             : (per_rank_lanes ? "per-rank-lanes"
                                               : "serialized"));
  sr.lanes = o.writer_lanes;
  const auto stats = store.storage_stats();
  sr.commit_stall_per_epoch =
      static_cast<double>(stats.commit_stall_ns) / 1e9 / kSweepEpochs;
  if (cow) {
    // The commit is an enqueue here; what a rank actually blocks on is
    // its own capture copy. put_stall_ns aggregates every rank thread's
    // capture, so the app-visible per-epoch stall is the per-rank share
    // of it plus the enqueue.
    sr.commit_stall_per_epoch +=
        static_cast<double>(stats.put_stall_ns) / 1e9 / kSweepEpochs /
        static_cast<double>(ranks);
  }
  sr.meta_lock_waits = stats.meta_lock_waits;
  sr.gc_lock_waits = stats.gc_lock_waits;
  return sr;
}

std::vector<SweepResult> run_sweep() {
  std::printf(
      "\n=== Commit-barrier scaling: serialized writer vs per-rank lanes "
      "===\n(%zu KiB/rank/epoch, %llu MB/s modelled per-node disks)\n",
      kSweepBlobBytes >> 10,
      static_cast<unsigned long long>(kSweepBandwidth >> 20));
  std::printf("(serialized curve capped at %d ranks: sum-over-ranks cost is "
              "already unambiguous there)\n", kSerializedCap);
  std::printf("%-7s %-16s %6s %18s %14s %11s %9s\n", "ranks", "mode", "lanes",
              "commit stall s/ep", "vs 1-rank", "meta-waits", "gc-waits");
  std::vector<SweepResult> results;
  for (const bool lanes : {false, true}) {
    double one_rank_stall = 0;
    for (const int ranks : kSweepRanks) {
      if (!lanes && ranks > kSerializedCap) continue;
      auto sr = run_sweep_one(ranks, lanes);
      if (ranks == 1) one_rank_stall = sr.commit_stall_per_epoch;
      sr.vs_one_rank = one_rank_stall > 0
                           ? sr.commit_stall_per_epoch / one_rank_stall
                           : 0.0;
      std::printf("%-7d %-16s %6zu %18.4f %13.2fx %11llu %9llu\n", sr.ranks,
                  sr.mode.c_str(), sr.lanes, sr.commit_stall_per_epoch,
                  sr.vs_one_rank,
                  static_cast<unsigned long long>(sr.meta_lock_waits),
                  static_cast<unsigned long long>(sr.gc_lock_waits));
      results.push_back(std::move(sr));
    }
  }
  // Parity lane: the laned curve with the erasure-coded replica tier
  // stacked underneath. Reported against the unreplicated laned stall at
  // the same rank count -- the check_bench gate holds this at <= 1.5x.
  for (const int ranks : kParityRanks) {
    auto sr = run_sweep_one(ranks, /*per_rank_lanes=*/true,
                            /*replicate=*/true);
    double laned_stall = 0;
    for (const auto& prev : results) {
      if (prev.mode == "per-rank-lanes" && prev.ranks == ranks) {
        laned_stall = prev.commit_stall_per_epoch;
      }
    }
    sr.vs_laned = laned_stall > 0
                      ? sr.commit_stall_per_epoch / laned_stall
                      : 0.0;
    std::printf("%-7d %-16s %6zu %18.4f %12.2fxL %11llu %9llu\n", sr.ranks,
                sr.mode.c_str(), sr.lanes, sr.commit_stall_per_epoch,
                sr.vs_laned,
                static_cast<unsigned long long>(sr.meta_lock_waits),
                static_cast<unsigned long long>(sr.gc_lock_waits));
    results.push_back(std::move(sr));
  }
  // COW lane: capture-and-return with the commit deferred behind the app.
  // Reported against the laned synchronous stall at the same rank count --
  // the check_bench gate holds this at <= 0.25x.
  for (const int ranks : kCowRanks) {
    auto sr = run_sweep_one(ranks, /*per_rank_lanes=*/true,
                            /*replicate=*/false, /*cow=*/true);
    double laned_stall = 0;
    for (const auto& prev : results) {
      if (prev.mode == "per-rank-lanes" && prev.ranks == ranks) {
        laned_stall = prev.commit_stall_per_epoch;
      }
    }
    sr.vs_laned = laned_stall > 0
                      ? sr.commit_stall_per_epoch / laned_stall
                      : 0.0;
    std::printf("%-7d %-16s %6zu %18.4f %12.2fxL %11llu %9llu\n", sr.ranks,
                sr.mode.c_str(), sr.lanes, sr.commit_stall_per_epoch,
                sr.vs_laned,
                static_cast<unsigned long long>(sr.meta_lock_waits),
                static_cast<unsigned long long>(sr.gc_lock_waits));
    results.push_back(std::move(sr));
  }
  return results;
}

void write_json(const std::vector<Result>& results,
                const std::vector<SweepResult>& sweep) {
  std::FILE* f = std::fopen("BENCH_checkpoint.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"checkpoint_pipeline\",\n");
  std::fprintf(f, "  \"ranks\": %d,\n  \"iters\": %d,\n", kRanks, kIters);
  std::fprintf(f, "  \"throttle_mb_per_s\": %llu,\n",
               static_cast<unsigned long long>(kDiskBandwidth >> 20));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"mode\": \"%s\", \"epochs\": %d, "
                 "\"raw_bytes_per_epoch\": %.0f, "
                 "\"stored_bytes_per_epoch\": %.0f, "
                 "\"delta_hit_rate\": %.4f, "
                 "\"stall_seconds_per_epoch\": %.4f, "
                 "\"wall_seconds\": %.3f}%s\n",
                 r.shape.c_str(), r.mode.c_str(), r.epochs, r.raw_per_epoch,
                 r.stored_per_epoch, r.delta_hit_rate,
                 r.stall_secs_per_epoch, r.wall_secs,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"rank_sweep\": {\n"
               "    \"blob_bytes_per_rank\": %zu,\n"
               "    \"disk_mb_per_s\": %llu,\n"
               "    \"epochs\": %d,\n"
               "    \"serialized_rank_cap\": %d,\n"
               "    \"results\": [\n",
               kSweepBlobBytes,
               static_cast<unsigned long long>(kSweepBandwidth >> 20),
               kSweepEpochs, kSerializedCap);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& s = sweep[i];
    std::fprintf(f,
                 "      {\"ranks\": %d, \"mode\": \"%s\", \"lanes\": %zu, "
                 "\"commit_stall_seconds_per_epoch\": %.4f, "
                 "\"stall_vs_one_rank\": %.3f, "
                 "\"stall_vs_laned\": %.3f, "
                 "\"meta_lock_waits\": %llu, \"gc_lock_waits\": %llu}%s\n",
                 s.ranks, s.mode.c_str(), s.lanes, s.commit_stall_per_epoch,
                 s.vs_one_rank, s.vs_laned,
                 static_cast<unsigned long long>(s.meta_lock_waits),
                 static_cast<unsigned long long>(s.gc_lock_waits),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf(
      "\n=== Checkpoint storage pipeline (40 MB/s modelled disk) ===\n"
      "(full synchronous v1 dump vs delta+compression+async commit)\n");
  std::printf("%-10s %-15s %7s %14s %14s %8s %12s %9s\n", "shape", "mode",
              "epochs", "raw B/epoch", "stored B/epoch", "delta%",
              "stall s/ep", "wall s");
  std::vector<Result> results;
  for (const auto& shape : kShapes) {
    for (const auto& mode : {full_mode(), pipeline_mode()}) {
      auto r = run_one(shape, mode);
      std::printf("%-10s %-15s %7d %14s %14s %7.1f%% %12.4f %9.3f\n",
                  r.shape.c_str(), r.mode.c_str(), r.epochs,
                  human_bytes(static_cast<std::size_t>(r.raw_per_epoch)).c_str(),
                  human_bytes(static_cast<std::size_t>(r.stored_per_epoch))
                      .c_str(),
                  r.delta_hit_rate * 100.0, r.stall_secs_per_epoch,
                  r.wall_secs);
      results.push_back(std::move(r));
    }
  }
  const auto sweep = run_sweep();
  write_json(results, sweep);
  std::printf("\nwrote BENCH_checkpoint.json\n");
  return 0;
}
