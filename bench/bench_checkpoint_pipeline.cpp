// Checkpoint storage pipeline benchmark: full synchronous dumps vs the
// ckptstore pipeline (incremental deltas + compression + async commit),
// under the paper's 40 MB/s stable-storage bandwidth model.
//
// Three synthetic state shapes bracket the paper's applications:
//   laplace  -- large per-rank state, mostly stable between checkpoints
//               (an iterative stencil converging: most chunks unchanged);
//   cg       -- medium state, about half churning per epoch (solver
//               vectors churn, preconditioner data stable);
//   neurosys -- small state, fully rewritten every epoch (dense weight
//               updates): the delta-hostile worst case.
//
// Emits BENCH_checkpoint.json: bytes/epoch (raw vs stored) and checkpoint
// stall seconds (rank time blocked in put + initiator time draining the
// queue at commit) for each (shape, mode).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "util/rng.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

constexpr int kRanks = 4;
constexpr int kIters = 24;
constexpr int kCkptEvery = 2;
constexpr std::uint64_t kDiskBandwidth = 40ull << 20;  // the paper's 40 MB/s

struct Shape {
  const char* name;
  std::size_t state_bytes;   ///< per rank
  double dirty_fraction;     ///< fraction rewritten each iteration
};

constexpr Shape kShapes[] = {
    {"laplace", 4u << 20, 1.0 / 32.0},
    {"cg", 1u << 20, 0.5},
    {"neurosys", 128u << 10, 1.0},
};

struct Mode {
  const char* name;
  ckptstore::StoreOptions opts;
};

Mode full_mode() {
  Mode m{"full", {}};
  m.opts.delta = false;
  m.opts.async = false;
  m.opts.codec = ckptstore::CodecId::kNone;
  return m;
}

Mode pipeline_mode() {
  Mode m{"delta+lz+async", {}};
  m.opts.delta = true;
  m.opts.async = true;
  m.opts.codec = ckptstore::CodecId::kLz;
  return m;
}

struct Result {
  std::string shape;
  std::string mode;
  int epochs = 0;
  double raw_per_epoch = 0;
  double stored_per_epoch = 0;
  double delta_hit_rate = 0;
  double stall_secs_per_epoch = 0;
  double wall_secs = 0;
};

/// Iterative app over a registered state blob: each iteration rewrites the
/// leading `dirty_fraction` of the state with fresh pseudo-random bytes
/// (the working set churns, the remainder is stable -- a converged stencil
/// interior, a factored preconditioner) and synchronizes via a tiny
/// allreduce, then offers a checkpoint.
void state_app(Process& p, const Shape& shape) {
  util::Rng rng(0xC3C4 + static_cast<std::uint64_t>(p.rank()));
  std::vector<std::uint64_t> state(shape.state_bytes / 8);
  for (auto& w : state) w = rng.next_u64();  // incompressible baseline
  int iter = 0;
  p.register_state("state", state.data(), state.size() * 8);
  p.register_value("iter", iter);
  p.complete_registration();
  const std::size_t dirty_words = static_cast<std::size_t>(
      static_cast<double>(state.size()) * shape.dirty_fraction);
  while (iter < kIters) {
    for (std::size_t i = 0; i < dirty_words; ++i) {
      state[i] = rng.next_u64();
    }
    double acc = static_cast<double>(state[0] & 0xFFFF);
    double sum = 0.0;
    p.allreduce(util::as_bytes(acc), {reinterpret_cast<std::byte*>(&sum), 8},
                simmpi::Datatype::kDouble, simmpi::Op::kSum);
    ++iter;
    p.potential_checkpoint();
  }
}

Result run_one(const Shape& shape, const Mode& mode) {
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.level = InstrumentLevel::kFull;
  cfg.policy = core::CheckpointPolicy::every(kCkptEvery);
  cfg.storage = std::make_shared<util::MemoryStorage>(kDiskBandwidth);
  cfg.ckpt = mode.opts;
  Job job(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = job.run([&](Process& p) { state_app(p, shape); });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats = job.storage_stats();

  Result r;
  r.shape = shape.name;
  r.mode = mode.name;
  r.epochs = report.last_committed_epoch.value_or(0);
  if (r.epochs > 0) {
    r.raw_per_epoch =
        static_cast<double>(stats.raw_bytes) / r.epochs;
    r.stored_per_epoch =
        static_cast<double>(stats.stored_bytes) / r.epochs;
    r.stall_secs_per_epoch =
        static_cast<double>(stats.put_stall_ns + stats.commit_stall_ns) /
        1e9 / r.epochs;
  }
  r.delta_hit_rate = stats.delta_hit_rate();
  r.wall_secs = wall;
  return r;
}

void write_json(const std::vector<Result>& results) {
  std::FILE* f = std::fopen("BENCH_checkpoint.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"checkpoint_pipeline\",\n");
  std::fprintf(f, "  \"ranks\": %d,\n  \"iters\": %d,\n", kRanks, kIters);
  std::fprintf(f, "  \"throttle_mb_per_s\": %llu,\n",
               static_cast<unsigned long long>(kDiskBandwidth >> 20));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"mode\": \"%s\", \"epochs\": %d, "
                 "\"raw_bytes_per_epoch\": %.0f, "
                 "\"stored_bytes_per_epoch\": %.0f, "
                 "\"delta_hit_rate\": %.4f, "
                 "\"stall_seconds_per_epoch\": %.4f, "
                 "\"wall_seconds\": %.3f}%s\n",
                 r.shape.c_str(), r.mode.c_str(), r.epochs, r.raw_per_epoch,
                 r.stored_per_epoch, r.delta_hit_rate,
                 r.stall_secs_per_epoch, r.wall_secs,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf(
      "\n=== Checkpoint storage pipeline (40 MB/s modelled disk) ===\n"
      "(full synchronous v1 dump vs delta+compression+async commit)\n");
  std::printf("%-10s %-15s %7s %14s %14s %8s %12s %9s\n", "shape", "mode",
              "epochs", "raw B/epoch", "stored B/epoch", "delta%",
              "stall s/ep", "wall s");
  std::vector<Result> results;
  for (const auto& shape : kShapes) {
    for (const auto& mode : {full_mode(), pipeline_mode()}) {
      auto r = run_one(shape, mode);
      std::printf("%-10s %-15s %7d %14s %14s %7.1f%% %12.4f %9.3f\n",
                  r.shape.c_str(), r.mode.c_str(), r.epochs,
                  human_bytes(static_cast<std::size_t>(r.raw_per_epoch)).c_str(),
                  human_bytes(static_cast<std::size_t>(r.stored_per_epoch))
                      .c_str(),
                  r.delta_hit_rate * 100.0, r.stall_secs_per_epoch,
                  r.wall_secs);
      results.push_back(std::move(r));
    }
  }
  write_json(results);
  std::printf("\nwrote BENCH_checkpoint.json\n");
  return 0;
}
