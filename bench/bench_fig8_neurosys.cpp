// Figure 8c: Neurosys, four program versions per network size. The paper's
// signature finding concerns versions 1-2, not checkpoint volume: each data
// MPI_Allgather is preceded by a control MPI_Allgather carrying protocol
// information, so on the smallest network (16x16, trivial compute) the
// protocol layer costs up to 160% -- and the overhead falls to 2.7% at
// 128x128 as per-iteration computation grows while the number of
// collectives per iteration stays fixed (5 allgathers + 1 gather).
#include <benchmark/benchmark.h>

#include "apps/neurosys.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

constexpr int kRanks = 4;
constexpr double kTargetSecs = 0.5;
constexpr std::uint64_t kDiskBytesPerSec = 160ull * 1024 * 1024;

double run_version(std::size_t neurons, int iters, InstrumentLevel level,
                   std::chrono::milliseconds interval,
                   apps::NeurosysResult* probe) {
  ModelledDisk disk(kDiskBytesPerSec);
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.level = level;
  cfg.policy = core::CheckpointPolicy::timed(interval);
  cfg.storage = disk.storage();
  return time_job(cfg, [&](Process& p) {
    apps::NeurosysConfig app;
    app.neurons = neurons;
    app.iterations = iters;
    // More connections per neuron on larger networks: computation per
    // iteration grows faster than the (fixed) collective count, exactly
    // the regime the paper describes.
    app.fan_in = static_cast<int>(std::min<std::size_t>(neurons / 4, 64));
    app.checkpoints = (level == InstrumentLevel::kNoAppState ||
                       level == InstrumentLevel::kFull);
    auto result = apps::run_neurosys(p, app);
    if (p.rank() == 0 && probe) *probe = result;
  });
}

void paper_table() {
  print_fig8_header(
      "Figure 8c: Neurosys",
      "sizes 16^2..128^2, state 18KB..1.24MB; protocol-layer overhead "
      "(version 1 vs unmodified) 160% @16^2 -> 85% -> 34% -> 2.7% @128^2");
  for (std::size_t neurons : {256u, 1024u, 4096u, 16384u}) {
    const int iters = calibrate_iterations(
        [&](int probe_iters) {
          return run_version(neurons, probe_iters, InstrumentLevel::kRaw,
                             std::chrono::milliseconds(0), nullptr);
        },
        kTargetSecs, /*probe_iters=*/5, /*min_iters=*/10);
    const auto interval = std::chrono::milliseconds(
        static_cast<int>(kTargetSecs * 1000 / 3));
    Fig8Row row;
    row.label = std::to_string(neurons) + " neurons";
    apps::NeurosysResult probe;
    for (int v = 0; v < 4; ++v) {
      row.seconds[v] =
          run_version(neurons, iters, kAllLevels[v], interval, &probe);
    }
    row.state_label = human_bytes(probe.state_bytes);
    print_fig8_row(row);
    const double pb_overhead =
        (row.seconds[1] / row.seconds[0] - 1.0) * 100.0;
    std::printf("    -> piggyback/control overhead (paper's curve): %.1f%%\n",
                pb_overhead);
  }
}

void BM_NeurosysVersion(benchmark::State& state) {
  const auto neurons = static_cast<std::size_t>(state.range(0));
  const auto level = static_cast<InstrumentLevel>(state.range(1));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = kRanks;
    cfg.level = level;
    cfg.policy = core::CheckpointPolicy::every(10);
    Job job(cfg);
    job.run([&](Process& p) {
      apps::NeurosysConfig app;
      app.neurons = neurons;
      app.iterations = 20;
      app.checkpoints = (level == InstrumentLevel::kNoAppState ||
                         level == InstrumentLevel::kFull);
      apps::run_neurosys(p, app);
    });
  }
  state.SetLabel(level_name(level));
}

BENCHMARK(BM_NeurosysVersion)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
