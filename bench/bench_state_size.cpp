// State-size ablation: isolates the effect behind Figure 8a's overhead
// jump. A synthetic application performs a fixed amount of computation and
// communication per iteration while the registered application state sweeps
// from 64KB to 16MB per rank -- full-checkpoint overhead must grow with the
// state, while the no-app-state version stays flat.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

constexpr int kIters = 20;
constexpr int kRanks = 4;

void synthetic_app(Process& p, std::size_t state_bytes, bool checkpoints) {
  std::vector<double> state(state_bytes / sizeof(double), 1.0);
  int iter = 0;
  p.register_state("blob", state.data(), state.size() * sizeof(double));
  p.register_value("iter", iter);
  p.complete_registration();
  while (iter < kIters) {
    // Fixed work: touch a fixed-size prefix and exchange a small reduction.
    double acc = 0.0;
    const std::size_t touch = std::min<std::size_t>(state.size(), 8192);
    for (std::size_t i = 0; i < touch; ++i) acc += state[i] * 1.000001;
    state[0] = acc;
    double sum = 0.0;
    p.allreduce(util::as_bytes(acc), {reinterpret_cast<std::byte*>(&sum), 8},
                simmpi::Datatype::kDouble, simmpi::Op::kSum);
    ++iter;
    if (checkpoints) p.potential_checkpoint();
  }
}

struct SizeRow {
  std::size_t state_kb = 0;
  double secs[3] = {0, 0, 0};  ///< no-ckpt, no-app-state, full-ckpt
};

/// Machine-readable size trajectory, same schema style as
/// BENCH_protocol.json / BENCH_checkpoint.json.
void write_state_size_json(const std::vector<SizeRow>& rows) {
  std::FILE* f = std::fopen("BENCH_state_size.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"state_size\",\n");
  std::fprintf(f, "  \"ranks\": %d,\n  \"iters\": %d,\n", kRanks, kIters);
  std::fprintf(f, "  \"checkpoint_every\": 5,\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const double overhead =
        r.secs[0] > 0 ? (r.secs[2] / r.secs[0] - 1.0) * 100.0 : 0.0;
    std::fprintf(f,
                 "    {\"state_kb\": %zu, \"no_ckpt_seconds\": %.4f, "
                 "\"no_app_state_seconds\": %.4f, "
                 "\"full_ckpt_seconds\": %.4f, "
                 "\"full_overhead_pct\": %.1f}%s\n",
                 r.state_kb, r.secs[0], r.secs[1], r.secs[2], overhead,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void table() {
  std::printf(
      "\n=== Overhead vs application state size (Figure 8a's mechanism) ===\n"
      "(fixed compute per iteration; checkpoint every 5 iterations; the "
      "full version's cost tracks the state image, the no-app-state "
      "version stays flat)\n");
  std::printf("%-14s %12s %14s %12s\n", "state/rank", "no-ckpt", "no-app-state",
              "full-ckpt");
  std::vector<SizeRow> rows;
  for (std::size_t kb : {64u, 512u, 4096u, 16384u}) {
    const std::size_t bytes = kb * 1024;
    SizeRow row;
    row.state_kb = kb;
    const InstrumentLevel levels[3] = {InstrumentLevel::kRaw,
                                       InstrumentLevel::kNoAppState,
                                       InstrumentLevel::kFull};
    for (int i = 0; i < 3; ++i) {
      JobConfig cfg;
      cfg.ranks = kRanks;
      cfg.level = levels[i];
      cfg.policy = core::CheckpointPolicy::every(5);
      row.secs[i] = time_job(cfg, [&](Process& p) {
        synthetic_app(p, bytes, levels[i] != InstrumentLevel::kRaw);
      });
    }
    std::printf("%-14s %11.3fs %13.3fs %11.3fs\n",
                human_bytes(bytes).c_str(), row.secs[0], row.secs[1],
                row.secs[2]);
    rows.push_back(row);
  }
  write_state_size_json(rows);
  std::printf("wrote BENCH_state_size.json\n");
}

void BM_StateSize(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0)) * 1024;
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = kRanks;
    cfg.level = InstrumentLevel::kFull;
    cfg.policy = core::CheckpointPolicy::every(5);
    Job job(cfg);
    job.run([&](Process& p) { synthetic_app(p, bytes, true); });
  }
  state.counters["state_KB"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_StateSize)->Arg(64)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
