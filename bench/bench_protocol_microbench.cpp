// Protocol-layer microbenchmarks: message classification (Figure 3 /
// Definition 1), event-log append/serialize throughput, and recovery
// rollback cost (time from failure to resumed execution).
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "core/logrec.hpp"
#include "core/piggyback.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

void BM_Classify(benchmark::State& state) {
  // Sweep the classification over all reachable protocol states.
  std::uint32_t i = 0;
  for (auto _ : state) {
    const bool sender_color = (i & 1) != 0;
    const bool receiver_color = (i & 2) != 0;
    const bool logging = (i & 4) != 0;
    // Skip the unreachable combination (colors differ, receiver logging
    // belongs to the late case only) -- classify handles it anyway.
    benchmark::DoNotOptimize(
        core::classify(sender_color, receiver_color, logging));
    ++i;
  }
}
BENCHMARK(BM_Classify);

void BM_EventLogAppendLate(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  util::Bytes payload(payload_size, std::byte{0x5A});
  core::EventLog log;
  std::uint32_t id = 0;
  for (auto _ : state) {
    log.add_recv(core::RecvOutcome{0, 0, 1, 0, id++,
                                   core::MessageClass::kLate, payload});
    if (log.recv_count() >= 1024) log.clear();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size));
}
BENCHMARK(BM_EventLogAppendLate)->Arg(64)->Arg(4096);

void BM_EventLogSerialize(benchmark::State& state) {
  core::EventLog log;
  util::Bytes payload(256, std::byte{1});
  for (int i = 0; i < 200; ++i) {
    log.add_recv(core::RecvOutcome{0, 0, 1, 0, static_cast<std::uint32_t>(i),
                                   core::MessageClass::kLate, payload});
    log.add_nondet(static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.serialize());
  }
}
BENCHMARK(BM_EventLogSerialize);

void BM_RecoveryRollback(benchmark::State& state) {
  // Time a complete failure->rollback->recovery->finish cycle relative to
  // the failure-free run of the same job.
  const auto state_kb = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.level = InstrumentLevel::kFull;
    cfg.policy = core::CheckpointPolicy::every(2);
    cfg.failure = net::FailureSpec{.victim_rank = 1, .trigger_events = 30};
    Job job(cfg);
    job.run([&](Process& p) {
      std::vector<double> blob(state_kb * 1024 / 8, 1.0);
      long long acc = 0;
      int iter = 0;
      p.register_state("blob", blob.data(), blob.size() * 8);
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 16) {
        p.send_value(acc, (p.rank() + 1) % p.nranks(), 0);
        acc += p.recv_value<long long>((p.rank() - 1 + p.nranks()) % p.nranks(), 0);
        ++iter;
        p.potential_checkpoint();
      }
    });
  }
  state.counters["state_KB"] = static_cast<double>(state_kb);
}
BENCHMARK(BM_RecoveryRollback)->Arg(16)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
