// Protocol-layer microbenchmarks: message classification (Figure 3 /
// Definition 1), event-log append/serialize throughput, message-path
// throughput over the pooled zero-copy path, and recovery rollback cost
// (time from failure to resumed execution).
//
// Besides the google-benchmark tables, the binary always writes
// BENCH_protocol.json -- machine-readable steady-state message-path
// numbers (msgs/sec, copied bytes and allocations per message) so the
// perf trajectory of the send/receive path is tracked across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <thread>

#include "bench/bench_common.hpp"
#include "c3mpi/binding.hpp"
#include "c3mpi/mpi.h"
#include "core/logrec.hpp"
#include "core/piggyback.hpp"
#include "net/delivery.hpp"
#include "net/transport.hpp"

#include <optional>

namespace {

using namespace c3;
using namespace c3::bench;

/// Facade cost relative to the direct Process path, in percent (positive =
/// facade slower). Zero when either lane failed to measure.
double facade_overhead_pct(double direct_msgs_per_sec,
                           double facade_msgs_per_sec) {
  if (direct_msgs_per_sec <= 0 || facade_msgs_per_sec <= 0) return 0.0;
  return (direct_msgs_per_sec / facade_msgs_per_sec - 1.0) * 100.0;
}

/// Steady-state message-path result at one payload size.
struct MsgPathResult {
  std::size_t payload = 0;
  std::uint64_t msgs = 0;
  double seconds = 0;
  double copied_bytes_per_msg = 0;
  double allocs_per_msg = 0;
  double msgs_per_sec() const { return seconds > 0 ? msgs / seconds : 0; }
};

/// Windowed two-rank stream through the full protocol layer (kFull level,
/// piggyback framing, pooled buffers); measures the steady state after a
/// warmup that populates the pool. With `facade` the application-side calls
/// go through the c3mpi interposition layer (typed MPI signatures resolved
/// by the per-rank binding) instead of the direct Process API, pinning the
/// interposition overhead.
MsgPathResult run_message_path(std::size_t payload, int rounds,
                               int window = 32, bool facade = false) {
  MsgPathResult res;
  res.payload = payload;
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.level = InstrumentLevel::kFull;
  Job job(cfg);
  job.run([&](Process& p) {
    std::optional<c3mpi::MpiBinding> binding;
    if (facade) binding.emplace(p);
    std::vector<std::byte> buf(payload, std::byte{0x42});
    std::byte ack{};
    p.complete_registration();
    auto& fabric = p.api().runtime().fabric();
    std::uint64_t copied_mark = 0, allocs_mark = 0;
    std::chrono::steady_clock::time_point t0;
    const int count = static_cast<int>(payload);
    for (int phase = 0; phase < 2; ++phase) {
      const int n = (phase == 0) ? 4 : rounds;
      if (phase == 1 && p.rank() == 0) {
        copied_mark = fabric.stats().copied_bytes.load();
        allocs_mark = fabric.stats().allocs.load();
        t0 = std::chrono::steady_clock::now();
      }
      for (int r = 0; r < n; ++r) {
        if (p.rank() == 0) {
          if (facade) {
            for (int i = 0; i < window; ++i) {
              MPI_Send(buf.data(), count, MPI_BYTE, 1, 7, MPI_COMM_WORLD);
            }
            MPI_Recv(&ack, 1, MPI_BYTE, 1, 8, MPI_COMM_WORLD,
                     MPI_STATUS_IGNORE);
          } else {
            for (int i = 0; i < window; ++i) p.send(buf, 1, 7);
            p.recv({&ack, 1}, 1, 8);
          }
        } else {
          if (facade) {
            for (int i = 0; i < window; ++i) {
              MPI_Recv(buf.data(), count, MPI_BYTE, 0, 7, MPI_COMM_WORLD,
                       MPI_STATUS_IGNORE);
            }
            MPI_Send(&ack, 1, MPI_BYTE, 0, 8, MPI_COMM_WORLD);
          } else {
            for (int i = 0; i < window; ++i) p.recv(buf, 0, 7);
            p.send({&ack, 1}, 0, 8);
          }
        }
      }
      if (phase == 1 && p.rank() == 0) {
        const auto t1 = std::chrono::steady_clock::now();
        res.seconds = std::chrono::duration<double>(t1 - t0).count();
        res.msgs = static_cast<std::uint64_t>(rounds) * window;
        res.copied_bytes_per_msg =
            static_cast<double>(fabric.stats().copied_bytes.load() -
                                copied_mark) /
            static_cast<double>(res.msgs);
        res.allocs_per_msg =
            static_cast<double>(fabric.stats().allocs.load() - allocs_mark) /
            static_cast<double>(res.msgs);
      }
    }
  });
  return res;
}

// ------------------------------------------------- notify_one microbench
//
// Inbox::deliver signals a parked receiver with notify_one (one receiver
// per inbox; the old notify_all was pure waste) and only when the receiver
// is actually parked. This lane measures the parked-receiver round-trip at
// 2-16 ranks -- a token to each peer, each peer parked in wait() and
// echoing back -- so BENCH_protocol.json records that the switch did not
// regress wakeup latency.

struct NotifyResult {
  int ranks = 0;
  std::uint64_t msgs = 0;
  double roundtrip_us = 0;       ///< mean parked round-trip per peer token
  double wakeups_per_msg = 0;
};

NotifyResult run_notify_bench(int ranks, int iters) {
  net::Fabric fabric(ranks, net::FifoDelivery{});
  std::vector<std::thread> peers;
  peers.reserve(static_cast<std::size_t>(ranks - 1));
  for (int r = 1; r < ranks; ++r) {
    peers.emplace_back([&, r] {
      std::vector<net::Packet> got;
      while (!fabric.aborted()) {
        fabric.inbox(r).wait(std::chrono::microseconds(100000),
                             fabric.abort_flag());
        fabric.inbox(r).drain(got);
        for (auto& p : got) {
          net::Packet echo;
          echo.src = r;
          echo.dst = 0;
          echo.payload = std::move(p.payload);
          fabric.send(std::move(echo));
        }
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<net::Packet> echoes;
  std::uint64_t received = 0;
  for (int it = 0; it < iters; ++it) {
    for (int r = 1; r < ranks; ++r) {
      net::Packet p;
      p.src = 0;
      p.dst = r;
      p.payload.resize(8);
      fabric.send(std::move(p));
    }
    std::uint64_t round = 0;
    while (round < static_cast<std::uint64_t>(ranks - 1)) {
      fabric.inbox(0).wait(std::chrono::microseconds(100000),
                           fabric.abort_flag());
      fabric.inbox(0).drain(echoes);
      round += echoes.size();
    }
    received += round;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  fabric.abort();
  for (auto& t : peers) t.join();
  NotifyResult nr;
  nr.ranks = ranks;
  nr.msgs = received;
  nr.roundtrip_us = received > 0 ? secs * 1e6 / static_cast<double>(received)
                                 : 0.0;
  const auto wakeups = fabric.stats().wakeups.load();
  const auto packets = fabric.stats().packets.load();
  nr.wakeups_per_msg =
      packets > 0 ? static_cast<double>(wakeups) / static_cast<double>(packets)
                  : 0.0;
  return nr;
}

void write_lane(std::FILE* f, const char* key,
                const std::vector<MsgPathResult>& results, bool last) {
  std::fprintf(f, "  \"%s\": [\n", key);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"payload_bytes\": %zu, \"msgs\": %llu, "
                 "\"seconds\": %.6f, \"msgs_per_sec\": %.0f, "
                 "\"copied_bytes_per_msg\": %.2f, "
                 "\"allocs_per_msg\": %.4f}%s\n",
                 r.payload, static_cast<unsigned long long>(r.msgs), r.seconds,
                 r.msgs_per_sec(), r.copied_bytes_per_msg, r.allocs_per_msg,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", last ? "" : ",");
}

void write_protocol_json(const std::vector<MsgPathResult>& results,
                         const std::vector<MsgPathResult>& facade_results,
                         const std::vector<NotifyResult>& notify) {
  std::FILE* f = std::fopen("BENCH_protocol.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"protocol_message_path\",\n");
  std::fprintf(f, "  \"ranks\": 2,\n  \"level\": \"full-ckpt\",\n");
  write_lane(f, "results", results, /*last=*/false);
  // The same stream issued through the c3mpi interposition layer; the
  // per-payload overhead pins the cost of the MPI-compatible facade
  // relative to the direct Process path.
  write_lane(f, "facade_results", facade_results, /*last=*/false);
  std::fprintf(f, "  \"facade_overhead_pct\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double pct = facade_overhead_pct(results[i].msgs_per_sec(),
                                           facade_results[i].msgs_per_sec());
    std::fprintf(f, "    {\"payload_bytes\": %zu, \"overhead_pct\": %.2f}%s\n",
                 results[i].payload, pct,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"notify_note\": \"Inbox::deliver signals a parked "
               "receiver with notify_one (one receiver per inbox) and only "
               "when one is parked; parked round-trip latency at 2-16 ranks "
               "recorded below to confirm no regression vs the notify_all "
               "baseline\",\n");
  std::fprintf(f, "  \"notify_one\": [\n");
  for (std::size_t i = 0; i < notify.size(); ++i) {
    const auto& n = notify[i];
    std::fprintf(f,
                 "    {\"ranks\": %d, \"msgs\": %llu, "
                 "\"parked_roundtrip_us\": %.2f, "
                 "\"wakeups_per_packet\": %.4f}%s\n",
                 n.ranks, static_cast<unsigned long long>(n.msgs),
                 n.roundtrip_us, n.wakeups_per_msg,
                 i + 1 < notify.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void BM_Classify(benchmark::State& state) {
  // Sweep the classification over all reachable protocol states.
  std::uint32_t i = 0;
  for (auto _ : state) {
    const bool sender_color = (i & 1) != 0;
    const bool receiver_color = (i & 2) != 0;
    const bool logging = (i & 4) != 0;
    // Skip the unreachable combination (colors differ, receiver logging
    // belongs to the late case only) -- classify handles it anyway.
    benchmark::DoNotOptimize(
        core::classify(sender_color, receiver_color, logging));
    ++i;
  }
}
BENCHMARK(BM_Classify);

// range(0) = payload bytes; range(1) = 1 to route the application calls
// through the c3mpi facade instead of the direct Process API.
void BM_MessagePath(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  const bool facade = state.range(1) != 0;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    const auto res =
        run_message_path(payload, /*rounds=*/64, /*window=*/32, facade);
    msgs += res.msgs;
    state.counters["msgs_per_sec"] = res.msgs_per_sec();
    state.counters["copied_bytes_per_msg"] = res.copied_bytes_per_msg;
    state.counters["allocs_per_msg"] = res.allocs_per_msg;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(msgs * payload));
}
BENCHMARK(BM_MessagePath)
    ->ArgsProduct({{64, 4096}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_EventLogAppendLate(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  util::Bytes payload(payload_size, std::byte{0x5A});
  core::EventLog log;
  std::uint32_t id = 0;
  for (auto _ : state) {
    log.add_recv(core::RecvOutcome{0, 0, 1, 0, id++,
                                   core::MessageClass::kLate, payload});
    if (log.recv_count() >= 1024) log.clear();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size));
}
BENCHMARK(BM_EventLogAppendLate)->Arg(64)->Arg(4096);

void BM_EventLogSerialize(benchmark::State& state) {
  core::EventLog log;
  util::Bytes payload(256, std::byte{1});
  for (int i = 0; i < 200; ++i) {
    log.add_recv(core::RecvOutcome{0, 0, 1, 0, static_cast<std::uint32_t>(i),
                                   core::MessageClass::kLate, payload});
    log.add_nondet(static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.serialize());
  }
}
BENCHMARK(BM_EventLogSerialize);

void BM_RecoveryRollback(benchmark::State& state) {
  // Time a complete failure->rollback->recovery->finish cycle relative to
  // the failure-free run of the same job.
  const auto state_kb = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.level = InstrumentLevel::kFull;
    cfg.policy = core::CheckpointPolicy::every(2);
    cfg.failure = net::FailureSpec{.victim_rank = 1, .trigger_events = 30};
    Job job(cfg);
    job.run([&](Process& p) {
      std::vector<double> blob(state_kb * 1024 / 8, 1.0);
      long long acc = 0;
      int iter = 0;
      p.register_state("blob", blob.data(), blob.size() * 8);
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 16) {
        p.send_value(acc, (p.rank() + 1) % p.nranks(), 0);
        acc += p.recv_value<long long>((p.rank() - 1 + p.nranks()) % p.nranks(), 0);
        ++iter;
        p.potential_checkpoint();
      }
    });
  }
  state.counters["state_KB"] = static_cast<double>(state_kb);
}
BENCHMARK(BM_RecoveryRollback)->Arg(16)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // --benchmark_list_tests must only list; don't run workloads or touch
  // BENCH_protocol.json in that mode.
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--benchmark_list_tests" ||
        arg == "--benchmark_list_tests=true" ||
        arg == "--benchmark_list_tests=1") {
      list_only = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (list_only) return 0;
  // Emit the machine-readable message-path numbers, independent of
  // whatever --benchmark_filter selected above.
  std::vector<MsgPathResult> results;
  std::vector<MsgPathResult> facade_results;
  for (const std::size_t payload : {std::size_t{64}, std::size_t{4096},
                                    std::size_t{65536}}) {
    // Seven interleaved reps, keeping the rep with the *second-lowest*
    // pairwise direct/facade ratio. Each rep's two lanes run
    // back-to-back under the same transient machine load, so their
    // ratio cancels noise that per-lane best-of-N cannot: one lucky
    // direct rep (or one loaded facade rep) swung the reported overhead
    // +-8% on single-core runners and flaked the 5% CI budget. A *real*
    // interposition regression shifts every pair's ratio, so a low
    // order statistic still catches it; interference bursts only
    // inflate individual pairs, and the second-lowest (not the minimum)
    // also discards one lucky-direct outlier in the other direction.
    std::vector<MsgPathResult> direct_reps;
    std::vector<MsgPathResult> facade_reps;
    // Small payloads get longer reps: a 512-round rep at 64 B lasts
    // ~30 ms, shorter than a scheduler interference burst, so the rep
    // measures the burst instead of the path.
    const int rounds = payload <= 4096 ? 2048 : 512;
    for (int rep = 0; rep < 7; ++rep) {
      direct_reps.push_back(run_message_path(payload, rounds));
      facade_reps.push_back(run_message_path(payload, rounds,
                                             /*window=*/32, /*facade=*/true));
    }
    std::vector<std::size_t> order(direct_reps.size());
    for (std::size_t r = 0; r < order.size(); ++r) order[r] = r;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return direct_reps[a].msgs_per_sec() * facade_reps[b].msgs_per_sec() <
             direct_reps[b].msgs_per_sec() * facade_reps[a].msgs_per_sec();
    });
    const std::size_t pick = order[order.size() > 1 ? 1 : 0];
    results.push_back(direct_reps[pick]);
    facade_results.push_back(facade_reps[pick]);
  }
  std::vector<NotifyResult> notify;
  for (const int ranks : {2, 4, 8, 16}) {
    notify.push_back(run_notify_bench(ranks, /*iters=*/200));
  }
  write_protocol_json(results, facade_results, notify);
  std::printf("\nwrote BENCH_protocol.json:\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& fr = facade_results[i];
    const double pct =
        facade_overhead_pct(r.msgs_per_sec(), fr.msgs_per_sec());
    std::printf("  payload %6zu B: direct %10.0f msgs/s, facade %10.0f "
                "msgs/s (%+.2f%%), %8.1f copied B/msg, %6.4f allocs/msg\n",
                r.payload, r.msgs_per_sec(), fr.msgs_per_sec(), pct,
                r.copied_bytes_per_msg, r.allocs_per_msg);
  }
  for (const auto& n : notify) {
    std::printf("  notify_one %2d ranks: %7.2f us parked round-trip, "
                "%6.4f wakeups/packet\n",
                n.ranks, n.roundtrip_us, n.wakeups_per_msg);
  }
  return 0;
}
