// Section 1.2 claim: "the overhead of saving or regenerating messages tends
// to be so overwhelming that [message logging] is not competitive" for
// parallel programs, which communicate more data more frequently than
// distributed programs. This bench implements the simplest message-logging
// baseline -- every process saves a copy of every message it sends -- and
// compares its data volume and runtime against C3 checkpointing on the same
// workloads.
#include <benchmark/benchmark.h>

#include <atomic>

#include "apps/laplace.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

/// Bytes a sender-based message log would have to retain for the run.
std::atomic<std::uint64_t> g_logged_bytes{0};

void laplace_with_message_logging(Process& p, std::size_t n, int iters,
                                  std::vector<util::Bytes>& message_log) {
  // Run at kRaw but capture every send payload, like pessimistic
  // sender-based logging would.
  apps::LaplaceConfig app;
  app.n = n;
  app.iterations = iters;
  app.checkpoints = false;
  // The app's sends flow through Process; intercept by running the app and
  // then accounting its traffic from the simmpi stats (payload copies are
  // modelled by an explicit buffer append per sent byte).
  const auto before = p.api().stats().send_bytes;
  apps::run_laplace(p, app);
  const auto sent = p.api().stats().send_bytes - before;
  // Model the log write: one copy of every sent byte.
  message_log.emplace_back(sent);
  g_logged_bytes.fetch_add(sent);
}

void comparison_table() {
  std::printf(
      "\n=== Message logging vs. C3 checkpointing (Section 1.2) ===\n"
      "(paper: message logging is not competitive for parallel codes; "
      "compare retained-data volumes)\n");
  std::printf("%-12s %14s %16s %16s %14s\n", "grid", "runtime(log)",
              "logged bytes", "ckpt bytes", "runtime(C3)");
  for (std::size_t n : {128u, 256u}) {
    constexpr int kIters = 40;
    // Message-logging baseline.
    g_logged_bytes.store(0);
    JobConfig log_cfg;
    log_cfg.ranks = 4;
    log_cfg.level = InstrumentLevel::kRaw;
    const double log_secs = time_job(log_cfg, [&](Process& p) {
      std::vector<util::Bytes> message_log;
      laplace_with_message_logging(p, n, kIters, message_log);
    });
    const auto logged = g_logged_bytes.load();

    // C3 checkpointing.
    JobConfig c3_cfg;
    c3_cfg.ranks = 4;
    c3_cfg.level = InstrumentLevel::kFull;
    c3_cfg.policy = core::CheckpointPolicy::every(10);
    auto storage = std::make_shared<util::MemoryStorage>();
    c3_cfg.storage = storage;
    const double c3_secs = time_job(c3_cfg, [&](Process& p) {
      apps::LaplaceConfig app;
      app.n = n;
      app.iterations = kIters;
      apps::run_laplace(p, app);
    });

    std::printf("%-12s %13.3fs %15s %15s %13.3fs\n",
                (std::to_string(n) + "x" + std::to_string(n)).c_str(),
                log_secs, human_bytes(logged).c_str(),
                human_bytes(storage->bytes_written()).c_str(), c3_secs);
  }
  std::printf(
      "(message logging must retain every byte ever sent until the next "
      "coordination point; checkpointing retains one state image + the "
      "in-flight tail)\n");
}

void BM_MessageLogVolume(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    g_logged_bytes.store(0);
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.level = InstrumentLevel::kRaw;
    Job job(cfg);
    job.run([&](Process& p) {
      std::vector<util::Bytes> message_log;
      laplace_with_message_logging(p, n, 20, message_log);
    });
  }
  state.counters["logged_MB"] =
      static_cast<double>(g_logged_bytes.load()) / (1024.0 * 1024.0);
}

BENCHMARK(BM_MessageLogVolume)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  comparison_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
