// Checkpoint-interval sweep (the paper fixes 30 s; this ablation shows the
// overhead/interval trade-off the number implies): more frequent global
// checkpoints cost more runtime and storage traffic but shorten the
// recovery rollback window.
#include <benchmark/benchmark.h>

#include "apps/laplace.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

constexpr int kIters = 60;
constexpr std::size_t kGrid = 192;

void sweep_table() {
  std::printf(
      "\n=== Checkpoint interval sweep (Section 6.1's 30s interval) ===\n"
      "(overhead falls as the interval grows; storage volume scales with "
      "checkpoint count)\n");
  // Baseline without checkpoints.
  JobConfig raw_cfg;
  raw_cfg.ranks = 4;
  raw_cfg.level = InstrumentLevel::kRaw;
  const double raw_secs = time_job(raw_cfg, [&](Process& p) {
    apps::LaplaceConfig app;
    app.n = kGrid;
    app.iterations = kIters;
    app.checkpoints = false;
    apps::run_laplace(p, app);
  });
  std::printf("%-16s %10s %12s %12s %12s\n", "ckpt every", "runtime",
              "overhead%", "ckpts", "bytes");
  std::printf("%-16s %9.3fs %11s %12s %12s\n", "never (raw)", raw_secs, "-",
              "0", "0");
  for (std::uint64_t every : {2ull, 5ull, 10ull, 20ull, 40ull}) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.level = InstrumentLevel::kFull;
    cfg.policy = core::CheckpointPolicy::every(every);
    auto storage = std::make_shared<util::MemoryStorage>();
    cfg.storage = storage;
    const double secs = time_job(cfg, [&](Process& p) {
      apps::LaplaceConfig app;
      app.n = kGrid;
      app.iterations = kIters;
      apps::run_laplace(p, app);
    });
    const auto committed = storage->committed_epoch();
    std::printf("%-16s %9.3fs %10.1f%% %12d %12s\n",
                (std::to_string(every) + " iters").c_str(), secs,
                (secs / raw_secs - 1.0) * 100.0, committed.value_or(0),
                human_bytes(storage->bytes_written()).c_str());
  }
}

void BM_Interval(benchmark::State& state) {
  const auto every = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.level = InstrumentLevel::kFull;
    cfg.policy = core::CheckpointPolicy::every(every);
    Job job(cfg);
    job.run([&](Process& p) {
      apps::LaplaceConfig app;
      app.n = kGrid;
      app.iterations = 30;
      apps::run_laplace(p, app);
    });
  }
}

BENCHMARK(BM_Interval)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
