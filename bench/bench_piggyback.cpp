// Section 4.2 ablation: piggyback encodings. The paper argues the triple
// <epoch, amLogging, messageID> can be packed into a single 32-bit word
// (color bit + logging bit + 30-bit ID). This bench measures (a) the raw
// codec cost and (b) the end-to-end message-rate difference between the
// full and packed encodings, plus the no-piggyback baseline.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "core/piggyback.hpp"

namespace {

using namespace c3;
using namespace c3::bench;
using core::Piggyback;
using core::PiggybackMode;

void BM_EncodeDecode(benchmark::State& state) {
  const auto mode = static_cast<PiggybackMode>(state.range(0));
  Piggyback pb{.epoch = 41, .logging = true, .message_id = 123456};
  for (auto _ : state) {
    util::Writer w;
    core::encode_piggyback(mode, pb, w);
    util::Reader r(w.bytes());
    benchmark::DoNotOptimize(core::decode_piggyback(mode, r));
  }
  state.SetLabel(mode == PiggybackMode::kPacked ? "packed-4B" : "full-9B");
}

BENCHMARK(BM_EncodeDecode)->Arg(0)->Arg(1);

void BM_MessageRate(benchmark::State& state) {
  // Ping-pong of small messages: header size and codec cost are the only
  // difference across modes.
  const auto mode = static_cast<PiggybackMode>(state.range(0));
  const bool raw = state.range(1) != 0;
  const auto payload = static_cast<std::size_t>(state.range(2));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.level = raw ? InstrumentLevel::kRaw : InstrumentLevel::kPiggybackOnly;
    cfg.piggyback = mode;
    Job job(cfg);
    job.run([&](Process& p) {
      constexpr int kRounds = 300;
      std::vector<std::byte> buf(payload);
      for (int i = 0; i < kRounds; ++i) {
        if (p.rank() == 0) {
          p.send(buf, 1, 0);
          p.recv(buf, 1, 0);
        } else {
          p.recv(buf, 0, 0);
          p.send(buf, 0, 0);
        }
      }
    });
  }
  state.SetLabel(raw ? "no-piggyback"
                     : (mode == PiggybackMode::kPacked ? "packed" : "full"));
}

BENCHMARK(BM_MessageRate)
    ->Args({0, 1, 8})     // raw baseline, 8-byte payload
    ->Args({1, 0, 8})     // packed
    ->Args({0, 0, 8})     // full
    ->Args({1, 0, 4096})  // packed, 4KB payload (header amortized)
    ->Args({0, 0, 4096})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "\n=== Piggyback ablation (Section 4.2) ===\n"
      "(paper: the triple reduces to one 32-bit word; with small messages "
      "the header and codec cost is visible, with large messages it "
      "vanishes)\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
