// Figure 8a: Dense Conjugate Gradient, four program versions per problem
// size. The paper ran 4096/8192/16384 on 16 nodes, checkpointing every 30
// seconds to 40 MB/s local disks; overhead was 14% / 14% / 43% -- the jump
// comes from the application state (the dense matrix block) growing while
// the wall-clock checkpoint interval and the disk bandwidth stay fixed.
//
// The reproduction keeps exactly that mechanism: each run is calibrated to
// a fixed target duration, checkpoints fire on a wall-clock interval (1/3
// of the run), and checkpoints are written through a bandwidth-modelled
// disk. State grows 4x per size step, so the full-checkpoint overhead must
// rise steeply at the largest size while versions 1-2 stay cheap.
#include <benchmark/benchmark.h>

#include "apps/cg.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

constexpr int kRanks = 4;
constexpr double kTargetSecs = 0.8;
// Scaled stand-in for the paper's 40 MB/s local disks: chosen so the
// largest size's state image saturates the checkpoint interval the same
// way the paper's 131 MB images did.
constexpr std::uint64_t kDiskBytesPerSec = 160ull * 1024 * 1024;

double run_version(std::size_t n, int iters, InstrumentLevel level,
                   std::chrono::milliseconds interval,
                   apps::CgResult* probe) {
  ModelledDisk disk(kDiskBytesPerSec);
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.level = level;
  cfg.policy = core::CheckpointPolicy::timed(interval);
  cfg.storage = disk.storage();
  return time_job(cfg, [&](Process& p) {
    apps::CgConfig app;
    app.n = n;
    app.iterations = iters;
    app.checkpoints = (level == InstrumentLevel::kNoAppState ||
                       level == InstrumentLevel::kFull);
    auto result = apps::run_cg(p, app);
    if (p.rank() == 0 && probe) *probe = result;
  });
}

void paper_table() {
  print_fig8_header(
      "Figure 8a: Dense Conjugate Gradient",
      "sizes 4096^2..16384^2 on 16 nodes, 30s ckpt interval, 40MB/s disks; "
      "overhead 14% @4096, 14% @8192, 43% @16384 -- state-size driven");
  for (std::size_t n : {512u, 1024u, 2048u}) {
    // Calibrate the iteration count so the raw run lasts ~kTargetSecs.
    const int iters = calibrate_iterations(
        [&](int probe_iters) {
          return run_version(n, probe_iters, InstrumentLevel::kRaw,
                             std::chrono::milliseconds(0), nullptr);
        },
        kTargetSecs, /*probe_iters=*/60);
    const auto interval = std::chrono::milliseconds(
        static_cast<int>(kTargetSecs * 1000 / 3));
    Fig8Row row;
    row.label = std::to_string(n) + "x" + std::to_string(n);
    apps::CgResult probe;
    for (int v = 0; v < 4; ++v) {
      row.seconds[v] =
          run_version(n, iters, kAllLevels[v], interval, &probe);
    }
    row.state_label = human_bytes(probe.state_bytes);
    print_fig8_row(row);
  }
}

void BM_CgVersion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto level = static_cast<InstrumentLevel>(state.range(1));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = kRanks;
    cfg.level = level;
    cfg.policy = core::CheckpointPolicy::every(6);
    Job job(cfg);
    job.run([&](Process& p) {
      apps::CgConfig app;
      app.n = n;
      app.iterations = 18;
      app.checkpoints = (level == InstrumentLevel::kNoAppState ||
                         level == InstrumentLevel::kFull);
      apps::run_cg(p, app);
    });
  }
  state.SetLabel(level_name(level));
}

BENCHMARK(BM_CgVersion)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
