// Figure 5 / Section 4.5 ablation: the cost of the protocol's collective
// handling. Every data collective is preceded by a control exchange
// (epoch + amLogging conjunction); while logging, results are additionally
// copied into the event log. This bench separates those costs and also
// measures the log/replay path by checkpointing right before a burst of
// collectives.
//
// It additionally measures the bandwidth-optimal collective algorithms
// against the naive baselines (cutovers forced to SIZE_MAX) and the
// segmented large-message path's steady-state allocation behaviour, and
// emits everything machine-readably to BENCH_collectives.json for
// scripts/check_bench.py:
//   size_sweep     allreduce 4 KiB..16 MiB at 16 ranks, naive vs ring
//   rank_sweep     allreduce 1 MiB at 8..64 ranks, naive vs ring
//   small_message  4 KiB allreduce ratio (the tuned config must not tax
//                  latency-bound sizes below the cutover)
//   segmented      4 MiB round-trips: fresh allocations after warm-up and
//                  oversize (non-pooled) allocations must both be zero
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>

#include "bench/bench_common.hpp"
#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"
#include "util/buffer_pool.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

void allreduce_burst(Process& p, std::size_t elems, int rounds,
                     bool checkpoint_first) {
  int iter = 0;
  p.register_value("iter", iter);
  p.complete_registration();
  if (checkpoint_first) p.potential_checkpoint();
  std::vector<double> in(elems, 1.0), out(elems);
  for (int i = 0; i < rounds; ++i) {
    p.allreduce({reinterpret_cast<const std::byte*>(in.data()),
                 in.size() * sizeof(double)},
                {reinterpret_cast<std::byte*>(out.data()),
                 out.size() * sizeof(double)},
                simmpi::Datatype::kDouble, simmpi::Op::kSum);
  }
}

void table() {
  std::printf(
      "\n=== Collective handling cost (Figure 5 / Section 4.5) ===\n"
      "(raw = plain allreduce; protocol = + control exchange; logging = + "
      "result copies into the event log while amLogging)\n");
  std::printf("%-12s %-8s %10s %12s %12s\n", "elems", "rounds", "raw",
              "protocol", "logging");
  for (std::size_t elems : {1u, 64u, 4096u}) {
    constexpr int kRounds = 150;
    double raw_secs, proto_secs, logging_secs;
    {
      JobConfig cfg;
      cfg.ranks = 4;
      cfg.level = InstrumentLevel::kRaw;
      raw_secs = time_job(cfg, [&](Process& p) {
        allreduce_burst(p, elems, kRounds, false);
      });
    }
    {
      JobConfig cfg;
      cfg.ranks = 4;
      cfg.level = InstrumentLevel::kPiggybackOnly;
      proto_secs = time_job(cfg, [&](Process& p) {
        allreduce_burst(p, elems, kRounds, false);
      });
    }
    {
      // Checkpoint immediately, then run the burst while every rank logs.
      JobConfig cfg;
      cfg.ranks = 4;
      cfg.level = InstrumentLevel::kFull;
      cfg.policy = core::CheckpointPolicy::every(1);
      cfg.policy.max_checkpoints = 1;
      logging_secs = time_job(cfg, [&](Process& p) {
        allreduce_burst(p, elems, kRounds, true);
      });
    }
    std::printf("%-12zu %-8d %9.3fs %11.3fs %11.3fs\n", elems, kRounds,
                raw_secs, proto_secs, logging_secs);
  }
}

// ------------------------------------------- tuned vs naive algorithms

/// Wall-clock `inner` allreduces of `bytes` at `ranks`, excluding thread
/// spawn (timed between barriers inside the job). With `naive` the
/// cutovers are pushed to SIZE_MAX so every size takes reduce+bcast.
double time_allreduce(int ranks, std::size_t bytes, bool naive, int inner) {
  simmpi::Runtime rt(ranks);
  if (naive) {
    rt.coll_tuning().ring_allreduce_min_bytes = SIZE_MAX;
    rt.coll_tuning().pipeline_min_bytes = SIZE_MAX;
  }
  const std::size_t elems = bytes / sizeof(std::int64_t);
  double secs = 0.0;
  rt.run([&](simmpi::Api& api) {
    std::vector<std::int64_t> in(elems), out(elems);
    for (std::size_t i = 0; i < elems; ++i) {
      in[i] = api.world_rank() + static_cast<std::int64_t>(i % 17);
    }
    const std::span<const std::byte> in_b{
        reinterpret_cast<const std::byte*>(in.data()), bytes};
    const std::span<std::byte> out_b{reinterpret_cast<std::byte*>(out.data()),
                                     bytes};
    api.allreduce(api.world(), in_b, out_b, simmpi::Datatype::kInt64,
                  simmpi::Op::kSum);  // warm the pool and the match path
    api.barrier(api.world());
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < inner; ++i) {
      api.allreduce(api.world(), in_b, out_b, simmpi::Datatype::kInt64,
                    simmpi::Op::kSum);
    }
    api.barrier(api.world());
    if (api.world_rank() == 0) {
      secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
    }
  });
  return secs / inner;
}

struct AlgoPoint {
  int ranks = 0;
  std::size_t bytes = 0;
  double naive_s = 0.0;
  double tuned_s = 0.0;
  double speedup() const { return tuned_s > 0 ? naive_s / tuned_s : 0.0; }
};

/// Paired interleaved reps: naive and tuned alternate within each rep so
/// machine noise hits both lanes equally; each lane keeps its best rep.
AlgoPoint measure_point(int ranks, std::size_t bytes, int reps, int inner) {
  AlgoPoint pt;
  pt.ranks = ranks;
  pt.bytes = bytes;
  pt.naive_s = pt.tuned_s = 1e100;
  for (int r = 0; r < reps; ++r) {
    pt.naive_s = std::min(pt.naive_s, time_allreduce(ranks, bytes, true, inner));
    pt.tuned_s = std::min(pt.tuned_s, time_allreduce(ranks, bytes, false, inner));
  }
  return pt;
}

void print_algo_row(const AlgoPoint& pt) {
  std::printf("%-8d %-10s %12.6fs %12.6fs %9.2fx\n", pt.ranks,
              human_bytes(pt.bytes).c_str(), pt.naive_s, pt.tuned_s,
              pt.speedup());
}

struct SegmentedResult {
  std::size_t bytes = 0;
  int rounds = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t oversize_allocs = 0;
};

/// Ping-pong a 4 MiB payload: after warm-up every fragment must come off
/// the pool free lists (zero fresh allocations) and nothing may take the
/// oversize exact-size heap path.
SegmentedResult measure_segmented() {
  SegmentedResult res;
  res.bytes = 4 * util::BufferPool::kMaxClassBytes + 1234;
  res.rounds = 8;
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Api& api) {
    std::vector<std::byte> buf(res.bytes, std::byte{0x5a});
    auto& fabric = api.runtime().fabric();
    auto round_trip = [&](int rounds, simmpi::Tag base) {
      for (int i = 0; i < rounds; ++i) {
        if (api.world_rank() == 0) {
          api.send(api.world(), buf, 1, base + i);
          std::byte ack{};
          api.recv(api.world(), {&ack, 1}, 1, base + i);
        } else {
          api.recv(api.world(), buf, 0, base + i);
          std::byte ack{1};
          api.send(api.world(), {&ack, 1}, 0, base + i);
        }
      }
    };
    round_trip(3, 0);
    api.barrier(api.world());
    const std::uint64_t before = fabric.stats().allocs.load();
    round_trip(res.rounds, 100);
    api.barrier(api.world());
    if (api.world_rank() == 0) {
      res.steady_allocs = fabric.stats().allocs.load() - before;
      res.oversize_allocs = fabric.stats().oversize_allocs.load();
    }
  });
  return res;
}

void write_collectives_json(const std::vector<AlgoPoint>& sizes,
                            const std::vector<AlgoPoint>& ranks,
                            const AlgoPoint& small,
                            const SegmentedResult& seg) {
  std::FILE* f = std::fopen("BENCH_collectives.json", "w");
  if (!f) return;
  auto emit = [&](const AlgoPoint& pt, const char* tail) {
    std::fprintf(f,
                 "    {\"ranks\": %d, \"bytes\": %zu, \"naive_s\": %.6f, "
                 "\"tuned_s\": %.6f, \"speedup\": %.3f}%s\n",
                 pt.ranks, pt.bytes, pt.naive_s, pt.tuned_s, pt.speedup(),
                 tail);
  };
  std::fprintf(f, "{\n  \"bench\": \"collectives\",\n  \"size_sweep\": [\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    emit(sizes[i], i + 1 < sizes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"rank_sweep\": [\n");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    emit(ranks[i], i + 1 < ranks.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"small_message\": {\"ranks\": %d, \"bytes\": %zu, "
               "\"naive_s\": %.6f, \"tuned_s\": %.6f, \"ratio\": %.3f},\n",
               small.ranks, small.bytes, small.naive_s, small.tuned_s,
               small.naive_s > 0 ? small.tuned_s / small.naive_s : 0.0);
  std::fprintf(f,
               "  \"segmented\": {\"bytes\": %zu, \"rounds\": %d, "
               "\"steady_allocs\": %llu, \"oversize_allocs\": %llu}\n}\n",
               seg.bytes, seg.rounds,
               static_cast<unsigned long long>(seg.steady_allocs),
               static_cast<unsigned long long>(seg.oversize_allocs));
  std::fclose(f);
}

void algo_lanes() {
  constexpr std::size_t kMiB = 1024 * 1024;
  std::printf(
      "\n=== Tuned vs naive collectives (ring + pipelined cutovers) ===\n"
      "(naive = cutovers at SIZE_MAX, i.e. binomial reduce+bcast; best of "
      "paired interleaved reps)\n");
  std::printf("%-8s %-10s %13s %13s %10s\n", "ranks", "bytes", "naive",
              "tuned", "speedup");
  std::vector<AlgoPoint> size_sweep;
  for (std::size_t bytes :
       {std::size_t{4} * 1024, std::size_t{64} * 1024, kMiB, 16 * kMiB}) {
    const int inner = bytes >= kMiB ? 3 : 10;
    size_sweep.push_back(measure_point(16, bytes, 3, inner));
    print_algo_row(size_sweep.back());
  }
  std::vector<AlgoPoint> rank_sweep;
  for (int ranks : {8, 16, 32, 64}) {
    rank_sweep.push_back(measure_point(ranks, kMiB, 3, 3));
    print_algo_row(rank_sweep.back());
  }
  // Below every cutover tuned and naive run the same binomial code; the
  // ratio pins the tuned configuration's small-message latency tax at ~1.
  const AlgoPoint small = measure_point(16, 4 * 1024, 5, 20);
  std::printf("small-message ratio (tuned/naive at 4KiB): %.3f\n",
              small.naive_s > 0 ? small.tuned_s / small.naive_s : 0.0);
  const SegmentedResult seg = measure_segmented();
  std::printf(
      "segmented steady state: %llu fresh allocs, %llu oversize allocs "
      "(%d rounds of %s)\n",
      static_cast<unsigned long long>(seg.steady_allocs),
      static_cast<unsigned long long>(seg.oversize_allocs), seg.rounds,
      human_bytes(seg.bytes).c_str());
  write_collectives_json(size_sweep, rank_sweep, small, seg);
}

void BM_AllreduceLevel(benchmark::State& state) {
  const auto elems = static_cast<std::size_t>(state.range(0));
  const auto level = static_cast<InstrumentLevel>(state.range(1));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.level = level;
    Job job(cfg);
    job.run([&](Process& p) { allreduce_burst(p, elems, 50, false); });
  }
  state.SetLabel(level_name(level));
}

BENCHMARK(BM_AllreduceLevel)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  table();
  algo_lanes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
