// Figure 5 / Section 4.5 ablation: the cost of the protocol's collective
// handling. Every data collective is preceded by a control exchange
// (epoch + amLogging conjunction); while logging, results are additionally
// copied into the event log. This bench separates those costs and also
// measures the log/replay path by checkpointing right before a burst of
// collectives.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

void allreduce_burst(Process& p, std::size_t elems, int rounds,
                     bool checkpoint_first) {
  int iter = 0;
  p.register_value("iter", iter);
  p.complete_registration();
  if (checkpoint_first) p.potential_checkpoint();
  std::vector<double> in(elems, 1.0), out(elems);
  for (int i = 0; i < rounds; ++i) {
    p.allreduce({reinterpret_cast<const std::byte*>(in.data()),
                 in.size() * sizeof(double)},
                {reinterpret_cast<std::byte*>(out.data()),
                 out.size() * sizeof(double)},
                simmpi::Datatype::kDouble, simmpi::Op::kSum);
  }
}

void table() {
  std::printf(
      "\n=== Collective handling cost (Figure 5 / Section 4.5) ===\n"
      "(raw = plain allreduce; protocol = + control exchange; logging = + "
      "result copies into the event log while amLogging)\n");
  std::printf("%-12s %-8s %10s %12s %12s\n", "elems", "rounds", "raw",
              "protocol", "logging");
  for (std::size_t elems : {1u, 64u, 4096u}) {
    constexpr int kRounds = 150;
    double raw_secs, proto_secs, logging_secs;
    {
      JobConfig cfg;
      cfg.ranks = 4;
      cfg.level = InstrumentLevel::kRaw;
      raw_secs = time_job(cfg, [&](Process& p) {
        allreduce_burst(p, elems, kRounds, false);
      });
    }
    {
      JobConfig cfg;
      cfg.ranks = 4;
      cfg.level = InstrumentLevel::kPiggybackOnly;
      proto_secs = time_job(cfg, [&](Process& p) {
        allreduce_burst(p, elems, kRounds, false);
      });
    }
    {
      // Checkpoint immediately, then run the burst while every rank logs.
      JobConfig cfg;
      cfg.ranks = 4;
      cfg.level = InstrumentLevel::kFull;
      cfg.policy = core::CheckpointPolicy::every(1);
      cfg.policy.max_checkpoints = 1;
      logging_secs = time_job(cfg, [&](Process& p) {
        allreduce_burst(p, elems, kRounds, true);
      });
    }
    std::printf("%-12zu %-8d %9.3fs %11.3fs %11.3fs\n", elems, kRounds,
                raw_secs, proto_secs, logging_secs);
  }
}

void BM_AllreduceLevel(benchmark::State& state) {
  const auto elems = static_cast<std::size_t>(state.range(0));
  const auto level = static_cast<InstrumentLevel>(state.range(1));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.level = level;
    Job job(cfg);
    job.run([&](Process& p) { allreduce_burst(p, elems, 50, false); });
  }
  state.SetLabel(level_name(level));
}

BENCHMARK(BM_AllreduceLevel)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
