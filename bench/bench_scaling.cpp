// Protocol scaling with rank count. The coordination cost (pleaseCheckpoint
// fan-out, mySendCount all-to-all, ready/stop/stopped collection) grows
// with the number of processes; this ablation measures full-protocol
// overhead over the raw runtime for 2..16 ranks on fixed-size ring and
// allgather microkernels.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace {

using namespace c3;
using namespace c3::bench;

constexpr int kIters = 40;

void ring_kernel(Process& p, bool checkpoints) {
  long long acc = p.rank();
  int iter = 0;
  p.register_value("acc", acc);
  p.register_value("iter", iter);
  p.complete_registration();
  const int right = (p.rank() + 1) % p.nranks();
  const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
  std::vector<double> payload(256, 1.0);
  while (iter < kIters) {
    p.send({reinterpret_cast<const std::byte*>(payload.data()),
            payload.size() * sizeof(double)},
           right, 0);
    p.recv({reinterpret_cast<std::byte*>(payload.data()),
            payload.size() * sizeof(double)},
           left, 0);
    ++iter;
    if (checkpoints) p.potential_checkpoint();
  }
}

void allgather_kernel(Process& p, bool checkpoints) {
  int iter = 0;
  p.register_value("iter", iter);
  p.complete_registration();
  std::vector<double> mine(64, static_cast<double>(p.rank()));
  std::vector<double> all(mine.size() * static_cast<std::size_t>(p.nranks()));
  while (iter < kIters) {
    p.allgather({reinterpret_cast<const std::byte*>(mine.data()),
                 mine.size() * sizeof(double)},
                {reinterpret_cast<std::byte*>(all.data()),
                 all.size() * sizeof(double)});
    ++iter;
    if (checkpoints) p.potential_checkpoint();
  }
}

void table() {
  std::printf(
      "\n=== Protocol overhead vs rank count ===\n"
      "(coordination traffic grows with processes: pleaseCheckpoint fan-out "
      "+ per-peer mySendCount + ready/stop/stopped collection)\n");
  std::printf("%-8s %14s %14s %16s %16s\n", "ranks", "ring raw", "ring full",
              "allgather raw", "allgather full");
  for (int ranks : {2, 4, 8, 16}) {
    double secs[4];
    for (int k = 0; k < 4; ++k) {
      const bool full = (k % 2) == 1;
      JobConfig cfg;
      cfg.ranks = ranks;
      cfg.level = full ? InstrumentLevel::kFull : InstrumentLevel::kRaw;
      cfg.policy = core::CheckpointPolicy::every(10);
      secs[k] = time_job(cfg, [&](Process& p) {
        if (k < 2) {
          ring_kernel(p, full);
        } else {
          allgather_kernel(p, full);
        }
      });
    }
    std::printf("%-8d %13.3fs %13.3fs %15.3fs %15.3fs\n", ranks, secs[0],
                secs[1], secs[2], secs[3]);
  }
}

void BM_RingScaling(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const bool full = state.range(1) != 0;
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = ranks;
    cfg.level = full ? InstrumentLevel::kFull : InstrumentLevel::kRaw;
    cfg.policy = core::CheckpointPolicy::every(10);
    Job job(cfg);
    job.run([&](Process& p) { ring_kernel(p, full); });
  }
  state.SetLabel(full ? "full" : "raw");
}

BENCHMARK(BM_RingScaling)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
