// Protocol scaling with rank count.
//
// Two measurements, both emitted machine-readably to BENCH_scaling.json
// (like the other benches) besides the google-benchmark console output:
//
//  1. Control-plane phase sweep: per-phase control-message counts at the
//     initiator for 2..256 ranks, plus fabric contention counters
//     (wakeups per packet, contended inbox shard-lock acquisitions) so
//     the flat-to-256 claim is a recorded number. With the binomial-tree
//     control plane the
//     initiator sends/receives <= ceil(log2 P) messages per coordination
//     phase (vs P-1 with the old flat fan-out), and the steady-state kFull
//     commit path performs zero storage reads for the detached-rank
//     decision (the phase-4 aggregate carries the bit).
//
//  2. Full-protocol overhead over the raw runtime on fixed-size ring and
//     allgather microkernels (the original ablation).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/coordinator/control_plane.hpp"

namespace {

using namespace c3;
using namespace c3::bench;
using core::coordinator::ControlPlaneStats;

constexpr int kIters = 40;

void ring_kernel(Process& p, bool checkpoints) {
  long long acc = p.rank();
  int iter = 0;
  p.register_value("acc", acc);
  p.register_value("iter", iter);
  p.complete_registration();
  const int right = (p.rank() + 1) % p.nranks();
  const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
  std::vector<double> payload(256, 1.0);
  while (iter < kIters) {
    p.send({reinterpret_cast<const std::byte*>(payload.data()),
            payload.size() * sizeof(double)},
           right, 0);
    p.recv({reinterpret_cast<std::byte*>(payload.data()),
            payload.size() * sizeof(double)},
           left, 0);
    ++iter;
    if (checkpoints) p.potential_checkpoint();
  }
}

void allgather_kernel(Process& p, bool checkpoints) {
  int iter = 0;
  p.register_value("iter", iter);
  p.complete_registration();
  std::vector<double> mine(64, static_cast<double>(p.rank()));
  std::vector<double> all(mine.size() * static_cast<std::size_t>(p.nranks()));
  while (iter < kIters) {
    p.allgather({reinterpret_cast<const std::byte*>(mine.data()),
                 mine.size() * sizeof(double)},
                {reinterpret_cast<std::byte*>(all.data()),
                 all.size() * sizeof(double)});
    ++iter;
    if (checkpoints) p.potential_checkpoint();
  }
}

// ------------------------------------------- control-plane phase sweep

int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

/// Initiator-side observation of a run of coordination rounds.
struct SweepResult {
  int ranks = 0;
  int rounds = 0;
  ControlPlaneStats initiator;               ///< per-phase traffic
  std::uint64_t detached_probe_gets = 0;     ///< must stay 0 at commit
  std::uint64_t max_rank_please_sends = 0;   ///< relay bound across ranks
  double seconds_per_round = 0;
  // Fabric contention lanes (job-wide totals): the flatness claim is a
  // recorded number, not an assertion. wakeups/packet stays bounded as P
  // grows (batched fan-outs, notify_one, parked-receiver-only notifies);
  // lock_waits counts contended inbox shard-lock acquisitions.
  std::uint64_t fabric_packets = 0;
  std::uint64_t fabric_wakeups = 0;
  std::uint64_t fabric_lock_waits = 0;
  std::uint64_t fabric_batches = 0;
};

/// Drive `rounds` complete checkpoint rounds with no application traffic:
/// pure coordination, so the counters isolate the control plane.
SweepResult run_phase_sweep(int ranks, int rounds) {
  SweepResult res;
  res.ranks = ranks;
  res.rounds = rounds;
  std::mutex mu;  // Job::run is synchronous; rank threads only outrun it
  JobConfig cfg;
  cfg.ranks = ranks;
  cfg.level = InstrumentLevel::kFull;
  cfg.policy = core::CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = static_cast<std::uint64_t>(rounds);
  Job job(cfg);
  job.run([&](Process& p) {
    int iter = 0;
    p.register_value("iter", iter);
    p.complete_registration();
    const auto t0 = std::chrono::steady_clock::now();
    // Spin the protocol until every round has committed locally; the
    // initiator starts one round per potential_checkpoint once the
    // previous one completed.
    while (p.epoch() < rounds || p.checkpoint_in_progress()) {
      p.potential_checkpoint();
      // Polite polling: without a short sleep, P spinning rank threads
      // time-slice against each other and the measured round latency is
      // scheduler thrash, not protocol depth.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const auto t1 = std::chrono::steady_clock::now();
    std::lock_guard lock(mu);
    const auto& cs = p.coordinator_stats();
    res.max_rank_please_sends =
        std::max(res.max_rank_please_sends, cs.please_sends);
    if (p.control_plane().is_initiator()) {
      res.initiator = cs;
      res.detached_probe_gets = p.stats().detached_probe_gets;
      res.seconds_per_round =
          std::chrono::duration<double>(t1 - t0).count() / rounds;
      const auto& fs = p.api().runtime().fabric().stats();
      res.fabric_packets = fs.packets.load();
      res.fabric_wakeups = fs.wakeups.load();
      res.fabric_lock_waits = fs.lock_waits.load();
      res.fabric_batches = fs.batches.load();
    }
  });
  return res;
}

// ------------------------------------------------------ console + JSON

struct RingRow {
  int ranks = 0;
  double secs[4] = {0, 0, 0, 0};  ///< ring raw/full, allgather raw/full
};

std::vector<RingRow> table() {
  std::printf(
      "\n=== Protocol overhead vs rank count ===\n"
      "(tree control plane: pleaseCheckpoint/stopLogging fan-out and "
      "ready/stopped fan-in cost the initiator O(log P) per phase)\n");
  std::printf("%-8s %14s %14s %16s %16s\n", "ranks", "ring raw", "ring full",
              "allgather raw", "allgather full");
  std::vector<RingRow> rows;
  for (int ranks : {2, 4, 8, 16}) {
    RingRow row;
    row.ranks = ranks;
    for (int k = 0; k < 4; ++k) {
      const bool full = (k % 2) == 1;
      JobConfig cfg;
      cfg.ranks = ranks;
      cfg.level = full ? InstrumentLevel::kFull : InstrumentLevel::kRaw;
      cfg.policy = core::CheckpointPolicy::every(10);
      row.secs[k] = time_job(cfg, [&](Process& p) {
        if (k < 2) {
          ring_kernel(p, full);
        } else {
          allgather_kernel(p, full);
        }
      });
    }
    std::printf("%-8d %13.3fs %13.3fs %15.3fs %15.3fs\n", ranks, row.secs[0],
                row.secs[1], row.secs[2], row.secs[3]);
    rows.push_back(row);
  }
  return rows;
}

std::vector<SweepResult> phase_sweep() {
  std::printf(
      "\n=== Control-plane phase sweep ===\n"
      "(initiator control messages per phase; flat fan-out would be P-1)\n");
  std::printf("%-8s %10s %12s %11s %12s %14s %16s %10s %10s\n", "ranks",
              "log2-bound", "please-send", "ready-recv", "stop-send",
              "stopped-recv", "detached-reads", "wakeup/pkt", "lock-wait");
  std::vector<SweepResult> results;
  constexpr int kRounds = 3;
  // The 64-256 points are the tentpole: the sharded inbox, batched relay
  // and notify_one keep the initiator per-phase cost at ceil(log2 P) and
  // the per-packet wakeup cost flat where the single-mutex inbox convoyed.
  for (int ranks : {2, 4, 8, 16, 64, 128, 256}) {
    SweepResult r = run_phase_sweep(ranks, kRounds);
    std::printf("%-8d %10d %12.1f %11.1f %12.1f %14.1f %16llu %10.3f %10llu\n",
                ranks, ceil_log2(ranks),
                static_cast<double>(r.initiator.please_sends) / kRounds,
                static_cast<double>(r.initiator.ready_recvs) / kRounds,
                static_cast<double>(r.initiator.stop_sends) / kRounds,
                static_cast<double>(r.initiator.stopped_recvs) / kRounds,
                static_cast<unsigned long long>(r.detached_probe_gets),
                r.fabric_packets == 0
                    ? 0.0
                    : static_cast<double>(r.fabric_wakeups) /
                          static_cast<double>(r.fabric_packets),
                static_cast<unsigned long long>(r.fabric_lock_waits));
    results.push_back(r);
  }
  return results;
}

void write_scaling_json(const std::vector<SweepResult>& sweep,
                        const std::vector<RingRow>& rings) {
  std::FILE* f = std::fopen("BENCH_scaling.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"control_plane_scaling\",\n");
  std::fprintf(f, "  \"rank_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepResult& r = sweep[i];
    const auto per_round = [&](std::uint64_t n) {
      return static_cast<double>(n) / r.rounds;
    };
    std::fprintf(
        f,
        "    {\"ranks\": %d, \"rounds\": %d, \"ceil_log2\": %d, "
        "\"flat_sends_per_phase\": %d,\n"
        "     \"initiator_sends_per_phase\": {\"please\": %.1f, "
        "\"stop\": %.1f},\n"
        "     \"initiator_recvs_per_phase\": {\"ready\": %.1f, "
        "\"stopped\": %.1f},\n"
        "     \"max_rank_relay_sends_per_phase\": %.1f,\n"
        "     \"detached_probe_storage_reads\": %llu,\n"
        "     \"fabric\": {\"packets\": %llu, \"wakeups\": %llu, "
        "\"wakeups_per_packet\": %.4f, \"shard_lock_waits\": %llu, "
        "\"batches\": %llu},\n"
        "     \"seconds_per_round\": %.6f}%s\n",
        r.ranks, r.rounds, ceil_log2(r.ranks), r.ranks - 1,
        per_round(r.initiator.please_sends), per_round(r.initiator.stop_sends),
        per_round(r.initiator.ready_recvs),
        per_round(r.initiator.stopped_recvs),
        per_round(r.max_rank_please_sends),
        static_cast<unsigned long long>(r.detached_probe_gets),
        static_cast<unsigned long long>(r.fabric_packets),
        static_cast<unsigned long long>(r.fabric_wakeups),
        r.fabric_packets == 0 ? 0.0
                              : static_cast<double>(r.fabric_wakeups) /
                                    static_cast<double>(r.fabric_packets),
        static_cast<unsigned long long>(r.fabric_lock_waits),
        static_cast<unsigned long long>(r.fabric_batches),
        r.seconds_per_round, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ring\": [\n");
  for (std::size_t i = 0; i < rings.size(); ++i) {
    const RingRow& row = rings[i];
    std::fprintf(f,
                 "    {\"ranks\": %d, \"ring_raw_s\": %.4f, "
                 "\"ring_full_s\": %.4f, \"allgather_raw_s\": %.4f, "
                 "\"allgather_full_s\": %.4f}%s\n",
                 row.ranks, row.secs[0], row.secs[1], row.secs[2],
                 row.secs[3], i + 1 < rings.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void BM_RingScaling(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const bool full = state.range(1) != 0;
  for (auto _ : state) {
    JobConfig cfg;
    cfg.ranks = ranks;
    cfg.level = full ? InstrumentLevel::kFull : InstrumentLevel::kRaw;
    cfg.policy = core::CheckpointPolicy::every(10);
    Job job(cfg);
    job.run([&](Process& p) { ring_kernel(p, full); });
  }
  state.SetLabel(full ? "full" : "raw");
}

BENCHMARK(BM_RingScaling)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto sweep = phase_sweep();
  const auto rings = table();
  write_scaling_json(sweep, rings);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
