// The CCIFT precompiler in action: instruments an embedded C/MPI-style
// program and prints the transformed source, showing the Position Stack
// labels, restart dispatch, VDS pushes/pops, statement decomposition, and
// the generated global-registration function (paper Section 5.1, Figure 6).
#include <cstdio>

#include "ccift/transform.hpp"

int main() {
  const char* source = R"(#include "mpi.h"
int iteration;
double residual;

int compute_step(int n) {
  int local = n * 2;
  potentialCheckpoint();
  return local + 1;
}

void solver(int steps) {
  int i;
  for (i = 0; i < steps; i++) {
    int r = compute_step(i) + compute_step(i + 1);
    residual = residual + r;
  }
}

int main(int argc, char **argv) {
  solver(100);
  return 0;
}
)";

  std::printf("=== original source ===\n%s\n", source);
  try {
    const std::string out = c3::ccift::transform_source(source);
    std::printf("=== instrumented source ===\n%s", out.c_str());
  } catch (const std::exception& e) {
    std::printf("transformation failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
