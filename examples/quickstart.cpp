// Quickstart: fault-tolerant "hello world" through the MPI facade.
//
// Four ranks accumulate values around a ring using ordinary typed MPI
// calls (c3mpi/mpi.h) -- the C3 protocol layer interposes behind the MPI
// interface, exactly the paper's transparency story. A stopping failure is
// injected at rank 2 mid-run; the job rolls back to the last committed
// global checkpoint and finishes with exactly the result a failure-free
// run produces.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <mutex>
#include <vector>

#include "c3mpi/binding.hpp"
#include "c3mpi/mpi.h"
#include "core/job.hpp"

using namespace c3;

namespace {

struct Results {
  std::mutex mu;
  std::vector<long long> acc;
  std::vector<core::ProcessStats> stats;
};

void ring_main(core::Process& p, Results& results) {
  // Bind this rank's thread to the facade: from here on the code talks
  // plain MPI. (A verbatim C program gets the binding from run_mpi_job;
  // see examples/heat_mpi.c.)
  c3mpi::MpiBinding mpi(p);

  long long acc = p.rank() + 1;
  int iter = 0;

  // Register everything a checkpoint must capture, then finish
  // registration (on a recovery run this restores the state).
  p.register_value("acc", acc);
  p.register_value("iter", iter);
  p.complete_registration();

  if (p.restored()) {
    std::printf("  [rank %d] resumed from checkpoint: iter=%d acc=%lld\n",
                p.rank(), iter, acc);
  }

  int rank = 0, size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  while (iter < 12) {
    MPI_Send(&acc, 1, MPI_LONG_LONG, right, /*tag=*/0, MPI_COMM_WORLD);
    long long got = 0;
    MPI_Recv(&got, 1, MPI_LONG_LONG, left, /*tag=*/0, MPI_COMM_WORLD,
             MPI_STATUS_IGNORE);
    acc = acc * 3 + got;
    ++iter;
    // The paper's potentialCheckpoint(): a checkpoint is taken here when
    // the initiator has asked for one.
    potentialCheckpoint();
  }

  std::lock_guard lock(results.mu);
  results.acc[static_cast<std::size_t>(rank)] = acc;
  results.stats[static_cast<std::size_t>(rank)] = p.stats();
}

long long run(bool with_failure, Results& results) {
  core::JobConfig cfg;
  cfg.ranks = 4;
  cfg.policy = core::CheckpointPolicy::every(3);  // every 3rd call
  if (with_failure) {
    cfg.failure = net::FailureSpec{.victim_rank = 2, .trigger_events = 25};
  }
  results.acc.assign(4, 0);
  results.stats.assign(4, {});

  core::Job job(cfg);
  auto report = job.run([&](core::Process& p) { ring_main(p, results); });

  if (with_failure) {
    std::printf(
        "  job survived %d stopping failure(s); %d execution(s); last "
        "committed checkpoint: epoch %d\n",
        report.failures, report.executions,
        report.last_committed_epoch.value_or(-1));
  }
  return results.acc[0];
}

}  // namespace

int main() {
  std::printf("C3 quickstart: 4-rank ring over the c3mpi facade\n");

  std::printf("\n-- failure-free run --\n");
  Results clean;
  const long long expected = run(/*with_failure=*/false, clean);
  std::printf("  rank 0 result: %lld\n", expected);

  std::printf("\n-- run with an injected stopping failure at rank 2 --\n");
  Results recovered;
  const long long actual = run(/*with_failure=*/true, recovered);
  std::printf("  rank 0 result: %lld\n", actual);

  std::uint64_t replayed = 0, suppressed = 0;
  for (const auto& s : recovered.stats) {
    replayed += s.replayed_recvs + s.replayed_collectives +
                s.replayed_nondet_events;
    suppressed += s.suppressed_sends;
  }
  std::printf(
      "  recovery replayed %llu logged events and suppressed %llu resends\n",
      static_cast<unsigned long long>(replayed),
      static_cast<unsigned long long>(suppressed));

  if (actual == expected) {
    std::printf("\nOK: recovered result identical to the failure-free run\n");
    return 0;
  }
  std::printf("\nFAIL: results diverged (%lld vs %lld)\n", actual, expected);
  return 1;
}
