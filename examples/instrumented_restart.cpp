// Position-stack restart, end to end: this example is written the way the
// CCIFT precompiler emits code (Figure 6) -- explicit ccift_ps_push/pop,
// labels, a restart dispatch, VDS registration, and heap objects in the
// checkpointable arena -- and demonstrates a full save/restore cycle where
// execution resumes *inside* a nested call chain, with a heap pointer
// surviving at the same virtual address (Section 5.1.4).
#include <cstdio>
#include <cstring>

#include "ccift/runtime_abi.hpp"
#include "statesave/checkpoint.hpp"

using c3::ccift::RuntimeBinding;
using c3::statesave::CheckpointBuilder;
using c3::statesave::CheckpointView;
using c3::statesave::SaveContext;

namespace {

c3::util::Bytes g_checkpoint;  // stands in for stable storage
bool g_simulate_crash = false;

struct CrashAfterCheckpoint {};

// "potentialCheckpoint()" as the emitted code sees it: capture everything.
void potential_checkpoint(SaveContext& ctx) {
  CheckpointBuilder builder;
  ctx.capture(builder);
  g_checkpoint = builder.finish();
  std::printf("  checkpoint taken: %zu bytes (PS depth %zu, VDS depth %zu, "
              "heap objects %zu)\n",
              g_checkpoint.size(), ctx.ps().depth(), ctx.vds().depth(),
              ctx.heap().live_objects());
  if (g_simulate_crash) throw CrashAfterCheckpoint{};
}

// A nested function, instrumented the way ccift emits it.
int inner(SaveContext& ctx, int* data) {
  if (ccift_restoring()) {
    switch (ccift_ps_next()) {
      case 1: goto label_1;
      default: ccift_restore_error();
    }
  }
  {
    // Work before the checkpoint mutates the heap object.
    data[0] += 100;
    ccift_ps_push(1);
    potential_checkpoint(ctx);
  }
label_1:
  // Resume point: if we arrived here via the restart dispatch, the
  // activation stack has been rebuilt and the saved VDS values can be
  // copied back now (the paper restores the VDS wholesale at this point).
  if (ctx.restore_pending()) ctx.finish_restore();
  ccift_ps_pop();
  // Work after the checkpoint: re-executed on restart.
  return data[0] + 1;
}

int outer(SaveContext& ctx) {
  int result = 0;
  ccift_vds_push(&result, sizeof(result));
  if (ccift_restoring()) {
    switch (ccift_ps_next()) {
      case 1: goto label_1;
      default: ccift_restore_error();
    }
  }
  {
    int* data = ctx.heap().alloc_array<int>(4);
    data[0] = 7;
    // The pointer itself lives in a heap node so it survives as raw bytes.
    int** cell = static_cast<int**>(ctx.heap().alloc(sizeof(int*)));
    *cell = data;
    ccift_ps_push(1);
  }
label_1:;
  {
    // On restart this frame was re-entered and jumps here; the heap was
    // restored first, so we can find our objects again at old addresses.
    int* data = static_cast<int*>(ctx.heap().base());  // first allocation
    result = inner(ctx, data);
  }
  ccift_ps_pop();
  ccift_vds_pop(1);
  return result;
}

}  // namespace

int main() {
  std::printf("Instrumented-restart example (emitted-code idiom)\n");

  SaveContext ctx(/*heap_capacity=*/4096);

  std::printf("\n-- original run (crashes right after its checkpoint) --\n");
  int original = -1;
  try {
    RuntimeBinding binding(ctx);
    g_simulate_crash = true;
    original = outer(ctx);
  } catch (const CrashAfterCheckpoint&) {
    std::printf("  simulated crash after checkpoint\n");
  }
  (void)original;

  std::printf("\n-- restart from the checkpoint --\n");
  int recovered;
  {
    // The same SaveContext (and hence the same heap arena base address) is
    // re-attached, as a restarted process would MAP_FIXED its saved arena.
    RuntimeBinding binding(ctx);
    g_simulate_crash = false;
    CheckpointView view(g_checkpoint);
    ctx.begin_restore(view);
    recovered = outer(ctx);  // dispatch jumps straight into inner()
  }
  std::printf("  resumed inside inner(); result = %d\n", recovered);

  // data[0] was 7+100=107 at checkpoint time; post-checkpoint code returns
  // data[0]+1 = 108 both in the original and in the recovered timeline.
  if (recovered == 108) {
    std::printf("\nOK: execution resumed mid-call-chain with state intact\n");
    return 0;
  }
  std::printf("\nFAIL: expected 108, got %d\n", recovered);
  return 1;
}
