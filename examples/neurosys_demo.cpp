// Neurosys: a collective-heavy workload (5 allgathers + 1 gather per time
// step) surviving a failure injected while some ranks had already executed
// a collective the victim had not -- exactly the straddle scenario of the
// paper's Figure 5. Logged collective results replay during recovery.
#include <cstdio>
#include <mutex>

#include "apps/neurosys.hpp"
#include "core/job.hpp"

using namespace c3;

namespace {

apps::NeurosysResult run(bool with_failure, std::uint64_t* replayed) {
  core::JobConfig cfg;
  cfg.ranks = 4;
  cfg.policy = core::CheckpointPolicy::every(4);
  if (with_failure) {
    cfg.failure = net::FailureSpec{.victim_rank = 2, .trigger_events = 55};
  }
  std::mutex mu;
  apps::NeurosysResult root;
  std::uint64_t replay_count = 0;
  core::Job job(cfg);
  job.run([&](core::Process& p) {
    apps::NeurosysConfig app;
    app.neurons = 96;
    app.iterations = 24;
    auto r = apps::run_neurosys(p, app);
    std::lock_guard lock(mu);
    if (p.rank() == 0) root = r;
    replay_count += p.stats().replayed_collectives;
  });
  if (replayed) *replayed = replay_count;
  return root;
}

}  // namespace

int main() {
  std::printf("Neurosys (96 neurons, RK4, 24 steps, 4 ranks)\n");
  std::printf("\n-- failure-free --\n");
  const auto clean = run(false, nullptr);
  std::printf("  checksum=%.12f  root probe=%.12f\n", clean.checksum,
              clean.root_probe);

  std::printf("\n-- with stopping failure at rank 2 --\n");
  std::uint64_t replayed = 0;
  const auto recovered = run(true, &replayed);
  std::printf("  checksum=%.12f  root probe=%.12f\n", recovered.checksum,
              recovered.root_probe);
  std::printf("  collective results replayed from the log: %llu\n",
              static_cast<unsigned long long>(replayed));

  if (clean.checksum == recovered.checksum &&
      clean.root_probe == recovered.root_probe) {
    std::printf("\nOK: recovered simulation is bit-identical\n");
    return 0;
  }
  std::printf("\nFAIL: results diverged\n");
  return 1;
}
