// Dense Conjugate Gradient with checkpointing: demonstrates state-size
// reporting (the quantity that drives Figure 8a's overhead) and residual
// continuity across a failure + recovery.
#include <cstdio>
#include <mutex>

#include "apps/cg.hpp"
#include "core/job.hpp"

using namespace c3;

namespace {

apps::CgResult run(bool with_failure, std::uint64_t ckpt_bytes_out[1]) {
  core::JobConfig cfg;
  cfg.ranks = 4;
  cfg.policy = core::CheckpointPolicy::every(5);
  if (with_failure) {
    cfg.failure = net::FailureSpec{.victim_rank = 3, .trigger_events = 70};
  }
  auto storage = std::make_shared<util::MemoryStorage>();
  cfg.storage = storage;

  std::mutex mu;
  apps::CgResult root_result;
  core::Job job(cfg);
  job.run([&](core::Process& p) {
    apps::CgConfig app;
    app.n = 128;
    app.iterations = 30;
    auto r = apps::run_cg(p, app);
    if (p.rank() == 0) {
      std::lock_guard lock(mu);
      root_result = r;
    }
  });
  ckpt_bytes_out[0] = storage->bytes_written();
  return root_result;
}

}  // namespace

int main() {
  std::printf("Dense CG (128x128 SPD system, 30 iterations, 4 ranks)\n");

  std::uint64_t clean_bytes[1], rec_bytes[1];
  std::printf("\n-- failure-free --\n");
  const auto clean = run(false, clean_bytes);
  std::printf("  residual=%.3e  checksum=%.12f  state/rank=%.1fKB\n",
              clean.residual, clean.checksum,
              static_cast<double>(clean.state_bytes) / 1024.0);
  std::printf("  checkpoint traffic to stable storage: %.1fKB\n",
              static_cast<double>(clean_bytes[0]) / 1024.0);

  std::printf("\n-- with stopping failure at rank 3 --\n");
  const auto recovered = run(true, rec_bytes);
  std::printf("  residual=%.3e  checksum=%.12f\n", recovered.residual,
              recovered.checksum);

  if (clean.checksum == recovered.checksum &&
      clean.residual == recovered.residual) {
    std::printf(
        "\nOK: solver converged to the identical solution across the "
        "failure\n");
    return 0;
  }
  std::printf("\nFAIL: results diverged\n");
  return 1;
}
