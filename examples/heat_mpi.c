/* Verbatim MPI C: ping-pong warm-up plus a 1-D heat (diffusion) solver.
 *
 * This program is written against the standard MPI interface only -- the
 * single non-standard line is the #include below, which names the c3mpi
 * facade instead of <mpi.h>. It is made fault-tolerant exactly the way the
 * paper promises: run it through the ccift precompiler in MPI mode
 *
 *     ccift --mpi --main c3mpi_app_main heat_mpi.c heat_mpi_instrumented.c
 *
 * compile the output as C, and link against the C3 runtime (the CMake
 * target mpi_heat_demo does all three). The driver in mpi_heat_demo.cpp
 * then kills a rank mid-run and checks the recovered result is identical
 * to a failure-free run.
 */
#include "c3mpi/mpi.h"

#include <stdio.h>

int main(int argc, char **argv) {
  double cell[34];
  double next[34];
  double ball;
  double warm;
  double sum;
  double total;
  double t0;
  double t1;
  int rank;
  int size;
  int ncell;
  int pp;
  int step;
  int i;
  int count;
  MPI_Status st;

  MPI_Init(&argc, &argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  t0 = MPI_Wtime();

  ncell = 32;
  warm = 0.0;
  for (i = 0; i < ncell + 2; i = i + 1) {
    cell[i] = 0.0;
    next[i] = 0.0;
  }
  if (rank == 0) {
    cell[1] = 100.0; /* fixed hot boundary */
  }

  /* Ping-pong warm-up between rank pairs: the receiver uses MPI_ANY_SOURCE
   * and learns the partner from the status. */
  pp = 0;
  while (pp < 6) {
    if (rank % 2 == 0) {
      if (rank + 1 < size) {
        ball = rank * 100.0 + pp;
        MPI_Send(&ball, 1, MPI_DOUBLE, rank + 1, 7, MPI_COMM_WORLD);
        MPI_Recv(&ball, 1, MPI_DOUBLE, MPI_ANY_SOURCE, 8, MPI_COMM_WORLD,
                 &st);
        MPI_Get_count(&st, MPI_DOUBLE, &count);
        warm = warm + ball + count + st.MPI_SOURCE;
      }
    } else {
      MPI_Recv(&ball, 1, MPI_DOUBLE, MPI_ANY_SOURCE, 7, MPI_COMM_WORLD, &st);
      ball = ball + 0.5;
      MPI_Send(&ball, 1, MPI_DOUBLE, st.MPI_SOURCE, 8, MPI_COMM_WORLD);
      warm = warm + st.MPI_TAG;
    }
    pp = pp + 1;
  }

  /* 1-D heat: halo exchange with the neighbours, then explicit diffusion.
   * Blocking sends are safe in any order under buffered semantics. */
  step = 0;
  while (step < 60) {
    if (rank > 0) {
      MPI_Send(&cell[1], 1, MPI_DOUBLE, rank - 1, 1, MPI_COMM_WORLD);
    }
    if (rank + 1 < size) {
      MPI_Send(&cell[ncell], 1, MPI_DOUBLE, rank + 1, 2, MPI_COMM_WORLD);
    }
    if (rank > 0) {
      MPI_Recv(&cell[0], 1, MPI_DOUBLE, rank - 1, 2, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
    } else {
      cell[0] = cell[1];
    }
    if (rank + 1 < size) {
      MPI_Recv(&cell[ncell + 1], 1, MPI_DOUBLE, rank + 1, 1, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
    } else {
      cell[ncell + 1] = cell[ncell];
    }
    for (i = 1; i <= ncell; i = i + 1) {
      next[i] = cell[i] + 0.25 * (cell[i - 1] - 2.0 * cell[i] + cell[i + 1]);
    }
    if (rank == 0) {
      next[1] = 100.0;
    }
    for (i = 1; i <= ncell; i = i + 1) {
      cell[i] = next[i];
    }
    step = step + 1;
  }

  sum = warm;
  for (i = 1; i <= ncell; i = i + 1) {
    sum = sum + cell[i];
  }
  MPI_Allreduce(&sum, &total, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
  t1 = MPI_Wtime();
  if (rank == 0) {
    printf("heat+pingpong checksum %.9f after %d steps (timer ok %d)\n",
           total, step, t1 >= t0);
  }
  MPI_Finalize();
  return 0;
}
