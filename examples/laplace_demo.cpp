// Laplace solver surviving a mid-run stopping failure.
//
// Runs the heated-plate solver twice -- failure-free and with rank 1 dying
// mid-iteration -- and verifies the recovered grid checksum is bitwise
// identical. Also prints the protocol's message-classification statistics,
// showing late/early messages crossing the checkpoint lines.
#include <cstdio>
#include <mutex>

#include "apps/laplace.hpp"
#include "core/job.hpp"

using namespace c3;

namespace {

struct Captured {
  std::mutex mu;
  apps::LaplaceResult result;
  std::uint64_t late = 0, early = 0, checkpoints = 0;
};

double run(bool with_failure) {
  core::JobConfig cfg;
  cfg.ranks = 4;
  cfg.policy = core::CheckpointPolicy::every(8);
  if (with_failure) {
    cfg.failure = net::FailureSpec{.victim_rank = 1, .trigger_events = 120};
  }
  Captured captured;
  core::Job job(cfg);
  job.run([&](core::Process& p) {
    apps::LaplaceConfig app;
    app.n = 96;
    app.iterations = 60;
    auto r = apps::run_laplace(p, app);
    std::lock_guard lock(captured.mu);
    if (p.rank() == 0) captured.result = r;
    captured.late += p.stats().late_messages;
    captured.early += p.stats().early_messages;
    captured.checkpoints += p.stats().checkpoints_taken;
  });
  std::printf(
      "  checksum=%.12f  local checkpoints=%llu  late msgs=%llu  early "
      "msgs=%llu\n",
      captured.result.checksum,
      static_cast<unsigned long long>(captured.checkpoints),
      static_cast<unsigned long long>(captured.late),
      static_cast<unsigned long long>(captured.early));
  return captured.result.checksum;
}

}  // namespace

int main() {
  std::printf("Laplace solver (96x96, 60 iterations, 4 ranks)\n");
  std::printf("\n-- failure-free --\n");
  const double clean = run(false);
  std::printf("\n-- with stopping failure at rank 1 --\n");
  const double recovered = run(true);
  if (clean == recovered) {
    std::printf("\nOK: recovered checksum is bitwise identical\n");
    return 0;
  }
  std::printf("\nFAIL: %.17g != %.17g\n", clean, recovered);
  return 1;
}
