// Driver for the verbatim-MPI demo (examples/heat_mpi.c).
//
// heat_mpi.c is ordinary MPI C; at build time CMake runs it through
//     ccift --mpi --main c3mpi_app_main
// and compiles the instrumented output into this binary -- the paper's
// "recompile with the precompiler and relink" pipeline, end to end. This
// driver runs the program twice under the Job runner: once failure-free
// and once with a stopping failure injected at rank 2 mid-computation. The
// second job rolls back to the last committed global checkpoint, resumes
// *inside* the transformed program via the Position Stack dispatch, and
// must print exactly what the clean run printed.
//
//   $ ./examples/mpi_heat_demo
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "c3mpi/binding.hpp"
#include "core/job.hpp"

// The instrumented translation unit (generated from examples/heat_mpi.c).
extern "C" int c3mpi_app_main(int argc, char** argv);
extern "C" void ccift_register_globals(void);

namespace {

/// Run one job with stdout redirected to a file; returns what the MPI
/// program printed. (Only rank 0 prints, so the capture is deterministic.)
/// trigger_events == 0 means no injected failure.
std::string run_capture(std::uint64_t trigger_events,
                        c3::c3mpi::MpiJobReport* out) {
  const std::string path =
      "/tmp/c3_mpi_heat_demo_" + std::to_string(::getpid()) +
      (trigger_events > 0 ? "_faulty" : "_clean") + ".txt";

  c3::core::JobConfig cfg;
  cfg.ranks = 4;
  // Checkpoint every 12th potentialCheckpoint opportunity seen by the
  // initiator; for a verbatim MPI program those opportunities are its
  // blocking MPI calls.
  cfg.policy = c3::core::CheckpointPolicy::every(12);
  if (trigger_events > 0) {
    cfg.failure = c3::net::FailureSpec{.victim_rank = 2,
                                       .trigger_events = trigger_events};
  }

  std::fflush(stdout);
  const int saved = ::dup(1);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ::dup2(fd, 1);
  ::close(fd);

  *out = c3::c3mpi::run_mpi_job(cfg, &c3mpi_app_main, /*argc=*/0,
                                /*argv=*/nullptr, &ccift_register_globals);

  std::fflush(stdout);
  ::dup2(saved, 1);
  ::close(saved);

  std::string text;
  if (std::FILE* f = std::fopen(path.c_str(), "r")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());
  return text;
}

}  // namespace

int main() {
  std::printf("verbatim-MPI demo: ccift-transformed heat_mpi.c under Job\n");

  std::printf("\n-- failure-free run --\n");
  c3::c3mpi::MpiJobReport clean;
  const std::string expected = run_capture(/*trigger_events=*/0, &clean);
  std::printf("  program output: %s", expected.c_str());
  if (expected.empty()) {
    std::printf("\nFAIL: the clean run printed nothing\n");
    return 1;
  }

  std::printf("\n-- runs with a stopping failure injected at rank 2 --\n");
  // Whether a committed checkpoint exists when the victim hits its trigger
  // depends on cross-rank scheduling; sweep the trigger until the job
  // really rolls back to a committed epoch. The program's output must be
  // identical to the clean run on *every* attempt -- a from-scratch restart
  // recomputes the same answer, a rollback replays to it.
  bool recovered = false;
  for (std::uint64_t trigger = 240; trigger <= 340; trigger += 20) {
    c3::c3mpi::MpiJobReport faulty;
    const std::string actual = run_capture(trigger, &faulty);
    std::printf(
        "  trigger %llu: executions=%d failures=%d recovered=%s epoch=%d\n",
        static_cast<unsigned long long>(trigger), faulty.job.executions,
        faulty.job.failures, faulty.job.recovered ? "yes" : "no",
        faulty.job.last_committed_epoch.value_or(-1));
    if (faulty.job.failures < 1) {
      std::printf("\nFAIL: the failure injector never fired\n");
      return 1;
    }
    if (actual != expected) {
      std::printf("\nFAIL: output differs from the clean run:\n  %s",
                  actual.c_str());
      return 1;
    }
    if (faulty.job.recovered) {
      std::printf(
          "\nOK: killed mid-run, recovered from epoch %d, output "
          "identical\n",
          faulty.job.last_committed_epoch.value_or(-1));
      recovered = true;
      break;
    }
  }
  if (!recovered) {
    std::printf(
        "\nFAIL: no trigger produced a rollback to a committed "
        "checkpoint\n");
    return 1;
  }
  return 0;
}
