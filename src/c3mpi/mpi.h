/* c3mpi: the MPI-compatible application facade of the C3 reproduction.
 *
 * This header is the paper's transparency promise made literal (Section 3):
 * an MPI application includes it instead of <mpi.h>, is run through the
 * ccift precompiler, and relinks against the C3 runtime -- no other source
 * change. Every function below interposes on the c3::core::Process protocol
 * layer (piggybacking, logging, coordinated checkpointing, recovery replay)
 * through a per-rank thread-local binding installed by c3mpi::run_mpi_job
 * or c3mpi::MpiBinding; see docs/api.md for the interposition diagram and
 * the exact supported surface.
 *
 * The header is plain C so both the precompiler's C subset and the system C
 * compiler accept it unchanged.
 */
#ifndef C3MPI_MPI_H
#define C3MPI_MPI_H

#ifdef __cplusplus
extern "C" {
#endif

/* ------------------------------------------------------- opaque handles */
/* Handles are small integers resolved through per-rank tables inside the
 * binding (communicators map to core CommHandles, requests to RequestIds).
 * They survive checkpoint/recovery: communicator-creating calls are
 * replayed from the checkpoint's call records, requests from the saved
 * pseudo-request table. */
typedef int MPI_Comm;
typedef int MPI_Request;
typedef int MPI_Datatype;
typedef int MPI_Op;

typedef struct MPI_Status {
  int MPI_SOURCE;
  int MPI_TAG;
  int MPI_ERROR;
  int c3_size_bytes; /* received payload bytes; feeds MPI_Get_count */
} MPI_Status;

#define MPI_COMM_WORLD ((MPI_Comm)0)
#define MPI_COMM_NULL ((MPI_Comm)-1)
#define MPI_REQUEST_NULL ((MPI_Request)-1)
#define MPI_STATUS_IGNORE ((MPI_Status *)0)
#define MPI_STATUSES_IGNORE ((MPI_Status *)0)

#define MPI_ANY_SOURCE (-1)
#define MPI_ANY_TAG (-2)
#define MPI_UNDEFINED (-32766)

#define MPI_SUCCESS 0
#define MPI_ERR_OTHER 1

/* Datatypes (values index the simmpi element types). */
#define MPI_BYTE ((MPI_Datatype)0)
#define MPI_CHAR ((MPI_Datatype)0)
#define MPI_INT ((MPI_Datatype)1)
#define MPI_LONG_LONG ((MPI_Datatype)2)
#define MPI_UNSIGNED_LONG_LONG ((MPI_Datatype)3)
#define MPI_FLOAT ((MPI_Datatype)4)
#define MPI_DOUBLE ((MPI_Datatype)5)

/* Reduction operations. */
#define MPI_SUM ((MPI_Op)0)
#define MPI_PROD ((MPI_Op)1)
#define MPI_MAX ((MPI_Op)2)
#define MPI_MIN ((MPI_Op)3)
#define MPI_LAND ((MPI_Op)4)
#define MPI_LOR ((MPI_Op)5)
#define MPI_BAND ((MPI_Op)6)
#define MPI_BOR ((MPI_Op)7)

/* -------------------------------------------------------- init/finalize */
int MPI_Init(int *argc, char ***argv);
int MPI_Finalize(void);
int MPI_Initialized(int *flag);
int MPI_Finalized(int *flag);

/* -------------------------------------------------------- communicators */
int MPI_Comm_rank(MPI_Comm comm, int *rank);
int MPI_Comm_size(MPI_Comm comm, int *size);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm *newcomm);
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm *newcomm);
int MPI_Comm_free(MPI_Comm *comm);

/* ------------------------------------------------------- point-to-point */
int MPI_Send(const void *buf, int count, MPI_Datatype datatype, int dest,
             int tag, MPI_Comm comm);
int MPI_Recv(void *buf, int count, MPI_Datatype datatype, int source, int tag,
             MPI_Comm comm, MPI_Status *status);
int MPI_Isend(const void *buf, int count, MPI_Datatype datatype, int dest,
              int tag, MPI_Comm comm, MPI_Request *request);
int MPI_Irecv(void *buf, int count, MPI_Datatype datatype, int source, int tag,
              MPI_Comm comm, MPI_Request *request);
int MPI_Wait(MPI_Request *request, MPI_Status *status);
int MPI_Test(MPI_Request *request, int *flag, MPI_Status *status);
int MPI_Waitall(int count, MPI_Request *requests, MPI_Status *statuses);
int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status *status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int *flag,
               MPI_Status *status);
int MPI_Get_count(const MPI_Status *status, MPI_Datatype datatype, int *count);

/* ---------------------------------------------------------- collectives */
int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void *buffer, int count, MPI_Datatype datatype, int root,
              MPI_Comm comm);
int MPI_Reduce(const void *sendbuf, void *recvbuf, int count,
               MPI_Datatype datatype, MPI_Op op, int root, MPI_Comm comm);
int MPI_Allreduce(const void *sendbuf, void *recvbuf, int count,
                  MPI_Datatype datatype, MPI_Op op, MPI_Comm comm);
int MPI_Gather(const void *sendbuf, int sendcount, MPI_Datatype sendtype,
               void *recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm);
int MPI_Allgather(const void *sendbuf, int sendcount, MPI_Datatype sendtype,
                  void *recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm);
int MPI_Alltoall(const void *sendbuf, int sendcount, MPI_Datatype sendtype,
                 void *recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm);

/* ------------------------------------------------------------ utilities */
int MPI_Type_size(MPI_Datatype datatype, int *size);
/* Wall-clock time in seconds. Routed through Process::nondet: reads taken
 * while logging are recorded and replayed bit-identically on recovery. */
double MPI_Wtime(void);

/* The paper's application-side checkpoint opportunity. Verbatim MPI codes
 * never call it (blocking MPI calls double as checkpoint sites under
 * run_mpi_job); precompiled non-MPI codes and the paper-style benchmark
 * kernels may. */
void potentialCheckpoint(void);

#ifdef __cplusplus
}
#endif

#endif /* C3MPI_MPI_H */
