// Implementation of the c3mpi interposition layer: the extern "C" MPI
// surface of c3mpi/mpi.h, resolved per rank thread through MpiBinding onto
// the core::Process protocol layer (the paper's Figure 2 stack, with the
// protocol layer behind an unchanged MPI interface).
#include "c3mpi/binding.hpp"

#include <chrono>
#include <cstring>

#include "c3mpi/mpi.h"
#include "ccift/runtime_abi.hpp"
#include "util/error.hpp"

namespace c3::c3mpi {
namespace {

thread_local MpiBinding* t_binding = nullptr;

core::Process& proc() { return MpiBinding::current().process(); }

simmpi::Datatype to_datatype(MPI_Datatype t) {
  if (t < 0 || t > static_cast<int>(simmpi::Datatype::kDouble)) {
    throw util::UsageError("c3mpi: unknown MPI_Datatype " + std::to_string(t));
  }
  return static_cast<simmpi::Datatype>(t);
}

std::size_t type_size(MPI_Datatype t) {
  return simmpi::datatype_size(to_datatype(t));
}

simmpi::Op to_op(MPI_Op op) {
  if (op < 0 || op > static_cast<int>(simmpi::Op::kBor)) {
    throw util::UsageError("c3mpi: unknown MPI_Op " + std::to_string(op));
  }
  return static_cast<simmpi::Op>(op);
}

std::span<const std::byte> in_span(const void* buf, int count,
                                   MPI_Datatype t) {
  return {static_cast<const std::byte*>(buf),
          static_cast<std::size_t>(count) * type_size(t)};
}

std::span<std::byte> out_span(void* buf, int count, MPI_Datatype t) {
  return {static_cast<std::byte*>(buf),
          static_cast<std::size_t>(count) * type_size(t)};
}

void fill_status(MPI_Status* status, const simmpi::Status& st) {
  if (status == MPI_STATUS_IGNORE) return;
  status->MPI_SOURCE = st.source;
  status->MPI_TAG = st.tag;
  status->MPI_ERROR = MPI_SUCCESS;
  status->c3_size_bytes = static_cast<int>(st.size);
}

/// The MPI "empty status" a completed null request reports.
void fill_empty_status(MPI_Status* status) {
  if (status == MPI_STATUS_IGNORE) return;
  status->MPI_SOURCE = MPI_ANY_SOURCE;
  status->MPI_TAG = MPI_ANY_TAG;
  status->MPI_ERROR = MPI_SUCCESS;
  status->c3_size_bytes = 0;
}

/// Entry hook of the facade calls that double as potentialCheckpoint sites.
/// The set of hooked calls must match ccift::mpi_checkpoint_sites(): the
/// precompiler's MPI mode labels exactly those call sites in the Position
/// Stack, so a restart can resume at the call that took the checkpoint.
/// The checkpoint fires *before* the operation, so on a restart the resume
/// point re-invokes the call and the operation becomes the first event of
/// the replayed window. Skipped while any request is incomplete: a pending
/// receive across a checkpoint needs a heap-arena buffer, which a verbatim
/// MPI program cannot promise.
void checkpoint_site() {
  MpiBinding& b = MpiBinding::current();
  if (!b.options().implicit_checkpoints) return;
  if (b.process().has_incomplete_requests()) return;
  b.process().potential_checkpoint();
}

}  // namespace

MpiBinding::MpiBinding(core::Process& process, BindingOptions options)
    : process_(process), options_(options) {
  if (t_binding != nullptr) {
    throw util::UsageError("nested c3mpi MpiBinding on one thread");
  }
  t_binding = this;
}

MpiBinding::~MpiBinding() { t_binding = nullptr; }

MpiBinding& MpiBinding::current() {
  if (t_binding == nullptr) {
    throw util::UsageError(
        "c3mpi call on a thread without an MpiBinding (run the program "
        "through c3mpi::run_mpi_job, or install a binding for the rank)");
  }
  return *t_binding;
}

bool MpiBinding::bound() noexcept { return t_binding != nullptr; }

int MpiBinding::add_request(core::RequestId id) {
  const int handle = next_request_++;
  requests_[handle] = id;
  return handle;
}

core::RequestId MpiBinding::resolve_request(int handle) const {
  auto it = requests_.find(handle);
  if (it == requests_.end()) {
    throw util::UsageError("c3mpi: unknown MPI_Request handle " +
                           std::to_string(handle));
  }
  return it->second;
}

void MpiBinding::drop_request(int handle) { requests_.erase(handle); }

MpiJobReport run_mpi_job(core::JobConfig config, MpiMain app_main, int argc,
                         char** argv, void (*register_globals)()) {
  MpiJobReport report;
  report.exit_codes.assign(static_cast<std::size_t>(config.ranks), 0);
  core::Job job(std::move(config));
  report.job = job.run([&](core::Process& p) {
    // Instrumented code needs both bindings: the ccift runtime ABI for
    // PS/VDS/global bookkeeping and the facade for the MPI calls.
    ccift::RuntimeBinding runtime_binding(p.save_context());
    BindingOptions opts;
    opts.implicit_checkpoints = true;
    MpiBinding binding(p, opts);
    // Rebuild the global registry *before* completing registration: on a
    // recovery execution complete_registration() applies the protocol-side
    // state and arms replay, and the restart dispatch inside app_main then
    // jumps to the resume point (where ccift_resume() copies the saved
    // global and stack values back).
    if (register_globals != nullptr) register_globals();
    p.complete_registration();
    report.exit_codes[static_cast<std::size_t>(p.rank())] =
        app_main(argc, argv);
  });
  return report;
}

}  // namespace c3::c3mpi

// ---------------------------------------------------------------------------
// The C ABI itself.
// ---------------------------------------------------------------------------

using c3::c3mpi::MpiBinding;
using c3::core::CommHandle;
using c3::core::RequestId;

extern "C" {

int MPI_Init(int* argc, char*** argv) {
  (void)argc;
  (void)argv;
  MpiBinding& b = MpiBinding::current();
  if (b.initialized) {
    throw c3::util::UsageError("MPI_Init called twice");
  }
  b.initialized = true;
  return MPI_SUCCESS;
}

int MPI_Finalize(void) {
  MpiBinding& b = MpiBinding::current();
  b.finalized = true;
  return MPI_SUCCESS;
}

int MPI_Initialized(int* flag) {
  *flag = MpiBinding::bound() && MpiBinding::current().initialized ? 1 : 0;
  return MPI_SUCCESS;
}

int MPI_Finalized(int* flag) {
  *flag = MpiBinding::bound() && MpiBinding::current().finalized ? 1 : 0;
  return MPI_SUCCESS;
}

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  *rank = c3::c3mpi::MpiBinding::current()
              .process()
              .comm_rank(static_cast<CommHandle>(comm));
  return MPI_SUCCESS;
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  *size = MpiBinding::current().process().comm_size(
      static_cast<CommHandle>(comm));
  return MPI_SUCCESS;
}

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
  *newcomm = static_cast<MPI_Comm>(
      MpiBinding::current().process().comm_dup(static_cast<CommHandle>(comm)));
  return MPI_SUCCESS;
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
  c3::core::Process& p = MpiBinding::current().process();
  const int c3_color = (color == MPI_UNDEFINED) ? -1 : color;
  if (c3_color < 0 && color != MPI_UNDEFINED) {
    throw c3::util::UsageError("MPI_Comm_split: negative color");
  }
  const CommHandle h =
      p.comm_split(static_cast<CommHandle>(comm), c3_color, key);
  if (!p.resolve(h).member()) {
    // MPI_UNDEFINED members get MPI_COMM_NULL back; release the placeholder
    // so the handle table only names communicators this rank belongs to.
    p.comm_free(h);
    *newcomm = MPI_COMM_NULL;
    return MPI_SUCCESS;
  }
  *newcomm = static_cast<MPI_Comm>(h);
  return MPI_SUCCESS;
}

int MPI_Comm_free(MPI_Comm* comm) {
  MpiBinding::current().process().comm_free(static_cast<CommHandle>(*comm));
  *comm = MPI_COMM_NULL;
  return MPI_SUCCESS;
}

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest,
             int tag, MPI_Comm comm) {
  c3::c3mpi::checkpoint_site();
  MpiBinding::current().process().send(
      c3::c3mpi::in_span(buf, count, datatype), dest, tag,
      static_cast<CommHandle>(comm));
  return MPI_SUCCESS;
}

int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag,
             MPI_Comm comm, MPI_Status* status) {
  c3::c3mpi::checkpoint_site();
  const c3::simmpi::Status st = MpiBinding::current().process().recv(
      c3::c3mpi::out_span(buf, count, datatype), source, tag,
      static_cast<CommHandle>(comm));
  c3::c3mpi::fill_status(status, st);
  return MPI_SUCCESS;
}

int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest,
              int tag, MPI_Comm comm, MPI_Request* request) {
  MpiBinding& b = MpiBinding::current();
  const RequestId id =
      b.process().isend(c3::c3mpi::in_span(buf, count, datatype), dest, tag,
                        static_cast<CommHandle>(comm));
  *request = b.add_request(id);
  return MPI_SUCCESS;
}

int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source, int tag,
              MPI_Comm comm, MPI_Request* request) {
  MpiBinding& b = MpiBinding::current();
  const RequestId id =
      b.process().irecv(c3::c3mpi::out_span(buf, count, datatype), source, tag,
                        static_cast<CommHandle>(comm));
  *request = b.add_request(id);
  return MPI_SUCCESS;
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
  if (*request == MPI_REQUEST_NULL) {
    c3::c3mpi::fill_empty_status(status);
    return MPI_SUCCESS;
  }
  MpiBinding& b = MpiBinding::current();
  const RequestId id = b.resolve_request(*request);
  const c3::simmpi::Status st = b.process().wait(id);
  c3::c3mpi::fill_status(status, st);
  b.drop_request(*request);
  *request = MPI_REQUEST_NULL;
  return MPI_SUCCESS;
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
  if (*request == MPI_REQUEST_NULL) {
    *flag = 1;
    c3::c3mpi::fill_empty_status(status);
    return MPI_SUCCESS;
  }
  MpiBinding& b = MpiBinding::current();
  const RequestId id = b.resolve_request(*request);
  if (!b.process().test(id)) {
    *flag = 0;
    return MPI_SUCCESS;
  }
  const c3::simmpi::Status st = b.process().wait(id);  // returns immediately
  c3::c3mpi::fill_status(status, st);
  b.drop_request(*request);
  *request = MPI_REQUEST_NULL;
  *flag = 1;
  return MPI_SUCCESS;
}

int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses) {
  MpiBinding& b = MpiBinding::current();
  if (statuses == MPI_STATUSES_IGNORE) {
    std::vector<RequestId> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      if (requests[i] != MPI_REQUEST_NULL) {
        ids.push_back(b.resolve_request(requests[i]));
      }
    }
    b.process().waitall(ids);
    for (int i = 0; i < count; ++i) {
      if (requests[i] != MPI_REQUEST_NULL) {
        b.drop_request(requests[i]);
        requests[i] = MPI_REQUEST_NULL;
      }
    }
    return MPI_SUCCESS;
  }
  for (int i = 0; i < count; ++i) {
    MPI_Wait(&requests[i], &statuses[i]);
  }
  return MPI_SUCCESS;
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
  const c3::simmpi::Status st = MpiBinding::current().process().probe(
      source, tag, static_cast<CommHandle>(comm));
  c3::c3mpi::fill_status(status, st);
  return MPI_SUCCESS;
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag,
               MPI_Status* status) {
  const auto st = MpiBinding::current().process().iprobe(
      source, tag, static_cast<CommHandle>(comm));
  *flag = st.has_value() ? 1 : 0;
  if (st) c3::c3mpi::fill_status(status, *st);
  return MPI_SUCCESS;
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype,
                  int* count) {
  const std::size_t elem = c3::c3mpi::type_size(datatype);
  const std::size_t bytes = static_cast<std::size_t>(status->c3_size_bytes);
  if (elem == 0 || bytes % elem != 0) {
    *count = MPI_UNDEFINED;
    return MPI_SUCCESS;
  }
  *count = static_cast<int>(bytes / elem);
  return MPI_SUCCESS;
}

int MPI_Barrier(MPI_Comm comm) {
  c3::c3mpi::checkpoint_site();
  MpiBinding::current().process().barrier(static_cast<CommHandle>(comm));
  return MPI_SUCCESS;
}

int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root,
              MPI_Comm comm) {
  c3::c3mpi::checkpoint_site();
  MpiBinding::current().process().bcast(
      c3::c3mpi::out_span(buffer, count, datatype), root,
      static_cast<CommHandle>(comm));
  return MPI_SUCCESS;
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype datatype, MPI_Op op, int root, MPI_Comm comm) {
  c3::c3mpi::checkpoint_site();
  c3::core::Process& p = MpiBinding::current().process();
  const CommHandle h = static_cast<CommHandle>(comm);
  const bool has_result = p.comm_rank(h) == root;
  p.reduce(c3::c3mpi::in_span(sendbuf, count, datatype),
           has_result ? c3::c3mpi::out_span(recvbuf, count, datatype)
                      : std::span<std::byte>{},
           c3::c3mpi::to_datatype(datatype), c3::c3mpi::to_op(op), root, h);
  return MPI_SUCCESS;
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype datatype, MPI_Op op, MPI_Comm comm) {
  c3::c3mpi::checkpoint_site();
  MpiBinding::current().process().allreduce(
      c3::c3mpi::in_span(sendbuf, count, datatype),
      c3::c3mpi::out_span(recvbuf, count, datatype),
      c3::c3mpi::to_datatype(datatype), c3::c3mpi::to_op(op),
      static_cast<CommHandle>(comm));
  return MPI_SUCCESS;
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm) {
  c3::c3mpi::checkpoint_site();
  c3::core::Process& p = MpiBinding::current().process();
  const CommHandle h = static_cast<CommHandle>(comm);
  const std::size_t in_bytes =
      static_cast<std::size_t>(sendcount) * c3::c3mpi::type_size(sendtype);
  const std::size_t out_block =
      static_cast<std::size_t>(recvcount) * c3::c3mpi::type_size(recvtype);
  const bool has_result = p.comm_rank(h) == root;
  if (has_result && out_block != in_bytes) {
    throw c3::util::UsageError(
        "MPI_Gather: receive block size must equal send block size");
  }
  p.gather({static_cast<const std::byte*>(sendbuf), in_bytes},
           has_result
               ? std::span<std::byte>{static_cast<std::byte*>(recvbuf),
                                      out_block *
                                          static_cast<std::size_t>(
                                              p.comm_size(h))}
               : std::span<std::byte>{},
           root, h);
  return MPI_SUCCESS;
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm) {
  c3::c3mpi::checkpoint_site();
  c3::core::Process& p = MpiBinding::current().process();
  const CommHandle h = static_cast<CommHandle>(comm);
  const std::size_t in_bytes =
      static_cast<std::size_t>(sendcount) * c3::c3mpi::type_size(sendtype);
  const std::size_t out_block =
      static_cast<std::size_t>(recvcount) * c3::c3mpi::type_size(recvtype);
  if (out_block != in_bytes) {
    throw c3::util::UsageError(
        "MPI_Allgather: receive block size must equal send block size");
  }
  p.allgather({static_cast<const std::byte*>(sendbuf), in_bytes},
              {static_cast<std::byte*>(recvbuf),
               out_block * static_cast<std::size_t>(p.comm_size(h))},
              h);
  return MPI_SUCCESS;
}

int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm) {
  c3::c3mpi::checkpoint_site();
  c3::core::Process& p = MpiBinding::current().process();
  const CommHandle h = static_cast<CommHandle>(comm);
  const std::size_t in_block =
      static_cast<std::size_t>(sendcount) * c3::c3mpi::type_size(sendtype);
  const std::size_t out_block =
      static_cast<std::size_t>(recvcount) * c3::c3mpi::type_size(recvtype);
  if (out_block != in_block) {
    throw c3::util::UsageError(
        "MPI_Alltoall: receive block size must equal send block size");
  }
  const std::size_t n = static_cast<std::size_t>(p.comm_size(h));
  p.alltoall({static_cast<const std::byte*>(sendbuf), in_block * n},
             {static_cast<std::byte*>(recvbuf), out_block * n}, h);
  return MPI_SUCCESS;
}

int MPI_Type_size(MPI_Datatype datatype, int* size) {
  *size = static_cast<int>(c3::c3mpi::type_size(datatype));
  return MPI_SUCCESS;
}

double MPI_Wtime(void) {
  const std::uint64_t ns = c3::c3mpi::proc().nondet([] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  });
  return static_cast<double>(ns) * 1e-9;
}

void potentialCheckpoint(void) {
  c3::c3mpi::proc().potential_checkpoint();
}

}  // extern "C"
