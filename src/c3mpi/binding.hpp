// Per-rank binding between the C ABI in c3mpi/mpi.h and a core::Process.
//
// simmpi executes ranks as threads of one OS process, so the facade cannot
// key anything off global state: each rank thread installs an MpiBinding
// (and a ccift::RuntimeBinding for instrumented code) before entering the
// application, and every MPI_* call resolves the current thread's binding.
// The binding owns the rank's handle tables: MPI_Comm values equal the
// Process CommHandle they name, MPI_Request values index a table of
// RequestIds so MPI_REQUEST_NULL and wait-time invalidation behave like
// real MPI.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/job.hpp"
#include "core/process.hpp"

namespace c3::c3mpi {

struct BindingOptions {
  /// Treat the facade's blocking entry points (see implicit_checkpoint_sites)
  /// as the paper's potentialCheckpoint opportunities. This is what makes a
  /// *verbatim* MPI program checkpointable: run_mpi_job enables it, while
  /// paper-style kernels that call potentialCheckpoint explicitly leave it
  /// off so their checkpoint cadence is unchanged.
  bool implicit_checkpoints = false;
};

class MpiBinding {
 public:
  explicit MpiBinding(core::Process& process, BindingOptions options = {});
  ~MpiBinding();
  MpiBinding(const MpiBinding&) = delete;
  MpiBinding& operator=(const MpiBinding&) = delete;

  /// The binding installed on the calling thread (throws UsageError if the
  /// thread runs no MPI rank).
  static MpiBinding& current();
  static bool bound() noexcept;

  core::Process& process() noexcept { return process_; }
  const BindingOptions& options() const noexcept { return options_; }

  // --------------------------------------------------- MPI request table
  int add_request(core::RequestId id);
  core::RequestId resolve_request(int handle) const;
  void drop_request(int handle);

  // ------------------------------------------------------ MPI_Init state
  bool initialized = false;
  bool finalized = false;

 private:
  core::Process& process_;
  BindingOptions options_;
  std::map<int, core::RequestId> requests_;
  int next_request_ = 0;
};

/// Result of running an MPI program under the Job runner.
struct MpiJobReport {
  core::JobReport job;
  /// Per-rank return values of app_main from the completed execution.
  std::vector<int> exit_codes;
};

using MpiMain = int (*)(int, char**);

/// Run a plain `int main(int, char**)`-shaped MPI program on every rank of
/// a Job: installs the per-rank bindings (facade + ccift runtime), invokes
/// the optional precompiler-emitted global registration, completes state
/// registration (restoring on a recovery execution), and hands argc/argv to
/// the program. Recovery of application state requires the program to have
/// been transformed by `ccift --mpi` (or to keep no state, e.g. kRaw runs).
MpiJobReport run_mpi_job(core::JobConfig config, MpiMain app_main,
                         int argc = 0, char** argv = nullptr,
                         void (*register_globals)() = nullptr);

}  // namespace c3::c3mpi
