// Per-rank MPI-like interface.
//
// One Api object is handed to each rank's main function and must only be
// used from that rank's thread (matching MPI's process model). It owns the
// rank's matching engine: a queue of unexpected messages and a list of
// posted receives, advanced by progress() which drains the rank's fabric
// inbox. Posted receives match in post order; unexpected messages match in
// arrival order; per-source order is never violated (MPI non-overtaking).
//
// The C3 protocol layer (core/) wraps this class and intercepts every call,
// exactly as the paper's protocol layer sits between the application and
// the MPI library.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/reduce.hpp"
#include "simmpi/request.hpp"
#include "simmpi/types.hpp"

namespace c3::simmpi {

class Runtime;

/// Result of a (non-consuming) probe.
struct ProbeInfo {
  Rank source = kAnySource;  ///< comm-local source rank
  Tag tag = kAnyTag;
  std::size_t size = 0;
};

/// Per-rank traffic counters (application-visible sends/receives).
struct ApiStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t send_bytes = 0;
  std::uint64_t recv_bytes = 0;
  std::uint64_t collectives = 0;
};

class Api {
 public:
  Api(Runtime& rt, Rank world_rank);
  Api(const Api&) = delete;
  Api& operator=(const Api&) = delete;

  Rank world_rank() const noexcept { return rank_; }
  int world_size() const noexcept;
  const Comm& world() const noexcept { return world_; }
  Runtime& runtime() noexcept { return rt_; }

  // ------------------------------------------------------------- p2p
  /// Blocking standard send (buffered semantics: the payload is captured
  /// into a pooled buffer, so the call returns as soon as the buffer is
  /// handed to the fabric).
  void send(const Comm& comm, std::span<const std::byte> data, Rank dst,
            Tag tag, ContextClass ctx = ContextClass::kP2p);

  /// Zero-copy blocking send: the framed buffer is *moved* into the wire
  /// packet. Use with buffers from Fabric::acquire_buffer / MsgBuffer so
  /// the receiver can recycle them through the pool.
  void send(const Comm& comm, util::Bytes&& framed, Rank dst, Tag tag,
            ContextClass ctx = ContextClass::kP2p);

  /// Blocking receive into `out`; the message must fit. Returns the status
  /// with the comm-local source, tag, and actual size.
  Status recv(const Comm& comm, std::span<std::byte> out, Rank src, Tag tag,
              ContextClass ctx = ContextClass::kP2p);

  /// Non-blocking send; completes immediately under buffered semantics but
  /// still returns a Request so code is shaped like real MPI.
  Request isend(const Comm& comm, std::span<const std::byte> data, Rank dst,
                Tag tag, ContextClass ctx = ContextClass::kP2p);

  /// Zero-copy non-blocking send (see the Bytes&& overload of send()).
  Request isend(const Comm& comm, util::Bytes&& framed, Rank dst, Tag tag,
                ContextClass ctx = ContextClass::kP2p);

  /// Non-blocking receive. `out` -- and, as in MPI, `comm` itself (the
  /// request borrows it, it is not copied) -- must stay alive until
  /// wait/test completes.
  Request irecv(const Comm& comm, std::span<std::byte> out, Rank src, Tag tag,
                ContextClass ctx = ContextClass::kP2p);

  /// Non-blocking receive that takes *ownership* of the matched message's
  /// wire buffer instead of copying it into a caller buffer: on completion
  /// the request state's `payload` holds the entire framed message, moved
  /// straight off the packet. The caller is responsible for returning the
  /// buffer to Fabric::release_buffer once consumed. `comm` is borrowed
  /// and must outlive the request.
  Request irecv_owned(const Comm& comm, Rank src, Tag tag,
                      ContextClass ctx = ContextClass::kP2p);

  Status wait(Request& req);
  bool test(Request& req);
  void waitall(std::span<Request> reqs);
  /// Cancel a posted, incomplete receive (used during recovery teardown).
  void cancel(Request& req);

  std::optional<ProbeInfo> iprobe(const Comm& comm, Rank src, Tag tag,
                                  ContextClass ctx = ContextClass::kP2p);
  /// iprobe without the inbox drain: inspects only messages already pulled
  /// into the unexpected queue. Use after poll() to avoid a second drain.
  std::optional<ProbeInfo> peek(const Comm& comm, Rank src, Tag tag,
                                ContextClass ctx = ContextClass::kP2p);
  ProbeInfo probe(const Comm& comm, Rank src, Tag tag,
                  ContextClass ctx = ContextClass::kP2p);

  /// Probe then receive a message of unknown size.
  std::pair<util::Bytes, Status> recv_any(const Comm& comm, Rank src, Tag tag,
                                          ContextClass ctx = ContextClass::kP2p);

  /// Send one payload to several destinations as a single fabric batch:
  /// per-destination packets are staged together and each destination inbox
  /// pays at most one wakeup, so a fan-out at P ranks costs O(1) notify
  /// traffic per hop instead of one wakeup per child.
  void send_batch(const Comm& comm, std::span<const std::byte> data,
                  std::span<const Rank> dsts, Tag tag,
                  ContextClass ctx = ContextClass::kP2p);

  /// Send one *logical* message whose wire image is already split across
  /// several pooled buffers (the segmented large-message path: every
  /// fragment fits the buffer pool's size classes, so nothing is allocated
  /// oversize). The fragments ship as one fabric batch and are reassembled
  /// into a single logical message at the destination inbox; receivers see
  /// one message whose payload is the concatenation, and only the first
  /// fragment carries any header a layer above encoded into it.
  void send_fragments(const Comm& comm, std::vector<util::Bytes>&& frags,
                      Rank dst, Tag tag, ContextClass ctx = ContextClass::kP2p);

  // ------------------------------------------------------- collectives
  void barrier(const Comm& comm);
  void bcast(const Comm& comm, std::span<std::byte> data, Rank root);
  /// out must be `in.size()` bytes at the root (ignored elsewhere).
  void reduce(const Comm& comm, std::span<const std::byte> in,
              std::span<std::byte> out, Datatype type, Op op, Rank root);
  void allreduce(const Comm& comm, std::span<const std::byte> in,
                 std::span<std::byte> out, Datatype type, Op op);
  /// User-defined-op variants (elem_size bytes per element).
  void reduce_user(const Comm& comm, std::span<const std::byte> in,
                   std::span<std::byte> out, std::size_t elem_size,
                   OpHandle op, Rank root);
  void allreduce_user(const Comm& comm, std::span<const std::byte> in,
                      std::span<std::byte> out, std::size_t elem_size,
                      OpHandle op);
  /// out must be comm.size()*in.size() bytes at the root.
  void gather(const Comm& comm, std::span<const std::byte> in,
              std::span<std::byte> out, Rank root);
  void allgather(const Comm& comm, std::span<const std::byte> in,
                 std::span<std::byte> out);
  /// in and out are comm.size() equal blocks.
  void alltoall(const Comm& comm, std::span<const std::byte> in,
                std::span<std::byte> out);
  /// Inclusive prefix scan.
  void scan(const Comm& comm, std::span<const std::byte> in,
            std::span<std::byte> out, Datatype type, Op op);

  // --------------------------------------------------- communicators
  /// Collective over `comm`: duplicate with a fresh context.
  Comm comm_dup(const Comm& comm);
  /// Collective over `comm`: split by color, ordered by (key, world rank).
  /// color < 0 means "not a member of any new communicator".
  Comm comm_split(const Comm& comm, int color, int key);

  // -------------------------------------------------- user-defined ops
  OpHandle op_create(ReduceFn fn);
  void op_free(OpHandle op);

  // ------------------------------------------------------ progress
  /// Drain the inbox and match posted receives (never blocks).
  void poll();
  /// Sleep until inbox activity or timeout; checks the abort flag.
  void idle_wait(std::chrono::microseconds timeout);
  /// Throw JobAborted if the job is being torn down.
  void check_abort() const;

  const ApiStats& stats() const noexcept { return stats_; }

  // Typed conveniences -------------------------------------------------
  template <typename T>
  void send_value(const Comm& comm, const T& v, Rank dst, Tag tag) {
    send(comm, util::as_bytes(v), dst, tag);
  }
  template <typename T>
  T recv_value(const Comm& comm, Rank src, Tag tag, Status* st = nullptr) {
    T v{};
    Status s = recv(comm, {reinterpret_cast<std::byte*>(&v), sizeof(T)}, src, tag);
    if (st) *st = s;
    return v;
  }

 private:
  friend class Runtime;

  /// Frame user data into a pooled wire buffer (buffered-send capture).
  util::Bytes frame(std::span<const std::byte> data);
  /// Build and hand one packet to the fabric; returns the framed size.
  std::size_t send_packet(const Comm& comm, util::Bytes&& framed, Rank dst,
                          Tag tag, ContextClass ctx);
  /// Append one logical message to batch_, segmenting payloads above the
  /// pool's largest size class into pooled fragment packets.
  void append_framed(int dst_world, int context, Tag tag,
                     std::span<const std::byte> data);
  /// Validate-and-ship one segmented span send as a fabric batch.
  void send_segmented(const Comm& comm, std::span<const std::byte> data,
                      Rank dst, Tag tag, ContextClass ctx);
  /// Try to complete posted receives with `pkt`; true if consumed.
  bool try_match_posted(net::Packet& pkt);
  /// Scan unexpected messages for the first match of a posted receive.
  bool try_match_unexpected(RequestState& rs);
  static bool matches(const RequestState& rs, const net::Packet& pkt);
  void deliver_into(RequestState& rs, net::Packet& pkt);
  void block_until(const std::function<bool()>& done);
  std::uint64_t next_seq(int dst, int context);
  Tag next_coll_tag(const Comm& comm);

  Runtime& rt_;
  Rank rank_;
  Comm world_;
  std::vector<net::Packet> arrivals_;  ///< poll() scratch (capacity reused)
  std::vector<net::Packet> batch_;     ///< send_batch scratch (capacity reused)
  std::deque<net::Packet> unexpected_;
  std::vector<std::shared_ptr<RequestState>> posted_;
  std::map<std::pair<int, int>, std::uint64_t> send_seq_;
  std::map<int, std::uint32_t> coll_seq_;  ///< per-comm collective counter
  std::map<std::int32_t, ReduceFn> user_ops_;
  std::int32_t next_op_id_ = 0;
  std::uint64_t post_counter_ = 0;
  ApiStats stats_;
};

}  // namespace c3::simmpi
