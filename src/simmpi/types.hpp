// Core types of the simulated MPI ("simmpi") runtime.
//
// simmpi reproduces the slice of MPI-1 the paper's system sits on: blocking
// and non-blocking point-to-point with tag matching and wildcards, the
// standard collectives, communicator management, reduction operations, and
// opaque-object handles. It executes N ranks as threads in one process over
// the reliable c3::net fabric.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace c3::simmpi {

using Rank = int;
using Tag = int;

/// Wildcards (match MPI's semantics).
inline constexpr Rank kAnySource = -1;
inline constexpr Tag kAnyTag = -2;

/// Tags must be non-negative and below this bound (the protocol layer and
/// collectives use private context ids, not reserved tags, so the full app
/// tag space is available).
inline constexpr Tag kMaxTag = (1 << 24) - 1;

/// Outcome of a completed receive.
struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::size_t size = 0;  ///< payload bytes actually received
};

/// Element type for reductions and typed convenience wrappers.
enum class Datatype : std::uint8_t {
  kByte,
  kInt32,
  kInt64,
  kUInt64,
  kFloat,
  kDouble,
};

/// Size in bytes of one element of `t`.
constexpr std::size_t datatype_size(Datatype t) {
  switch (t) {
    case Datatype::kByte: return 1;
    case Datatype::kInt32: return 4;
    case Datatype::kInt64: return 8;
    case Datatype::kUInt64: return 8;
    case Datatype::kFloat: return 4;
    case Datatype::kDouble: return 8;
  }
  return 0;
}

/// Built-in reduction operations (user-defined ops are registered through
/// Api::op_create and addressed by OpHandle).
enum class Op : std::uint8_t {
  kSum,
  kProd,
  kMax,
  kMin,
  kLand,
  kLor,
  kBand,
  kBor,
};

/// Handle to a user-defined reduction (see Api::op_create).
struct OpHandle {
  std::int32_t id = -1;
  bool valid() const noexcept { return id >= 0; }
};

inline void require(bool cond, const std::string& what) {
  if (!cond) throw util::UsageError(what);
}

}  // namespace c3::simmpi
