// The simmpi job runtime: spawns one thread per rank over a fresh fabric.
//
// run() may be called repeatedly on the same Runtime; each call builds a new
// fabric (clean queues, cleared abort flag). This is how the C3 job runner
// implements rollback: when a stopping failure fires, run() unwinds with
// StoppingFailure and the caller invokes run() again with the ranks' main
// functions in recovery mode.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

#include "net/transport.hpp"
#include "simmpi/types.hpp"

namespace c3::simmpi {

class Api;

/// Network behaviour knobs.
struct NetConfig {
  enum class Order { kFifo, kRandomReorder };
  Order order = Order::kFifo;
  std::uint64_t seed = 1;
  double p_hold = 0.5;       ///< reorder: probability a stream head is held
  std::uint32_t max_hold = 8;  ///< reorder: max inbox events to hold for
};

/// Collective-algorithm cutovers, shared by every rank of a Runtime.
///
/// Every rank must see identical values (set them before run(); the
/// benches set SIZE_MAX cutovers to force the naive baselines): the
/// cutover decision feeds the per-communicator collective tag counter, so
/// divergent values would desynchronize tags across ranks.
struct CollTuning {
  /// allreduce payloads at or above this take the bandwidth-optimal ring
  /// (reduce-scatter + allgather, 2*(P-1)/P*N bytes per rank) instead of
  /// reduce-to-root + bcast (2*N*log P through the root). Below it the
  /// latency-bound binomial path wins: the ring costs 2*(P-1) hops of
  /// per-message overhead on the critical path versus 2*log P.
  std::size_t ring_allreduce_min_bytes = 64 * 1024;
  /// The ring also requires payload/P at or above this: its 2*(P-1) hops
  /// only pay off once each hop moves enough bytes to amortize per-message
  /// latency, so the cutover adapts to the communicator size.
  std::size_t ring_min_chunk_bytes = 16 * 1024;
  /// bcast/reduce payloads at or above this are chunk-pipelined down the
  /// binomial tree so per-hop latency is hidden at depth.
  std::size_t pipeline_min_bytes = 256 * 1024;
  /// Chunk size for the pipelined tree paths. Must stay within the buffer
  /// pool's largest size class or every chunk re-segments pointlessly.
  std::size_t pipeline_chunk_bytes = 128 * 1024;
};

class Runtime {
 public:
  explicit Runtime(int nranks, NetConfig cfg = {});
  ~Runtime();

  int size() const noexcept { return nranks_; }

  /// Execute one parallel job: every rank runs `rank_main`. Blocks until
  /// all ranks return or the job aborts. Throws StoppingFailure if a fault
  /// was injected, or rethrows the first rank error otherwise.
  void run(const std::function<void(Api&)>& rank_main);

  /// Valid only during run() (used by Api).
  net::Fabric& fabric();

  /// Allocate a globally fresh communicator context base.
  int fresh_context() { return next_context_.fetch_add(1); }

  /// Collective cutovers. Mutate only before run(): ranks read these
  /// concurrently and unsynchronized while the job executes.
  CollTuning& coll_tuning() noexcept { return coll_; }
  const CollTuning& coll_tuning() const noexcept { return coll_; }

 private:
  int nranks_;
  NetConfig cfg_;
  CollTuning coll_;
  std::unique_ptr<net::Fabric> fabric_;
  std::atomic<int> next_context_{1};
  std::mutex err_mu_;
  std::exception_ptr first_error_;
  std::exception_ptr failure_;
};

}  // namespace c3::simmpi
