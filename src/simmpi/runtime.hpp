// The simmpi job runtime: spawns one thread per rank over a fresh fabric.
//
// run() may be called repeatedly on the same Runtime; each call builds a new
// fabric (clean queues, cleared abort flag). This is how the C3 job runner
// implements rollback: when a stopping failure fires, run() unwinds with
// StoppingFailure and the caller invokes run() again with the ranks' main
// functions in recovery mode.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

#include "net/transport.hpp"
#include "simmpi/types.hpp"

namespace c3::simmpi {

class Api;

/// Network behaviour knobs.
struct NetConfig {
  enum class Order { kFifo, kRandomReorder };
  Order order = Order::kFifo;
  std::uint64_t seed = 1;
  double p_hold = 0.5;       ///< reorder: probability a stream head is held
  std::uint32_t max_hold = 8;  ///< reorder: max inbox events to hold for
};

class Runtime {
 public:
  explicit Runtime(int nranks, NetConfig cfg = {});
  ~Runtime();

  int size() const noexcept { return nranks_; }

  /// Execute one parallel job: every rank runs `rank_main`. Blocks until
  /// all ranks return or the job aborts. Throws StoppingFailure if a fault
  /// was injected, or rethrows the first rank error otherwise.
  void run(const std::function<void(Api&)>& rank_main);

  /// Valid only during run() (used by Api).
  net::Fabric& fabric();

  /// Allocate a globally fresh communicator context base.
  int fresh_context() { return next_context_.fetch_add(1); }

 private:
  int nranks_;
  NetConfig cfg_;
  std::unique_ptr<net::Fabric> fabric_;
  std::atomic<int> next_context_{1};
  std::mutex err_mu_;
  std::exception_ptr first_error_;
  std::exception_ptr failure_;
};

}  // namespace c3::simmpi
