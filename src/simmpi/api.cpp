#include "simmpi/api.hpp"

#include <algorithm>
#include <cstring>

#include "simmpi/runtime.hpp"
#include "util/buffer_pool.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace c3::simmpi {

namespace {
constexpr auto kIdleSlice = std::chrono::microseconds(200);

/// Largest wire fragment: the pool's top size class. Anything bigger is
/// segmented so every buffer in flight recycles through the pool.
constexpr std::size_t kMaxFragmentBytes = util::BufferPool::kMaxClassBytes;

std::vector<Rank> iota_group(int n) {
  std::vector<Rank> g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) g[static_cast<std::size_t>(i)] = i;
  return g;
}
}  // namespace

Api::Api(Runtime& rt, Rank world_rank)
    : rt_(rt),
      rank_(world_rank),
      world_(/*context_base=*/0, iota_group(rt.size()), world_rank) {}

int Api::world_size() const noexcept { return rt_.size(); }

void Api::check_abort() const {
  if (rt_.fabric().aborted()) throw util::JobAborted();
}

std::uint64_t Api::next_seq(int dst, int context) {
  return send_seq_[{dst, context}]++;
}

Tag Api::next_coll_tag(const Comm& comm) {
  return static_cast<Tag>(coll_seq_[comm.context_base()]++ % (kMaxTag + 1));
}

// ------------------------------------------------------------------- p2p

std::size_t Api::send_packet(const Comm& comm, util::Bytes&& framed, Rank dst,
                             Tag tag, ContextClass ctx) {
  require(comm.member(), "isend on a communicator this rank is not in");
  require(tag >= 0 && tag <= kMaxTag, "tag out of range");
  check_abort();
  const Rank world_dst = comm.to_world(dst);
  const int context = comm.context(ctx);
  const std::size_t size = framed.size();
  net::Packet pkt;
  pkt.src = rank_;
  pkt.dst = world_dst;
  pkt.context = context;
  pkt.tag = tag;
  pkt.seq = next_seq(world_dst, context);
  pkt.payload = std::move(framed);
  rt_.fabric().send(std::move(pkt));
  stats_.sends++;
  stats_.send_bytes += size;
  return size;
}

util::Bytes Api::frame(std::span<const std::byte> data) {
  // Buffered semantics: capture the payload into a pooled buffer that then
  // travels the zero-copy path down to the receiver.
  util::Bytes framed = rt_.fabric().acquire_buffer(data.size());
  if (!data.empty()) std::memcpy(framed.data(), data.data(), data.size());
  return framed;
}

void Api::append_framed(int dst_world, int context, Tag tag,
                        std::span<const std::byte> data) {
  // One logical message; above the pool's top size class it is segmented
  // into pooled fragment packets reassembled at the destination inbox.
  const std::uint32_t total =
      data.size() <= kMaxFragmentBytes
          ? 1u
          : static_cast<std::uint32_t>(
                (data.size() + kMaxFragmentBytes - 1) / kMaxFragmentBytes);
  std::size_t off = 0;
  for (std::uint32_t f = 0; f < total; ++f) {
    const std::size_t len = std::min(kMaxFragmentBytes, data.size() - off);
    net::Packet pkt;
    pkt.src = rank_;
    pkt.dst = dst_world;
    pkt.context = context;
    pkt.tag = tag;
    pkt.seq = next_seq(dst_world, context);
    pkt.frag_index = f;
    pkt.frag_total = total;
    pkt.payload = frame(data.subspan(off, len));
    batch_.push_back(std::move(pkt));
    off += len;
  }
  stats_.sends++;
  stats_.send_bytes += data.size();
}

void Api::send_segmented(const Comm& comm, std::span<const std::byte> data,
                         Rank dst, Tag tag, ContextClass ctx) {
  require(comm.member(), "send on a communicator this rank is not in");
  require(tag >= 0 && tag <= kMaxTag, "tag out of range");
  check_abort();
  batch_.clear();
  append_framed(comm.to_world(dst), comm.context(ctx), tag, data);
  rt_.fabric().send_batch(batch_);
}

void Api::send_fragments(const Comm& comm, std::vector<util::Bytes>&& frags,
                         Rank dst, Tag tag, ContextClass ctx) {
  require(!frags.empty(), "send_fragments with no fragments");
  require(comm.member(), "send on a communicator this rank is not in");
  require(tag >= 0 && tag <= kMaxTag, "tag out of range");
  check_abort();
  const Rank world_dst = comm.to_world(dst);
  const int context = comm.context(ctx);
  const auto total = static_cast<std::uint32_t>(frags.size());
  batch_.clear();
  batch_.reserve(frags.size());
  std::size_t bytes = 0;
  for (std::uint32_t f = 0; f < total; ++f) {
    net::Packet pkt;
    pkt.src = rank_;
    pkt.dst = world_dst;
    pkt.context = context;
    pkt.tag = tag;
    pkt.seq = next_seq(world_dst, context);
    pkt.frag_index = f;
    pkt.frag_total = total;
    bytes += frags[f].size();
    pkt.payload = std::move(frags[f]);
    batch_.push_back(std::move(pkt));
  }
  frags.clear();
  rt_.fabric().send_batch(batch_);
  stats_.sends++;
  stats_.send_bytes += bytes;
}

void Api::send(const Comm& comm, std::span<const std::byte> data, Rank dst,
               Tag tag, ContextClass ctx) {
  // Blocking sends complete as soon as the buffer is handed to the fabric;
  // no Request object is materialized for them.
  if (data.size() > kMaxFragmentBytes) {
    send_segmented(comm, data, dst, tag, ctx);
    return;
  }
  send_packet(comm, frame(data), dst, tag, ctx);
}

void Api::send(const Comm& comm, util::Bytes&& framed, Rank dst, Tag tag,
               ContextClass ctx) {
  send_packet(comm, std::move(framed), dst, tag, ctx);
}

void Api::send_batch(const Comm& comm, std::span<const std::byte> data,
                     std::span<const Rank> dsts, Tag tag, ContextClass ctx) {
  if (dsts.empty()) return;
  require(comm.member(), "send_batch on a communicator this rank is not in");
  require(tag >= 0 && tag <= kMaxTag, "tag out of range");
  check_abort();
  const int context = comm.context(ctx);
  batch_.clear();
  batch_.reserve(dsts.size());
  for (Rank dst : dsts) {
    append_framed(comm.to_world(dst), context, tag, data);
  }
  rt_.fabric().send_batch(batch_);
}

Request Api::isend(const Comm& comm, std::span<const std::byte> data, Rank dst,
                   Tag tag, ContextClass ctx) {
  if (data.size() > kMaxFragmentBytes) {
    // Buffered semantics: the segmented batch is handed to the fabric in
    // full, so the request is already complete.
    send_segmented(comm, data, dst, tag, ctx);
    auto st = std::make_shared<RequestState>();
    st->kind = RequestKind::kSend;
    st->complete = true;
    st->status = Status{comm.rank(), tag, data.size()};
    return Request(std::move(st));
  }
  return isend(comm, frame(data), dst, tag, ctx);
}

Request Api::isend(const Comm& comm, util::Bytes&& framed, Rank dst, Tag tag,
                   ContextClass ctx) {
  const std::size_t size = send_packet(comm, std::move(framed), dst, tag, ctx);
  // The buffer now travels with the packet; the request is complete.
  auto st = std::make_shared<RequestState>();
  st->kind = RequestKind::kSend;
  st->complete = true;
  st->status = Status{comm.rank(), tag, size};
  return Request(std::move(st));
}

Request Api::irecv(const Comm& comm, std::span<std::byte> out, Rank src,
                   Tag tag, ContextClass ctx) {
  require(comm.member(), "irecv on a communicator this rank is not in");
  require(tag == kAnyTag || (tag >= 0 && tag <= kMaxTag), "tag out of range");
  check_abort();
  auto st = std::make_shared<RequestState>();
  st->kind = RequestKind::kRecv;
  st->out = out;
  st->comm = &comm;
  st->context = comm.context(ctx);
  st->src_world = (src == kAnySource) ? kAnySource : comm.to_world(src);
  st->tag = tag;
  st->post_order = post_counter_++;
  // An already-arrived unexpected message may satisfy this receive.
  if (!try_match_unexpected(*st)) {
    posted_.push_back(st);
  }
  return Request(std::move(st));
}

Request Api::irecv_owned(const Comm& comm, Rank src, Tag tag,
                         ContextClass ctx) {
  require(comm.member(), "irecv on a communicator this rank is not in");
  require(tag == kAnyTag || (tag >= 0 && tag <= kMaxTag), "tag out of range");
  check_abort();
  auto st = std::make_shared<RequestState>();
  st->kind = RequestKind::kRecv;
  st->owning = true;
  st->comm = &comm;
  st->context = comm.context(ctx);
  st->src_world = (src == kAnySource) ? kAnySource : comm.to_world(src);
  st->tag = tag;
  st->post_order = post_counter_++;
  if (!try_match_unexpected(*st)) {
    posted_.push_back(st);
  }
  return Request(std::move(st));
}

Status Api::recv(const Comm& comm, std::span<std::byte> out, Rank src, Tag tag,
                 ContextClass ctx) {
  Request r = irecv(comm, out, src, tag, ctx);
  return wait(r);
}

Status Api::wait(Request& req) {
  require(req.valid(), "wait on an invalid request");
  RequestState* rs = req.state();
  block_until([rs] { return rs->complete; });
  return rs->status;
}

bool Api::test(Request& req) {
  require(req.valid(), "test on an invalid request");
  poll();
  return req.complete();
}

void Api::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Api::cancel(Request& req) {
  require(req.valid(), "cancel on an invalid request");
  RequestState* rs = req.state();
  if (rs->complete) return;
  rs->cancelled = true;
  rs->complete = true;
  std::erase_if(posted_, [rs](const auto& p) { return p.get() == rs; });
}

std::optional<ProbeInfo> Api::iprobe(const Comm& comm, Rank src, Tag tag,
                                     ContextClass ctx) {
  poll();
  return peek(comm, src, tag, ctx);
}

std::optional<ProbeInfo> Api::peek(const Comm& comm, Rank src, Tag tag,
                                   ContextClass ctx) {
  require(comm.member(), "iprobe on a communicator this rank is not in");
  const int context = comm.context(ctx);
  const Rank src_world = (src == kAnySource) ? kAnySource : comm.to_world(src);
  for (const auto& pkt : unexpected_) {
    if (pkt.context != context) continue;
    if (src_world != kAnySource && pkt.src != src_world) continue;
    if (tag != kAnyTag && pkt.tag != tag) continue;
    return ProbeInfo{comm.from_world(pkt.src), pkt.tag,
                     pkt.total_payload_size()};
  }
  return std::nullopt;
}

ProbeInfo Api::probe(const Comm& comm, Rank src, Tag tag, ContextClass ctx) {
  for (;;) {
    if (auto info = iprobe(comm, src, tag, ctx)) return *info;
    check_abort();
    idle_wait(kIdleSlice);
  }
}

std::pair<util::Bytes, Status> Api::recv_any(const Comm& comm, Rank src,
                                             Tag tag, ContextClass ctx) {
  // Owned receive: the wire buffer is moved out of the packet and straight
  // to the caller -- no probe, no sizing allocation, no staging copy. The
  // matching engine picks the earliest arrival matching the pattern, which
  // is exactly what probe-then-pinned-receive used to select.
  Request r = irecv_owned(comm, src, tag, ctx);
  Status st = wait(r);
  util::Bytes wire = std::move(r.state()->payload);
  if (!r.state()->frags.empty()) {
    // Segmented arrival: recv_any promises one contiguous buffer, so this
    // (rare, large-control) path pays a merge copy; the fragment buffers
    // go straight back to the pool.
    wire.reserve(st.size);
    for (auto& f : r.state()->frags) {
      wire.insert(wire.end(), f.begin(), f.end());
      rt_.fabric().release_buffer(std::move(f));
    }
    r.state()->frags.clear();
    rt_.fabric().count_copied(wire.size());
  }
  return {std::move(wire), st};
}

// -------------------------------------------------------------- progress

bool Api::matches(const RequestState& rs, const net::Packet& pkt) {
  if (rs.context != pkt.context) return false;
  if (rs.src_world != kAnySource && rs.src_world != pkt.src) return false;
  if (rs.tag != kAnyTag && rs.tag != pkt.tag) return false;
  return true;
}

void Api::deliver_into(RequestState& rs, net::Packet& pkt) {
  const std::size_t size = pkt.total_payload_size();
  if (rs.owning) {
    // Zero-copy delivery: the wire buffers change hands, no byte moves. A
    // segmented message hands over its head buffer plus the merged
    // continuation fragments.
    rs.payload = std::move(pkt.payload);
    rs.frags = std::move(pkt.frags);
  } else {
    if (size > rs.out.size()) {
      throw util::UsageError(
          "message truncation: recv buffer " + std::to_string(rs.out.size()) +
          " bytes, message " + std::to_string(size) + " bytes");
    }
    // One counted logical copy: the head buffer and each merged fragment
    // land in their slice of the application buffer.
    if (!pkt.payload.empty()) {
      std::memcpy(rs.out.data(), pkt.payload.data(), pkt.payload.size());
    }
    std::size_t off = pkt.payload.size();
    for (auto& f : pkt.frags) {
      if (!f.empty()) std::memcpy(rs.out.data() + off, f.data(), f.size());
      off += f.size();
    }
    if (size > 0) rt_.fabric().count_copied(size);
    // The wire buffers are spent; recycle them for later sends.
    rt_.fabric().release_buffer(std::move(pkt.payload));
    for (auto& f : pkt.frags) rt_.fabric().release_buffer(std::move(f));
    pkt.frags.clear();
  }
  rs.status.source = rs.comm->from_world(pkt.src);
  rs.status.tag = pkt.tag;
  rs.status.size = size;
  rs.complete = true;
  stats_.recvs++;
  stats_.recv_bytes += size;
}

bool Api::try_match_posted(net::Packet& pkt) {
  // Posted receives match in post order (MPI semantics).
  auto best = posted_.end();
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!matches(**it, pkt)) continue;
    if (best == posted_.end() || (*it)->post_order < (*best)->post_order) {
      best = it;
    }
  }
  if (best == posted_.end()) return false;
  deliver_into(**best, pkt);
  posted_.erase(best);
  return true;
}

bool Api::try_match_unexpected(RequestState& rs) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(rs, *it)) {
      deliver_into(rs, *it);
      unexpected_.erase(it);
      return true;
    }
  }
  return false;
}

void Api::poll() {
  // arrivals_ is a member so its capacity ping-pongs with the inbox's
  // released queue: steady-state polling allocates nothing.
  rt_.fabric().inbox(rank_).drain(arrivals_);
  for (auto& pkt : arrivals_) {
    if (!try_match_posted(pkt)) {
      unexpected_.push_back(std::move(pkt));
    }
  }
  arrivals_.clear();
}

void Api::idle_wait(std::chrono::microseconds timeout) {
  rt_.fabric().inbox(rank_).wait(timeout, rt_.fabric().abort_flag());
}

void Api::block_until(const std::function<bool()>& done) {
  for (;;) {
    poll();
    if (done()) return;
    check_abort();
    idle_wait(kIdleSlice);
  }
}

// ---------------------------------------------------------- communicators

Comm Api::comm_dup(const Comm& comm) {
  require(comm.member(), "comm_dup on a communicator this rank is not in");
  std::int32_t cand = rt_.fresh_context();
  std::int32_t base = 0;
  allreduce(comm, util::as_bytes(cand),
            {reinterpret_cast<std::byte*>(&base), sizeof(base)},
            Datatype::kInt32, Op::kMax);
  return Comm(base, comm.group(), rank_);
}

Comm Api::comm_split(const Comm& comm, int color, int key) {
  require(comm.member(), "comm_split on a communicator this rank is not in");
  struct Entry {
    std::int32_t color, key, world;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(comm.size()));
  allgather(comm, util::as_bytes(mine),
            {reinterpret_cast<std::byte*>(all.data()),
             all.size() * sizeof(Entry)});
  std::int32_t cand = rt_.fresh_context();
  std::int32_t base = 0;
  allreduce(comm, util::as_bytes(cand),
            {reinterpret_cast<std::byte*>(&base), sizeof(base)},
            Datatype::kInt32, Op::kMax);
  if (color < 0) return Comm();  // MPI_UNDEFINED: no new communicator
  std::vector<Entry> members;
  for (const auto& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Entry& a, const Entry& b) {
                     return std::tie(a.key, a.world) < std::tie(b.key, b.world);
                   });
  std::vector<Rank> group;
  group.reserve(members.size());
  for (const auto& e : members) group.push_back(e.world);
  // Disjoint color groups may share the context base: their member sets do
  // not overlap, so no packet can be matched by the wrong communicator.
  return Comm(base, std::move(group), rank_);
}

// ---------------------------------------------------------------- user ops

OpHandle Api::op_create(ReduceFn fn) {
  require(static_cast<bool>(fn), "op_create with empty function");
  const std::int32_t id = next_op_id_++;
  user_ops_[id] = std::move(fn);
  return OpHandle{id};
}

void Api::op_free(OpHandle op) {
  require(user_ops_.erase(op.id) == 1, "op_free of unknown op");
}

}  // namespace c3::simmpi
