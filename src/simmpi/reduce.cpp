#include "simmpi/reduce.hpp"

#include <algorithm>
#include <cstring>

namespace c3::simmpi {
namespace {

template <typename T>
void apply_typed(Op op, const std::byte* in_raw, std::byte* inout_raw,
                 std::size_t count) {
  const T* in = reinterpret_cast<const T*>(in_raw);
  T* inout = reinterpret_cast<T*>(inout_raw);
  switch (op) {
    case Op::kSum:
      for (std::size_t i = 0; i < count; ++i) inout[i] = in[i] + inout[i];
      break;
    case Op::kProd:
      for (std::size_t i = 0; i < count; ++i) inout[i] = in[i] * inout[i];
      break;
    case Op::kMax:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::max(in[i], inout[i]);
      break;
    case Op::kMin:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::min(in[i], inout[i]);
      break;
    case Op::kLand:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = static_cast<T>((in[i] != T{}) && (inout[i] != T{}));
      break;
    case Op::kLor:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = static_cast<T>((in[i] != T{}) || (inout[i] != T{}));
      break;
    default:
      throw util::UsageError("bitwise op on non-integer type");
  }
}

template <typename T>
void apply_bitwise(Op op, const std::byte* in_raw, std::byte* inout_raw,
                   std::size_t count) {
  const T* in = reinterpret_cast<const T*>(in_raw);
  T* inout = reinterpret_cast<T*>(inout_raw);
  switch (op) {
    case Op::kBand:
      for (std::size_t i = 0; i < count; ++i) inout[i] = in[i] & inout[i];
      break;
    case Op::kBor:
      for (std::size_t i = 0; i < count; ++i) inout[i] = in[i] | inout[i];
      break;
    default:
      apply_typed<T>(op, in_raw, inout_raw, count);
  }
}

}  // namespace

void apply_op(Op op, Datatype type, const std::byte* in, std::byte* inout,
              std::size_t count) {
  switch (type) {
    case Datatype::kByte:
      apply_bitwise<std::uint8_t>(op, in, inout, count);
      break;
    case Datatype::kInt32:
      apply_bitwise<std::int32_t>(op, in, inout, count);
      break;
    case Datatype::kInt64:
      apply_bitwise<std::int64_t>(op, in, inout, count);
      break;
    case Datatype::kUInt64:
      apply_bitwise<std::uint64_t>(op, in, inout, count);
      break;
    case Datatype::kFloat:
      apply_typed<float>(op, in, inout, count);
      break;
    case Datatype::kDouble:
      apply_typed<double>(op, in, inout, count);
      break;
  }
}

ChunkRange chunk_range(std::size_t count, int parts, int idx) noexcept {
  const auto p = static_cast<std::size_t>(parts);
  const auto i = static_cast<std::size_t>(idx);
  const std::size_t base = count / p;
  const std::size_t rem = count % p;
  return ChunkRange{i * base + std::min(i, rem), base + (i < rem ? 1 : 0)};
}

}  // namespace c3::simmpi
