// Collective communication, built entirely on point-to-point messages over
// the communicator's collective context -- matching the paper's observation
// that "each collective communication call is actually implemented by the
// MPI layer using many point-to-point messages". Algorithms:
//   barrier    dissemination (ceil(log2 p) rounds)
//   bcast      binomial tree
//   reduce     binomial tree toward the root
//   allreduce  reduce to rank 0 + bcast
//   gather     direct sends to the root
//   allgather  ring (p-1 steps, overlapped isend/recv)
//   alltoall   posted irecvs + one batched send pass, then waitall
//   scan       linear chain (inclusive prefix)
// Every invocation draws a fresh tag from a per-communicator counter, so
// back-to-back collectives on one communicator can never cross-match.
#include <cstring>

#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"

namespace c3::simmpi {

namespace {
constexpr ContextClass kColl = ContextClass::kColl;
}

void Api::barrier(const Comm& comm) {
  require(comm.member(), "barrier on a communicator this rank is not in");
  stats_.collectives++;
  const int p = comm.size();
  const Rank r = comm.rank();
  const Tag tag = next_coll_tag(comm);
  std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const Rank to = (r + dist) % p;
    const Rank from = (r - dist % p + p) % p;
    Request sreq = isend(comm, {&token, 1}, to, tag, kColl);
    std::byte in{};
    recv(comm, {&in, 1}, from, tag, kColl);
    wait(sreq);
  }
}

void Api::bcast(const Comm& comm, std::span<std::byte> data, Rank root) {
  require(comm.member(), "bcast on a communicator this rank is not in");
  require(root >= 0 && root < comm.size(), "bcast root out of range");
  stats_.collectives++;
  const int p = comm.size();
  const Rank rel = (comm.rank() - root + p) % p;
  const Tag tag = next_coll_tag(comm);
  auto abs = [&](Rank relr) { return (relr + root) % p; };

  // Receive from the parent (the rank that differs in the lowest set bit).
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      recv(comm, data, abs(rel ^ mask), tag, kColl);
      break;
    }
    mask <<= 1;
  }
  // Forward to all children as one fabric batch (decreasing-mask order):
  // an interior node of the binomial tree pays one staging pass and at most
  // one wakeup per child inbox instead of a full send per child.
  std::vector<Rank> children;
  mask >>= 1;
  while (mask > 0) {
    if ((rel | mask) < p && !(rel & mask)) {
      children.push_back(abs(rel | mask));
    }
    mask >>= 1;
  }
  send_batch(comm, data, children, tag, kColl);
}

namespace {
/// Shared binomial-tree reduction skeleton. `combine(incoming, accum)`
/// folds a child's contribution into the local accumulator.
///
/// Per-hop buffers come from the fabric pool: the accumulator is *moved*
/// into the parent-bound message (no copy on the up edge), and each child
/// contribution is received into one reused pooled buffer.
template <typename Combine>
void tree_reduce(Api& api, const Comm& comm, std::span<const std::byte> in,
                 std::span<std::byte> out, Rank root, Tag tag,
                 const Combine& combine) {
  const int p = comm.size();
  const Rank rel = (comm.rank() - root + p) % p;
  auto abs = [&](Rank relr) { return (relr + root) % p; };
  auto& fabric = api.runtime().fabric();
  util::Bytes accum = fabric.acquire_buffer(in.size());
  if (!in.empty()) std::memcpy(accum.data(), in.data(), in.size());
  util::Bytes incoming;  // acquired lazily: leaf ranks never receive
  for (int mask = 1; mask < p; mask <<= 1) {
    if (rel & mask) {
      api.send(comm, std::move(accum), abs(rel ^ mask), tag,
               ContextClass::kColl);
      accum = {};
      break;
    }
    const int child = rel | mask;
    if (child < p) {
      if (incoming.size() != in.size()) {
        incoming = fabric.acquire_buffer(in.size());
      }
      api.recv(comm, incoming, abs(child), tag, ContextClass::kColl);
      combine(incoming.data(), accum.data());
    }
  }
  if (comm.rank() == root) {
    require(out.size() >= accum.size(), "reduce output buffer too small");
    std::memcpy(out.data(), accum.data(), accum.size());
  }
  // release() discards empty / moved-from buffers, so both are safe here.
  fabric.release_buffer(std::move(accum));
  fabric.release_buffer(std::move(incoming));
}
}  // namespace

void Api::reduce(const Comm& comm, std::span<const std::byte> in,
                 std::span<std::byte> out, Datatype type, Op op, Rank root) {
  require(comm.member(), "reduce on a communicator this rank is not in");
  require(in.size() % datatype_size(type) == 0,
          "reduce buffer not a whole number of elements");
  stats_.collectives++;
  const std::size_t count = in.size() / datatype_size(type);
  const Tag tag = next_coll_tag(comm);
  tree_reduce(*this, comm, in, out, root, tag,
              [&](const std::byte* from, std::byte* accum) {
                apply_op(op, type, from, accum, count);
              });
}

void Api::allreduce(const Comm& comm, std::span<const std::byte> in,
                    std::span<std::byte> out, Datatype type, Op op) {
  require(out.size() >= in.size(), "allreduce output buffer too small");
  reduce(comm, in, out, type, op, /*root=*/0);
  bcast(comm, out.first(in.size()), /*root=*/0);
}

void Api::reduce_user(const Comm& comm, std::span<const std::byte> in,
                      std::span<std::byte> out, std::size_t elem_size,
                      OpHandle op, Rank root) {
  require(comm.member(), "reduce_user on a communicator this rank is not in");
  require(elem_size > 0 && in.size() % elem_size == 0,
          "reduce_user buffer not a whole number of elements");
  auto it = user_ops_.find(op.id);
  require(it != user_ops_.end(), "reduce_user with unknown op handle");
  stats_.collectives++;
  const std::size_t count = in.size() / elem_size;
  const Tag tag = next_coll_tag(comm);
  const ReduceFn& fn = it->second;
  tree_reduce(*this, comm, in, out, root, tag,
              [&](const std::byte* from, std::byte* accum) {
                fn(from, accum, count);
              });
}

void Api::allreduce_user(const Comm& comm, std::span<const std::byte> in,
                         std::span<std::byte> out, std::size_t elem_size,
                         OpHandle op) {
  require(out.size() >= in.size(), "allreduce_user output buffer too small");
  reduce_user(comm, in, out, elem_size, op, /*root=*/0);
  bcast(comm, out.first(in.size()), /*root=*/0);
}

void Api::gather(const Comm& comm, std::span<const std::byte> in,
                 std::span<std::byte> out, Rank root) {
  require(comm.member(), "gather on a communicator this rank is not in");
  stats_.collectives++;
  const int p = comm.size();
  const std::size_t block = in.size();
  const Tag tag = next_coll_tag(comm);
  if (comm.rank() == root) {
    require(out.size() >= block * static_cast<std::size_t>(p),
            "gather output buffer too small");
    std::memcpy(out.data() + block * static_cast<std::size_t>(root), in.data(),
                block);
    for (Rank r = 0; r < p; ++r) {
      if (r == root) continue;
      recv(comm, out.subspan(block * static_cast<std::size_t>(r), block), r,
           tag, kColl);
    }
  } else {
    send(comm, in, root, tag, kColl);
  }
}

void Api::allgather(const Comm& comm, std::span<const std::byte> in,
                    std::span<std::byte> out) {
  require(comm.member(), "allgather on a communicator this rank is not in");
  stats_.collectives++;
  const int p = comm.size();
  const Rank r = comm.rank();
  const std::size_t block = in.size();
  require(out.size() >= block * static_cast<std::size_t>(p),
          "allgather output buffer too small");
  const Tag tag = next_coll_tag(comm);
  std::memcpy(out.data() + block * static_cast<std::size_t>(r), in.data(),
              block);
  if (p == 1) return;
  const Rank right = (r + 1) % p;
  const Rank left = (r - 1 + p) % p;
  // Ring: in step s we forward the block that originated s hops upstream.
  for (int s = 0; s < p - 1; ++s) {
    const std::size_t send_idx = static_cast<std::size_t>((r - s + p) % p);
    const std::size_t recv_idx = static_cast<std::size_t>((r - s - 1 + p) % p);
    Request sreq =
        isend(comm, out.subspan(send_idx * block, block), right, tag, kColl);
    recv(comm, out.subspan(recv_idx * block, block), left, tag, kColl);
    wait(sreq);
  }
}

void Api::alltoall(const Comm& comm, std::span<const std::byte> in,
                   std::span<std::byte> out) {
  require(comm.member(), "alltoall on a communicator this rank is not in");
  stats_.collectives++;
  const int p = comm.size();
  require(in.size() % static_cast<std::size_t>(p) == 0,
          "alltoall input not divisible into p blocks");
  const std::size_t block = in.size() / static_cast<std::size_t>(p);
  require(out.size() >= in.size(), "alltoall output buffer too small");
  const Tag tag = next_coll_tag(comm);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(2 * p));
  for (Rank r = 0; r < p; ++r) {
    const auto dst_block = out.subspan(static_cast<std::size_t>(r) * block, block);
    if (r == comm.rank()) {
      std::memcpy(dst_block.data(),
                  in.data() + static_cast<std::size_t>(r) * block, block);
    } else {
      reqs.push_back(irecv(comm, dst_block, r, tag, kColl));
    }
  }
  // All P-1 outgoing blocks leave as one fabric batch: each peer's inbox
  // takes its packet under one staging pass, and a receiver parked in
  // waitall is woken at most once per sender instead of per block.
  check_abort();
  const int context = comm.context(kColl);
  batch_.clear();
  batch_.reserve(static_cast<std::size_t>(p - 1));
  for (Rank r = 0; r < p; ++r) {
    if (r == comm.rank()) continue;
    net::Packet pkt;
    pkt.src = rank_;
    pkt.dst = comm.to_world(r);
    pkt.context = context;
    pkt.tag = tag;
    pkt.seq = next_seq(pkt.dst, context);
    pkt.payload = frame(in.subspan(static_cast<std::size_t>(r) * block, block));
    batch_.push_back(std::move(pkt));
    stats_.sends++;
    stats_.send_bytes += block;
  }
  rt_.fabric().send_batch(batch_);
  waitall(reqs);
}

void Api::scan(const Comm& comm, std::span<const std::byte> in,
               std::span<std::byte> out, Datatype type, Op op) {
  require(comm.member(), "scan on a communicator this rank is not in");
  require(out.size() >= in.size(), "scan output buffer too small");
  require(in.size() % datatype_size(type) == 0,
          "scan buffer not a whole number of elements");
  stats_.collectives++;
  const std::size_t count = in.size() / datatype_size(type);
  const Tag tag = next_coll_tag(comm);
  std::memcpy(out.data(), in.data(), in.size());
  if (comm.rank() > 0) {
    util::Bytes prefix = rt_.fabric().acquire_buffer(in.size());
    recv(comm, prefix, comm.rank() - 1, tag, kColl);
    apply_op(op, type, prefix.data(), out.data(), count);
    rt_.fabric().release_buffer(std::move(prefix));
  }
  if (comm.rank() + 1 < comm.size()) {
    send(comm, out.first(in.size()), comm.rank() + 1, tag, kColl);
  }
}

}  // namespace c3::simmpi
