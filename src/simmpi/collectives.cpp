// Collective communication, built entirely on point-to-point messages over
// the communicator's collective context -- matching the paper's observation
// that "each collective communication call is actually implemented by the
// MPI layer using many point-to-point messages". Algorithms:
//   barrier    dissemination (ceil(log2 p) rounds)
//   bcast      binomial tree; chunk-pipelined above pipeline_min_bytes
//   reduce     binomial tree toward the root; chunk-pipelined above
//              pipeline_min_bytes (child chunks combined straight from the
//              delivered wire buffer, no staging copy)
//   allreduce  reduce to rank 0 + bcast below ring_allreduce_min_bytes;
//              bandwidth-optimal ring reduce-scatter + ring allgather above
//   gather     direct sends to the root
//   allgather  ring (p-1 steps, overlapped isend/recv)
//   alltoall   posted irecvs + one batched send pass, then waitall
//   scan       linear chain (inclusive prefix)
// Every invocation draws a fresh tag from a per-communicator counter, so
// back-to-back collectives on one communicator can never cross-match. The
// algorithm cutovers (Runtime::coll_tuning()) must be identical on every
// rank so each rank draws the same number of tags per logical collective.
#include <algorithm>
#include <cstring>

#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"

namespace c3::simmpi {

namespace {
constexpr ContextClass kColl = ContextClass::kColl;

/// Take the logical payload of a completed owned receive as one contiguous
/// pooled buffer: zero-copy for single-packet messages, a merging copy for
/// the rare segmented case (collective chunks above the pool's largest
/// size class).
util::Bytes owned_contiguous(net::Fabric& fabric, RequestState& st) {
  util::Bytes head = std::move(st.payload);
  if (st.frags.empty()) return head;
  std::size_t total = head.size();
  for (const auto& f : st.frags) total += f.size();
  util::Bytes whole = fabric.acquire_buffer(total);
  std::memcpy(whole.data(), head.data(), head.size());
  std::size_t off = head.size();
  fabric.release_buffer(std::move(head));
  for (auto& f : st.frags) {
    std::memcpy(whole.data() + off, f.data(), f.size());
    off += f.size();
    fabric.release_buffer(std::move(f));
  }
  st.frags.clear();
  fabric.count_copied(total);
  return whole;
}

/// Binomial-tree shape shared by the pipelined paths: the parent differs in
/// the lowest set bit of the relative rank; children are listed in
/// increasing-mask order -- the same order tree_reduce combines them in.
struct TreeShape {
  Rank parent = -1;  ///< comm-local rank, -1 at the root
  std::vector<Rank> children;
};

TreeShape binomial_shape(const Comm& comm, Rank root) {
  const int p = comm.size();
  const Rank rel = (comm.rank() - root + p) % p;
  auto abs = [&](Rank relr) { return (relr + root) % p; };
  TreeShape t;
  for (int mask = 1; mask < p; mask <<= 1) {
    if (rel & mask) {
      t.parent = abs(rel ^ mask);
      break;
    }
    const int child = rel | mask;
    if (child < p) t.children.push_back(abs(child));
  }
  return t;
}

/// Chunk-pipelined binomial bcast: data flows down the same tree as the
/// plain binomial bcast, but in pipeline_chunk_bytes chunks on one tag, so
/// an interior node forwards chunk c while chunk c+1 is still in flight
/// from its parent. Per-source FIFO delivery keeps each edge's chunks in
/// order, and buffered sends never block, so the forward of one chunk
/// overlaps the receive of the next without explicit double-buffering.
void pipelined_bcast(Api& api, const Comm& comm, std::span<std::byte> data,
                     Rank root, Tag tag, std::size_t chunk_bytes) {
  const TreeShape t = binomial_shape(comm, root);
  for (std::size_t off = 0; off < data.size(); off += chunk_bytes) {
    auto chunk = data.subspan(off, std::min(chunk_bytes, data.size() - off));
    if (t.parent >= 0) api.recv(comm, chunk, t.parent, tag, kColl);
    api.send_batch(comm, chunk, t.children, tag, kColl);
  }
}

/// Chunk-pipelined binomial reduce. Each chunk travels leaf-to-root
/// independently: a node posts owned receives for every child's chunk
/// up-front, combines each straight out of the delivered wire buffer (no
/// staging copy) into a pooled accumulator chunk, and *moves* that buffer
/// into the parent-bound send (no copy on the up edge either). Children
/// are combined in increasing-mask order -- fixed, so floating-point
/// reductions stay deterministic across reruns and replay.
template <typename Combine>
void pipelined_tree_reduce(Api& api, const Comm& comm,
                           std::span<const std::byte> in,
                           std::span<std::byte> out, Rank root, Tag tag,
                           std::size_t elem_size, std::size_t chunk_bytes,
                           const Combine& combine) {
  const TreeShape t = binomial_shape(comm, root);
  const bool is_root = comm.rank() == root;
  const std::size_t step =
      std::max<std::size_t>(1, chunk_bytes / elem_size) * elem_size;
  auto& fabric = api.runtime().fabric();
  std::vector<Request> rreqs(t.children.size());
  for (std::size_t off = 0; off < in.size(); off += step) {
    const std::size_t len = std::min(step, in.size() - off);
    // Post the whole chunk's child receives before touching local data so
    // arrivals complete zero-copy instead of queueing as unexpected.
    for (std::size_t c = 0; c < t.children.size(); ++c) {
      rreqs[c] = api.irecv_owned(comm, t.children[c], tag, kColl);
    }
    util::Bytes accum;
    std::byte* acc = nullptr;
    if (is_root) {
      std::memcpy(out.data() + off, in.data() + off, len);
      acc = out.data() + off;
    } else {
      accum = fabric.acquire_buffer(len);
      std::memcpy(accum.data(), in.data() + off, len);
      acc = accum.data();
    }
    for (std::size_t c = 0; c < t.children.size(); ++c) {
      api.wait(rreqs[c]);
      util::Bytes wire = owned_contiguous(fabric, *rreqs[c].state());
      combine(wire.data(), acc, len / elem_size);
      fabric.release_buffer(std::move(wire));
    }
    if (!is_root) {
      api.send(comm, std::move(accum), t.parent, tag, kColl);
    }
  }
}

/// Bandwidth-optimal allreduce: ring reduce-scatter then ring allgather.
/// Each rank moves 2*(P-1)/P*N bytes total regardless of P, versus the
/// naive reduce+bcast's N*log P in and out of interior tree nodes. One tag
/// covers the whole invocation: every step's message travels to/from a
/// fixed neighbour, and per-source FIFO delivery keeps the steps ordered.
///
/// The partials travel zero-copy: each step's owned receive yields the
/// wire buffer itself, the local contribution is folded straight into it
/// (phase 1) or it is copied once into `out` (phase 2), and the very same
/// buffer is *moved* into the next hop's packet. Per rank the whole
/// allreduce costs one framing copy, one combine per reduce-scatter step,
/// and one copy per chunk into `out` -- no scratch staging at all.
/// Requires count >= p so every rank owns a non-empty chunk.
template <typename Combine>
void ring_allreduce(Api& api, const Comm& comm, std::span<const std::byte> in,
                    std::span<std::byte> out, std::size_t elem_size, Tag tag,
                    const Combine& combine) {
  const int p = comm.size();
  const Rank r = comm.rank();
  const std::size_t count = in.size() / elem_size;
  const Rank right = (r + 1) % p;
  const Rank left = (r - 1 + p) % p;
  auto mod = [&](int c) { return (c % p + p) % p; };
  auto in_chunk = [&](int c) {
    const ChunkRange cr = chunk_range(count, p, c);
    return in.subspan(cr.begin * elem_size, cr.len * elem_size);
  };
  auto out_chunk = [&](int c) {
    const ChunkRange cr = chunk_range(count, p, c);
    return out.subspan(cr.begin * elem_size, cr.len * elem_size);
  };
  auto& fabric = api.runtime().fabric();
  // Phase 1 -- reduce-scatter: in step s, send the partial for chunk (r-s)
  // right and fold this rank's contribution into the chunk (r-s-1) partial
  // arriving from the left, so after p-1 steps `carry` is the fully
  // reduced chunk (r+1) mod p.
  util::Bytes carry;
  for (int s = 0; s < p - 1; ++s) {
    if (s == 0) {
      api.send(comm, in_chunk(r), right, tag, kColl);
    } else {
      api.send(comm, std::move(carry), right, tag, kColl);
    }
    Request rr = api.irecv_owned(comm, left, tag, kColl);
    api.wait(rr);
    carry = owned_contiguous(fabric, *rr.state());
    const auto mine = in_chunk(mod(r - s - 1));
    require(carry.size() == mine.size(), "ring allreduce partial size skew");
    combine(mine.data(), carry.data(), mine.size() / elem_size);
  }
  // Phase 2 -- ring allgather of the reduced chunks: each received buffer
  // is copied into `out` and then forwarded as-is to the right neighbour.
  std::memcpy(out_chunk(mod(r + 1)).data(), carry.data(), carry.size());
  for (int s = 0; s < p - 1; ++s) {
    api.send(comm, std::move(carry), right, tag, kColl);
    Request rr = api.irecv_owned(comm, left, tag, kColl);
    api.wait(rr);
    carry = owned_contiguous(fabric, *rr.state());
    const auto dst = out_chunk(mod(r - s));
    require(carry.size() == dst.size(), "ring allgather chunk size skew");
    std::memcpy(dst.data(), carry.data(), carry.size());
  }
  fabric.release_buffer(std::move(carry));
}
}  // namespace

void Api::barrier(const Comm& comm) {
  require(comm.member(), "barrier on a communicator this rank is not in");
  stats_.collectives++;
  const int p = comm.size();
  const Rank r = comm.rank();
  const Tag tag = next_coll_tag(comm);
  std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const Rank to = (r + dist) % p;
    const Rank from = (r - dist % p + p) % p;
    Request sreq = isend(comm, {&token, 1}, to, tag, kColl);
    std::byte in{};
    recv(comm, {&in, 1}, from, tag, kColl);
    wait(sreq);
  }
}

void Api::bcast(const Comm& comm, std::span<std::byte> data, Rank root) {
  require(comm.member(), "bcast on a communicator this rank is not in");
  require(root >= 0 && root < comm.size(), "bcast root out of range");
  stats_.collectives++;
  const int p = comm.size();
  const Rank rel = (comm.rank() - root + p) % p;
  const Tag tag = next_coll_tag(comm);
  const CollTuning& tune = rt_.coll_tuning();
  if (p > 1 && data.size() >= tune.pipeline_min_bytes) {
    pipelined_bcast(*this, comm, data, root, tag, tune.pipeline_chunk_bytes);
    return;
  }
  auto abs = [&](Rank relr) { return (relr + root) % p; };

  // Receive from the parent (the rank that differs in the lowest set bit).
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      recv(comm, data, abs(rel ^ mask), tag, kColl);
      break;
    }
    mask <<= 1;
  }
  // Forward to all children as one fabric batch (decreasing-mask order):
  // an interior node of the binomial tree pays one staging pass and at most
  // one wakeup per child inbox instead of a full send per child.
  std::vector<Rank> children;
  mask >>= 1;
  while (mask > 0) {
    if ((rel | mask) < p && !(rel & mask)) {
      children.push_back(abs(rel | mask));
    }
    mask >>= 1;
  }
  send_batch(comm, data, children, tag, kColl);
}

namespace {
/// Shared binomial-tree reduction skeleton. `combine(incoming, accum)`
/// folds a child's contribution into the local accumulator.
///
/// Per-hop buffers come from the fabric pool: the accumulator is *moved*
/// into the parent-bound message (no copy on the up edge), and each child
/// contribution is received into one reused pooled buffer.
template <typename Combine>
void tree_reduce(Api& api, const Comm& comm, std::span<const std::byte> in,
                 std::span<std::byte> out, Rank root, Tag tag,
                 const Combine& combine) {
  const int p = comm.size();
  const Rank rel = (comm.rank() - root + p) % p;
  auto abs = [&](Rank relr) { return (relr + root) % p; };
  auto& fabric = api.runtime().fabric();
  util::Bytes accum = fabric.acquire_buffer(in.size());
  if (!in.empty()) std::memcpy(accum.data(), in.data(), in.size());
  util::Bytes incoming;  // acquired lazily: leaf ranks never receive
  for (int mask = 1; mask < p; mask <<= 1) {
    if (rel & mask) {
      api.send(comm, std::move(accum), abs(rel ^ mask), tag,
               ContextClass::kColl);
      accum = {};
      break;
    }
    const int child = rel | mask;
    if (child < p) {
      if (incoming.size() != in.size()) {
        incoming = fabric.acquire_buffer(in.size());
      }
      api.recv(comm, incoming, abs(child), tag, ContextClass::kColl);
      combine(incoming.data(), accum.data());
    }
  }
  if (comm.rank() == root) {
    require(out.size() >= accum.size(), "reduce output buffer too small");
    std::memcpy(out.data(), accum.data(), accum.size());
  }
  // release() discards empty / moved-from buffers, so both are safe here.
  fabric.release_buffer(std::move(accum));
  fabric.release_buffer(std::move(incoming));
}
}  // namespace

void Api::reduce(const Comm& comm, std::span<const std::byte> in,
                 std::span<std::byte> out, Datatype type, Op op, Rank root) {
  require(comm.member(), "reduce on a communicator this rank is not in");
  require(in.size() % datatype_size(type) == 0,
          "reduce buffer not a whole number of elements");
  stats_.collectives++;
  const std::size_t count = in.size() / datatype_size(type);
  const Tag tag = next_coll_tag(comm);
  const CollTuning& tune = rt_.coll_tuning();
  if (comm.size() > 1 && in.size() >= tune.pipeline_min_bytes) {
    if (comm.rank() == root) {
      require(out.size() >= in.size(), "reduce output buffer too small");
    }
    pipelined_tree_reduce(
        *this, comm, in, out, root, tag, datatype_size(type),
        tune.pipeline_chunk_bytes,
        [&](const std::byte* from, std::byte* acc, std::size_t n) {
          apply_op(op, type, from, acc, n);
        });
    return;
  }
  tree_reduce(*this, comm, in, out, root, tag,
              [&](const std::byte* from, std::byte* accum) {
                apply_op(op, type, from, accum, count);
              });
}

void Api::allreduce(const Comm& comm, std::span<const std::byte> in,
                    std::span<std::byte> out, Datatype type, Op op) {
  require(out.size() >= in.size(), "allreduce output buffer too small");
  // The cutover feeds the tag counter (ring draws one tag, reduce+bcast
  // two), so it depends only on values identical across ranks.
  const std::size_t esize = datatype_size(type);
  const CollTuning& tune = rt_.coll_tuning();
  if (comm.size() > 1 && in.size() >= tune.ring_allreduce_min_bytes &&
      in.size() / static_cast<std::size_t>(comm.size()) >=
          tune.ring_min_chunk_bytes &&
      in.size() % esize == 0 &&
      in.size() / esize >= static_cast<std::size_t>(comm.size())) {
    require(comm.member(), "allreduce on a communicator this rank is not in");
    stats_.collectives++;
    const Tag tag = next_coll_tag(comm);
    ring_allreduce(*this, comm, in, out, esize, tag,
                   [&](const std::byte* from, std::byte* acc, std::size_t n) {
                     apply_op(op, type, from, acc, n);
                   });
    return;
  }
  reduce(comm, in, out, type, op, /*root=*/0);
  bcast(comm, out.first(in.size()), /*root=*/0);
}

void Api::reduce_user(const Comm& comm, std::span<const std::byte> in,
                      std::span<std::byte> out, std::size_t elem_size,
                      OpHandle op, Rank root) {
  require(comm.member(), "reduce_user on a communicator this rank is not in");
  require(elem_size > 0 && in.size() % elem_size == 0,
          "reduce_user buffer not a whole number of elements");
  auto it = user_ops_.find(op.id);
  require(it != user_ops_.end(), "reduce_user with unknown op handle");
  stats_.collectives++;
  const std::size_t count = in.size() / elem_size;
  const Tag tag = next_coll_tag(comm);
  const ReduceFn& fn = it->second;
  const CollTuning& tune = rt_.coll_tuning();
  if (comm.size() > 1 && in.size() >= tune.pipeline_min_bytes) {
    if (comm.rank() == root) {
      require(out.size() >= in.size(), "reduce_user output buffer too small");
    }
    pipelined_tree_reduce(
        *this, comm, in, out, root, tag, elem_size, tune.pipeline_chunk_bytes,
        [&](const std::byte* from, std::byte* acc, std::size_t n) {
          fn(from, acc, n);
        });
    return;
  }
  tree_reduce(*this, comm, in, out, root, tag,
              [&](const std::byte* from, std::byte* accum) {
                fn(from, accum, count);
              });
}

void Api::allreduce_user(const Comm& comm, std::span<const std::byte> in,
                         std::span<std::byte> out, std::size_t elem_size,
                         OpHandle op) {
  require(out.size() >= in.size(), "allreduce_user output buffer too small");
  const CollTuning& tune = rt_.coll_tuning();
  if (comm.size() > 1 && in.size() >= tune.ring_allreduce_min_bytes &&
      in.size() / static_cast<std::size_t>(comm.size()) >=
          tune.ring_min_chunk_bytes &&
      elem_size > 0 && in.size() % elem_size == 0 &&
      in.size() / elem_size >= static_cast<std::size_t>(comm.size())) {
    require(comm.member(),
            "allreduce_user on a communicator this rank is not in");
    auto it = user_ops_.find(op.id);
    require(it != user_ops_.end(), "allreduce_user with unknown op handle");
    stats_.collectives++;
    const Tag tag = next_coll_tag(comm);
    const ReduceFn& fn = it->second;
    ring_allreduce(*this, comm, in, out, elem_size, tag,
                   [&](const std::byte* from, std::byte* acc, std::size_t n) {
                     fn(from, acc, n);
                   });
    return;
  }
  reduce_user(comm, in, out, elem_size, op, /*root=*/0);
  bcast(comm, out.first(in.size()), /*root=*/0);
}

void Api::gather(const Comm& comm, std::span<const std::byte> in,
                 std::span<std::byte> out, Rank root) {
  require(comm.member(), "gather on a communicator this rank is not in");
  stats_.collectives++;
  const int p = comm.size();
  const std::size_t block = in.size();
  const Tag tag = next_coll_tag(comm);
  if (comm.rank() == root) {
    require(out.size() >= block * static_cast<std::size_t>(p),
            "gather output buffer too small");
    std::memcpy(out.data() + block * static_cast<std::size_t>(root), in.data(),
                block);
    for (Rank r = 0; r < p; ++r) {
      if (r == root) continue;
      recv(comm, out.subspan(block * static_cast<std::size_t>(r), block), r,
           tag, kColl);
    }
  } else {
    send(comm, in, root, tag, kColl);
  }
}

void Api::allgather(const Comm& comm, std::span<const std::byte> in,
                    std::span<std::byte> out) {
  require(comm.member(), "allgather on a communicator this rank is not in");
  stats_.collectives++;
  const int p = comm.size();
  const Rank r = comm.rank();
  const std::size_t block = in.size();
  require(out.size() >= block * static_cast<std::size_t>(p),
          "allgather output buffer too small");
  const Tag tag = next_coll_tag(comm);
  std::memcpy(out.data() + block * static_cast<std::size_t>(r), in.data(),
              block);
  if (p == 1) return;
  const Rank right = (r + 1) % p;
  const Rank left = (r - 1 + p) % p;
  // Ring: in step s we forward the block that originated s hops upstream.
  for (int s = 0; s < p - 1; ++s) {
    const std::size_t send_idx = static_cast<std::size_t>((r - s + p) % p);
    const std::size_t recv_idx = static_cast<std::size_t>((r - s - 1 + p) % p);
    Request sreq =
        isend(comm, out.subspan(send_idx * block, block), right, tag, kColl);
    recv(comm, out.subspan(recv_idx * block, block), left, tag, kColl);
    wait(sreq);
  }
}

void Api::alltoall(const Comm& comm, std::span<const std::byte> in,
                   std::span<std::byte> out) {
  require(comm.member(), "alltoall on a communicator this rank is not in");
  stats_.collectives++;
  const int p = comm.size();
  require(in.size() % static_cast<std::size_t>(p) == 0,
          "alltoall input not divisible into p blocks");
  const std::size_t block = in.size() / static_cast<std::size_t>(p);
  require(out.size() >= in.size(), "alltoall output buffer too small");
  const Tag tag = next_coll_tag(comm);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(2 * p));
  for (Rank r = 0; r < p; ++r) {
    const auto dst_block = out.subspan(static_cast<std::size_t>(r) * block, block);
    if (r == comm.rank()) {
      std::memcpy(dst_block.data(),
                  in.data() + static_cast<std::size_t>(r) * block, block);
    } else {
      reqs.push_back(irecv(comm, dst_block, r, tag, kColl));
    }
  }
  // All P-1 outgoing blocks leave as one fabric batch: each peer's inbox
  // takes its packet under one staging pass, and a receiver parked in
  // waitall is woken at most once per sender instead of per block.
  check_abort();
  const int context = comm.context(kColl);
  batch_.clear();
  batch_.reserve(static_cast<std::size_t>(p - 1));
  for (Rank r = 0; r < p; ++r) {
    if (r == comm.rank()) continue;
    append_framed(comm.to_world(r), context, tag,
                  in.subspan(static_cast<std::size_t>(r) * block, block));
  }
  rt_.fabric().send_batch(batch_);
  waitall(reqs);
}

void Api::scan(const Comm& comm, std::span<const std::byte> in,
               std::span<std::byte> out, Datatype type, Op op) {
  require(comm.member(), "scan on a communicator this rank is not in");
  require(out.size() >= in.size(), "scan output buffer too small");
  require(in.size() % datatype_size(type) == 0,
          "scan buffer not a whole number of elements");
  stats_.collectives++;
  const std::size_t count = in.size() / datatype_size(type);
  const Tag tag = next_coll_tag(comm);
  std::memcpy(out.data(), in.data(), in.size());
  if (comm.rank() > 0) {
    util::Bytes prefix = rt_.fabric().acquire_buffer(in.size());
    recv(comm, prefix, comm.rank() - 1, tag, kColl);
    apply_op(op, type, prefix.data(), out.data(), count);
    rt_.fabric().release_buffer(std::move(prefix));
  }
  if (comm.rank() + 1 < comm.size()) {
    send(comm, out.first(in.size()), comm.rank() + 1, tag, kColl);
  }
}

}  // namespace c3::simmpi
