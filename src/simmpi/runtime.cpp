#include "simmpi/runtime.hpp"

#include <thread>
#include <vector>

#include "simmpi/api.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace c3::simmpi {

Runtime::Runtime(int nranks, NetConfig cfg) : nranks_(nranks), cfg_(cfg) {
  if (nranks <= 0) throw util::UsageError("Runtime needs at least one rank");
}

Runtime::~Runtime() = default;

net::Fabric& Runtime::fabric() {
  if (!fabric_) throw util::UsageError("fabric() outside of run()");
  return *fabric_;
}

void Runtime::run(const std::function<void(Api&)>& rank_main) {
  // A fresh fabric per job execution: clean queues, cleared abort flag.
  std::unique_ptr<net::DeliveryPolicy> policy;
  if (cfg_.order == NetConfig::Order::kRandomReorder) {
    policy = std::make_unique<net::RandomReorderDelivery>(cfg_.seed, cfg_.p_hold,
                                                          cfg_.max_hold);
  } else {
    policy = std::make_unique<net::FifoDelivery>();
  }
  fabric_ = std::make_unique<net::Fabric>(nranks_, *policy);
  first_error_ = nullptr;
  failure_ = nullptr;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &rank_main] {
      try {
        Api api(*this, r);
        rank_main(api);
      } catch (const util::StoppingFailure&) {
        // The victim "hangs": it stops participating. The failure detector
        // (modelled by the fabric abort flag) tears the job down so the
        // runner can roll back to the last committed checkpoint.
        {
          std::lock_guard lock(err_mu_);
          if (!failure_) failure_ = std::current_exception();
        }
        fabric_->abort();
      } catch (const util::JobAborted&) {
        // Normal unwind of a surviving rank during teardown.
      } catch (...) {
        {
          std::lock_guard lock(err_mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        fabric_->abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (failure_) std::rethrow_exception(failure_);
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace c3::simmpi
