// Non-blocking communication requests.
//
// A Request is a shared handle to the state of one outstanding Isend or
// Irecv, completed by the owning rank's progress engine. Requests are only
// touched by their owning rank's thread (as in MPI, where a request may not
// be waited on by a different process).
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "simmpi/comm.hpp"
#include "simmpi/types.hpp"
#include "util/archive.hpp"

namespace c3::simmpi {

using util::Bytes;

enum class RequestKind : std::uint8_t { kSend, kRecv };

struct RequestState {
  RequestKind kind = RequestKind::kSend;
  bool complete = false;
  bool cancelled = false;
  // Recv-only fields:
  std::span<std::byte> out;     ///< destination buffer (copying mode)
  /// Owned-payload mode (irecv_owned): the matching engine *moves* the
  /// packet's buffer here instead of copying into `out` -- the zero-copy
  /// path for receives whose size is unknown or whose header is stripped
  /// by a layer above.
  bool owning = false;
  util::Bytes payload;          ///< the delivered wire buffer (owning mode)
  /// Owning mode, segmented messages: continuation-fragment buffers merged
  /// by inbox reassembly. The logical payload is `payload` followed by each
  /// entry in order; every buffer is released (or moved) by the consumer.
  std::vector<util::Bytes> frags;
  /// Communicator the receive was posted on. Borrowed, not copied (a Comm
  /// deep-copy heap-allocates its group): as in MPI, the communicator must
  /// outlive every request posted on it.
  const Comm* comm = nullptr;
  int context = 0;              ///< matching context id
  Rank src_world = kAnySource;  ///< matching source as a world rank (or any)
  Tag tag = kAnyTag;            ///< matching tag
  std::uint64_t post_order = 0; ///< order the receive was posted in
  Status status;                ///< filled on completion (comm-local source)
};

class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> st) : st_(std::move(st)) {}

  bool valid() const noexcept { return st_ != nullptr; }
  bool complete() const noexcept { return st_ && st_->complete; }
  const Status& status() const {
    require(st_ && st_->complete, "status of incomplete request");
    return st_->status;
  }
  RequestState* state() const noexcept { return st_.get(); }

 private:
  std::shared_ptr<RequestState> st_;
};

}  // namespace c3::simmpi
