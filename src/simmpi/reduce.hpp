// Reduction kernels for built-in and user-defined operations.
#pragma once

#include <cstddef>
#include <functional>

#include "simmpi/types.hpp"

namespace c3::simmpi {

/// User-defined elementwise reduction: combine `count` elements of `in`
/// into `inout` (inout = in OP inout). Must be associative and commutative,
/// as required of MPI_Op in the paper's target programs.
using ReduceFn =
    std::function<void(const std::byte* in, std::byte* inout, std::size_t count)>;

/// Apply a built-in op elementwise: inout[i] = in[i] OP inout[i].
void apply_op(Op op, Datatype type, const std::byte* in, std::byte* inout,
              std::size_t count);

}  // namespace c3::simmpi
