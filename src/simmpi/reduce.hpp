// Reduction kernels for built-in and user-defined operations.
#pragma once

#include <cstddef>
#include <functional>

#include "simmpi/types.hpp"

namespace c3::simmpi {

/// User-defined elementwise reduction: combine `count` elements of `in`
/// into `inout` (inout = in OP inout). Must be associative and commutative,
/// as required of MPI_Op in the paper's target programs.
using ReduceFn =
    std::function<void(const std::byte* in, std::byte* inout, std::size_t count)>;

/// Apply a built-in op elementwise: inout[i] = in[i] OP inout[i].
void apply_op(Op op, Datatype type, const std::byte* in, std::byte* inout,
              std::size_t count);

/// Contiguous element range owned by chunk `idx` when `count` elements are
/// split into `parts` near-equal chunks (the remainder spread over the
/// leading chunks). The ring collectives assign one chunk per rank; every
/// rank must compute identical partitions, so this is the single shared
/// definition.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t len = 0;
};
ChunkRange chunk_range(std::size_t count, int parts, int idx) noexcept;

}  // namespace c3::simmpi
