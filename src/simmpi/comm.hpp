// Communicators and groups.
//
// A Comm is a value type naming (a) an ordered group of world ranks and
// (b) a context-id base. Each communicator separates three traffic classes
// by context: application point-to-point, collective-internal messages, and
// the C3 protocol layer's control messages. Tag collisions across classes
// are therefore impossible, mirroring how real MPI implementations isolate
// collectives from user traffic. The control context also carries the
// coordination tree's relay hops (a parent re-sending pleaseCheckpoint /
// stopLogging / shutdown to its children, children aggregating fan-ins
// upward): every hop is an ordinary kCtrl send on the world communicator,
// so the per-source FIFO guarantee orders a round's phases on each tree
// edge (a child can never see phase 3 before the phase-1 relay).
#pragma once

#include <vector>

#include "simmpi/types.hpp"

namespace c3::simmpi {

/// Context-id classes within one communicator. kReplica is the reserved
/// lane for the erasure-coded checkpoint replica tier (parity shard
/// contributions, acks, and commit-time flush nudges): parity traffic can
/// never match application point-to-point, collective, or control
/// messages, and -- critically for recovery -- is invisible to the
/// protocol layer's message logging and replay.
enum class ContextClass : int { kP2p = 0, kColl = 1, kCtrl = 2, kReplica = 3 };

class Comm {
 public:
  Comm() = default;
  Comm(int context_base, std::vector<Rank> group, Rank my_world_rank)
      : context_base_(context_base), group_(std::move(group)) {
    for (std::size_t i = 0; i < group_.size(); ++i) {
      if (group_[i] == my_world_rank) {
        my_rank_ = static_cast<Rank>(i);
        break;
      }
    }
  }

  /// This process's rank within the communicator (-1 if not a member).
  Rank rank() const noexcept { return my_rank_; }
  int size() const noexcept { return static_cast<int>(group_.size()); }
  bool member() const noexcept { return my_rank_ >= 0; }

  /// Translate a communicator rank to a world rank.
  Rank to_world(Rank r) const {
    require(r >= 0 && r < size(), "rank out of range in communicator");
    return group_[static_cast<std::size_t>(r)];
  }

  /// Translate a world rank to a communicator rank (-1 if not a member).
  Rank from_world(Rank world) const noexcept {
    for (std::size_t i = 0; i < group_.size(); ++i) {
      if (group_[i] == world) return static_cast<Rank>(i);
    }
    return -1;
  }

  const std::vector<Rank>& group() const noexcept { return group_; }

  int context(ContextClass c) const noexcept {
    return context_base_ * 4 + static_cast<int>(c);
  }
  int context_base() const noexcept { return context_base_; }

  bool operator==(const Comm& other) const = default;

 private:
  int context_base_ = 0;
  std::vector<Rank> group_;
  Rank my_rank_ = -1;
};

}  // namespace c3::simmpi
