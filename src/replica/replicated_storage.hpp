// Diskless checkpoint tier: erasure-coded peer replication.
//
// ReplicatedStorage stacks *under* ckptstore::CheckpointStore and over any
// plain backend (the per-node "disk"):
//
//   CheckpointStore( ReplicatedStorage( MemoryStorage / DiskStorage ) )
//
// Every replicated put() of an encoded blob (epoch, rank, section) also
// contributes the blob to its parity group: ranks are partitioned into
// groups (replica/group.hpp) and each group's blobs for one (epoch,
// section) are folded into `parity_k` GF(256) parity shards,
//
//   P_j = sum_i coef(j, i) (x) D_i          (j = 0: plain XOR)
//
// stored on members of the *next* group under section
// "parity!<gid>!<j>!<section>". Losing up to parity_k members of a group
// (their data *and* their parity holdings) leaves every blob
// reconstructable from the survivors; losing parity_k + 1 fails loudly
// with a CorruptionError naming the group.
//
// Because the tier sits below the delta/compress pipeline, parity is
// computed over the small encoded blobs, and the existing GC already pins
// delta home epochs -- a reconstructed blob's references heal recursively
// through this tier's get().
//
// Two transports:
//   - loopback (default): contributions fold synchronously in-process;
//     used by store-level tests and the direct-drive benchmark.
//   - wire (enable_wire(), core::Job): contributions are queued per rank
//     and shipped from that rank's own thread (Process::pump -> drain())
//     over the reserved ContextClass::kReplica lane via Api::send_batch
//     with pooled buffers; the shard owner folds, persists, and acks.
//
// Parity shards persist on a small background pool so the parity write
// overlaps the members' own data writes (distinct modelled disks), and a
// shard is (re)written only when its group's fold is complete or a
// commit-time flush nudge arrives -- never once per contribution.
//
// Commit interlock: commit(epoch) blocks until every contribution for
// epochs <= epoch has been folded into a *persisted* parity shard and
// acked, then forwards the commit -- the recovery point is never recorded
// while a blob's parity coverage is still in flight. The control plane's
// phase-4 word carries an AND-aggregated "parity complete" bit
// (note_quiescent_hint) so the common case skips the wait machinery.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "replica/group.hpp"
#include "util/stable_storage.hpp"

namespace c3::simmpi {
class Api;
}

namespace c3::replica {

struct ReplicaConfig {
  int group_size = 4;  ///< ranks per parity group
  int parity_k = 1;    ///< parity shards per group (1 = XOR)
  /// Upper bound on the commit-time wait for parity acks before the
  /// commit fails with a diagnostic instead of hanging.
  std::chrono::milliseconds commit_timeout{30000};
};

/// Section prefix of parity shard blobs ("parity!<gid>!<j>!<section>").
inline constexpr char kParitySectionPrefix[] = "parity!";

class ReplicatedStorage final : public util::StableStorage {
 public:
  ReplicatedStorage(std::shared_ptr<util::StableStorage> inner, int ranks,
                    ReplicaConfig cfg = {});
  ~ReplicatedStorage() override;

  // ------------------------------------------------------- StableStorage
  void put(const util::BlobKey& key, const util::Bytes& data) override;
  void put(const util::BlobKey& key, util::Bytes&& data) override;
  std::optional<util::Bytes> get(const util::BlobKey& key) const override;
  void commit(int epoch) override;
  std::optional<int> committed_epoch() const override;
  void drop_epoch(int epoch) override;
  std::vector<int> list_epochs() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t bytes_written() const override;
  util::StorageStats storage_stats() const override;
  std::vector<util::LaneStats> lane_stats() const override;
  void wipe_rank(int rank) override;

  // --------------------------------------------------- wire integration
  /// Switch from loopback folding to wire shipping (core::Job wiring).
  void enable_wire();
  /// Reset in-flight replication state at the start of an execution
  /// (rollback hygiene: the fabric is recreated per execution, so queued
  /// frames and partial folds from the aborted run must not leak in).
  void begin_execution(std::uint64_t execution_id);
  /// Bind the calling rank thread's Api so commit() can make progress on
  /// its own replica lane while it waits (initiator-is-owner deadlock).
  void bind_thread_api(simmpi::Api* api);
  /// Ship this rank's queued contributions/acks and handle every frame
  /// waiting on the kReplica lane. Called from the rank's own thread
  /// (Process::pump and the commit wait loop). Returns true if any work
  /// was done.
  bool drain(simmpi::Api& api);
  /// True when rank `rank` has nothing replica-related in flight: the
  /// per-rank sample AND-aggregated into the phase-4 control word.
  bool rank_quiescent(int rank) const;
  /// All ranks quiescent for epochs <= `epoch`.
  bool quiescent_upto(int epoch) const;
  /// Phase-4 aggregate said every rank was quiescent when it stopped
  /// logging: lets commit() skip the flush-nudge grace period.
  void note_quiescent_hint(int epoch);
  /// Cancel any commit currently waiting for parity acks (it fails with a
  /// diagnostic immediately instead of running out the commit timeout).
  /// Called when an execution aborts: the rank threads that would pump
  /// those acks are gone, so the wait can only ever expire. Cleared by
  /// the next begin_execution().
  void abort_waits();

  const GroupMap& group_map() const noexcept { return map_; }
  util::StableStorage& inner() noexcept { return *inner_; }

 private:
  struct AccKey {
    int epoch;
    int gid;
    int j;
    std::string section;
    auto operator<=>(const AccKey&) const = default;
  };
  struct Contribution {
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
  };
  /// One parity shard being folded (lives logically on `owner`'s node).
  struct Acc {
    int owner = -1;
    util::Bytes acc;  ///< zero-padded parity accumulation
    std::map<int, Contribution> contributed;  ///< member index -> meta
    std::set<int> need_ack;  ///< member world ranks awaiting an ack
    bool dirty = false;      ///< folds since the last persist snapshot
    bool persisting = false;
  };
  struct PendKey {
    int epoch;
    int gid;
    std::string section;
    int member;
    auto operator<=>(const PendKey&) const = default;
  };
  struct OutFrame {
    int epoch;
    util::Bytes frame;
    std::vector<int> dsts;  ///< owner world ranks (self handled inline)
  };
  struct AckFrame {
    int epoch;
    int member;  ///< destination (the contributor)
    util::Bytes frame;
  };
  struct PersistJob {
    AccKey key;
    util::BlobKey blob_key;
    util::Bytes bytes;
    std::vector<int> covered;  ///< member world ranks this snapshot covers
  };

  bool replicated_key(const util::BlobKey& key) const;
  static std::string parity_section(int gid, int j, const std::string& sec);
  void contribute(const util::BlobKey& key, const util::Bytes& data);
  /// Fold one contribution into every shard `owner_rank` owns for it.
  /// Pre: mu_ held. Appends persist work to `ready` when a fold completes
  /// its group.
  void fold_locked(int owner_rank, int epoch, int gid, int member,
                   const std::string& section, std::uint32_t crc,
                   std::uint64_t orig_len, std::span<const std::byte> payload,
                   std::vector<AccKey>* ready);
  /// Snapshot `key`'s shard and enqueue its backend write. Pre: mu_ held.
  void schedule_persist_locked(const AccKey& key);
  /// Persist every dirty shard owned by `owner_rank` (-1: all owners)
  /// for epochs <= `epoch`.
  void persist_dirty_upto(int owner_rank, int epoch);
  void on_persisted(const AccKey& key, const std::vector<int>& covered);
  void ack_contribution(const PendKey& key);
  void handle_frame(int my_rank, std::span<const std::byte> bytes,
                    std::vector<AckFrame>* acks_out);
  util::Bytes serialize_parity_locked(const AccKey& key, const Acc& acc) const;
  /// Reconstruct a missing replicated blob from parity + surviving peers;
  /// heals the backend on success. nullopt when no parity covers the key.
  std::optional<util::Bytes> reconstruct(const util::BlobKey& key) const;
  void persist_worker();
  void wait_for_quiescence(int epoch);

  std::shared_ptr<util::StableStorage> inner_;
  int ranks_;
  ReplicaConfig cfg_;
  GroupMap map_;
  bool wire_ = false;
  std::atomic<std::uint64_t> exec_id_{0};
  std::atomic<int> quiescent_hint_{-1};
  /// Set by abort_waits(): in-progress commit waits fail fast instead of
  /// running out the timeout against ranks that no longer pump.
  std::atomic<bool> abort_waits_{false};

  mutable std::mutex mu_;
  std::map<AccKey, Acc> accs_;
  std::map<PendKey, int> pending_;  ///< contribution -> acks outstanding
  std::set<PendKey> seen_;  ///< contributions this execution (no overwrite)
  std::vector<std::deque<OutFrame>> outbox_;    ///< per member rank
  std::vector<std::deque<AckFrame>> ack_outbox_;  ///< per owner rank
  /// Serializes reconstruction/healing (never held with mu_).
  mutable std::mutex recon_mu_;

  // Persist pool: parity writes overlap members' data writes.
  mutable std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable pool_idle_cv_;
  std::deque<PersistJob> pool_queue_;
  std::size_t pool_in_flight_ = 0;
  bool pool_stop_ = false;
  std::exception_ptr pool_error_;
  std::vector<std::thread> pool_threads_;

  // Replica accounting (surfaced through storage_stats()).
  mutable std::atomic<std::uint64_t> parity_bytes_sent_{0};
  mutable std::atomic<std::uint64_t> parity_bytes_received_{0};
  mutable std::atomic<std::uint64_t> reconstruct_reads_{0};
  mutable std::atomic<std::uint64_t> parity_acks_waited_{0};
  mutable std::atomic<std::uint64_t> commit_stall_ns_{0};
};

}  // namespace c3::replica
