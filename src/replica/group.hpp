// Parity-group placement for the diskless replica tier.
//
// Ranks are partitioned into consecutive groups of `group_size` (the
// last group absorbs the remainder). Each (epoch, group) owns
// `parity_k` parity shards; shard j of group g lives on a member of the
// *next* group, rotated by epoch, so a lost node never holds both its
// own data and the parity that protects it (whenever there are at
// least two groups) and parity writes spread across ranks over time
// instead of convoying on one "buddy" disk -- the SCR-style buddy
// layout from the ROADMAP, generalized to k shards.
#pragma once

#include <vector>

#include "util/error.hpp"
#include "util/gf256.hpp"

namespace c3::replica {

class GroupMap {
 public:
  GroupMap(int ranks, int group_size, int parity_k)
      : ranks_(ranks), group_size_(group_size), parity_k_(parity_k) {
    if (ranks < 1) throw util::UsageError("replica: need at least one rank");
    if (group_size < 2)
      throw util::UsageError("replica: group_size must be >= 2");
    if (parity_k < 1 || parity_k >= group_size)
      throw util::UsageError("replica: need 1 <= parity_k < group_size");
    ngroups_ = ranks / group_size;
    if (ngroups_ == 0) ngroups_ = 1;  // one undersized group
  }

  int ranks() const noexcept { return ranks_; }
  int parity_k() const noexcept { return parity_k_; }
  int ngroups() const noexcept { return ngroups_; }

  int gid_of(int rank) const {
    check_rank(rank);
    const int g = rank / group_size_;
    return g >= ngroups_ ? ngroups_ - 1 : g;  // remainder joins last group
  }

  /// First rank of group `gid`.
  int first_rank(int gid) const {
    check_gid(gid);
    return gid * group_size_;
  }

  /// Number of members in group `gid` (group_size, except the last group
  /// which absorbs `ranks % group_size`).
  int group_count(int gid) const {
    check_gid(gid);
    if (gid < ngroups_ - 1) return group_size_;
    return ranks_ - first_rank(gid);
  }

  /// Zero-based index of `rank` within its group (the gf256 evaluation
  /// point is index + 1).
  int member_index(int rank) const { return rank - first_rank(gid_of(rank)); }

  std::vector<int> members(int gid) const {
    std::vector<int> out;
    const int base = first_rank(gid);
    const int n = group_count(gid);
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) out.push_back(base + i);
    return out;
  }

  /// World rank holding parity shard `j` of group `gid` at `epoch`:
  /// member ((epoch + j) mod size) of the next group. With a single
  /// group the owner rotates within the group itself (degraded mode: a
  /// lost owner may take its group's parity with it).
  int owner(int gid, int j, int epoch) const {
    check_gid(gid);
    if (j < 0 || j >= parity_k_)
      throw util::UsageError("replica: parity shard index out of range");
    const int og = (gid + 1) % ngroups_;
    const int n = group_count(og);
    const int slot = ((epoch % n) + n + (j % n)) % n;
    return first_rank(og) + slot;
  }

  /// Encoding coefficient of member index `i` in parity row `j`.
  static std::uint8_t coef(int j, int i) { return util::gf256::coef(j, i); }

 private:
  void check_rank(int rank) const {
    if (rank < 0 || rank >= ranks_)
      throw util::UsageError("replica: rank outside the job");
  }
  void check_gid(int gid) const {
    if (gid < 0 || gid >= ngroups_)
      throw util::UsageError("replica: group id out of range");
  }

  int ranks_;
  int group_size_;
  int parity_k_;
  int ngroups_;
};

}  // namespace c3::replica
