#include "replica/replicated_storage.hpp"

#include <algorithm>
#include <sstream>

#include "net/transport.hpp"
#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"
#include "util/clock.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/gf256.hpp"

namespace c3::replica {
namespace {

using util::Bytes;
using util::BlobKey;

// Frame kinds on the kReplica context (all share tag 0; the leading magic
// distinguishes them, and the execution id drops strays).
constexpr std::uint32_t kContribMagic = 0x52504331;  // "RPC1"
constexpr std::uint32_t kAckMagic = 0x52504131;      // "RPA1"
constexpr std::uint32_t kFlushMagic = 0x52504631;    // "RPF1"
constexpr std::uint32_t kParityMagic = 0x52505331;   // "RPS1"
constexpr simmpi::Tag kReplicaTag = 0;

/// The committing rank thread's Api, bound by core::Process so commit()
/// can ship its own lane while waiting (initiator-is-owner deadlock).
thread_local simmpi::Api* t_api = nullptr;

struct ParsedParity {
  int epoch = 0;
  int gid = 0;
  int j = 0;
  int group_n = 0;
  std::map<int, std::pair<std::uint64_t, std::uint32_t>> contributed;
  Bytes parity;
};

ParsedParity parse_parity(std::span<const std::byte> blob) {
  util::Reader r(blob);
  if (r.get<std::uint32_t>() != kParityMagic)
    throw util::CorruptionError("replica: bad parity shard magic");
  ParsedParity p;
  p.epoch = r.get<std::int32_t>();
  p.gid = r.get<std::int32_t>();
  p.j = r.get<std::int32_t>();
  p.group_n = r.get<std::int32_t>();
  const auto n = r.get<std::uint16_t>();
  for (std::uint16_t i = 0; i < n; ++i) {
    const int mi = r.get<std::uint16_t>();
    const auto len = r.get<std::uint64_t>();
    const auto crc = r.get<std::uint32_t>();
    p.contributed[mi] = {len, crc};
  }
  const auto padded = r.get<std::uint64_t>();
  p.parity = r.get_raw(padded);
  return p;
}

}  // namespace

ReplicatedStorage::ReplicatedStorage(
    std::shared_ptr<util::StableStorage> inner, int ranks, ReplicaConfig cfg)
    : inner_(std::move(inner)),
      ranks_(ranks),
      cfg_(cfg),
      map_(ranks, cfg.group_size, cfg.parity_k),
      outbox_(static_cast<std::size_t>(ranks)),
      ack_outbox_(static_cast<std::size_t>(ranks)) {
  if (!inner_) throw util::UsageError("replica: null inner storage");
  // Parity writes overlap the members' own data writes on distinct
  // modelled disks, so a worker shy of shards-in-flight serializes whole
  // disk-write waves behind the commit barrier. One worker per shard
  // (ngroups x k per epoch), capped only as a thread-count backstop.
  const std::size_t workers = std::min<std::size_t>(
      64, std::max<std::size_t>(
              1, static_cast<std::size_t>(map_.ngroups() * cfg_.parity_k)));
  pool_threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    pool_threads_.emplace_back([this] { persist_worker(); });
}

ReplicatedStorage::~ReplicatedStorage() {
  {
    std::lock_guard l(pool_mu_);
    pool_stop_ = true;
  }
  pool_cv_.notify_all();
  for (auto& t : pool_threads_) t.join();
}

// ------------------------------------------------------------ key routing

bool ReplicatedStorage::replicated_key(const BlobKey& key) const {
  if (key.rank < 0 || key.rank >= ranks_) return false;
  return key.section.rfind(kParitySectionPrefix, 0) != 0;
}

std::string ReplicatedStorage::parity_section(int gid, int j,
                                              const std::string& sec) {
  return std::string(kParitySectionPrefix) + std::to_string(gid) + "!" +
         std::to_string(j) + "!" + sec;
}

// -------------------------------------------------------------- put path

void ReplicatedStorage::put(const BlobKey& key, const Bytes& data) {
  if (replicated_key(key)) contribute(key, data);
  inner_->put(key, data);
}

void ReplicatedStorage::put(const BlobKey& key, Bytes&& data) {
  // Contribute *before* the throttled backend write: the fold (loopback)
  // or the outbox enqueue (wire) is cheap CPU work, so the parity shard's
  // own write proceeds concurrently with this member's data write.
  if (replicated_key(key)) contribute(key, data);
  inner_->put(key, std::move(data));
}

void ReplicatedStorage::contribute(const BlobKey& key, const Bytes& data) {
  const int gid = map_.gid_of(key.rank);
  const int k = cfg_.parity_k;
  const std::uint32_t crc = util::crc32(data);
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) owners.push_back(map_.owner(gid, j, key.epoch));

  std::vector<AccKey> ready;
  {
    std::lock_guard l(mu_);
    const PendKey pk{key.epoch, gid, key.section, key.rank};
    if (!seen_.insert(pk).second) {
      throw util::UsageError(
          "replica: blob {epoch=" + std::to_string(key.epoch) +
          ", rank=" + std::to_string(key.rank) + ", section=" + key.section +
          "} overwritten within one execution; the replica tier cannot "
          "retract a folded parity contribution");
    }
    pending_[pk] = k;
    parity_bytes_sent_.fetch_add(data.size() * owners.size(),
                                 std::memory_order_relaxed);
    if (wire_) {
      util::Writer w(data.size() + key.section.size() + 64);
      w.put<std::uint32_t>(kContribMagic);
      w.put<std::uint64_t>(exec_id_.load(std::memory_order_relaxed));
      w.put<std::int32_t>(key.epoch);
      w.put<std::int32_t>(gid);
      w.put<std::int32_t>(key.rank);
      w.put_string(key.section);
      w.put<std::uint32_t>(crc);
      w.put<std::uint64_t>(data.size());
      w.put_raw(data);
      outbox_[static_cast<std::size_t>(key.rank)].push_back(
          {key.epoch, w.take(), owners});
    } else {
      for (int owner : owners)
        fold_locked(owner, key.epoch, gid, key.rank, key.section, crc,
                    data.size(), data, &ready);
    }
  }
  for (const AccKey& ak : ready) {
    std::lock_guard l(mu_);
    schedule_persist_locked(ak);
  }
}

void ReplicatedStorage::fold_locked(int owner_rank, int epoch, int gid,
                                    int member, const std::string& section,
                                    std::uint32_t crc, std::uint64_t orig_len,
                                    std::span<const std::byte> payload,
                                    std::vector<AccKey>* ready) {
  for (int j = 0; j < cfg_.parity_k; ++j) {
    if (map_.owner(gid, j, epoch) != owner_rank) continue;
    const AccKey ak{epoch, gid, j, section};
    Acc& a = accs_[ak];
    a.owner = owner_rank;
    const int mi = map_.member_index(member);
    if (a.contributed.count(mi)) continue;  // duplicate frame: idempotent
    if (a.acc.size() < payload.size())
      a.acc.resize(payload.size());  // zero-extend (vector value-init)
    util::gf256::axpy(a.acc.data(), payload.data(), payload.size(),
                      GroupMap::coef(j, mi));
    a.contributed[mi] = {orig_len, crc};
    a.need_ack.insert(member);
    a.dirty = true;
    parity_bytes_received_.fetch_add(payload.size(),
                                     std::memory_order_relaxed);
    if (static_cast<int>(a.contributed.size()) == map_.group_count(gid) &&
        ready != nullptr)
      ready->push_back(ak);
  }
}

// ------------------------------------------------------- parity persists

util::Bytes ReplicatedStorage::serialize_parity_locked(const AccKey& key,
                                                       const Acc& acc) const {
  util::Writer w(acc.acc.size() + 64);
  w.put<std::uint32_t>(kParityMagic);
  w.put<std::int32_t>(key.epoch);
  w.put<std::int32_t>(key.gid);
  w.put<std::int32_t>(key.j);
  w.put<std::int32_t>(map_.group_count(key.gid));
  w.put<std::uint16_t>(static_cast<std::uint16_t>(acc.contributed.size()));
  for (const auto& [mi, c] : acc.contributed) {
    w.put<std::uint16_t>(static_cast<std::uint16_t>(mi));
    w.put<std::uint64_t>(c.len);
    w.put<std::uint32_t>(c.crc);
  }
  w.put<std::uint64_t>(acc.acc.size());
  w.put_raw(acc.acc);
  return w.take();
}

void ReplicatedStorage::schedule_persist_locked(const AccKey& key) {
  auto it = accs_.find(key);
  if (it == accs_.end()) return;
  Acc& a = it->second;
  if (!a.dirty || a.persisting) return;  // on_persisted reschedules dirty
  a.persisting = true;
  a.dirty = false;
  PersistJob job;
  job.key = key;
  job.blob_key = {key.epoch, a.owner,
                  parity_section(key.gid, key.j, key.section)};
  job.bytes = serialize_parity_locked(key, a);
  job.covered.assign(a.need_ack.begin(), a.need_ack.end());
  a.need_ack.clear();
  {
    std::lock_guard pl(pool_mu_);
    pool_queue_.push_back(std::move(job));
  }
  pool_cv_.notify_one();
}

void ReplicatedStorage::persist_dirty_upto(int owner_rank, int epoch) {
  std::vector<AccKey> todo;
  {
    std::lock_guard l(mu_);
    for (const auto& [ak, a] : accs_) {
      if (ak.epoch > epoch) continue;
      if (owner_rank >= 0 && a.owner != owner_rank) continue;
      if (a.dirty && !a.persisting) todo.push_back(ak);
    }
  }
  for (const AccKey& ak : todo) {
    std::lock_guard l(mu_);
    schedule_persist_locked(ak);
  }
}

void ReplicatedStorage::persist_worker() {
  for (;;) {
    PersistJob job;
    {
      std::unique_lock l(pool_mu_);
      pool_cv_.wait(l, [&] { return pool_stop_ || !pool_queue_.empty(); });
      if (pool_queue_.empty()) return;  // stop requested, queue drained
      job = std::move(pool_queue_.front());
      pool_queue_.pop_front();
      ++pool_in_flight_;
    }
    bool ok = true;
    try {
      inner_->put(job.blob_key, std::move(job.bytes));
    } catch (...) {
      ok = false;
      std::lock_guard pl(pool_mu_);
      if (!pool_error_) pool_error_ = std::current_exception();
    }
    on_persisted(job.key, ok ? job.covered : std::vector<int>{});
    if (!ok) {
      // Re-mark for retry so the shard is not wedged behind the latched
      // error (commit surfaces the error itself).
      std::lock_guard l(mu_);
      auto it = accs_.find(job.key);
      if (it != accs_.end()) {
        it->second.dirty = true;
        for (int m : job.covered) it->second.need_ack.insert(m);
      }
    }
    {
      std::lock_guard pl(pool_mu_);
      --pool_in_flight_;
    }
    pool_idle_cv_.notify_all();
  }
}

void ReplicatedStorage::on_persisted(const AccKey& key,
                                     const std::vector<int>& covered) {
  std::lock_guard l(mu_);
  auto it = accs_.find(key);
  if (it == accs_.end()) return;  // wiped/dropped/reset while in flight
  Acc& a = it->second;
  a.persisting = false;
  if (a.dirty) schedule_persist_locked(key);
  for (int member : covered) {
    const PendKey pk{key.epoch, key.gid, key.section, member};
    if (wire_ && member != a.owner) {
      util::Writer w(key.section.size() + 48);
      w.put<std::uint32_t>(kAckMagic);
      w.put<std::uint64_t>(exec_id_.load(std::memory_order_relaxed));
      w.put<std::int32_t>(key.epoch);
      w.put<std::int32_t>(key.gid);
      w.put<std::int32_t>(key.j);
      w.put<std::int32_t>(member);
      w.put_string(key.section);
      ack_outbox_[static_cast<std::size_t>(a.owner)].push_back(
          {key.epoch, member, w.take()});
    } else {
      ack_contribution(pk);
    }
  }
}

void ReplicatedStorage::ack_contribution(const PendKey& key) {
  // Pre: mu_ held.
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  if (--it->second <= 0) pending_.erase(it);
}

// ------------------------------------------------------------- wire lane

void ReplicatedStorage::enable_wire() { wire_ = true; }

void ReplicatedStorage::bind_thread_api(simmpi::Api* api) { t_api = api; }

void ReplicatedStorage::begin_execution(std::uint64_t execution_id) {
  // Rollback hygiene: the fabric is rebuilt per execution so no frame
  // survives on the wire; everything still queued or half-folded here is
  // from the aborted run and must not leak into the new one.
  {
    std::unique_lock pl(pool_mu_);
    pool_idle_cv_.wait(
        pl, [&] { return pool_queue_.empty() && pool_in_flight_ == 0; });
  }
  std::lock_guard l(mu_);
  exec_id_.store(execution_id, std::memory_order_relaxed);
  quiescent_hint_.store(-1, std::memory_order_relaxed);
  abort_waits_.store(false, std::memory_order_relaxed);
  accs_.clear();
  pending_.clear();
  seen_.clear();
  for (auto& q : outbox_) q.clear();
  for (auto& q : ack_outbox_) q.clear();
}

bool ReplicatedStorage::drain(simmpi::Api& api) {
  const int me = api.world_rank();
  bool did = false;
  std::deque<OutFrame> mine;
  std::deque<AckFrame> acks;
  {
    std::lock_guard l(mu_);
    mine.swap(outbox_[static_cast<std::size_t>(me)]);
    acks.swap(ack_outbox_[static_cast<std::size_t>(me)]);
  }
  std::vector<simmpi::Rank> wire_dsts;
  for (OutFrame& of : mine) {
    did = true;
    wire_dsts.clear();
    bool self = false;
    for (int d : of.dsts) {
      if (d == me) {
        self = true;
      } else {
        wire_dsts.push_back(d);
      }
    }
    if (!wire_dsts.empty())
      api.send_batch(api.world(), of.frame, wire_dsts, kReplicaTag,
                     simmpi::ContextClass::kReplica);
    if (self) handle_frame(me, of.frame, nullptr);
  }
  for (AckFrame& af : acks) {
    did = true;
    api.send(api.world(), std::span<const std::byte>(af.frame), af.member,
             kReplicaTag, simmpi::ContextClass::kReplica);
  }
  api.poll();
  while (auto pi = api.peek(api.world(), simmpi::kAnySource, simmpi::kAnyTag,
                            simmpi::ContextClass::kReplica)) {
    auto msg = api.recv_any(api.world(), pi->source, pi->tag,
                            simmpi::ContextClass::kReplica);
    handle_frame(me, msg.first, nullptr);
    api.runtime().fabric().release_buffer(std::move(msg.first));
    did = true;
  }
  return did;
}

void ReplicatedStorage::handle_frame(int my_rank,
                                     std::span<const std::byte> bytes,
                                     std::vector<AckFrame>*) {
  util::Reader r(bytes);
  const auto magic = r.get<std::uint32_t>();
  const auto exec = r.get<std::uint64_t>();
  if (exec != exec_id_.load(std::memory_order_relaxed)) return;  // stale
  if (magic == kContribMagic) {
    const int epoch = r.get<std::int32_t>();
    const int gid = r.get<std::int32_t>();
    const int member = r.get<std::int32_t>();
    const std::string section = r.get_string();
    const auto crc = r.get<std::uint32_t>();
    const auto orig_len = r.get<std::uint64_t>();
    const auto payload = r.get_span(r.remaining());
    if (orig_len != payload.size())
      throw util::CorruptionError("replica: contribution length mismatch");
    std::vector<AccKey> ready;
    {
      std::lock_guard l(mu_);
      fold_locked(my_rank, epoch, gid, member, section, crc, orig_len,
                  payload, &ready);
    }
    for (const AccKey& ak : ready) {
      std::lock_guard l(mu_);
      schedule_persist_locked(ak);
    }
  } else if (magic == kAckMagic) {
    const int epoch = r.get<std::int32_t>();
    const int gid = r.get<std::int32_t>();
    r.get<std::int32_t>();  // j (informational)
    const int member = r.get<std::int32_t>();
    const std::string section = r.get_string();
    std::lock_guard l(mu_);
    ack_contribution({epoch, gid, section, member});
  } else if (magic == kFlushMagic) {
    const int epoch = r.get<std::int32_t>();
    // Commit-time nudge: persist whatever this owner has folded so far
    // (partial groups included -- e.g. the single-member retention-meta
    // contribution) so its contributors can be acked.
    persist_dirty_upto(my_rank, epoch);
  } else {
    throw util::CorruptionError("replica: unknown frame magic");
  }
}

// --------------------------------------------------------------- commit

bool ReplicatedStorage::quiescent_upto(int epoch) const {
  std::lock_guard l(mu_);
  for (const auto& [pk, n] : pending_)
    if (pk.epoch <= epoch && n > 0) return false;
  for (const auto& q : outbox_)
    for (const auto& f : q)
      if (f.epoch <= epoch) return false;
  for (const auto& q : ack_outbox_)
    for (const auto& f : q)
      if (f.epoch <= epoch) return false;
  return true;
}

bool ReplicatedStorage::rank_quiescent(int rank) const {
  std::lock_guard l(mu_);
  if (rank < 0 || rank >= ranks_) return true;
  if (!outbox_[static_cast<std::size_t>(rank)].empty()) return false;
  if (!ack_outbox_[static_cast<std::size_t>(rank)].empty()) return false;
  for (const auto& [pk, n] : pending_)
    if (pk.member == rank && n > 0) return false;
  return true;
}

void ReplicatedStorage::note_quiescent_hint(int epoch) {
  quiescent_hint_.store(epoch, std::memory_order_relaxed);
}

void ReplicatedStorage::abort_waits() {
  abort_waits_.store(true, std::memory_order_relaxed);
}

void ReplicatedStorage::commit(int epoch) {
  const auto t0 = util::MonoClock::now();
  {
    std::lock_guard l(mu_);
    std::uint64_t waited = 0;
    for (const auto& [pk, n] : pending_)
      if (pk.epoch <= epoch) waited += static_cast<std::uint64_t>(n);
    parity_acks_waited_.fetch_add(waited, std::memory_order_relaxed);
  }
  if (!wire_) {
    persist_dirty_upto(-1, epoch);
    std::unique_lock pl(pool_mu_);
    pool_idle_cv_.wait(
        pl, [&] { return pool_queue_.empty() && pool_in_flight_ == 0; });
    if (pool_error_) {
      auto e = pool_error_;
      pool_error_ = nullptr;
      std::rethrow_exception(e);
    }
  } else {
    wait_for_quiescence(epoch);
  }
  commit_stall_ns_.fetch_add(util::ns_since(t0), std::memory_order_relaxed);
  inner_->commit(epoch);
}

void ReplicatedStorage::wait_for_quiescence(int epoch) {
  simmpi::Api* api = t_api;
  const auto deadline = util::MonoClock::now() + cfg_.commit_timeout;
  // When the phase-4 AND-aggregate already saw every rank quiescent, the
  // first check normally passes and no nudge is ever sent; otherwise give
  // in-flight frames one drain cycle before the first nudge.
  auto last_nudge = util::MonoClock::now();
  if (quiescent_hint_.load(std::memory_order_relaxed) < epoch)
    last_nudge -= std::chrono::hours(1);
  for (;;) {
    {
      std::lock_guard pl(pool_mu_);
      if (pool_error_) {
        auto e = pool_error_;
        pool_error_ = nullptr;
        std::rethrow_exception(e);
      }
    }
    if (quiescent_upto(epoch)) return;
    if (abort_waits_.load(std::memory_order_relaxed)) {
      // The execution died under us: the rank threads that would drain
      // the outstanding acks are gone. Fail the commit now -- running
      // out the timeout instead would stall every restart by the full
      // commit_timeout (a deferred COW commit waits here on a thread
      // with no Api to pump).
      throw util::JobAborted(
          "replica: commit(" + std::to_string(epoch) +
          ") aborted while waiting for parity acks (execution rollback)");
    }
    if (api != nullptr) {
      drain(*api);
      // Persist this rank's own folded shards without waiting for a
      // self-addressed nudge.
      persist_dirty_upto(api->world_rank(), epoch);
      if (quiescent_upto(epoch)) return;
      // Nudge the owners of still-pending contributions so partial
      // groups (single-member sections like the retention meta) persist
      // and ack. Re-send periodically: a contribution that was still in
      // another rank's outbox at the first nudge needs a later one.
      const auto now = util::MonoClock::now();
      if (now - last_nudge > std::chrono::milliseconds(1)) {
        last_nudge = now;
        std::set<int> owners;
        {
          std::lock_guard l(mu_);
          for (const auto& [pk, n] : pending_) {
            if (pk.epoch > epoch || n <= 0) continue;
            for (int j = 0; j < cfg_.parity_k; ++j)
              owners.insert(map_.owner(pk.gid, j, pk.epoch));
          }
        }
        owners.erase(api->world_rank());
        if (!owners.empty()) {
          util::Writer w(16);
          w.put<std::uint32_t>(kFlushMagic);
          w.put<std::uint64_t>(exec_id_.load(std::memory_order_relaxed));
          w.put<std::int32_t>(epoch);
          const Bytes frame = w.take();
          for (int o : owners)
            api->send(api->world(), std::span<const std::byte>(frame), o,
                      kReplicaTag, simmpi::ContextClass::kReplica);
        }
      }
      api->idle_wait(std::chrono::microseconds(200));
    } else {
      // No Api on this thread (a deferred COW commit finalizing on the
      // committer): it cannot send nudges itself, and without one a
      // partial group's owner never persists + acks (single-member
      // sections like the retention meta wait for exactly this signal).
      // Route the nudge through the pending contributors' outboxes --
      // their rank threads ship it on the next pump, and a self-addressed
      // frame is handled locally at ship time.
      const auto now = util::MonoClock::now();
      if (now - last_nudge > std::chrono::milliseconds(1)) {
        last_nudge = now;
        util::Writer w(16);
        w.put<std::uint32_t>(kFlushMagic);
        w.put<std::uint64_t>(exec_id_.load(std::memory_order_relaxed));
        w.put<std::int32_t>(epoch);
        const util::Bytes frame = w.take();
        std::lock_guard l(mu_);
        std::map<int, std::set<int>> owners_by_member;
        for (const auto& [pk, n] : pending_) {
          if (pk.epoch > epoch || n <= 0) continue;
          for (int j = 0; j < cfg_.parity_k; ++j)
            owners_by_member[pk.member].insert(map_.owner(pk.gid, j, pk.epoch));
        }
        for (auto& [member, owners] : owners_by_member) {
          // An unshipped frame already queued carries any earlier nudge;
          // don't pile more onto a rank that has not pumped yet.
          auto& box = outbox_[static_cast<std::size_t>(member)];
          if (!box.empty()) continue;
          OutFrame of;
          of.epoch = epoch;
          of.frame = frame;
          of.dsts.assign(owners.begin(), owners.end());
          box.push_back(std::move(of));
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (util::MonoClock::now() > deadline) {
      std::ostringstream os;
      os << "replica: commit(" << epoch
         << ") timed out waiting for parity acks;";
      std::lock_guard l(mu_);
      int listed = 0;
      for (const auto& [pk, n] : pending_) {
        if (pk.epoch > epoch) continue;
        if (++listed > 8) {
          os << " ...";
          break;
        }
        os << " {epoch=" << pk.epoch << " rank=" << pk.member << " section="
           << pk.section << " acks_left=" << n << "}";
      }
      throw util::CorruptionError(os.str());
    }
  }
}

// ---------------------------------------------------------- reconstruct

std::optional<Bytes> ReplicatedStorage::get(const BlobKey& key) const {
  if (auto hit = inner_->get(key)) return hit;
  if (!replicated_key(key)) return std::nullopt;
  return reconstruct(key);
}

std::optional<Bytes> ReplicatedStorage::reconstruct(const BlobKey& key) const {
  std::lock_guard rl(recon_mu_);
  if (auto hit = inner_->get(key)) return hit;  // healed by a racing read

  const int gid = map_.gid_of(key.rank);
  const int target_mi = map_.member_index(key.rank);
  std::vector<ParsedParity> shards;
  for (int j = 0; j < cfg_.parity_k; ++j) {
    const int owner = map_.owner(gid, j, key.epoch);
    const auto blob =
        inner_->get({key.epoch, owner, parity_section(gid, j, key.section)});
    if (!blob) continue;
    shards.push_back(parse_parity(*blob));
  }
  if (shards.empty()) return std::nullopt;  // never replicated: honest miss

  // Post-commit all shards agree on the contributed set; mid-flight a
  // shard persisted from a partial fold may trail. Reconstruct over the
  // maximal set and use only shards that carry exactly it.
  const auto maximal =
      std::max_element(shards.begin(), shards.end(),
                       [](const ParsedParity& a, const ParsedParity& b) {
                         return a.contributed.size() < b.contributed.size();
                       })
          ->contributed;
  if (!maximal.count(target_mi)) return std::nullopt;  // member never wrote

  std::size_t padded = 0;
  for (const auto& s : shards) padded = std::max(padded, s.parity.size());

  // Fetch survivors; anything missing (or CRC-damaged, e.g. torn) joins
  // the unknowns.
  std::map<int, Bytes> known;
  std::vector<int> unknowns;
  const int base = map_.first_rank(gid);
  for (const auto& [mi, meta] : maximal) {
    if (mi == target_mi) {
      unknowns.push_back(mi);
      continue;
    }
    auto blob = inner_->get({key.epoch, base + mi, key.section});
    if (blob && blob->size() == meta.first &&
        util::crc32(*blob) == meta.second) {
      blob->resize(padded);
      known.emplace(mi, std::move(*blob));
    } else {
      unknowns.push_back(mi);
    }
  }

  std::vector<std::vector<std::uint8_t>> coefs;
  std::vector<Bytes> rhs;
  for (ParsedParity& s : shards) {
    if (s.contributed != maximal) continue;  // stale partial fold
    s.parity.resize(padded);
    for (const auto& [mi, blob] : known)
      util::gf256::axpy(s.parity.data(), blob.data(), padded,
                        GroupMap::coef(s.j, mi));
    std::vector<std::uint8_t> row;
    row.reserve(unknowns.size());
    for (int mi : unknowns) row.push_back(GroupMap::coef(s.j, mi));
    coefs.push_back(std::move(row));
    rhs.push_back(std::move(s.parity));
  }
  const auto diag = [&](const std::string& why) {
    std::ostringstream os;
    os << "replica: cannot reconstruct {epoch=" << key.epoch
       << " rank=" << key.rank << " section=" << key.section << "}: group "
       << gid << " lost " << unknowns.size() << " of " << maximal.size()
       << " data shards with " << coefs.size()
       << " usable parity shards (parity_k=" << cfg_.parity_k << "): " << why;
    return os.str();
  };
  if (coefs.size() < unknowns.size())
    throw util::CorruptionError(
        diag("more group members lost than parity shards survive"));

  std::vector<Bytes> solved;
  try {
    solved = util::gf256::solve_erasures(std::move(coefs), std::move(rhs),
                                         padded);
  } catch (const util::CorruptionError& e) {
    throw util::CorruptionError(diag(e.what()));
  }

  std::optional<Bytes> result;
  for (std::size_t u = 0; u < unknowns.size(); ++u) {
    const int mi = unknowns[u];
    const auto& meta = maximal.at(mi);
    Bytes bytes = std::move(solved[u]);
    bytes.resize(meta.first);
    if (util::crc32(bytes) != meta.second)
      throw util::CorruptionError(diag("reconstructed shard failed its CRC"));
    reconstruct_reads_.fetch_add(1, std::memory_order_relaxed);
    if (mi == target_mi) result = bytes;
    // Heal: later reads (including delta home-epoch resolution) hit the
    // backend directly.
    inner_->put({key.epoch, base + mi, key.section}, std::move(bytes));
  }
  return result;
}

// ----------------------------------------------------------- forwarding

std::optional<int> ReplicatedStorage::committed_epoch() const {
  return inner_->committed_epoch();
}

void ReplicatedStorage::drop_epoch(int epoch) {
  inner_->drop_epoch(epoch);
  std::lock_guard l(mu_);
  std::erase_if(accs_, [&](const auto& e) { return e.first.epoch == epoch; });
  std::erase_if(pending_,
                [&](const auto& e) { return e.first.epoch == epoch; });
  std::erase_if(seen_, [&](const PendKey& k) { return k.epoch == epoch; });
  for (auto& q : outbox_)
    std::erase_if(q, [&](const OutFrame& f) { return f.epoch == epoch; });
  for (auto& q : ack_outbox_)
    std::erase_if(q, [&](const AckFrame& f) { return f.epoch == epoch; });
}

std::vector<int> ReplicatedStorage::list_epochs() const {
  return inner_->list_epochs();
}

std::uint64_t ReplicatedStorage::total_bytes() const {
  return inner_->total_bytes();
}

std::uint64_t ReplicatedStorage::bytes_written() const {
  return inner_->bytes_written();
}

util::StorageStats ReplicatedStorage::storage_stats() const {
  util::StorageStats s = inner_->storage_stats();
  s.parity_bytes_sent +=
      parity_bytes_sent_.load(std::memory_order_relaxed);
  s.parity_bytes_received +=
      parity_bytes_received_.load(std::memory_order_relaxed);
  s.reconstruct_reads += reconstruct_reads_.load(std::memory_order_relaxed);
  s.parity_acks_waited +=
      parity_acks_waited_.load(std::memory_order_relaxed);
  s.commit_stall_ns += commit_stall_ns_.load(std::memory_order_relaxed);
  return s;
}

std::vector<util::LaneStats> ReplicatedStorage::lane_stats() const {
  return inner_->lane_stats();
}

void ReplicatedStorage::wipe_rank(int rank) {
  inner_->wipe_rank(rank);
  std::lock_guard l(mu_);
  if (rank >= 0 && rank < ranks_) {
    outbox_[static_cast<std::size_t>(rank)].clear();
    ack_outbox_[static_cast<std::size_t>(rank)].clear();
  }
  // The node's memory is gone with its disk: half-folded shards it owned
  // must not resurrect a parity blob the wipe just destroyed.
  std::erase_if(accs_, [&](const auto& e) { return e.second.owner == rank; });
}

}  // namespace c3::replica
