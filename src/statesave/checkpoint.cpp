#include "statesave/checkpoint.hpp"

#include "ckptstore/codec.hpp"
#include "ckptstore/delta.hpp"

namespace c3::statesave {

using ckptstore::chunk_count;
using ckptstore::chunk_len;

CheckpointView::CheckpointView(std::span<const std::byte> blob) {
  util::Reader r(blob);
  if (r.get<std::uint32_t>() != CheckpointBuilder::kMagic) {
    throw util::CorruptionError("checkpoint: bad magic");
  }
  const auto version = r.get<std::uint32_t>();
  if (version == CheckpointBuilder::kVersion) {
    const auto count = r.get<std::uint64_t>();
    // Each v1 section record occupies at least 20 stream bytes (name
    // length, crc, size): a larger count is corruption, and rejecting it
    // here keeps the count from ever driving work past the blob's end.
    if (count > r.remaining() / 20) {
      throw util::CorruptionError("checkpoint: section count overflow");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto name = r.get_string();
      const auto crc = r.get<std::uint32_t>();
      const auto size = r.get<std::uint64_t>();
      auto data = r.get_span(size);
      if (util::crc32(data) != crc) {
        throw util::CorruptionError("checkpoint section '" + name +
                                    "' failed CRC validation");
      }
      sections_[name] = Sec{data, {}};
    }
    return;
  }
  if (version != CheckpointBuilder::kVersionChunked) {
    throw util::CorruptionError("checkpoint: unsupported version");
  }
  const auto chunk_size = r.get<std::uint32_t>();
  if (chunk_size == 0 || chunk_size > CheckpointBuilder::kMaxChunkSize) {
    throw util::CorruptionError("checkpoint: implausible chunk size");
  }
  if (r.get<std::uint8_t>() != 1) {
    throw util::CorruptionError(
        "checkpoint: chunked blob is not a section container");
  }
  const auto count = r.get<std::uint64_t>();
  if (count > r.remaining()) {
    throw util::CorruptionError("checkpoint: section count overflow");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name = r.get_string();
    const auto raw_size = r.get<std::uint64_t>();
    const std::size_t chunks = chunk_count(raw_size, chunk_size);
    // A corrupt raw_size must not drive the reserve below: each chunk
    // occupies at least 5 stream bytes, bounding the plausible count.
    if (chunks > r.remaining() / 5 + 1) {
      throw util::CorruptionError("checkpoint: chunk count overflow");
    }
    util::Bytes owned;
    // raw_size is corruption-controlled: reserve only a bounded amount up
    // front (each decoded chunk is CRC-checked and consumes stream bytes,
    // so a lying size is caught long before memory becomes the problem).
    owned.reserve(std::min<std::uint64_t>(raw_size, std::uint64_t{64} << 20));
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto crc = r.get<std::uint32_t>();
      const auto kind = r.get<std::uint8_t>();
      const std::size_t raw_len = chunk_len(raw_size, chunk_size, c);
      if (kind == CheckpointBuilder::kChunkRef) {
        // A delta reference can only be resolved with access to the prior
        // epochs' blobs -- the checkpoint store's job, not the view's.
        throw util::CorruptionError(
            "checkpoint section '" + name +
            "' holds a delta reference; resolve it through the checkpoint "
            "store before parsing");
      }
      if (kind != CheckpointBuilder::kChunkInline) {
        throw util::CorruptionError("checkpoint: unknown chunk kind");
      }
      const auto codec = static_cast<ckptstore::CodecId>(r.get<std::uint8_t>());
      const auto comp_size = r.get<std::uint64_t>();
      const auto comp = r.get_span(comp_size);
      const std::size_t before = owned.size();
      ckptstore::codec_decode(codec, comp, raw_len, owned);
      const std::span<const std::byte> decoded{owned.data() + before,
                                               owned.size() - before};
      if (util::crc32(decoded) != crc) {
        throw util::CorruptionError("checkpoint section '" + name +
                                    "' chunk failed CRC validation");
      }
    }
    if (owned.size() != raw_size) {
      throw util::CorruptionError("checkpoint section '" + name +
                                  "' size mismatch after decompression");
    }
    // Move the owned buffer in first, then point the view at its (stable)
    // heap storage.
    Sec sec;
    sec.owned = std::move(owned);
    sec.view = sec.owned;
    sections_[name] = std::move(sec);
  }
}

std::optional<std::vector<std::pair<std::string, std::span<const std::byte>>>>
parse_v1_sections(std::span<const std::byte> blob) {
  std::vector<std::pair<std::string, std::span<const std::byte>>> out;
  try {
    util::Reader r(blob);
    if (r.get<std::uint32_t>() != CheckpointBuilder::kMagic) {
      return std::nullopt;
    }
    if (r.get<std::uint32_t>() != CheckpointBuilder::kVersion) {
      return std::nullopt;
    }
    const auto count = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
      auto name = r.get_string();
      (void)r.get<std::uint32_t>();  // crc: not validated on the write path
      const auto size = r.get<std::uint64_t>();
      out.emplace_back(std::move(name), r.get_span(size));
    }
    if (!r.empty()) return std::nullopt;
  } catch (const util::CorruptionError&) {
    return std::nullopt;
  }
  return out;
}

}  // namespace c3::statesave
