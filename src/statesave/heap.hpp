// Checkpointable heap manager with the Heap Object Structure (HOS) --
// paper Section 5.1.3.
//
// The precompiler redirects the application's malloc/free to this arena.
// The HOS records the starting offset and length of every live object; at
// checkpoint time the live objects (and the HOS itself) are written out,
// and on restart the objects are recreated at the *same virtual addresses*,
// so data pointers into the heap are saved as ordinary bytes and remain
// valid after recovery (Section 5.1.4 -- the deliberate anti-PORCH choice).
//
// Address fidelity: the arena requests one contiguous region up front and
// the recovered process re-attaches to a region at the same base. In this
// in-process simulation the arena object simply outlives the simulated
// restart; a real cross-process restart would mmap(MAP_FIXED) the recorded
// base, which restore() validates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>

#include "util/archive.hpp"
#include "util/error.hpp"

namespace c3::statesave {

class HeapArena {
 public:
  /// Reserve a contiguous region of `capacity` bytes.
  explicit HeapArena(std::size_t capacity);

  HeapArena(const HeapArena&) = delete;
  HeapArena& operator=(const HeapArena&) = delete;

  /// Allocate `size` bytes (16-byte aligned). Throws std::bad_alloc when
  /// the arena is exhausted.
  void* alloc(std::size_t size);

  /// Typed convenience: allocate and value-initialize an array of T.
  template <typename T>
  T* alloc_array(std::size_t count) {
    void* p = alloc(count * sizeof(T));
    return new (p) T[count]();
  }

  /// Release a pointer previously returned by alloc().
  void free(void* p);

  /// True if `p` points into the arena region.
  bool contains(const void* p) const noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t bytes_in_use() const noexcept { return in_use_; }
  std::size_t live_objects() const noexcept { return live_.size(); }
  void* base() noexcept { return region_.get(); }
  const void* base() const noexcept { return region_.get(); }

  /// Serialize the HOS and every live object's bytes.
  void save(util::Writer& w) const;

  /// Recreate the saved heap image: every object reappears at its original
  /// offset (hence original virtual address), and the allocator's free
  /// space is recomputed as the complement of the live set.
  void load(util::Reader& r);

 private:
  static constexpr std::size_t kAlign = 16;

  std::size_t capacity_;
  std::unique_ptr<std::byte[]> region_;
  /// HOS: live objects as offset -> length.
  std::map<std::size_t, std::size_t> live_;
  /// Free list as offset -> length (kept coalesced).
  std::map<std::size_t, std::size_t> free_;
  std::size_t in_use_ = 0;
};

}  // namespace c3::statesave
