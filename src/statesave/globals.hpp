// Global variable registry -- paper Section 5.1.2 ("A similar mechanism can
// be used to handle global variables").
//
// The precompiler discovers every global in the program (it sees all source
// files at once) and emits one registration per global at startup. Entries
// are keyed by name so a checkpoint written by one run can be validated
// against the registrations of the restarted run.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "util/archive.hpp"
#include "util/error.hpp"

namespace c3::statesave {

class GlobalRegistry {
 public:
  void register_global(std::string name, void* addr, std::size_t size) {
    for (const auto& g : globals_) {
      if (g.name == name) {
        throw util::UsageError("global '" + name + "' registered twice");
      }
    }
    globals_.push_back({std::move(name), addr, size});
  }

  template <typename T>
  void register_global(std::string name, T& var) {
    register_global(std::move(name), &var, sizeof(T));
  }

  std::size_t count() const noexcept { return globals_.size(); }

  std::size_t payload_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& g : globals_) n += g.size;
    return n;
  }

  void save_values(util::Writer& w) const {
    w.put<std::uint64_t>(globals_.size());
    for (const auto& g : globals_) {
      w.put_string(g.name);
      w.put_bytes({static_cast<const std::byte*>(g.addr), g.size});
    }
  }

  void restore_values(util::Reader& r) const {
    const auto count = r.get<std::uint64_t>();
    if (count != globals_.size()) {
      throw util::CorruptionError("global registry count mismatch");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto name = r.get_string();
      const auto bytes = r.get_bytes();
      const Entry* entry = find(name);
      if (entry == nullptr) {
        throw util::CorruptionError("checkpoint has unknown global '" + name +
                                    "'");
      }
      if (bytes.size() != entry->size) {
        throw util::CorruptionError("global '" + name + "' size mismatch");
      }
      std::memcpy(entry->addr, bytes.data(), bytes.size());
    }
  }

 private:
  struct Entry {
    std::string name;
    void* addr;
    std::size_t size;
  };

  const Entry* find(const std::string& name) const {
    for (const auto& g : globals_) {
      if (g.name == name) return &g;
    }
    return nullptr;
  }

  std::vector<Entry> globals_;
};

}  // namespace c3::statesave
