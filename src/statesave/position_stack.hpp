// Position Stack (PS) -- paper Section 5.1.1.
//
// Records a trace of the program's position in its dynamic execution: every
// call site that can lead to a potentialCheckpoint, and the checkpoint
// location itself, pushes a label. The PS is saved with the checkpoint; on
// restart each instrumented function consumes one entry ("goto
// PS.item(i++)") to jump to the call site it was in, rebuilding the
// activation stack until execution resumes right after the
// potentialCheckpoint that took the checkpoint.
#pragma once

#include <cstdint>
#include <vector>

#include "util/archive.hpp"
#include "util/error.hpp"

namespace c3::statesave {

class PositionStack {
 public:
  /// Normal execution: record entering a labelled region (a call site or a
  /// potentialCheckpoint location).
  void push(std::int32_t label) {
    require_not_restoring("push");
    items_.push_back(label);
  }

  /// Normal execution: the labelled region completed.
  void pop() {
    require_not_restoring("pop");
    if (items_.empty()) {
      throw util::UsageError("PositionStack::pop on empty stack");
    }
    items_.pop_back();
  }

  /// Begin replaying the recorded position (after restoring from a
  /// checkpoint). Subsequent restore_next() calls walk the trace outermost
  /// frame first, exactly the order instrumented functions re-enter.
  void begin_restore() {
    cursor_ = 0;
    restoring_ = !items_.empty();
  }

  bool restoring() const noexcept { return restoring_; }

  /// Label the currently re-entered function should jump to. Consumes one
  /// entry; restoration ends automatically when the innermost entry (the
  /// potentialCheckpoint label) has been consumed.
  std::int32_t restore_next() {
    if (!restoring_) {
      throw util::UsageError("PositionStack::restore_next outside restore");
    }
    const std::int32_t label = items_[cursor_++];
    if (cursor_ == items_.size()) restoring_ = false;
    return label;
  }

  std::size_t depth() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  const std::vector<std::int32_t>& items() const noexcept { return items_; }

  void save(util::Writer& w) const { w.put_vector(items_); }
  void load(util::Reader& r) {
    items_ = r.get_vector<std::int32_t>();
    cursor_ = 0;
    restoring_ = false;
  }

 private:
  void require_not_restoring(const char* op) const {
    if (restoring_) {
      throw util::UsageError(std::string("PositionStack::") + op +
                             " while restoring");
    }
  }

  std::vector<std::int32_t> items_;
  std::size_t cursor_ = 0;
  bool restoring_ = false;
};

}  // namespace c3::statesave
