// Variable Descriptor Stack (VDS) -- paper Section 5.1.2.
//
// Tracks the address and size of every live stack variable; instrumented
// code pushes as variables enter scope and pops as they leave. At
// checkpoint time the descriptors are walked and each variable's bytes are
// copied into the checkpoint. On restart, the activation stack is first
// rebuilt via the Position Stack (each function re-enters and re-pushes its
// descriptors), then restore_values() copies the saved bytes back in stack
// order.
//
// Deviation from the paper, documented in DESIGN.md: the paper restores
// frames to identical virtual addresses (fresh process, controlled stack
// base), so descriptors are pure (address, size) pairs. Inside a live
// process new frames land elsewhere, so we key the copy-back on stack
// *order* and validate sizes -- semantically identical for programs without
// cross-frame pointers into the stack (heap pointers are fully supported
// through the fixed-address HeapArena).
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "util/archive.hpp"
#include "util/error.hpp"

namespace c3::statesave {

struct VarDescriptor {
  void* addr = nullptr;
  std::size_t size = 0;
};

class VariableDescriptorStack {
 public:
  void push(void* addr, std::size_t size) {
    items_.push_back({addr, size});
  }

  void pop(std::size_t n = 1) {
    if (n > items_.size()) {
      throw util::UsageError("VDS::pop past bottom of stack");
    }
    items_.resize(items_.size() - n);
  }

  std::size_t depth() const noexcept { return items_.size(); }

  /// Drop every descriptor (a restarted process begins with an empty VDS).
  void clear() noexcept { items_.clear(); }

  /// Total bytes of live stack state.
  std::size_t payload_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& d : items_) n += d.size;
    return n;
  }

  /// Copy every descriptor's current bytes into the archive.
  void save_values(util::Writer& w) const {
    w.put<std::uint64_t>(items_.size());
    for (const auto& d : items_) {
      w.put_bytes({static_cast<const std::byte*>(d.addr), d.size});
    }
  }

  /// Copy saved bytes back onto the *current* descriptors (the stack must
  /// have been rebuilt to the same shape via the Position Stack).
  void restore_values(util::Reader& r) const {
    const auto count = r.get<std::uint64_t>();
    if (count != items_.size()) {
      throw util::CorruptionError(
          "VDS shape mismatch: checkpoint has " + std::to_string(count) +
          " descriptors, rebuilt stack has " + std::to_string(items_.size()));
    }
    for (const auto& d : items_) {
      const auto bytes = r.get_bytes();
      if (bytes.size() != d.size) {
        throw util::CorruptionError("VDS descriptor size mismatch");
      }
      std::memcpy(d.addr, bytes.data(), bytes.size());
    }
  }

  const std::vector<VarDescriptor>& items() const noexcept { return items_; }

 private:
  std::vector<VarDescriptor> items_;
};

/// RAII helper: push a variable for the current scope, pop on exit. This is
/// the C++ rendering of the precompiler's paired VDS.push/VDS.pop inserts.
class ScopedVar {
 public:
  ScopedVar(VariableDescriptorStack& vds, void* addr, std::size_t size)
      : vds_(vds) {
    vds_.push(addr, size);
  }
  template <typename T>
  ScopedVar(VariableDescriptorStack& vds, T& var)
      : ScopedVar(vds, &var, sizeof(T)) {}
  ~ScopedVar() { vds_.pop(); }
  ScopedVar(const ScopedVar&) = delete;
  ScopedVar& operator=(const ScopedVar&) = delete;

 private:
  VariableDescriptorStack& vds_;
};

}  // namespace c3::statesave
