// Per-rank state-saving context: the object the precompiler-emitted code
// (and hand-instrumented applications) manipulate. Bundles the Position
// Stack, Variable Descriptor Stack, global registry and heap arena, and
// produces / consumes the "appstate" sections of a local checkpoint.
#pragma once

#include <memory>
#include <optional>

#include "statesave/checkpoint.hpp"
#include "statesave/globals.hpp"
#include "statesave/heap.hpp"
#include "statesave/position_stack.hpp"
#include "statesave/vds.hpp"

namespace c3::statesave {

class SaveContext {
 public:
  /// @param heap_capacity size of the checkpointable heap arena (0 = no heap)
  explicit SaveContext(std::size_t heap_capacity = 0) {
    if (heap_capacity > 0) heap_ = std::make_unique<HeapArena>(heap_capacity);
  }

  PositionStack& ps() noexcept { return ps_; }
  VariableDescriptorStack& vds() noexcept { return vds_; }
  GlobalRegistry& globals() noexcept { return globals_; }
  HeapArena& heap() {
    if (!heap_) throw util::UsageError("SaveContext has no heap arena");
    return *heap_;
  }
  bool has_heap() const noexcept { return heap_ != nullptr; }

  /// Total application-state bytes a checkpoint would contain right now.
  std::size_t state_bytes() const noexcept {
    std::size_t n = vds_.payload_bytes() + globals_.payload_bytes();
    if (heap_) n += heap_->bytes_in_use();
    return n;
  }

  /// Capture PS + VDS values + globals + heap into checkpoint sections.
  void capture(CheckpointBuilder& builder) const {
    {
      util::Writer w;
      ps_.save(w);
      builder.add_section("ps", w.take());
    }
    {
      util::Writer w;
      vds_.save_values(w);
      builder.add_section("vds", w.take());
    }
    {
      util::Writer w;
      globals_.save_values(w);
      builder.add_section("globals", w.take());
    }
    if (heap_) {
      util::Writer w;
      heap_->save(w);
      builder.add_section("heap", w.take());
    }
  }

  /// Phase 1 of restore, before re-entering the program: reload the PS (and
  /// arm it for replay), the globals, and the heap image. Stack variable
  /// values are held until the activation stack has been rebuilt. Any VDS
  /// entries left over from the failed execution are dropped -- a restarted
  /// process begins with an empty stack.
  ///
  /// With `defer_globals` the global values are held back too and applied
  /// in finish_restore(): the protocol layer restores before the program
  /// re-enters, but precompiler-emitted registration (ccift_register_globals)
  /// only runs once the program is underway, so the registry is still empty
  /// at this point on that path.
  void begin_restore(const CheckpointView& view, bool defer_globals = false) {
    vds_.clear();
    {
      auto blob = view.require_section("ps");
      util::Reader r(blob);
      ps_.load(r);
    }
    {
      auto blob = view.require_section("globals");
      if (defer_globals) {
        pending_globals_.emplace(blob.begin(), blob.end());
      } else {
        util::Reader r(blob);
        globals_.restore_values(r);
      }
    }
    if (heap_) {
      auto blob = view.require_section("heap");
      util::Reader r(blob);
      heap_->load(r);
    }
    // The view's sections are borrowed; the VDS values are applied later
    // (finish_restore), after the view is gone, so copy them out.
    const auto vds = view.require_section("vds");
    pending_vds_.emplace(vds.begin(), vds.end());
    ps_.begin_restore();
  }

  /// Phase 2 of restore, called at the re-reached potentialCheckpoint once
  /// every frame has re-pushed its descriptors: copy saved values back
  /// (stack variables, plus globals when their restore was deferred).
  void finish_restore() {
    if (!pending_vds_) {
      throw util::UsageError("finish_restore without begin_restore");
    }
    if (pending_globals_) {
      util::Reader r(*pending_globals_);
      globals_.restore_values(r);
      pending_globals_.reset();
    }
    util::Reader r(*pending_vds_);
    vds_.restore_values(r);
    pending_vds_.reset();
  }

  bool restore_pending() const noexcept { return pending_vds_.has_value(); }

 private:
  PositionStack ps_;
  VariableDescriptorStack vds_;
  GlobalRegistry globals_;
  std::unique_ptr<HeapArena> heap_;
  std::optional<util::Bytes> pending_vds_;
  std::optional<util::Bytes> pending_globals_;
};

}  // namespace c3::statesave
