#include "statesave/heap.hpp"

#include <cstring>
#include <new>

namespace c3::statesave {

namespace {
constexpr std::uint32_t kHeapMagic = 0xC3000405u;  // "C3", HOS section
}  // namespace

HeapArena::HeapArena(std::size_t capacity)
    : capacity_(capacity), region_(new std::byte[capacity]) {
  if (capacity_ < kAlign) {
    throw util::UsageError("HeapArena capacity too small");
  }
  free_[0] = capacity_;
}

void* HeapArena::alloc(std::size_t size) {
  if (size == 0) size = 1;
  const std::size_t need = (size + kAlign - 1) / kAlign * kAlign;
  // First fit over the coalesced free list.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const auto [off, len] = *it;
    if (len < need) continue;
    free_.erase(it);
    if (len > need) free_[off + need] = len - need;
    live_[off] = need;
    in_use_ += need;
    return region_.get() + off;
  }
  throw std::bad_alloc();
}

void HeapArena::free(void* p) {
  if (!contains(p)) {
    throw util::UsageError("HeapArena::free of pointer outside arena");
  }
  const auto off =
      static_cast<std::size_t>(static_cast<std::byte*>(p) - region_.get());
  auto it = live_.find(off);
  if (it == live_.end()) {
    throw util::UsageError("HeapArena::free of unallocated pointer");
  }
  std::size_t len = it->second;
  live_.erase(it);
  in_use_ -= len;
  // Insert into the free list, coalescing with neighbours.
  std::size_t start = off;
  auto next = free_.lower_bound(start);
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      start = prev->first;
      len += prev->second;
      free_.erase(prev);
    }
  }
  if (next != free_.end() && start + len == next->first) {
    len += next->second;
    free_.erase(next);
  }
  free_[start] = len;
}

bool HeapArena::contains(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= region_.get() && b < region_.get() + capacity_;
}

void HeapArena::save(util::Writer& w) const {
  // Presize for the exact image: header + per-object framing + live bytes.
  w.reserve(4 + 8 + 8 + 8 + live_.size() * 16 + in_use_);
  w.put<std::uint32_t>(kHeapMagic);
  w.put<std::uint64_t>(capacity_);
  w.put<std::uint64_t>(reinterpret_cast<std::uintptr_t>(region_.get()));
  w.put<std::uint64_t>(live_.size());
  for (const auto& [off, len] : live_) {
    w.put<std::uint64_t>(off);
    w.put<std::uint64_t>(len);
    w.put_raw({region_.get() + off, len});
  }
}

void HeapArena::load(util::Reader& r) {
  if (r.get<std::uint32_t>() != kHeapMagic) {
    throw util::CorruptionError("heap checkpoint: bad magic");
  }
  const auto cap = r.get<std::uint64_t>();
  if (cap != capacity_) {
    throw util::CorruptionError("heap checkpoint: capacity mismatch");
  }
  const auto saved_base = r.get<std::uint64_t>();
  if (saved_base != reinterpret_cast<std::uintptr_t>(region_.get())) {
    // In-process recovery reuses the same arena, so this indicates the
    // caller attached a different arena; raw data pointers inside objects
    // would dangle. (A real restart would MAP_FIXED the saved base.)
    throw util::CorruptionError(
        "heap checkpoint: arena base moved; pointer fidelity lost");
  }
  live_.clear();
  free_.clear();
  in_use_ = 0;
  const auto count = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto off = r.get<std::uint64_t>();
    const auto len = r.get<std::uint64_t>();
    // Subtraction form: `off + len` wraps for corrupt values near 2^64 and
    // would sail past the bounds check straight into the memcpy.
    if (len > capacity_ || off > capacity_ - len) {
      throw util::CorruptionError("heap checkpoint: object out of bounds");
    }
    const auto bytes = r.get_raw(len);
    std::memcpy(region_.get() + off, bytes.data(), len);
    live_[off] = len;
    in_use_ += len;
  }
  // Free space is the complement of the live set.
  std::size_t cursor = 0;
  for (const auto& [off, len] : live_) {
    if (off > cursor) free_[cursor] = off - cursor;
    cursor = off + len;
  }
  if (cursor < capacity_) free_[cursor] = capacity_ - cursor;
}

}  // namespace c3::statesave
