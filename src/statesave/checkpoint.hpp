// Versioned, checksummed container format for a rank's local checkpoint.
//
// A checkpoint is a set of named sections (position stack, stack variables,
// globals, heap image, protocol state, MPI call records...). Each section
// carries a CRC-32 so a torn or corrupted blob is detected at restore time
// rather than silently resuming from garbage.
//
// Two wire formats share the magic:
//   v1 -- sections stored inline as (name, crc, bytes) records; what
//         CheckpointBuilder::finish() emits and what the protocol hands to
//         stable storage.
//   v2 -- the *chunked* container: each section is split into fixed-size
//         chunks, each chunk carrying its own raw CRC and stored either
//         inline (optionally compressed by a ckptstore codec) or as a
//         delta reference to the epoch that last wrote identical bytes.
//         Produced by ckptstore::CheckpointStore on its way to stable
//         storage; CheckpointView reads a *self-contained* v2 blob (all
//         chunks inline) directly, while delta references require the
//         checkpoint store to resolve them against prior epochs.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/archive.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace c3::statesave {

class CheckpointBuilder {
 public:
  void add_section(const std::string& name, util::Bytes data) {
    if (sections_.count(name) != 0) {
      throw util::UsageError("duplicate checkpoint section '" + name + "'");
    }
    sections_[name] = std::move(data);
  }

  bool has_section(const std::string& name) const {
    return sections_.count(name) != 0;
  }

  /// The accumulated sections, in name order (the COW capture path hands
  /// them to the store as individual spans instead of serializing a v1
  /// container on the rank thread).
  const std::map<std::string, util::Bytes>& sections() const {
    return sections_;
  }

  /// Serialize all sections into one v1 blob (presized: one allocation).
  util::Bytes finish() const {
    std::size_t total = 4 + 4 + 8;
    for (const auto& [name, data] : sections_) {
      total += 8 + name.size() + 4 + 8 + data.size();
    }
    util::Writer w(total);
    w.put<std::uint32_t>(kMagic);
    w.put<std::uint32_t>(kVersion);
    w.put<std::uint64_t>(sections_.size());
    for (const auto& [name, data] : sections_) {
      w.put_string(name);
      w.put<std::uint32_t>(util::crc32(data));
      w.put_bytes(data);
    }
    return w.take();
  }

  static constexpr std::uint32_t kMagic = 0xC3C4'0001u;
  static constexpr std::uint32_t kVersion = 1;
  /// The chunked container written by ckptstore::CheckpointStore.
  static constexpr std::uint32_t kVersionChunked = 2;
  /// v2 chunk kinds.
  static constexpr std::uint8_t kChunkInline = 0;
  static constexpr std::uint8_t kChunkRef = 1;
  /// Largest chunk size any v2 reader/writer accepts: bounds what a
  /// corrupt header can make a parser allocate.
  static constexpr std::uint32_t kMaxChunkSize = 16u << 20;

 private:
  std::map<std::string, util::Bytes> sections_;
};

/// Parsed, validated view over a checkpoint blob. Reads both v1 and
/// self-contained v2 containers (every chunk CRC is checked either way).
///
/// v1 sections are *borrowed*: the returned spans alias `blob`, which must
/// outlive the view. v2 sections are decompressed into owned storage.
class CheckpointView {
 public:
  explicit CheckpointView(std::span<const std::byte> blob);

  std::optional<std::span<const std::byte>> section(
      const std::string& name) const {
    auto it = sections_.find(name);
    if (it == sections_.end()) return std::nullopt;
    return it->second.view;
  }

  /// Like section() but required: throws CorruptionError if missing.
  std::span<const std::byte> require_section(const std::string& name) const {
    auto s = section(name);
    if (!s) {
      throw util::CorruptionError("checkpoint missing section '" + name + "'");
    }
    return *s;
  }

  std::size_t section_count() const noexcept { return sections_.size(); }

 private:
  struct Sec {
    std::span<const std::byte> view;  ///< aliases the blob (v1) or `owned`
    util::Bytes owned;                ///< decompressed payload (v2 only)
  };
  std::map<std::string, Sec> sections_;
};

/// Walk a v1 container header yielding borrowed (name, payload) pairs in
/// container order, without CRC validation -- the cheap parse the checkpoint
/// store uses on the write path, where the blob just came out of a builder.
/// Returns nullopt when `blob` is not a well-formed v1 container.
std::optional<std::vector<std::pair<std::string, std::span<const std::byte>>>>
parse_v1_sections(std::span<const std::byte> blob);

}  // namespace c3::statesave
