// Versioned, checksummed container format for a rank's local checkpoint.
//
// A checkpoint is a set of named sections (position stack, stack variables,
// globals, heap image, protocol state, MPI call records...). Each section
// carries a CRC-32 so a torn or corrupted blob is detected at restore time
// rather than silently resuming from garbage.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "util/archive.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace c3::statesave {

class CheckpointBuilder {
 public:
  void add_section(const std::string& name, util::Bytes data) {
    if (sections_.count(name) != 0) {
      throw util::UsageError("duplicate checkpoint section '" + name + "'");
    }
    sections_[name] = std::move(data);
  }

  bool has_section(const std::string& name) const {
    return sections_.count(name) != 0;
  }

  /// Serialize all sections into one blob (presized: one allocation).
  util::Bytes finish() const {
    std::size_t total = 4 + 4 + 8;
    for (const auto& [name, data] : sections_) {
      total += 8 + name.size() + 4 + 8 + data.size();
    }
    util::Writer w(total);
    w.put<std::uint32_t>(kMagic);
    w.put<std::uint32_t>(kVersion);
    w.put<std::uint64_t>(sections_.size());
    for (const auto& [name, data] : sections_) {
      w.put_string(name);
      w.put<std::uint32_t>(util::crc32(data));
      w.put_bytes(data);
    }
    return w.take();
  }

  static constexpr std::uint32_t kMagic = 0xC3C4'0001u;
  static constexpr std::uint32_t kVersion = 1;

 private:
  std::map<std::string, util::Bytes> sections_;
};

class CheckpointView {
 public:
  /// Parse and validate a checkpoint blob (CRC of every section checked).
  explicit CheckpointView(std::span<const std::byte> blob) {
    util::Reader r(blob);
    if (r.get<std::uint32_t>() != CheckpointBuilder::kMagic) {
      throw util::CorruptionError("checkpoint: bad magic");
    }
    if (r.get<std::uint32_t>() != CheckpointBuilder::kVersion) {
      throw util::CorruptionError("checkpoint: unsupported version");
    }
    const auto count = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto name = r.get_string();
      const auto crc = r.get<std::uint32_t>();
      auto data = r.get_bytes();
      if (util::crc32(data) != crc) {
        throw util::CorruptionError("checkpoint section '" + name +
                                    "' failed CRC validation");
      }
      sections_[name] = std::move(data);
    }
  }

  std::optional<util::Bytes> section(const std::string& name) const {
    auto it = sections_.find(name);
    if (it == sections_.end()) return std::nullopt;
    return it->second;
  }

  /// Like section() but required: throws CorruptionError if missing.
  util::Bytes require_section(const std::string& name) const {
    auto s = section(name);
    if (!s) {
      throw util::CorruptionError("checkpoint missing section '" + name + "'");
    }
    return *s;
  }

  std::size_t section_count() const noexcept { return sections_.size(); }

 private:
  std::map<std::string, util::Bytes> sections_;
};

}  // namespace c3::statesave
