// Incremental-checkpoint bookkeeping: which chunks of which sections were
// last written when, and with what content CRC.
//
// The writer side of the checkpoint store keeps, per (rank, blob section,
// container section), the chunk table of the most recently encoded epoch.
// The next epoch's encoder compares fresh chunk CRCs against this table:
// an unchanged chunk is emitted as a *reference* to the epoch that last
// stored its bytes inline (its "home" epoch), so the chain is always one
// hop deep -- restore fetches the home blob directly, never walking
// intermediate epochs.
//
// The index is a pure write-side cache: it is rebuilt empty after a
// restart (everything is then written inline once) and never consulted on
// the read path, so losing it can cost bytes but never correctness.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace c3::ckptstore {

/// ceil(raw / chunk_size); 0 for an empty section.
inline std::size_t chunk_count(std::size_t raw, std::size_t chunk_size) {
  return raw == 0 ? 0 : (raw + chunk_size - 1) / chunk_size;
}

/// Length of chunk `i` of a `raw`-byte section.
inline std::size_t chunk_len(std::size_t raw, std::size_t chunk_size,
                             std::size_t i) {
  const std::size_t start = i * chunk_size;
  return std::min(chunk_size, raw - start);
}

/// One chunk of one section as of the last encoded epoch.
struct ChunkMeta {
  std::uint32_t crc = 0;         ///< CRC-32 of the raw chunk bytes
  std::int32_t home_epoch = -1;  ///< epoch whose blob stores the bytes inline
};

/// The last encoded state of one (rank, blob section, container section).
struct SectionIndex {
  std::int32_t epoch = -1;  ///< epoch this table describes
  std::uint64_t raw_size = 0;
  std::vector<ChunkMeta> chunks;
};

/// Identifies one delta chain.
struct ChainKey {
  int rank = 0;
  std::string blob_section;  ///< BlobKey::section, e.g. "state" / "log"
  std::string part;          ///< container section name; "" = whole blob

  auto operator<=>(const ChainKey&) const = default;
};

class DeltaIndex {
 public:
  /// The previous epoch's table for a chain, or nullptr if none.
  const SectionIndex* find(const ChainKey& key) const {
    auto it = chains_.find(key);
    return it == chains_.end() ? nullptr : &it->second;
  }

  void update(const ChainKey& key, SectionIndex next) {
    chains_[key] = std::move(next);
  }

  /// Forget chains whose latest table describes `epoch` -- called when that
  /// epoch's blobs are abandoned (recovery rewound past them), so the next
  /// encode deltas against nothing and writes inline.
  void drop_tables_for_epoch(std::int32_t epoch) {
    for (auto it = chains_.begin(); it != chains_.end();) {
      if (it->second.epoch == epoch) {
        it = chains_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Forget every chain of one (rank, blob section) -- called when a write
  /// for that blob *failed*: the table was updated before the put, so a
  /// later epoch could otherwise emit refs homed in a blob that never
  /// landed. Dropping the chain forces the next epoch fully inline.
  void drop_chains_for(int rank, const std::string& blob_section) {
    for (auto it = chains_.begin(); it != chains_.end();) {
      if (it->first.rank == rank && it->first.blob_section == blob_section) {
        it = chains_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Forget every chain of one rank -- called when the rank's backend
  /// holding is wiped (node-local storage loss): its next checkpoint must
  /// delta against nothing and write fully inline.
  void drop_rank(int rank) {
    for (auto it = chains_.begin(); it != chains_.end();) {
      if (it->first.rank == rank) {
        it = chains_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::size_t chain_count() const noexcept { return chains_.size(); }

 private:
  std::map<ChainKey, SectionIndex> chains_;
};

}  // namespace c3::ckptstore
