// Background write pipeline: a bounded queue of checkpoint blobs drained
// by one writer thread per wrapped StableStorage.
//
// The rank thread hands its serialized checkpoint to enqueue() and resumes
// computing; the writer thread delta-encodes, compresses and put()s the
// blob against the (possibly bandwidth-throttled) backend. flush() is the
// commit barrier: it blocks until every queued blob is durably written --
// the initiator calls it before recording the recovery point, preserving
// the paper's commit semantics exactly.
//
// Backpressure is bounded by both blob count and total queued bytes, so a
// rank that checkpoints faster than the disk drains eventually stalls in
// enqueue() instead of growing the heap without limit; that stall time is
// accounted separately from the commit-barrier stall.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "util/stable_storage.hpp"

namespace c3::ckptstore {

class AsyncWriter {
 public:
  /// `sink` performs the actual encode + backend put; it runs on the writer
  /// thread. Exceptions it throws are captured and rethrown from the next
  /// flush()/enqueue() so a failed write can never be silently committed.
  using Sink = std::function<void(const util::BlobKey&, util::Bytes)>;

  AsyncWriter(Sink sink, std::size_t max_blobs, std::size_t max_bytes);
  ~AsyncWriter();
  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Hand a blob to the pipeline; blocks only while the queue is full.
  void enqueue(const util::BlobKey& key, util::Bytes raw);

  /// Barrier: returns once the queue is empty and the writer is idle.
  /// Rethrows any error the sink raised since the last flush.
  void flush();

  std::uint64_t enqueue_stall_ns() const noexcept {
    return enqueue_stall_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    util::BlobKey key;
    util::Bytes raw;
  };

  void run();
  void rethrow_locked();

  Sink sink_;
  const std::size_t max_blobs_;
  const std::size_t max_bytes_;

  mutable std::mutex mu_;
  std::condition_variable room_;     ///< signalled when the queue drains
  std::condition_variable work_;     ///< signalled when work arrives / stops
  std::deque<Pending> queue_;
  std::size_t queued_bytes_ = 0;
  bool writer_busy_ = false;
  bool stop_ = false;
  std::exception_ptr error_;

  std::atomic<std::uint64_t> enqueue_stall_ns_{0};

  std::thread thread_;
};

}  // namespace c3::ckptstore
