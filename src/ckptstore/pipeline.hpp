// Background write pipeline: per-rank writer lanes, each a bounded queue
// drained by its own writer thread.
//
// The rank thread hands its serialized checkpoint to enqueue() and resumes
// computing; the lane's writer thread delta-encodes, compresses and put()s
// the blob against the (possibly bandwidth-throttled) backend. Blobs route
// to a lane by rank, so one rank's writes stay FIFO (the delta index
// depends on that order) while different ranks' writes drain concurrently
// -- against per-node local disks the commit barrier then costs
// max-over-lanes write time instead of sum-over-lanes. flush() is that
// barrier: it blocks until every lane's queue is durably written -- the
// initiator calls it before recording the recovery point, preserving the
// paper's commit semantics exactly.
//
// Backpressure is bounded per lane by both blob count and total queued
// bytes, so a rank that checkpoints faster than its disk drains eventually
// stalls in enqueue() instead of growing the heap without limit; that
// stall time is accounted per lane, separately from the commit-barrier
// stall.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ckptstore/capture.hpp"
#include "util/stable_storage.hpp"

namespace c3::ckptstore {

class AsyncWriter {
 public:
  /// `sink` performs the actual encode + backend put; it runs on the lane's
  /// writer thread. Exceptions it throws are captured and rethrown from the
  /// next flush()/enqueue() touching that lane, so a failed write can never
  /// be silently committed. Exactly one of (raw, staged) is populated: raw
  /// blobs still need the full delta decision, staged blobs (COW captures)
  /// arrive pre-diffed and only need compress + serialize.
  using Sink = std::function<void(std::size_t lane, const util::BlobKey&,
                                  util::Bytes raw,
                                  std::unique_ptr<StagedBlob> staged)>;
  /// Test-only fault-injection hook: flush() invokes it after each lane
  /// drains, before moving on to the next lane. Throwing from it models a
  /// process dying between lane flushes.
  using FlushHook = std::function<void(std::size_t lane)>;

  AsyncWriter(Sink sink, std::size_t lanes, std::size_t max_blobs_per_lane,
              std::size_t max_bytes_per_lane, FlushHook after_lane_flush = {});
  ~AsyncWriter();
  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Hand a blob to its rank's lane; blocks only while that lane is full.
  void enqueue(const util::BlobKey& key, util::Bytes raw);

  /// Hand a pre-diffed COW capture to its rank's lane. Queue accounting
  /// uses the staged bytes (the only payload the item owns).
  void enqueue_staged(const util::BlobKey& key,
                      std::unique_ptr<StagedBlob> staged);

  /// Barrier: returns once every lane's queue is empty and its writer is
  /// idle. Rethrows the first error any lane's sink raised since the last
  /// flush; lanes drain concurrently, so the wait costs max-over-lanes.
  void flush();

  /// Snapshot each lane's enqueued-item count: a deferred commit records
  /// this fence and is finalized once every lane's completed count reaches
  /// it -- later enqueues (the next epoch's captures) never delay it.
  std::vector<std::uint64_t> fence() const;

  /// True once every lane has completed (successfully or not) at least
  /// `f[lane]` items. Non-blocking; the commit finalizer polls it.
  bool fence_reached(const std::vector<std::uint64_t>& f) const;

  /// Drain one lane only (the building block of flush()).
  void flush_lane(std::size_t lane);

  /// Non-blocking: true when the lane's queue is empty and its writer is
  /// not mid-blob (the replica tier's quiescence predicate).
  bool lane_idle(std::size_t lane) const;

  std::size_t lanes() const noexcept { return lanes_.size(); }
  std::size_t lane_of(int rank) const noexcept {
    return static_cast<std::size_t>(rank < 0 ? -(rank + 1) : rank) %
           lanes_.size();
  }

  /// Producer time blocked in enqueue(), summed over lanes / for one lane.
  std::uint64_t enqueue_stall_ns() const noexcept;
  std::uint64_t lane_enqueue_stall_ns(std::size_t lane) const noexcept;

 private:
  struct Pending {
    util::BlobKey key;
    util::Bytes raw;
    std::unique_ptr<StagedBlob> staged;  ///< COW capture; raw empty when set
    std::size_t size = 0;                ///< queued-byte accounting
  };

  /// One lane: its own lock, queue, writer thread and stall accounting, so
  /// lanes never contend with each other.
  struct Lane {
    mutable std::mutex mu;
    std::condition_variable room;  ///< signalled when the queue drains
    std::condition_variable work;  ///< signalled when work arrives / stops
    std::deque<Pending> queue;
    std::size_t queued_bytes = 0;
    /// Items ever accepted / completed (success or error): fences for the
    /// deferred-commit finalizer. Both guarded by mu.
    std::uint64_t enqueued_seq = 0;
    std::uint64_t done_seq = 0;
    bool busy = false;
    bool stop = false;
    std::exception_ptr error;
    std::atomic<std::uint64_t> enqueue_stall_ns{0};
    std::thread thread;
  };

  void enqueue_item(Pending item);

  void run(Lane& lane, std::size_t index);
  static void rethrow_locked(Lane& lane);

  Sink sink_;
  FlushHook after_lane_flush_;
  const std::size_t max_blobs_;
  const std::size_t max_bytes_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace c3::ckptstore
