// CheckpointStore: the checkpoint storage pipeline.
//
// A StableStorage wrapper that turns the protocol's "serialize everything
// and block on the write" checkpoints into a pipelined store:
//
//   1. delta encoding -- each container section (heap image, globals,
//      protocol state, logs) is split into fixed-size chunks with per-chunk
//      CRCs; a chunk whose CRC matches the previous epoch's is stored as a
//      reference to the epoch that last wrote its bytes ("home" epoch),
//      so only changed blocks travel to stable storage;
//   2. compression -- changed chunks pass through a self-contained codec
//      (ckptstore/codec.hpp) before hitting the backend;
//   3. async commit -- puts are handed to per-rank writer lanes over
//      bounded queues (ckptstore/pipeline.hpp); the rank resumes
//      computing while the write drains, and different ranks' writes drain
//      *concurrently*, so the commit barrier costs max-over-lanes write
//      time against per-node disks instead of sum-over-lanes.
//      commit(epoch) flushes every lane *before* forwarding the commit to
//      the backend, so the recovery point is only ever recorded once every
//      blob it names is durable -- an uncommitted epoch can never be used
//      for recovery.
//
// Reads reverse the pipeline: get() reconstructs the exact original bytes
// by resolving delta references against prior epochs' blobs, validating
// every chunk CRC. Blobs written without the wrapper (plain v1 containers
// or arbitrary bytes) pass through untouched, so a store pointed at an old
// directory keeps working.
//
// Retention: the protocol drops superseded epochs after each commit, but a
// committed manifest may still reference chunks homed in an older epoch.
// drop_epoch() therefore defers the physical drop of any epoch the
// committed recovery point still needs, and retries deferred drops after
// the next commit. `full_interval` bounds how long a chunk may keep an old
// home (and hence how many superseded epochs can pile up) by forcing a
// periodic inline rewrite. The bookkeeping is in-memory, so a drop
// deferred at crash time would leak the superseded epoch's blobs across
// recovery cycles -- the constructor therefore runs a startup sweep that
// enumerates the backend (StableStorage::list_epochs) and drops every
// epoch older than committed - full_interval, which the one-hop reference
// rule proves unreachable from any retained manifest.
//
// Metadata locking is split so 256 lanes commit at max-over-ranks, not
// sum: the delta index is partitioned into per-lane shards (blobs route to
// lanes by BlobKey::rank, so a chain lives in exactly one shard and two
// lanes never contend on index state), while the retention sets (refs_,
// drop_requested_, dropped_, failed_epochs_) stay behind one short global
// GC lock taken only for the cross-rank ref/drop handshake -- never while
// a shard lock is held, and never around chunk CRC/compression work.
//
// Cross-lane GC interlock under the split: an encode decides candidate
// homes under its shard lock, then *validates them against dropped_ and
// registers them in refs_ in one GC-lock critical section* -- the same
// lock every drop's decision executes under. A drop therefore either runs
// before that validation (the encode sees the epoch in dropped_ and
// rewrites inline) or after the refs are registered (the drop defers) --
// a committed manifest can never name a dropped blob, regardless of the
// order lanes drain in. Dropped epochs' index tables are erased *after*
// the GC lock is released (per shard, shard lock only); a stale table is
// harmless because every future candidate home it yields is re-validated
// against dropped_ before any ref is emitted.
#pragma once

#include <functional>
#include <memory>
#include <set>

#include "ckptstore/codec.hpp"
#include "ckptstore/delta.hpp"
#include "ckptstore/pipeline.hpp"
#include "util/buffer_pool.hpp"
#include "util/stable_storage.hpp"

namespace c3::ckptstore {

struct StoreOptions {
  bool delta = true;   ///< emit chunk references against the prior epoch
  bool async = true;   ///< background writer lanes (sync put when false)
  CodecId codec = CodecId::kLz;
  std::size_t chunk_size = 4096;
  /// Parallel writer lanes (one bounded queue + thread each); blobs route
  /// by rank, so one rank's writes stay ordered while different ranks
  /// drain concurrently. 0 = decided at wiring time (core::Job uses one
  /// lane per rank); direct construction treats 0 as 1.
  std::size_t writer_lanes = 0;
  /// queue_max_blobs bounds each lane's queue depth; queue_max_bytes
  /// bounds the *total* queued bytes across all lanes (split evenly per
  /// lane), so wiring one lane per rank does not multiply the in-flight
  /// memory ceiling. A single oversized blob is still always admitted to
  /// an empty lane.
  std::size_t queue_max_blobs = 8;
  std::size_t queue_max_bytes = std::size_t{64} << 20;
  /// Force an inline rewrite of a chunk whose home epoch is this many
  /// epochs old: bounds delta-chain retention.
  std::int32_t full_interval = 16;
  /// Test-only fault-injection hook: invoked after each lane drains during
  /// a flush (kill-between-lane-flushes when it throws). Leave empty in
  /// production wiring.
  std::function<void(std::size_t lane)> after_lane_flush;
  /// Copy-on-write capture mode: put_capture() snapshots only the chunks
  /// that must travel inline and returns immediately; commit(epoch) defers
  /// to a committer thread that finalizes the epoch once the lanes have
  /// drained every blob the epoch enqueued (a *fence*, so the next epoch's
  /// captures never delay it). Recovery semantics are unchanged: the
  /// recovery point is still recorded only after every named blob is
  /// durable -- it just happens behind the running application.
  bool cow = false;
};

class CheckpointStore final : public util::StableStorage {
 public:
  explicit CheckpointStore(std::shared_ptr<util::StableStorage> inner,
                           StoreOptions opts = {});
  ~CheckpointStore() override;

  void put(const util::BlobKey& key, const util::Bytes& data) override;
  void put(const util::BlobKey& key, util::Bytes&& data) override;
  std::optional<util::Bytes> get(const util::BlobKey& key) const override;
  void commit(int epoch) override;
  std::optional<int> committed_epoch() const override;
  void drop_epoch(int epoch) override;
  std::vector<int> list_epochs() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t bytes_written() const override;
  util::StorageStats storage_stats() const override;
  std::vector<util::LaneStats> lane_stats() const override;
  void wipe_rank(int rank) override;

  /// Drain all write lanes (no-op in sync mode). Rethrows writer errors.
  /// In COW mode this also settles every deferred commit first.
  void flush() const;

  // ------------------------------------------------------------- COW API

  /// Copy-on-write capture: runs ON the rank thread, against the caller's
  /// live buffers (each CaptureSection::data need only stay valid for the
  /// duration of this call). The ref-vs-inline decision happens here --
  /// under the same shard/GC locks as the classic encode, preserving the
  /// drop interlock -- and only the chunks that must travel inline are
  /// copied into a pooled staging buffer before the call returns. The lane
  /// thread later compresses and serializes the staged chunks into the
  /// same v2 container the classic path produces, so reads, reconstruction
  /// and the replica tier are untouched. Dirty tracking (caller-supplied
  /// CRCs) is purely a CPU optimization: correctness never depends on it,
  /// because any chunk that cannot reference a prior epoch is copied from
  /// the live span during the call.
  void put_capture(const util::BlobKey& key,
                   std::vector<CaptureSection> sections);

  /// Synchronous commit: the classic barrier (drain lanes, then record the
  /// recovery point). In COW mode commit() defers instead; recovery paths
  /// that must re-commit a fallback epoch call this directly.
  void commit_now(int epoch);

  /// Cancel every deferred commit that has not finalized (their queued
  /// drops are discarded too -- the epochs they would have dropped are the
  /// recovery points now), wait out any commit mid-finalize, drain the
  /// lanes swallowing write errors (the in-flight epoch is being
  /// abandoned; its failed_epochs_ latch remains), and clear the committer
  /// error latch. Called at the top of failure recovery: afterwards the
  /// store answers committed_epoch() without waiting on anything.
  void abort_in_flight();

  /// True when `rank`'s writer lane is idle (empty queue, no blob being
  /// encoded) and no deferred commit is outstanding. The replica tier's
  /// parity-quiescence bit must not assert while capture buffers are still
  /// draining -- this is that predicate's storage half.
  bool rank_quiescent(int rank) const;

  /// Non-blocking: true when no deferred commit is pending or mid-finalize.
  /// A shutdown initiator polls this while still pumping the network so
  /// other ranks can keep answering parity traffic until commits land.
  bool commits_settled() const;

  bool cow_enabled() const noexcept { return opts_.cow; }
  std::size_t chunk_size() const noexcept { return opts_.chunk_size; }

  std::size_t lanes() const noexcept { return lane_count_; }
  util::StableStorage& inner() noexcept { return *inner_; }
  const util::BufferPool& pool() const noexcept { return pool_; }

 private:
  struct ParsedChunk {
    std::uint8_t kind = 0;
    CodecId codec = CodecId::kNone;
    std::uint32_t crc = 0;
    std::int32_t home = -1;
    std::size_t offset = 0;     ///< compressed payload offset in the blob
    std::size_t comp_size = 0;
    std::size_t raw_len = 0;
  };
  struct ParsedSection {
    std::string name;
    std::uint64_t raw_size = 0;
    std::vector<ParsedChunk> chunks;
  };
  struct ParsedBlob {
    util::Bytes data;
    std::uint32_t chunk_size = 0;
    bool is_container = false;  ///< re-encoded v1 container vs opaque blob
    std::vector<ParsedSection> sections;
  };

  /// Per-lane accounting, cache-line padded so lanes never false-share.
  struct alignas(64) LaneCounters {
    std::atomic<std::uint64_t> puts{0};
    std::atomic<std::uint64_t> raw_bytes{0};
    std::atomic<std::uint64_t> stored_bytes{0};
    std::atomic<std::uint64_t> write_ns{0};
    std::atomic<std::uint64_t> inline_chunks{0};
    std::atomic<std::uint64_t> ref_chunks{0};
  };

  /// Encode one blob and put it on the backend. Runs on the lane's writer
  /// thread in async mode, inline (lane 0) otherwise. Exactly one of
  /// (raw, staged) is populated: raw blobs take the full delta decision in
  /// encode_blob, staged blobs arrive pre-diffed from put_capture and only
  /// need compression + serialization.
  void write_one(std::size_t lane, const util::BlobKey& key, util::Bytes raw,
                 std::unique_ptr<StagedBlob> staged);

  util::Bytes encode_blob(std::size_t lane, const util::BlobKey& key,
                          std::span<const std::byte> raw);

  /// Serialize a pre-diffed capture into the v2 chunked container,
  /// compressing its staged (inline) chunks. No metadata locks: every
  /// decision was made at capture time.
  util::Bytes encode_staged(const util::BlobKey& key, StagedBlob& staged);

  static bool is_chunked(std::span<const std::byte> blob);
  static ParsedBlob parse_chunked(util::Bytes blob);
  util::Bytes reconstruct(const util::BlobKey& key, util::Bytes stored) const;

  std::shared_ptr<util::StableStorage> inner_;
  StoreOptions opts_;
  std::size_t lane_count_ = 1;

  /// Per-lane slice of the delta index, cache-line padded. A chain key's
  /// rank routes to exactly one lane (meta_lane == AsyncWriter::lane_of),
  /// so a shard is touched by one writer thread plus the rare cross-rank
  /// GC table erasure -- ref/index decisions of different ranks never
  /// serialize on each other.
  struct alignas(64) MetaShard {
    mutable std::mutex mu;
    DeltaIndex index;
  };

  /// The metadata shard owning chains of `rank` (same routing as the
  /// writer lanes, so one rank's encode and index state share a lane).
  std::size_t meta_lane(int rank) const noexcept {
    const auto n = static_cast<std::size_t>(lane_count_);
    const auto r = static_cast<std::size_t>(rank < 0 ? -(rank + 1) : rank);
    return r % n;
  }

  /// The full_interval recorded beside `epoch`'s commit marker (nullopt:
  /// absent, damaged, or implausible -- no safe sweep horizon).
  std::optional<std::int32_t> read_retention_interval(int epoch) const;

  /// Startup retention sweep (constructor): drops deferred at crash time
  /// are forgotten with the in-memory bookkeeping, so a restart enumerates
  /// the backend and drops every epoch older than committed -
  /// full_interval -- provably unreachable under the one-hop reference
  /// rule (no retained epoch's manifest can name a home that far back).
  void sweep_stale_epochs();

  /// Execute every requested drop whose epoch is no longer referenced by
  /// any live (not-yet-dropped) epoch, cascading: dropping one epoch may
  /// unpin the homes it referenced. Caller holds gc_mu_; epochs dropped in
  /// this pass are appended to `dropped_now` so the caller can erase their
  /// index tables per shard *after* releasing the GC lock (shard locks are
  /// never taken under gc_mu_).
  void try_drops_locked(std::vector<int>& dropped_now);
  bool referenced_by_live_locked(int epoch) const;
  /// Erase dropped epochs' tables from every index shard (call with no
  /// lock held).
  void erase_dropped_tables(const std::vector<int>& dropped_now);
  /// Acquire `mu`, counting contended acquisitions into `counter`.
  std::mutex& lock_counted(std::mutex& mu,
                           std::atomic<std::uint64_t>& counter) const;

  std::unique_ptr<MetaShard[]> meta_shards_;

  /// Cross-rank retention state (short critical sections only; no backend
  /// I/O except the physical drop, no shard locks, no chunk work).
  mutable std::mutex gc_mu_;
  std::map<int, std::set<int>> refs_;  ///< epoch -> home epochs it references
  std::set<int> drop_requested_;  ///< protocol asked; executes when unpinned
  std::set<int> dropped_;   ///< physically dropped epochs (never reference)
  /// Epochs with a failed backend write. commit() refuses them even if the
  /// one-shot lane error was already consumed by an intervening flush (a
  /// reader's get() drains lanes too); drop_epoch() -- recovery abandoning
  /// the epoch -- clears the latch.
  std::set<int> failed_epochs_;

  // Stats (relaxed: read by benchmarks, not by the protocol).
  std::atomic<std::uint64_t> commit_stall_ns_{0};
  std::atomic<std::uint64_t> sync_put_ns_{0};
  mutable std::atomic<std::uint64_t> meta_lock_waits_{0};
  mutable std::atomic<std::uint64_t> gc_lock_waits_{0};
  std::unique_ptr<LaneCounters[]> lane_counters_;

  /// Recycles per-chunk compression scratch and drained blob buffers.
  mutable util::BufferPool pool_;

  std::unique_ptr<AsyncWriter> writer_;  ///< null in sync mode

  // ------------------------------------------------- deferred commit (COW)

  /// One deferred commit: finalize `epoch` once every lane's completed
  /// count reaches `fence`, then execute the drops the protocol queued
  /// behind it (superseded-epoch GC must run after -- never before -- the
  /// new recovery point is durable).
  struct PendingCommit {
    int epoch = 0;
    std::vector<std::uint64_t> fence;
    std::vector<int> drops_after;
  };

  /// Finalize one epoch: refuse failed epochs, record the retention
  /// interval, forward the commit, retry deferred drops. The body shared
  /// by commit_now() and the committer thread; caller guarantees every
  /// blob the epoch enqueued has drained.
  void finalize_commit(int epoch);
  /// Synchronous drop body (drop_epoch minus the lane drain).
  void drop_now(int epoch);
  void committer_run();
  /// Block until the pending-commit queue is empty and no commit is mid-
  /// finalize; rethrows (and clears) the first committer error.
  void settle_commits() const;

  mutable std::mutex commit_mu_;
  mutable std::condition_variable commit_cv_;       ///< wakes the committer
  mutable std::condition_variable commit_done_cv_;  ///< wakes settlers
  mutable std::deque<PendingCommit> pending_commits_;
  /// Superseded-epoch drops that arrived while their commit was already
  /// in flight on the committer (drop_epoch raced the queue pop); the
  /// committer runs them right after it finalizes. Guarded by commit_mu_.
  std::deque<int> inflight_drops_;
  mutable std::exception_ptr commit_error_;
  bool committer_stop_ = false;
  bool commit_in_flight_ = false;
  std::atomic<std::uint64_t> capture_ns_{0};
  std::thread committer_;  ///< running only in COW async mode
};

}  // namespace c3::ckptstore
