// CheckpointStore: the checkpoint storage pipeline.
//
// A StableStorage wrapper that turns the protocol's "serialize everything
// and block on the write" checkpoints into a pipelined store:
//
//   1. delta encoding -- each container section (heap image, globals,
//      protocol state, logs) is split into fixed-size chunks with per-chunk
//      CRCs; a chunk whose CRC matches the previous epoch's is stored as a
//      reference to the epoch that last wrote its bytes ("home" epoch),
//      so only changed blocks travel to stable storage;
//   2. compression -- changed chunks pass through a self-contained codec
//      (ckptstore/codec.hpp) before hitting the backend;
//   3. async commit -- puts are handed to a background writer thread over
//      a bounded queue (ckptstore/pipeline.hpp); the rank resumes
//      computing while the write drains. commit(epoch) flushes the queue
//      *before* forwarding the commit to the backend, so the recovery
//      point is only ever recorded once every blob it names is durable --
//      an uncommitted epoch can never be used for recovery.
//
// Reads reverse the pipeline: get() reconstructs the exact original bytes
// by resolving delta references against prior epochs' blobs, validating
// every chunk CRC. Blobs written without the wrapper (plain v1 containers
// or arbitrary bytes) pass through untouched, so a store pointed at an old
// directory keeps working.
//
// Retention: the protocol drops superseded epochs after each commit, but a
// committed manifest may still reference chunks homed in an older epoch.
// drop_epoch() therefore defers the physical drop of any epoch the
// committed recovery point still needs, and retries deferred drops after
// the next commit. `full_interval` bounds how long a chunk may keep an old
// home (and hence how many superseded epochs can pile up) by forcing a
// periodic inline rewrite.
#pragma once

#include <memory>
#include <set>

#include "ckptstore/codec.hpp"
#include "ckptstore/delta.hpp"
#include "ckptstore/pipeline.hpp"
#include "util/buffer_pool.hpp"
#include "util/stable_storage.hpp"

namespace c3::ckptstore {

struct StoreOptions {
  bool delta = true;   ///< emit chunk references against the prior epoch
  bool async = true;   ///< background writer thread (sync put when false)
  CodecId codec = CodecId::kLz;
  std::size_t chunk_size = 4096;
  std::size_t queue_max_blobs = 8;
  std::size_t queue_max_bytes = std::size_t{64} << 20;
  /// Force an inline rewrite of a chunk whose home epoch is this many
  /// epochs old: bounds delta-chain retention.
  std::int32_t full_interval = 16;
};

class CheckpointStore final : public util::StableStorage {
 public:
  explicit CheckpointStore(std::shared_ptr<util::StableStorage> inner,
                           StoreOptions opts = {});
  ~CheckpointStore() override;

  void put(const util::BlobKey& key, const util::Bytes& data) override;
  void put(const util::BlobKey& key, util::Bytes&& data) override;
  std::optional<util::Bytes> get(const util::BlobKey& key) const override;
  void commit(int epoch) override;
  std::optional<int> committed_epoch() const override;
  void drop_epoch(int epoch) override;
  std::uint64_t total_bytes() const override;
  std::uint64_t bytes_written() const override;
  util::StorageStats storage_stats() const override;

  /// Drain the write queue (no-op in sync mode). Rethrows writer errors.
  void flush() const;

  util::StableStorage& inner() noexcept { return *inner_; }
  const util::BufferPool& pool() const noexcept { return pool_; }

 private:
  struct ParsedChunk {
    std::uint8_t kind = 0;
    CodecId codec = CodecId::kNone;
    std::uint32_t crc = 0;
    std::int32_t home = -1;
    std::size_t offset = 0;     ///< compressed payload offset in the blob
    std::size_t comp_size = 0;
    std::size_t raw_len = 0;
  };
  struct ParsedSection {
    std::string name;
    std::uint64_t raw_size = 0;
    std::vector<ParsedChunk> chunks;
  };
  struct ParsedBlob {
    util::Bytes data;
    std::uint32_t chunk_size = 0;
    bool is_container = false;  ///< re-encoded v1 container vs opaque blob
    std::vector<ParsedSection> sections;
  };

  /// Encode one blob (delta + compress) and put it on the backend. Runs on
  /// the writer thread in async mode, inline otherwise.
  void write_one(const util::BlobKey& key, util::Bytes raw);

  util::Bytes encode_blob(const util::BlobKey& key,
                          std::span<const std::byte> raw);

  static bool is_chunked(std::span<const std::byte> blob);
  static ParsedBlob parse_chunked(util::Bytes blob);
  util::Bytes reconstruct(const util::BlobKey& key, util::Bytes stored) const;

  std::shared_ptr<util::StableStorage> inner_;
  StoreOptions opts_;

  // Write-side state: the delta index plus retention bookkeeping. Guarded
  // by meta_mu_ (writer thread encodes; rank threads commit/drop).
  /// Execute every requested drop whose epoch is no longer referenced by
  /// any live (not-yet-dropped) epoch, cascading: dropping one epoch may
  /// unpin the homes it referenced. Caller holds meta_mu_.
  void try_drops_locked();
  bool referenced_by_live_locked(int epoch) const;

  mutable std::mutex meta_mu_;
  DeltaIndex index_;
  std::map<int, std::set<int>> refs_;  ///< epoch -> home epochs it references
  std::set<int> drop_requested_;  ///< protocol asked; executes when unpinned
  std::set<int> dropped_;   ///< physically dropped epochs (never reference)

  // Stats (relaxed: read by benchmarks, not by the protocol).
  std::atomic<std::uint64_t> raw_bytes_{0};
  std::atomic<std::uint64_t> inline_chunks_{0};
  std::atomic<std::uint64_t> ref_chunks_{0};
  std::atomic<std::uint64_t> commit_stall_ns_{0};
  std::atomic<std::uint64_t> sync_put_ns_{0};

  /// Recycles per-chunk compression scratch and drained blob buffers.
  mutable util::BufferPool pool_;

  std::unique_ptr<AsyncWriter> writer_;  ///< null in sync mode
};

}  // namespace c3::ckptstore
