// Copy-on-write capture: the work items exchanged between the checkpoint
// site (rank thread) and the writer lanes when StoreOptions::cow is on.
//
// The classic path serializes every section into one v1 container on the
// rank thread and hands the whole blob to a lane, which re-chunks it and
// decides ref-vs-inline per chunk. The COW path moves that decision to the
// *capture site*: the rank thread walks each section's live bytes with
// per-chunk CRCs (supplied pre-computed by a write-tracking caller, or
// computed in place), consults the delta index, and copies ONLY the chunks
// that must travel inline into a pooled staging buffer. Control returns to
// the application as soon as those chunks are copied -- the lane thread
// then compresses and serializes the staged chunks into the very same v2
// chunked container format the classic path produces, so the read /
// reconstruct / replica paths are untouched.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/stable_storage.hpp"

namespace c3::ckptstore {

/// One section of a checkpoint offered to CheckpointStore::put_capture().
/// `data` must stay valid only for the duration of the call: every byte the
/// store needs is copied out before put_capture() returns.
struct CaptureSection {
  std::string name;
  std::span<const std::byte> data;
  /// Per-chunk CRC32s at the store's chunk size. Empty = the store computes
  /// them (the pre-copy diff pass); non-empty = the caller's write-tracking
  /// already knows them (hot chunks re-diffed, clean chunks reused).
  std::vector<std::uint32_t> crcs;
};

/// A captured section after the ref-vs-inline decision: CRCs and homes for
/// every chunk, plus the inline chunks' raw bytes concatenated in chunk
/// order in `staged` (chunks with home >= 0 contribute no bytes).
struct StagedSection {
  std::string name;
  std::uint64_t raw_size = 0;
  std::vector<std::uint32_t> crcs;
  std::vector<std::int32_t> homes;  ///< -1 = inline (bytes in `staged`)
  util::Bytes staged;
};

/// A captured blob queued on a writer lane: everything the lane needs to
/// compress + serialize the v2 container without touching application
/// memory again.
struct StagedBlob {
  bool is_container = true;
  std::vector<StagedSection> sections;
  std::size_t staged_bytes = 0;  ///< lane queue byte-accounting
};

}  // namespace c3::ckptstore
