#include "ckptstore/codec.hpp"

#include <cstring>

#include "util/error.hpp"

namespace c3::ckptstore {

namespace {

// LZSS parameters. The 16-bit offset window comfortably covers the default
// 4 KiB checkpoint chunk; matches start at 4 bytes so a token (>= 3 bytes)
// never loses against the literals it replaces.
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 0xFFFF;
constexpr int kHashBits = 12;
constexpr std::uint32_t kEmpty = 0xFFFF'FFFFu;

inline std::uint32_t read32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint32_t hash32(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void put_varint(util::Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

inline std::uint64_t get_varint(std::span<const std::byte> comp,
                                std::size_t& pos) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= comp.size()) {
      throw util::CorruptionError("codec: truncated varint");
    }
    const auto b = static_cast<std::uint8_t>(comp[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw util::CorruptionError("codec: varint overflow");
}

// Token stream: repeated groups of
//   varint literal_count, literal bytes,
//   [varint match_len (>= kMinMatch), varint offset]   -- absent when the
//   literals reach the end of the chunk.
// The decoder stops once raw_size bytes have been produced, so no explicit
// terminator is stored.
void lz_compress(std::span<const std::byte> raw, util::Bytes& out) {
  std::uint32_t table[std::size_t{1} << kHashBits];
  std::memset(table, 0xFF, sizeof(table));

  const std::byte* p = raw.data();
  const std::size_t n = raw.size();
  std::size_t pos = 0;
  std::size_t lit_start = 0;

  auto emit_group = [&](std::size_t lit_end, std::size_t match_len,
                        std::size_t offset) {
    put_varint(out, lit_end - lit_start);
    out.insert(out.end(), p + lit_start, p + lit_end);
    if (match_len > 0) {
      put_varint(out, match_len);
      put_varint(out, offset);
    }
  };

  while (pos + kMinMatch <= n) {
    const std::uint32_t v = read32(p + pos);
    const std::uint32_t h = hash32(v);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand != kEmpty && pos - cand <= kMaxOffset &&
        read32(p + cand) == v) {
      std::size_t len = kMinMatch;
      while (pos + len < n && p[cand + len] == p[pos + len]) ++len;
      emit_group(pos, len, pos - cand);
      pos += len;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  if (lit_start < n) emit_group(n, 0, 0);
}

}  // namespace

CodecId codec_encode(CodecId preferred, std::span<const std::byte> raw,
                     util::Bytes& out) {
  out.clear();
  if (preferred == CodecId::kLz && raw.size() > kMinMatch) {
    lz_compress(raw, out);
    if (out.size() < raw.size()) return CodecId::kLz;
    out.clear();
  }
  out.insert(out.end(), raw.begin(), raw.end());
  return CodecId::kNone;
}

void codec_decode(CodecId id, std::span<const std::byte> comp,
                  std::size_t raw_size, util::Bytes& out) {
  switch (id) {
    case CodecId::kNone: {
      if (comp.size() != raw_size) {
        throw util::CorruptionError("codec: verbatim chunk size mismatch");
      }
      out.insert(out.end(), comp.begin(), comp.end());
      return;
    }
    case CodecId::kLz: {
      const std::size_t base = out.size();
      std::size_t produced = 0;
      std::size_t pos = 0;
      while (produced < raw_size) {
        const std::uint64_t lits = get_varint(comp, pos);
        if (lits > raw_size - produced || lits > comp.size() - pos) {
          throw util::CorruptionError("codec: literal run overflows chunk");
        }
        out.insert(out.end(), comp.begin() + static_cast<std::ptrdiff_t>(pos),
                   comp.begin() + static_cast<std::ptrdiff_t>(pos + lits));
        pos += lits;
        produced += lits;
        if (produced >= raw_size) break;
        const std::uint64_t len = get_varint(comp, pos);
        const std::uint64_t off = get_varint(comp, pos);
        if (len < kMinMatch || len > raw_size - produced || off == 0 ||
            off > produced) {
          throw util::CorruptionError("codec: bad match token");
        }
        // Byte-wise copy: matches may overlap their own output (run-length
        // style back-references with offset < length).
        for (std::uint64_t i = 0; i < len; ++i) {
          out.push_back(out[base + produced - off + i]);
        }
        produced += len;
      }
      if (pos != comp.size()) {
        throw util::CorruptionError("codec: trailing bytes after chunk");
      }
      return;
    }
  }
  throw util::CorruptionError("codec: unknown codec id " +
                              std::to_string(static_cast<int>(id)));
}

const char* codec_name(CodecId id) {
  switch (id) {
    case CodecId::kNone: return "none";
    case CodecId::kLz: return "lz";
  }
  return "?";
}

}  // namespace c3::ckptstore
