#include "ckptstore/store.hpp"

#include <chrono>
#include <cstring>

#include "statesave/checkpoint.hpp"
#include "util/clock.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace c3::ckptstore {

using statesave::CheckpointBuilder;
using Clock = util::MonoClock;
using util::ns_since;

namespace {
/// Tiny meta blob written beside each commit marker, recording the
/// full_interval in effect when the committed manifests were written. The
/// startup sweep's safety proof depends on *that* interval, not on the
/// restarted process's configuration.
constexpr char kRetentionMetaSection[] = "c3-retention-interval";
}  // namespace

std::mutex& CheckpointStore::lock_counted(
    std::mutex& mu, std::atomic<std::uint64_t>& counter) const {
  // Try-then-lock: the uncontended fast path costs one CAS (same as a
  // plain lock); only contended acquisitions pay the counter update.
  if (!mu.try_lock()) {
    counter.fetch_add(1, std::memory_order_relaxed);
    mu.lock();
  }
  return mu;
}

CheckpointStore::CheckpointStore(std::shared_ptr<util::StableStorage> inner,
                                 StoreOptions opts)
    : inner_(std::move(inner)), opts_(opts) {
  if (!inner_) throw util::UsageError("CheckpointStore requires a backend");
  if (opts_.chunk_size == 0 ||
      opts_.chunk_size > CheckpointBuilder::kMaxChunkSize) {
    throw util::UsageError(
        "CheckpointStore chunk_size must be positive and at most "
        "CheckpointBuilder::kMaxChunkSize");
  }
  if (opts_.full_interval <= 0) opts_.full_interval = 1;
  sweep_stale_epochs();
  lane_count_ = opts_.async ? std::max<std::size_t>(1, opts_.writer_lanes) : 1;
  meta_shards_ = std::make_unique<MetaShard[]>(lane_count_);
  lane_counters_ = std::make_unique<LaneCounters[]>(lane_count_);
  if (opts_.async) {
    // The byte budget is a *total* across lanes: split it evenly so per-
    // rank wiring keeps the same in-flight memory ceiling as one lane.
    const std::size_t bytes_per_lane =
        std::max<std::size_t>(1, opts_.queue_max_bytes / lane_count_);
    writer_ = std::make_unique<AsyncWriter>(
        [this](std::size_t lane, const util::BlobKey& key, util::Bytes raw,
               std::unique_ptr<StagedBlob> staged) {
          write_one(lane, key, std::move(raw), std::move(staged));
        },
        lane_count_, opts_.queue_max_blobs, bytes_per_lane,
        opts_.after_lane_flush);
  }
  if (opts_.cow && writer_) {
    committer_ = std::thread([this] { committer_run(); });
  }
}

CheckpointStore::~CheckpointStore() {
  if (committer_.joinable()) {
    // Stop-after-drain: the committer finalizes every commit still queued
    // (fences always become reachable -- lanes count errored items too),
    // then exits. Protocol shutdown settles earlier; this is the backstop.
    {
      std::lock_guard lock(commit_mu_);
      committer_stop_ = true;
    }
    commit_cv_.notify_all();
    committer_.join();
  }
  // Join the lanes before any member they touch is destroyed. Pending
  // writes drain (they may matter to a committed epoch only if commit was
  // called, which already flushed; draining the rest is just tidy).
  writer_.reset();
}

// ------------------------------------------------------------------ write

void CheckpointStore::put(const util::BlobKey& key, const util::Bytes& data) {
  put(key, util::Bytes(data));
}

void CheckpointStore::put(const util::BlobKey& key, util::Bytes&& data) {
  const std::size_t lane = writer_ ? writer_->lane_of(key.rank) : 0;
  const std::size_t size = data.size();
  if (writer_) {
    // enqueue() may rethrow a prior lane error; count only accepted blobs.
    writer_->enqueue(key, std::move(data));
  } else {
    const auto t0 = Clock::now();
    write_one(0, key, std::move(data), nullptr);
    sync_put_ns_.fetch_add(ns_since(t0), std::memory_order_relaxed);
  }
  LaneCounters& lc = lane_counters_[lane];
  lc.puts.fetch_add(1, std::memory_order_relaxed);
  lc.raw_bytes.fetch_add(size, std::memory_order_relaxed);
}

void CheckpointStore::write_one(std::size_t lane, const util::BlobKey& key,
                                util::Bytes raw,
                                std::unique_ptr<StagedBlob> staged) {
  const auto t0 = Clock::now();
  try {
    util::Bytes encoded =
        staged ? encode_staged(key, *staged) : encode_blob(lane, key, raw);
    const std::size_t encoded_size = encoded.size();
    inner_->put(key, std::move(encoded));
    // Counted only after the backend accepted the write, so lane_stats()
    // never reports bytes for a blob that never landed.
    LaneCounters& lc = lane_counters_[lane];
    lc.stored_bytes.fetch_add(encoded_size, std::memory_order_relaxed);
    lc.write_ns.fetch_add(ns_since(t0), std::memory_order_relaxed);
  } catch (...) {
    // The blob never landed, but encode_blob already updated the delta
    // index, so (a) latch the epoch as failed -- commit() must refuse it
    // even if the one-shot lane error gets consumed by a reader's flush
    // first -- and (b) drop this blob's chains so no later epoch emits
    // refs homed in the missing blob.
    {
      std::lock_guard gc(lock_counted(gc_mu_, gc_lock_waits_),
                         std::adopt_lock);
      failed_epochs_.insert(key.epoch);
    }
    {
      MetaShard& ms = meta_shards_[meta_lane(key.rank)];
      std::lock_guard lock(lock_counted(ms.mu, meta_lock_waits_),
                           std::adopt_lock);
      ms.index.drop_chains_for(key.rank, key.section);
    }
    throw;
  }
  // Recycle the rank's serialized-checkpoint buffer (or the capture's
  // staging buffers) for future scratch.
  if (staged) {
    for (auto& sec : staged->sections) pool_.release(std::move(sec.staged));
  } else {
    pool_.release(std::move(raw));
  }
}

util::Bytes CheckpointStore::encode_blob(std::size_t lane,
                                         const util::BlobKey& key,
                                         std::span<const std::byte> raw) {
  // A protocol "state" blob is a v1 container: chunk per section so stable
  // sections (heap image, globals) delta independently of churning ones
  // (protocol counters). Anything else (event logs, foreign blobs) is
  // treated as one unnamed section.
  auto parsed = statesave::parse_v1_sections(raw);
  const bool is_container = parsed.has_value();
  std::vector<std::pair<std::string, std::span<const std::byte>>> sections;
  if (parsed) {
    sections = std::move(*parsed);
  } else {
    sections.emplace_back("", raw);
  }

  const std::size_t cs = opts_.chunk_size;

  // Phase 1, no lock: per-chunk CRCs. This is the bulk of the CPU work
  // besides compression, and needs nothing shared -- lanes overlap here.
  struct SectionPlan {
    std::vector<std::uint32_t> crcs;
    std::vector<std::int32_t> homes;  ///< decided in phase 2; -1 = inline
  };
  std::vector<SectionPlan> plans(sections.size());
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const auto data = sections[s].second;
    const std::size_t n = chunk_count(data.size(), cs);
    plans[s].crcs.resize(n);
    plans[s].homes.assign(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
      plans[s].crcs[i] =
          util::crc32(data.subspan(i * cs, chunk_len(data.size(), cs, i)));
    }
  }

  // Phase 2: ref-vs-inline decisions, split across the two metadata locks
  // so lanes encoding different ranks never serialize on each other.
  //
  //   2a (this rank's shard lock): candidate homes from the chain's prior
  //       table -- CRC match, length match, reference-horizon window. The
  //       shard is touched only by this rank's lane plus the rare GC table
  //       erasure, so this lock is effectively uncontended.
  //   2b (global GC lock, short): validate candidates against dropped_ and
  //       register the surviving refs atomically with respect to drops --
  //       the cross-lane GC interlock. A drop either ran first (the
  //       candidate demotes to inline here) or defers until this epoch is
  //       itself dropped. A candidate read from a stale table (its epoch
  //       dropped between 2a and 2b, erasure pending) is caught here too.
  //   2c (shard lock again): install the new table. Only this rank's lane
  //       writes this chain, so nothing can have interleaved since 2a.
  MetaShard& ms = meta_shards_[meta_lane(key.rank)];
  std::uint64_t inline_count = 0, ref_count = 0;
  {
    std::lock_guard lock(lock_counted(ms.mu, meta_lock_waits_),
                         std::adopt_lock);
    for (std::size_t s = 0; s < sections.size(); ++s) {
      const auto& [name, data] = sections[s];
      const SectionIndex* prev =
          ms.index.find(ChainKey{key.rank, key.section, name});
      const std::size_t n = plans[s].crcs.size();
      for (std::size_t i = 0; i < n; ++i) {
        std::int32_t home = -1;
        if (opts_.delta && prev != nullptr && i < prev->chunks.size() &&
            prev->chunks[i].crc == plans[s].crcs[i] &&
            chunk_len(prev->raw_size, cs, i) ==
                chunk_len(data.size(), cs, i)) {
          const std::int32_t h = prev->chunks[i].home_epoch;
          // A reference must name an older, still-present epoch; a chunk
          // whose home has aged past full_interval is rewritten inline so
          // superseded epochs cannot be pinned forever.
          if (h >= 0 && h < key.epoch &&
              key.epoch - h < opts_.full_interval) {
            home = h;
          }
        }
        plans[s].homes[i] = home;
      }
    }
  }
  {
    std::lock_guard gc(lock_counted(gc_mu_, gc_lock_waits_), std::adopt_lock);
    // Re-writing an epoch (recovery re-executing it) makes it live again;
    // and entries older than the reference horizon can never be named by a
    // future ref, so the dropped-set stays bounded.
    dropped_.erase(key.epoch);
    drop_requested_.erase(key.epoch);
    dropped_.erase(dropped_.begin(),
                   dropped_.lower_bound(key.epoch - opts_.full_interval));
    std::set<int> homes_used;
    for (auto& plan : plans) {
      for (auto& home : plan.homes) {
        if (home < 0) continue;
        if (dropped_.count(home) != 0) {
          home = -1;  // the home epoch is gone: rewrite inline
        } else {
          homes_used.insert(home);
        }
      }
    }
    if (!homes_used.empty()) {
      refs_[key.epoch].insert(homes_used.begin(), homes_used.end());
    }
  }
  {
    std::lock_guard lock(lock_counted(ms.mu, meta_lock_waits_),
                         std::adopt_lock);
    for (std::size_t s = 0; s < sections.size(); ++s) {
      const auto& [name, data] = sections[s];
      SectionIndex next;
      next.epoch = key.epoch;
      next.raw_size = data.size();
      const std::size_t n = plans[s].crcs.size();
      next.chunks.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t home = plans[s].homes[i];
        if (home >= 0) {
          next.chunks[i] = ChunkMeta{plans[s].crcs[i], home};
          ref_count++;
        } else {
          next.chunks[i] = ChunkMeta{plans[s].crcs[i], key.epoch};
          inline_count++;
        }
      }
      ms.index.update(ChainKey{key.rank, key.section, name},
                      std::move(next));
    }
  }
  LaneCounters& lc = lane_counters_[lane];
  lc.inline_chunks.fetch_add(inline_count, std::memory_order_relaxed);
  lc.ref_chunks.fetch_add(ref_count, std::memory_order_relaxed);

  // Phase 3, no lock: serialize the manifest, compressing inline chunks.
  util::Writer w(64 + raw.size() / 2);
  w.put<std::uint32_t>(CheckpointBuilder::kMagic);
  w.put<std::uint32_t>(CheckpointBuilder::kVersionChunked);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cs));
  // Explicit flag instead of inferring "one unnamed section == opaque
  // blob": a genuine container could legally hold an empty-named section.
  w.put<std::uint8_t>(is_container ? 1 : 0);
  w.put<std::uint64_t>(sections.size());
  util::Bytes scratch = pool_.acquire(cs + cs / 8 + 64);
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const auto& [name, data] = sections[s];
    w.put_string(name);
    w.put<std::uint64_t>(data.size());
    for (std::size_t i = 0; i < plans[s].crcs.size(); ++i) {
      w.put<std::uint32_t>(plans[s].crcs[i]);
      const std::int32_t home = plans[s].homes[i];
      if (home >= 0) {
        w.put<std::uint8_t>(CheckpointBuilder::kChunkRef);
        w.put<std::int32_t>(home);
      } else {
        const auto chunk = data.subspan(i * cs, chunk_len(data.size(), cs, i));
        const CodecId used = codec_encode(opts_.codec, chunk, scratch);
        w.put<std::uint8_t>(CheckpointBuilder::kChunkInline);
        w.put<std::uint8_t>(static_cast<std::uint8_t>(used));
        w.put<std::uint64_t>(scratch.size());
        w.put_raw(scratch);
      }
    }
  }
  pool_.release(std::move(scratch));
  return w.take();
}

// ----------------------------------------------------------- COW capture

void CheckpointStore::put_capture(const util::BlobKey& key,
                                  std::vector<CaptureSection> sections) {
  const auto t0 = Clock::now();
  const std::size_t cs = opts_.chunk_size;
  auto staged = std::make_unique<StagedBlob>();
  staged->sections.resize(sections.size());
  std::size_t raw_total = 0;

  // Phase 1, no lock: per-chunk CRCs against the *live* buffers. A caller
  // with write tracking supplies them (only hot chunks re-hashed); anyone
  // else pays one CRC pass -- still far cheaper than serialize + compress.
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const auto data = sections[s].data;
    StagedSection& out = staged->sections[s];
    out.name = sections[s].name;
    out.raw_size = data.size();
    raw_total += data.size();
    const std::size_t n = chunk_count(data.size(), cs);
    if (sections[s].crcs.size() == n) {
      out.crcs = std::move(sections[s].crcs);
    } else {
      out.crcs.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.crcs[i] =
            util::crc32(data.subspan(i * cs, chunk_len(data.size(), cs, i)));
      }
    }
    out.homes.assign(n, -1);
  }

  // Phases 2a/2b/2c: the exact ref-vs-inline protocol of encode_blob
  // (candidate homes under the shard lock, validation + ref registration
  // under the GC lock, index install under the shard lock) -- run at
  // capture time so the GC interlock sees the refs *before* this call
  // returns. A drop racing this capture either ran first (the candidate
  // demotes to inline and the live bytes are copied below) or defers.
  MetaShard& ms = meta_shards_[meta_lane(key.rank)];
  std::uint64_t inline_count = 0, ref_count = 0;
  {
    std::lock_guard lock(lock_counted(ms.mu, meta_lock_waits_),
                         std::adopt_lock);
    for (std::size_t s = 0; s < sections.size(); ++s) {
      StagedSection& out = staged->sections[s];
      const SectionIndex* prev =
          ms.index.find(ChainKey{key.rank, key.section, out.name});
      const std::size_t n = out.crcs.size();
      for (std::size_t i = 0; i < n; ++i) {
        std::int32_t home = -1;
        if (opts_.delta && prev != nullptr && i < prev->chunks.size() &&
            prev->chunks[i].crc == out.crcs[i] &&
            chunk_len(prev->raw_size, cs, i) ==
                chunk_len(out.raw_size, cs, i)) {
          const std::int32_t h = prev->chunks[i].home_epoch;
          if (h >= 0 && h < key.epoch &&
              key.epoch - h < opts_.full_interval) {
            home = h;
          }
        }
        out.homes[i] = home;
      }
    }
  }
  {
    std::lock_guard gc(lock_counted(gc_mu_, gc_lock_waits_), std::adopt_lock);
    dropped_.erase(key.epoch);
    drop_requested_.erase(key.epoch);
    dropped_.erase(dropped_.begin(),
                   dropped_.lower_bound(key.epoch - opts_.full_interval));
    std::set<int> homes_used;
    for (auto& sec : staged->sections) {
      for (auto& home : sec.homes) {
        if (home < 0) continue;
        if (dropped_.count(home) != 0) {
          home = -1;
        } else {
          homes_used.insert(home);
        }
      }
    }
    if (!homes_used.empty()) {
      refs_[key.epoch].insert(homes_used.begin(), homes_used.end());
    }
  }
  {
    std::lock_guard lock(lock_counted(ms.mu, meta_lock_waits_),
                         std::adopt_lock);
    for (auto& sec : staged->sections) {
      SectionIndex next;
      next.epoch = key.epoch;
      next.raw_size = sec.raw_size;
      const std::size_t n = sec.crcs.size();
      next.chunks.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (sec.homes[i] >= 0) {
          next.chunks[i] = ChunkMeta{sec.crcs[i], sec.homes[i]};
          ref_count++;
        } else {
          next.chunks[i] = ChunkMeta{sec.crcs[i], key.epoch};
          inline_count++;
        }
      }
      ms.index.update(ChainKey{key.rank, key.section, sec.name},
                      std::move(next));
    }
  }

  // The copy-on-write snapshot itself, no lock: every chunk that could not
  // reference a prior epoch is copied out of the live span now -- after
  // this loop the application may mutate its buffers freely.
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const auto data = sections[s].data;
    StagedSection& out = staged->sections[s];
    std::size_t inline_bytes = 0;
    for (std::size_t i = 0; i < out.homes.size(); ++i) {
      if (out.homes[i] < 0) inline_bytes += chunk_len(data.size(), cs, i);
    }
    out.staged = pool_.acquire(inline_bytes);
    std::size_t off = 0;
    for (std::size_t i = 0; i < out.homes.size(); ++i) {
      if (out.homes[i] >= 0) continue;
      const auto chunk = data.subspan(i * cs, chunk_len(data.size(), cs, i));
      std::memcpy(out.staged.data() + off, chunk.data(), chunk.size());
      off += chunk.size();
    }
    staged->staged_bytes += inline_bytes;
  }

  const std::size_t lane = writer_ ? writer_->lane_of(key.rank) : 0;
  LaneCounters& lc = lane_counters_[lane];
  lc.inline_chunks.fetch_add(inline_count, std::memory_order_relaxed);
  lc.ref_chunks.fetch_add(ref_count, std::memory_order_relaxed);
  try {
    if (writer_) {
      writer_->enqueue_staged(key, std::move(staged));
    } else {
      write_one(0, key, {}, std::move(staged));
    }
  } catch (...) {
    // Same latch as a failed lane write: the index already advanced, so
    // commit() must refuse the epoch and no later epoch may reference it.
    {
      std::lock_guard gc(lock_counted(gc_mu_, gc_lock_waits_),
                         std::adopt_lock);
      failed_epochs_.insert(key.epoch);
    }
    {
      std::lock_guard lock(lock_counted(ms.mu, meta_lock_waits_),
                           std::adopt_lock);
      ms.index.drop_chains_for(key.rank, key.section);
    }
    throw;
  }
  lc.puts.fetch_add(1, std::memory_order_relaxed);
  lc.raw_bytes.fetch_add(raw_total, std::memory_order_relaxed);
  capture_ns_.fetch_add(ns_since(t0), std::memory_order_relaxed);
}

util::Bytes CheckpointStore::encode_staged(const util::BlobKey&,
                                           StagedBlob& staged) {
  const std::size_t cs = opts_.chunk_size;
  util::Writer w(64 + staged.staged_bytes / 2);
  w.put<std::uint32_t>(CheckpointBuilder::kMagic);
  w.put<std::uint32_t>(CheckpointBuilder::kVersionChunked);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cs));
  w.put<std::uint8_t>(staged.is_container ? 1 : 0);
  w.put<std::uint64_t>(staged.sections.size());
  util::Bytes scratch = pool_.acquire(cs + cs / 8 + 64);
  for (const auto& sec : staged.sections) {
    w.put_string(sec.name);
    w.put<std::uint64_t>(sec.raw_size);
    std::size_t off = 0;
    for (std::size_t i = 0; i < sec.crcs.size(); ++i) {
      w.put<std::uint32_t>(sec.crcs[i]);
      if (sec.homes[i] >= 0) {
        w.put<std::uint8_t>(CheckpointBuilder::kChunkRef);
        w.put<std::int32_t>(sec.homes[i]);
      } else {
        const std::size_t len = chunk_len(sec.raw_size, cs, i);
        const std::span<const std::byte> chunk{sec.staged.data() + off, len};
        off += len;
        const CodecId used = codec_encode(opts_.codec, chunk, scratch);
        w.put<std::uint8_t>(CheckpointBuilder::kChunkInline);
        w.put<std::uint8_t>(static_cast<std::uint8_t>(used));
        w.put<std::uint64_t>(scratch.size());
        w.put_raw(scratch);
      }
    }
  }
  pool_.release(std::move(scratch));
  return w.take();
}

// ------------------------------------------------------------------- read

bool CheckpointStore::is_chunked(std::span<const std::byte> blob) {
  if (blob.size() < 8) return false;
  util::Reader r(blob);
  return r.get<std::uint32_t>() == CheckpointBuilder::kMagic &&
         r.get<std::uint32_t>() == CheckpointBuilder::kVersionChunked;
}

CheckpointStore::ParsedBlob CheckpointStore::parse_chunked(util::Bytes blob) {
  ParsedBlob pb;
  pb.data = std::move(blob);
  util::Reader r(pb.data);
  if (r.get<std::uint32_t>() != CheckpointBuilder::kMagic ||
      r.get<std::uint32_t>() != CheckpointBuilder::kVersionChunked) {
    throw util::CorruptionError("checkpoint store: not a chunked blob");
  }
  pb.chunk_size = r.get<std::uint32_t>();
  if (pb.chunk_size == 0 ||
      pb.chunk_size > CheckpointBuilder::kMaxChunkSize) {
    throw util::CorruptionError("checkpoint store: implausible chunk size");
  }
  const auto container_flag = r.get<std::uint8_t>();
  if (container_flag > 1) {
    throw util::CorruptionError("checkpoint store: bad container flag");
  }
  pb.is_container = container_flag == 1;
  const auto count = r.get<std::uint64_t>();
  // Corruption-controlled counts must never drive allocations: every
  // section/chunk occupies several stream bytes, so a count exceeding the
  // remaining bytes is corrupt, not a resize request (the same overflow
  // class Reader::get_vector rejects).
  // Each section record occupies at least 16 stream bytes, each chunk at
  // least 5: bound the resizes by what the stream could possibly hold.
  if (count > r.remaining() / 16) {
    throw util::CorruptionError("checkpoint store: section count overflow");
  }
  pb.sections.resize(count);
  for (auto& sec : pb.sections) {
    sec.name = r.get_string();
    sec.raw_size = r.get<std::uint64_t>();
    const std::size_t n = chunk_count(sec.raw_size, pb.chunk_size);
    if (n > r.remaining() / 5) {
      throw util::CorruptionError("checkpoint store: chunk count overflow");
    }
    sec.chunks.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ParsedChunk& c = sec.chunks[i];
      c.raw_len = chunk_len(sec.raw_size, pb.chunk_size, i);
      c.crc = r.get<std::uint32_t>();
      c.kind = r.get<std::uint8_t>();
      if (c.kind == CheckpointBuilder::kChunkInline) {
        c.codec = static_cast<CodecId>(r.get<std::uint8_t>());
        c.comp_size = r.get<std::uint64_t>();
        c.offset = r.position();
        (void)r.get_span(c.comp_size);
      } else if (c.kind == CheckpointBuilder::kChunkRef) {
        c.home = r.get<std::int32_t>();
      } else {
        throw util::CorruptionError("checkpoint store: unknown chunk kind");
      }
    }
  }
  if (!r.empty()) {
    throw util::CorruptionError("checkpoint store: trailing bytes");
  }
  return pb;
}

util::Bytes CheckpointStore::reconstruct(const util::BlobKey& key,
                                         util::Bytes stored) const {
  if (!is_chunked(stored)) return stored;  // v1 / foreign blob passthrough
  const ParsedBlob top = parse_chunked(std::move(stored));

  // Home blobs fetched (at most once each) to resolve delta references.
  std::map<int, ParsedBlob> homes;
  auto load_home = [&](int epoch) -> const ParsedBlob& {
    auto it = homes.find(epoch);
    if (it != homes.end()) return it->second;
    auto blob = inner_->get({epoch, key.rank, key.section});
    if (!blob || !is_chunked(*blob)) {
      throw util::CorruptionError(
          "checkpoint delta chain broken: epoch " + std::to_string(epoch) +
          " rank " + std::to_string(key.rank) + " '" + key.section +
          "' missing");
    }
    return homes.emplace(epoch, parse_chunked(std::move(*blob)))
        .first->second;
  };
  auto decode_chunk = [](const ParsedBlob& pb, const ParsedChunk& c,
                         util::Bytes& out) {
    const std::span<const std::byte> comp{pb.data.data() + c.offset,
                                          c.comp_size};
    const std::size_t before = out.size();
    codec_decode(c.codec, comp, c.raw_len, out);
    const std::span<const std::byte> decoded{out.data() + before,
                                             out.size() - before};
    if (util::crc32(decoded) != c.crc) {
      throw util::CorruptionError(
          "checkpoint chunk failed CRC validation after decompression");
    }
  };

  const bool pseudo = !top.is_container;
  if (pseudo &&
      (top.sections.size() != 1 || !top.sections[0].name.empty())) {
    throw util::CorruptionError(
        "checkpoint store: opaque blob with container-shaped sections");
  }
  CheckpointBuilder builder;
  for (const auto& sec : top.sections) {
    util::Bytes bytes;
    // Bounded up-front reserve: raw_size came off storage and may lie.
    bytes.reserve(std::min<std::uint64_t>(sec.raw_size,
                                          std::uint64_t{64} << 20));
    for (std::size_t i = 0; i < sec.chunks.size(); ++i) {
      const ParsedChunk& c = sec.chunks[i];
      if (c.kind == CheckpointBuilder::kChunkInline) {
        decode_chunk(top, c, bytes);
        continue;
      }
      const ParsedBlob& hb = load_home(c.home);
      const ParsedSection* hs = nullptr;
      for (const auto& s : hb.sections) {
        if (s.name == sec.name) {
          hs = &s;
          break;
        }
      }
      if (hs == nullptr || i >= hs->chunks.size()) {
        throw util::CorruptionError(
            "checkpoint delta reference to a chunk the home epoch never "
            "stored");
      }
      const ParsedChunk& hc = hs->chunks[i];
      if (hc.kind != CheckpointBuilder::kChunkInline || hc.crc != c.crc ||
          hc.raw_len != c.raw_len) {
        throw util::CorruptionError(
            "checkpoint delta reference disagrees with the home epoch");
      }
      decode_chunk(hb, hc, bytes);
    }
    if (bytes.size() != sec.raw_size) {
      throw util::CorruptionError("checkpoint section size mismatch");
    }
    if (pseudo) return bytes;
    builder.add_section(sec.name, std::move(bytes));
  }
  return builder.finish();
}

std::optional<util::Bytes> CheckpointStore::get(
    const util::BlobKey& key) const {
  flush();  // reads must observe every queued write
  auto stored = inner_->get(key);
  if (!stored) return std::nullopt;
  return reconstruct(key, std::move(*stored));
}

// ------------------------------------------------------ commit & retention

void CheckpointStore::flush() const {
  settle_commits();
  if (writer_) writer_->flush();
}

void CheckpointStore::finalize_commit(int epoch) {
  // Caller guarantees every blob this epoch enqueued has drained (full
  // flush in the synchronous path, fence reached in the deferred path --
  // done_seq counts errored items too, so a failed write is visible in
  // failed_epochs_ by the time the fence is reachable).
  {
    std::lock_guard gc(lock_counted(gc_mu_, gc_lock_waits_), std::adopt_lock);
    if (failed_epochs_.count(epoch) != 0) {
      throw util::CorruptionError(
          "checkpoint store: epoch " + std::to_string(epoch) +
          " has a failed write and cannot be the recovery point");
    }
  }
  // Record the reference horizon beside the recovery point so a future
  // incarnation's startup sweep honours the interval these manifests were
  // written under (it may be restarted with a smaller full_interval).
  // Never downgrade an existing record: a recovery re-commit of an epoch
  // whose manifests were encoded under a larger interval must keep that
  // larger bound.
  {
    std::int32_t record = opts_.full_interval;
    if (const auto prev = read_retention_interval(epoch)) {
      record = std::max(record, *prev);
    }
    util::Writer w;
    w.put<std::int32_t>(record);
    inner_->put({epoch, 0, kRetentionMetaSection}, w.take());
  }
  inner_->commit(epoch);

  // Superseded epochs whose drop was deferred may be droppable now (the
  // epoch that pinned them may itself have been dropped or rewritten).
  std::vector<int> dropped_now;
  {
    std::lock_guard gc(lock_counted(gc_mu_, gc_lock_waits_), std::adopt_lock);
    try_drops_locked(dropped_now);
  }
  erase_dropped_tables(dropped_now);
}

void CheckpointStore::commit_now(int epoch) {
  // The commit barrier: the recovery point is recorded only after every
  // blob it names is durably on the backend. Lanes drain concurrently, so
  // this stall costs max-over-lanes write time, not the sum.
  const auto t0 = Clock::now();
  flush();
  commit_stall_ns_.fetch_add(ns_since(t0), std::memory_order_relaxed);
  finalize_commit(epoch);
}

void CheckpointStore::commit(int epoch) {
  if (!committer_.joinable()) {
    commit_now(epoch);
    return;
  }
  // Deferred commit: snapshot a fence of what each lane has accepted so
  // far (this epoch's captures are all enqueued by now -- the protocol
  // commits after every rank checkpointed) and hand the epoch to the
  // committer thread. The app-visible stall is just this enqueue; the
  // barrier itself happens behind the running application.
  const auto t0 = Clock::now();
  auto fence = writer_->fence();
  {
    std::lock_guard lock(commit_mu_);
    if (commit_error_) {
      auto e = commit_error_;
      commit_error_ = nullptr;
      std::rethrow_exception(e);
    }
    pending_commits_.push_back(PendingCommit{epoch, std::move(fence), {}});
  }
  commit_cv_.notify_all();
  commit_stall_ns_.fetch_add(ns_since(t0), std::memory_order_relaxed);
}

void CheckpointStore::committer_run() {
  std::unique_lock lock(commit_mu_);
  for (;;) {
    if (pending_commits_.empty()) {
      if (committer_stop_) return;
      commit_cv_.wait(lock, [&] {
        return committer_stop_ || !pending_commits_.empty();
      });
      continue;
    }
    if (!writer_->fence_reached(pending_commits_.front().fence)) {
      // Lanes have no completion hook; a sub-millisecond nap keeps
      // finalization latency far below one blob's write time without
      // burning a core. The fence always becomes reachable -- lanes
      // count errored items too -- so stop-after-drain terminates.
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      lock.lock();
      continue;
    }
    PendingCommit pc = std::move(pending_commits_.front());
    pending_commits_.pop_front();
    commit_in_flight_ = true;
    lock.unlock();
    std::exception_ptr err;
    try {
      finalize_commit(pc.epoch);
      // GC of the epochs this commit superseded runs strictly after the
      // new recovery point is durable -- the ordering the synchronous
      // path got for free.
      for (const int e : pc.drops_after) drop_now(e);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    // Drops that raced the pop (drop_epoch saw this commit in flight) run
    // now, with the new recovery point already durable. A failed commit
    // discards them: the superseded epoch is still the recovery point.
    while (!inflight_drops_.empty()) {
      const int e = inflight_drops_.front();
      inflight_drops_.pop_front();
      if (err) continue;
      lock.unlock();
      try {
        drop_now(e);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
    }
    if (err && !commit_error_) commit_error_ = err;
    commit_in_flight_ = false;
    commit_done_cv_.notify_all();
  }
}

void CheckpointStore::settle_commits() const {
  if (!committer_.joinable()) return;
  std::unique_lock lock(commit_mu_);
  commit_done_cv_.wait(lock, [&] {
    return pending_commits_.empty() && !commit_in_flight_;
  });
  if (commit_error_) {
    auto e = commit_error_;
    commit_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void CheckpointStore::abort_in_flight() {
  if (committer_.joinable()) {
    std::unique_lock lock(commit_mu_);
    // Cancelled commits take their queued drops with them: the epochs
    // those drops would have removed are the recovery points now.
    pending_commits_.clear();
    inflight_drops_.clear();
    commit_done_cv_.wait(lock, [&] { return !commit_in_flight_; });
    commit_error_ = nullptr;
  }
  // Drain the lanes swallowing one-shot write errors: the in-flight epoch
  // is being abandoned, and its durable refusal is the failed_epochs_
  // latch, which survives. Each throw consumes one latched lane error and
  // the queues only shrink, so this terminates.
  if (writer_) {
    for (;;) {
      try {
        writer_->flush();
        break;
      } catch (...) {
      }
    }
  }
}

bool CheckpointStore::rank_quiescent(int rank) const {
  if (writer_ && !writer_->lane_idle(writer_->lane_of(rank))) return false;
  if (committer_.joinable()) {
    std::lock_guard lock(commit_mu_);
    if (!pending_commits_.empty() || commit_in_flight_) return false;
  }
  return true;
}

bool CheckpointStore::commits_settled() const {
  if (!committer_.joinable()) return true;
  std::lock_guard lock(commit_mu_);
  return pending_commits_.empty() && !commit_in_flight_;
}

void CheckpointStore::sweep_stale_epochs() {
  const auto committed = inner_->committed_epoch();
  if (!committed) return;
  // One-hop reference rule: a chunk's home is at most full_interval - 1
  // epochs behind the manifest that names it, and homes are never chained.
  // The committed epoch -- and the detached-fallback epoch right before it
  // -- can therefore never reach anything older than committed -
  // full_interval: whatever sits below that horizon is a drop that was
  // deferred (or in flight) when the previous incarnation crashed, and
  // would otherwise leak on the backend forever.
  //
  // The proof needs the full_interval the restorable manifests were
  // *written* under -- this incarnation may be configured with a smaller
  // one. Recovery can restore the committed epoch or (detached fallback)
  // the epoch right before it, so both epochs' recorded intervals bound
  // the horizon. No record on either (a store predating the record, or a
  // damaged blob) means no safe horizon: skip the sweep -- the records
  // written at this incarnation's commits re-arm it for the next restart.
  std::int32_t interval = opts_.full_interval;
  const auto committed_interval = read_retention_interval(*committed);
  if (!committed_interval) return;
  interval = std::max(interval, *committed_interval);
  const auto epochs = inner_->list_epochs();
  if (std::binary_search(epochs.begin(), epochs.end(), *committed - 1)) {
    const auto fallback_interval = read_retention_interval(*committed - 1);
    if (!fallback_interval) return;
    interval = std::max(interval, *fallback_interval);
  }
  const int horizon = *committed - interval;
  for (const int e : epochs) {
    if (e >= horizon) continue;
    inner_->drop_epoch(e);
    dropped_.insert(e);  // ctor runs single-threaded; no lock needed yet
  }
}

std::optional<std::int32_t> CheckpointStore::read_retention_interval(
    int epoch) const {
  const auto meta = inner_->get({epoch, 0, kRetentionMetaSection});
  if (!meta) return std::nullopt;
  try {
    util::Reader r(*meta);
    const auto interval = r.get<std::int32_t>();
    if (interval <= 0) return std::nullopt;
    return interval;
  } catch (const util::CorruptionError&) {
    return std::nullopt;
  }
}

bool CheckpointStore::referenced_by_live_locked(int epoch) const {
  // Only epochs the protocol still *uses* pin their homes: the committed /
  // retained ones, i.e. those never drop-requested. A drop-requested epoch
  // may itself stay retained (some live manifest references its inline
  // chunks), but its own refs pin nothing: chains are one hop deep, so no
  // read ever follows a home blob's references -- only its inline chunks.
  // Without this distinction, reference chains telescope (epoch e pins
  // e-1, which pins e-2, ...) and under steady random churn no superseded
  // epoch would ever be collected.
  for (const auto& [f, homes] : refs_) {
    if (dropped_.count(f) != 0 || drop_requested_.count(f) != 0) continue;
    if (homes.count(epoch) != 0) return true;
  }
  return false;
}

void CheckpointStore::try_drops_locked(std::vector<int>& dropped_now) {
  bool progress = true;
  while (progress) {
    progress = false;
    const std::vector<int> pending(drop_requested_.begin(),
                                   drop_requested_.end());
    for (const int e : pending) {
      if (referenced_by_live_locked(e)) continue;
      inner_->drop_epoch(e);
      dropped_.insert(e);
      refs_.erase(e);
      drop_requested_.erase(e);
      dropped_now.push_back(e);
      progress = true;  // dropping e may unpin the homes it referenced
    }
  }
}

void CheckpointStore::erase_dropped_tables(
    const std::vector<int>& dropped_now) {
  if (dropped_now.empty()) return;
  // Index tables of dropped epochs are erased shard by shard *after* the
  // GC lock is released: shard locks are never nested under gc_mu_. A
  // stale table surviving until here is harmless -- every candidate home
  // it yields is re-validated against dropped_ before a ref is emitted.
  for (std::size_t l = 0; l < lane_count_; ++l) {
    MetaShard& ms = meta_shards_[l];
    std::lock_guard lock(lock_counted(ms.mu, meta_lock_waits_),
                         std::adopt_lock);
    for (const int e : dropped_now) ms.index.drop_tables_for_epoch(e);
  }
}

std::optional<int> CheckpointStore::committed_epoch() const {
  // A deferred commit the protocol already initiated must be visible to
  // whoever asks for the recovery point (recovery, the final report):
  // settle the pipeline first. Failure recovery calls abort_in_flight()
  // before this, making it non-blocking there.
  settle_commits();
  return inner_->committed_epoch();
}

void CheckpointStore::drop_epoch(int epoch) {
  if (committer_.joinable()) {
    std::lock_guard lock(commit_mu_);
    if (!pending_commits_.empty()) {
      // The protocol drops a superseded epoch right after committing its
      // successor; with that commit still in flight the drop must run
      // after the new recovery point is durable, or a crash in between
      // would leave no recovery point at all. Queue it behind the last
      // pending commit -- a cancelled commit discards it.
      pending_commits_.back().drops_after.push_back(epoch);
      return;
    }
    if (commit_in_flight_) {
      // Same ordering rule, but the committer already popped the commit.
      // Blocking here instead would deadlock: the caller is the rank
      // thread whose pump ships this store's parity traffic, and the
      // in-flight commit is waiting on exactly those acks. Park the drop
      // for the committer to run right after it finalizes.
      inflight_drops_.push_back(epoch);
      return;
    }
  }
  // Queued writes may target `epoch` (recovery abandoning a half-written
  // next checkpoint); drain them first so a late write cannot resurrect
  // the dropped blobs. A writer error surfacing from this flush still
  // aborts the drop: the caller must observe it.
  flush();
  drop_now(epoch);
}

void CheckpointStore::drop_now(int epoch) {
  std::vector<int> dropped_now;
  {
    std::lock_guard gc(lock_counted(gc_mu_, gc_lock_waits_), std::adopt_lock);
    // Abandoning the epoch clears its failed-write latch: a re-execution
    // starts from a clean slate (and a fresh, ref-free delta chain).
    failed_epochs_.erase(epoch);
    // The physical drop waits until no live epoch's manifest references
    // chunks homed here -- not just the newest commit's: a retained
    // fallback epoch (detached shutdown) pins its homes too.
    drop_requested_.insert(epoch);
    try_drops_locked(dropped_now);
  }
  erase_dropped_tables(dropped_now);
}

// ------------------------------------------------------------- accounting

std::vector<int> CheckpointStore::list_epochs() const {
  flush();  // queued writes may open a new epoch
  return inner_->list_epochs();
}

std::uint64_t CheckpointStore::total_bytes() const {
  flush();
  return inner_->total_bytes();
}

std::uint64_t CheckpointStore::bytes_written() const {
  return inner_->bytes_written();
}

util::StorageStats CheckpointStore::storage_stats() const {
  util::StorageStats s;
  for (std::size_t l = 0; l < lane_count_; ++l) {
    const LaneCounters& lc = lane_counters_[l];
    s.raw_bytes += lc.raw_bytes.load(std::memory_order_relaxed);
    s.inline_chunks += lc.inline_chunks.load(std::memory_order_relaxed);
    s.ref_chunks += lc.ref_chunks.load(std::memory_order_relaxed);
  }
  s.stored_bytes = inner_->bytes_written();
  s.put_stall_ns = sync_put_ns_.load(std::memory_order_relaxed) +
                   capture_ns_.load(std::memory_order_relaxed) +
                   (writer_ ? writer_->enqueue_stall_ns() : 0);
  s.commit_stall_ns = commit_stall_ns_.load(std::memory_order_relaxed);
  s.meta_lock_waits = meta_lock_waits_.load(std::memory_order_relaxed);
  s.gc_lock_waits = gc_lock_waits_.load(std::memory_order_relaxed);
  // Surface the replica tier's accounting (zero for plain backends); its
  // commit stall -- waiting for parity acks -- is commit-barrier time just
  // like the lane drain above.
  const util::StorageStats in = inner_->storage_stats();
  s.parity_bytes_sent = in.parity_bytes_sent;
  s.parity_bytes_received = in.parity_bytes_received;
  s.reconstruct_reads = in.reconstruct_reads;
  s.parity_acks_waited = in.parity_acks_waited;
  s.commit_stall_ns += in.commit_stall_ns;
  return s;
}

void CheckpointStore::wipe_rank(int rank) {
  // Queued writes for the rank would land *after* the wipe and resurrect
  // partial state; drain them first so the wipe is total.
  flush();
  inner_->wipe_rank(rank);
  // The rank's delta chains describe blobs that are no longer on the
  // backend (reads still resolve through the replica tier's reconstruction,
  // but new manifests must not extend chains homed in wiped blobs): the
  // next checkpoint writes fully inline. Retention refs are untouched --
  // other ranks' manifests in the same epochs still pin their homes.
  MetaShard& ms = meta_shards_[meta_lane(rank)];
  std::lock_guard lock(lock_counted(ms.mu, meta_lock_waits_),
                       std::adopt_lock);
  ms.index.drop_rank(rank);
}

std::vector<util::LaneStats> CheckpointStore::lane_stats() const {
  std::vector<util::LaneStats> lanes(lane_count_);
  for (std::size_t l = 0; l < lane_count_; ++l) {
    const LaneCounters& lc = lane_counters_[l];
    util::LaneStats& out = lanes[l];
    out.puts = lc.puts.load(std::memory_order_relaxed);
    out.raw_bytes = lc.raw_bytes.load(std::memory_order_relaxed);
    out.stored_bytes = lc.stored_bytes.load(std::memory_order_relaxed);
    out.write_ns = lc.write_ns.load(std::memory_order_relaxed);
    out.stall_ns = writer_ ? writer_->lane_enqueue_stall_ns(l)
                           : sync_put_ns_.load(std::memory_order_relaxed);
  }
  return lanes;
}

}  // namespace c3::ckptstore
