#include "ckptstore/pipeline.hpp"

#include "util/clock.hpp"
#include "util/error.hpp"

namespace c3::ckptstore {

using util::MonoClock;
using util::ns_since;

AsyncWriter::AsyncWriter(Sink sink, std::size_t lanes,
                         std::size_t max_blobs_per_lane,
                         std::size_t max_bytes_per_lane,
                         FlushHook after_lane_flush)
    : sink_(std::move(sink)),
      after_lane_flush_(std::move(after_lane_flush)),
      max_blobs_(max_blobs_per_lane == 0 ? 1 : max_blobs_per_lane),
      max_bytes_(max_bytes_per_lane == 0 ? 1 : max_bytes_per_lane) {
  if (lanes == 0) lanes = 1;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  // Threads start only once every Lane exists: a thread observing lanes_
  // mid-construction would race the vector growth. If a thread fails to
  // start (e.g. EAGAIN at high lane counts), stop and join the lanes that
  // did start before rethrowing -- otherwise a joinable std::thread member
  // would terminate the process during unwinding.
  try {
    for (std::size_t i = 0; i < lanes; ++i) {
      Lane& lane = *lanes_[i];
      lane.thread = std::thread([this, &lane, i] { run(lane, i); });
    }
  } catch (...) {
    for (auto& lane : lanes_) {
      if (!lane->thread.joinable()) continue;
      {
        std::lock_guard lock(lane->mu);
        lane->stop = true;
      }
      lane->work.notify_all();
      lane->thread.join();
    }
    throw;
  }
}

AsyncWriter::~AsyncWriter() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard lock(lane->mu);
      lane->stop = true;
    }
    lane->work.notify_all();
  }
  for (auto& lane : lanes_) lane->thread.join();
}

void AsyncWriter::enqueue(const util::BlobKey& key, util::Bytes raw) {
  Pending p;
  p.key = key;
  p.size = raw.size();
  p.raw = std::move(raw);
  enqueue_item(std::move(p));
}

void AsyncWriter::enqueue_staged(const util::BlobKey& key,
                                 std::unique_ptr<StagedBlob> staged) {
  Pending p;
  p.key = key;
  p.size = staged ? staged->staged_bytes : 0;
  p.staged = std::move(staged);
  enqueue_item(std::move(p));
}

void AsyncWriter::enqueue_item(Pending item) {
  Lane& lane = *lanes_[lane_of(item.key.rank)];
  const std::size_t size = item.size;
  std::unique_lock lock(lane.mu);
  rethrow_locked(lane);
  // An empty queue always admits: a single blob larger than max_bytes_
  // must be accepted (and drained alone), or the byte bound would turn
  // into a permanent deadlock -- nothing is in flight to ever free room.
  const auto admissible = [&] {
    return lane.queue.empty() || (lane.queue.size() < max_blobs_ &&
                                  lane.queued_bytes + size <= max_bytes_);
  };
  if (!admissible()) {
    const auto t0 = MonoClock::now();
    lane.room.wait(lock, [&] { return lane.stop || lane.error || admissible(); });
    lane.enqueue_stall_ns.fetch_add(ns_since(t0), std::memory_order_relaxed);
    rethrow_locked(lane);
  }
  lane.queue.push_back(std::move(item));
  lane.queued_bytes += size;
  lane.enqueued_seq++;
  lane.work.notify_one();
}

std::vector<std::uint64_t> AsyncWriter::fence() const {
  std::vector<std::uint64_t> f(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    std::lock_guard lock(lanes_[i]->mu);
    f[i] = lanes_[i]->enqueued_seq;
  }
  return f;
}

bool AsyncWriter::fence_reached(const std::vector<std::uint64_t>& f) const {
  for (std::size_t i = 0; i < lanes_.size() && i < f.size(); ++i) {
    std::lock_guard lock(lanes_[i]->mu);
    if (lanes_[i]->done_seq < f[i]) return false;
  }
  return true;
}

bool AsyncWriter::lane_idle(std::size_t index) const {
  const Lane& lane = *lanes_[index];
  std::lock_guard lock(lane.mu);
  return lane.queue.empty() && !lane.busy;
}

void AsyncWriter::flush_lane(std::size_t index) {
  Lane& lane = *lanes_[index];
  std::unique_lock lock(lane.mu);
  if (!lane.queue.empty() || lane.busy) {
    lane.room.wait(lock,
                   [&] { return lane.error || (lane.queue.empty() && !lane.busy); });
  }
  rethrow_locked(lane);
}

void AsyncWriter::flush() {
  // Lanes drain concurrently on their own threads; waiting on each in turn
  // still completes after max-over-lanes, not sum -- every lane keeps
  // writing while we block on an earlier one.
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    flush_lane(i);
    if (after_lane_flush_) after_lane_flush_(i);
  }
}

std::uint64_t AsyncWriter::enqueue_stall_ns() const noexcept {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->enqueue_stall_ns.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t AsyncWriter::lane_enqueue_stall_ns(
    std::size_t lane) const noexcept {
  return lanes_[lane]->enqueue_stall_ns.load(std::memory_order_relaxed);
}

void AsyncWriter::rethrow_locked(Lane& lane) {
  if (lane.error) {
    auto e = lane.error;
    lane.error = nullptr;
    std::rethrow_exception(e);
  }
}

void AsyncWriter::run(Lane& lane, std::size_t index) {
  for (;;) {
    Pending p;
    {
      std::unique_lock lock(lane.mu);
      lane.work.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
      if (lane.queue.empty()) return;  // stop with a drained queue
      p = std::move(lane.queue.front());
      lane.queue.pop_front();
      lane.queued_bytes -= p.size;
      lane.busy = true;
    }
    // The pop itself freed queue capacity: wake a blocked producer now so
    // it refills the lane while the sink writes, instead of stalling a
    // full write-time behind the notify at the bottom of the loop. A
    // flush waiter re-checks its predicate, so the early wake is safe.
    lane.room.notify_all();
    try {
      sink_(index, p.key, std::move(p.raw), std::move(p.staged));
    } catch (...) {
      std::lock_guard lock(lane.mu);
      lane.error = std::current_exception();
    }
    {
      std::lock_guard lock(lane.mu);
      lane.busy = false;
      // done_seq advances in the same critical section that clears busy:
      // a fence observed as reached implies the item's error (if any) is
      // already latched in lane.error.
      lane.done_seq++;
    }
    lane.room.notify_all();
  }
}

}  // namespace c3::ckptstore
