#include "ckptstore/pipeline.hpp"

#include <chrono>

namespace c3::ckptstore {

namespace {
using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}
}  // namespace

AsyncWriter::AsyncWriter(Sink sink, std::size_t max_blobs,
                         std::size_t max_bytes)
    : sink_(std::move(sink)),
      max_blobs_(max_blobs == 0 ? 1 : max_blobs),
      max_bytes_(max_bytes == 0 ? 1 : max_bytes),
      thread_([this] { run(); }) {}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_.notify_all();
  thread_.join();
}

void AsyncWriter::enqueue(const util::BlobKey& key, util::Bytes raw) {
  const std::size_t size = raw.size();
  std::unique_lock lock(mu_);
  rethrow_locked();
  // An empty queue always admits: a single blob larger than max_bytes_
  // must be accepted (and drained alone), or the byte bound would turn
  // into a permanent deadlock -- nothing is in flight to ever free room.
  const auto admissible = [&] {
    return queue_.empty() || (queue_.size() < max_blobs_ &&
                              queued_bytes_ + size <= max_bytes_);
  };
  if (!admissible()) {
    const auto t0 = Clock::now();
    room_.wait(lock, [&] { return stop_ || error_ || admissible(); });
    enqueue_stall_ns_.fetch_add(ns_since(t0), std::memory_order_relaxed);
    rethrow_locked();
  }
  queue_.push_back(Pending{key, std::move(raw)});
  queued_bytes_ += size;
  work_.notify_one();
}

void AsyncWriter::flush() {
  std::unique_lock lock(mu_);
  if (queue_.empty() && !writer_busy_) {
    rethrow_locked();
    return;
  }
  room_.wait(lock, [&] {
    return error_ || (queue_.empty() && !writer_busy_);
  });
  rethrow_locked();
}

void AsyncWriter::rethrow_locked() {
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void AsyncWriter::run() {
  for (;;) {
    Pending p;
    {
      std::unique_lock lock(mu_);
      work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      p = std::move(queue_.front());
      queue_.pop_front();
      queued_bytes_ -= p.raw.size();
      writer_busy_ = true;
    }
    try {
      sink_(p.key, std::move(p.raw));
    } catch (...) {
      std::lock_guard lock(mu_);
      error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      writer_busy_ = false;
    }
    room_.notify_all();
  }
}

}  // namespace c3::ckptstore
