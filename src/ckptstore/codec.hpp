// Per-chunk compression codecs for the checkpoint storage pipeline.
//
// Checkpoint chunks are compressed independently (a chunk is the delta
// unit, so identical raw chunks must produce identical stored bytes). The
// codec is deliberately small and self-contained -- an LZSS-style
// byte-oriented compressor with varint token framing, no external
// dependencies -- because the goal is to trade a little CPU on the
// background writer thread against the paper's 40 MB/s stable-storage
// bandwidth, not to compete with real compression libraries.
//
// Stored framing: every chunk records the CodecId actually used. When the
// compressed form would not be smaller than the raw bytes, the encoder
// falls back to kNone and stores the chunk verbatim, so decompression
// never inflates and pathological inputs cost nothing.
#pragma once

#include <cstdint>
#include <span>

#include "util/archive.hpp"

namespace c3::ckptstore {

enum class CodecId : std::uint8_t {
  kNone = 0,  ///< stored verbatim
  kLz = 1,    ///< LZSS with varint (literal-run, match-len, offset) tokens
};

/// Compress `raw` into `out` (cleared first) with `preferred`. Returns the
/// codec actually used: kNone when the compressed form would be >= raw, in
/// which case `out` holds the verbatim bytes.
CodecId codec_encode(CodecId preferred, std::span<const std::byte> raw,
                     util::Bytes& out);

/// Decompress a chunk produced by codec_encode into exactly `raw_size`
/// bytes, appended to `out`. Throws CorruptionError on a malformed stream
/// or a size mismatch.
void codec_decode(CodecId id, std::span<const std::byte> comp,
                  std::size_t raw_size, util::Bytes& out);

/// Human-readable codec name for stats/manifest dumps.
const char* codec_name(CodecId id);

}  // namespace c3::ckptstore
