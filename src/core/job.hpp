// Top-level job runner: executes an application under the C3 protocol,
// injecting stopping failures and restarting the whole job from the last
// committed global checkpoint -- the paper's recovery model, where every
// process rolls back together.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>

#include "ckptstore/store.hpp"
#include "core/process.hpp"
#include "core/types.hpp"
#include "net/failure.hpp"
#include "replica/replicated_storage.hpp"
#include "simmpi/runtime.hpp"
#include "util/stable_storage.hpp"

namespace c3::core {

struct JobConfig {
  int ranks = 4;
  simmpi::NetConfig net;
  InstrumentLevel level = InstrumentLevel::kFull;
  PiggybackMode piggyback = PiggybackMode::kPacked;
  CheckpointPolicy policy;
  std::uint64_t seed = 1;
  std::size_t heap_capacity = 0;
  /// Rank that initiates checkpoints and roots the coordination tree.
  int initiator = 0;
  /// Test probe: called on each coordinator state transition (see
  /// Process::Shared::coordinator_probe).
  std::function<void(int rank, coordinator::CoordinatorState entered)>
      coordinator_probe;
  /// Storage backend; a fresh MemoryStorage is created when null.
  std::shared_ptr<util::StableStorage> storage;
  /// Run checkpoints through the ckptstore pipeline (incremental deltas,
  /// compression, async commit) wrapped around `storage`. Disable to write
  /// full v1 dumps synchronously, as the seed system did.
  bool ckpt_pipeline = true;
  /// Pipeline tuning (chunk size, codec, queue bounds, sync/async, writer
  /// lanes; `writer_lanes == 0` wires one lane per rank).
  ckptstore::StoreOptions ckpt;
  /// Diskless replica tier: stack a replica::ReplicatedStorage between the
  /// pipeline and the backend, erasure-coding every rank's encoded blobs
  /// across groups of `replica_group_size` consecutive ranks with
  /// `replica_parity_k` parity shards per group (1 = XOR, 2 = Reed-Solomon
  /// double-failure cover). 0 disables the tier.
  int replica_group_size = 0;
  int replica_parity_k = 1;
  /// Upper bound on the replica tier's commit-time wait for parity acks
  /// before the commit fails with a diagnostic instead of hanging. CI under
  /// sanitizers can legitimately exceed the default; raise it there rather
  /// than mistaking slowness for a protocol stall.
  std::chrono::milliseconds replica_commit_timeout{30000};
  /// When a stopping failure fires, also wipe the failed rank's entire
  /// storage holding (node dies with its local disk) before recovery --
  /// the failure mode the replica tier reconstructs from.
  bool wipe_failed_rank_storage = false;
  /// Additional ranks whose storage is wiped alongside a failure (models
  /// correlated node losses; parity_k + 1 losses in one group must fail
  /// recovery loudly).
  std::vector<int> extra_wipe_ranks;
  /// Optional injected stopping failure.
  std::optional<net::FailureSpec> failure;
  /// Additional stopping failures (each fires once; combined with
  /// `failure`). Event counts accumulate over the whole job lifetime, so a
  /// later trigger fires during a later execution.
  std::vector<net::FailureSpec> extra_failures;
  /// Give up after this many restarts (failures without a new checkpoint).
  int max_restarts = 8;
  bool validate_classification = false;
};

/// What happened over the job's whole life (including restarts).
struct JobReport {
  int executions = 0;     ///< 1 = no failure; 2 = one rollback; ...
  int failures = 0;       ///< stopping failures observed
  bool recovered = false; ///< at least one execution resumed from a checkpoint
  std::optional<int> last_committed_epoch;
  std::uint64_t storage_bytes_written = 0;
};

class Job {
 public:
  explicit Job(JobConfig config);

  /// Run `app_main` on every rank to completion, transparently rolling back
  /// and restarting on injected failures. Returns the execution report.
  JobReport run(const std::function<void(Process&)>& app_main);

  /// The storage the protocol writes to: the pipeline wrapper when
  /// enabled, otherwise the raw configured backend.
  util::StableStorage& storage() noexcept { return *effective_storage(); }
  const JobConfig& config() const noexcept { return config_; }

  /// Pipeline accounting (raw vs stored bytes, delta hit rate, stalls,
  /// replica parity traffic when the tier is enabled).
  util::StorageStats storage_stats() const {
    if (pipeline_) return pipeline_->storage_stats();
    if (replica_) return replica_->storage_stats();
    return config_.storage->storage_stats();
  }

  /// The replica tier, when enabled (tests poke reconstruction counters).
  const std::shared_ptr<replica::ReplicatedStorage>& replica() const noexcept {
    return replica_;
  }

 private:
  std::shared_ptr<util::StableStorage> effective_storage() {
    if (pipeline_) return pipeline_;
    if (replica_) return replica_;
    return config_.storage;
  }

  JobConfig config_;
  /// Lives for the whole job (including restarts) so the delta index and
  /// retention bookkeeping survive a rollback.
  std::shared_ptr<ckptstore::CheckpointStore> pipeline_;
  /// Erasure-coded peer-replication tier, stacked between the pipeline and
  /// the backend when JobConfig::replica_group_size > 0. Also job-lifetime:
  /// parity blobs written before a failure must survive the rollback.
  std::shared_ptr<replica::ReplicatedStorage> replica_;
};

}  // namespace c3::core
