// Shared types of the C3 protocol layer.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

namespace c3::core {

/// The four instrumentation levels measured in the paper's Figure 8.
enum class InstrumentLevel : std::uint8_t {
  kRaw = 0,            ///< "Unmodified program": protocol layer passes through
  kPiggybackOnly = 1,  ///< Version #1: piggyback data on messages, no checkpoints
  kNoAppState = 2,     ///< Version #2: protocol logs + MPI library state only
  kFull = 3,           ///< Version #3: full checkpoints incl. application state
};

/// Piggyback encoding (Section 4.2): the straightforward triple, or the
/// optimized single 32-bit word (1 color bit + 1 logging bit + 30-bit
/// message ID).
enum class PiggybackMode : std::uint8_t { kFull, kPacked };

/// When the initiator starts a new global checkpoint. The paper uses a
/// 30-second wall-clock interval; tests prefer deterministic counts of
/// potentialCheckpoint calls at the initiator.
struct CheckpointPolicy {
  /// Start a checkpoint every `every_calls` potentialCheckpoint calls seen
  /// by the initiator (0 = disabled).
  std::uint64_t every_calls = 0;
  /// Start a checkpoint when this much wall time passed since the last one
  /// (zero = disabled).
  std::chrono::milliseconds interval{0};
  /// Upper bound on checkpoints per job execution (0 = unlimited).
  std::uint64_t max_checkpoints = 0;

  static CheckpointPolicy none() { return {}; }
  static CheckpointPolicy every(std::uint64_t calls) {
    CheckpointPolicy p;
    p.every_calls = calls;
    return p;
  }
  static CheckpointPolicy timed(std::chrono::milliseconds ms) {
    CheckpointPolicy p;
    p.interval = ms;
    return p;
  }
};

/// Per-process protocol counters, exposed for tests and benchmarks.
struct ProcessStats {
  std::uint64_t app_sends = 0;
  std::uint64_t app_recvs = 0;
  std::uint64_t app_collectives = 0;
  std::uint64_t late_messages = 0;
  std::uint64_t early_messages = 0;
  std::uint64_t intra_epoch_messages = 0;
  std::uint64_t suppressed_sends = 0;
  std::uint64_t replayed_recvs = 0;
  /// Receives whose wildcard pattern was pinned to the logged (source, tag)
  /// during recovery: the message arrives live (the sender re-executes the
  /// send), but the log dictates the match, resolving wildcard
  /// non-determinism exactly as in the original execution.
  std::uint64_t replayed_recv_pins = 0;
  std::uint64_t logged_nondet_events = 0;
  std::uint64_t replayed_nondet_events = 0;
  std::uint64_t logged_collectives = 0;
  std::uint64_t replayed_collectives = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t control_messages = 0;
  /// Storage reads spent probing per-rank "detached" markers. Zero on the
  /// steady-state commit path (the phase-4 aggregate carries the bit);
  /// only recovery-time fallback decisions probe storage.
  std::uint64_t detached_probe_gets = 0;
  std::uint64_t piggyback_bytes = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t log_bytes = 0;
};

}  // namespace c3::core
