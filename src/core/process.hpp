// The C3 protocol layer: one Process object per rank, sitting between the
// application and the (sim)MPI library, intercepting every call -- exactly
// the architecture of Figure 2 in the paper.
//
// Responsibilities:
//  * piggyback <epoch, amLogging, messageID> on application messages and
//    classify incoming messages as late / intra-epoch / early (Section 4.2);
//  * drive the four-phase non-blocking coordination protocol (Section 4.1)
//    through the coordinator::ControlPlane subsystem, which routes
//    pleaseCheckpoint -> local checkpoints, logging -> readyToStopLogging ->
//    stopLogging -> stoppedLogging -> commit over a binomial tree rooted at
//    the configurable initiator (O(log P) per-phase initiator cost);
//  * detect completion of late-message receipt with per-peer send/receive
//    counts (mySendCount control messages, Section 4.3);
//  * log late-message payloads, receive-matching order, non-deterministic
//    events, and collective results while logging; replay them on recovery;
//  * suppress the resend of early messages during recovery using the
//    receiver-saved message IDs;
//  * handle collectives with the control-exchange conjunction rule and the
//    barrier epoch-agreement special case (Section 4.5);
//  * save and reconstruct MPI library state through pseudo-handles
//    (Section 5.2) and application state through either the registration
//    API or the statesave instrumentation structures (Section 5.1).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/control.hpp"
#include "core/coordinator/control_plane.hpp"
#include "core/logrec.hpp"
#include "core/mpistate.hpp"
#include "core/piggyback.hpp"
#include "core/types.hpp"
#include "net/failure.hpp"
#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"
#include "statesave/save_context.hpp"
#include "util/rng.hpp"
#include "util/stable_storage.hpp"

namespace c3::replica {
class ReplicatedStorage;
}

namespace c3::ckptstore {
class CheckpointStore;
}

namespace c3::core {

class Process {
 public:
  /// Job-wide configuration and services shared by every rank's Process.
  struct Shared {
    std::shared_ptr<util::StableStorage> storage;
    /// Every injector is consulted on each operation; each is one-shot.
    std::vector<std::shared_ptr<net::FailureInjector>> injectors;
    InstrumentLevel level = InstrumentLevel::kFull;
    PiggybackMode piggyback = PiggybackMode::kPacked;
    CheckpointPolicy policy;
    std::uint64_t seed = 1;
    std::size_t heap_capacity = 0;
    /// Rank that initiates checkpoints and roots the coordination tree.
    int initiator = 0;
    /// True when this execution is a restart from a committed checkpoint.
    bool recovering = false;
    /// kFull piggyback only: cross-check the packed color classification
    /// against the direct epoch comparison (property-testing aid).
    bool validate_classification = false;
    /// Test probe forwarded to the control plane: called after every
    /// coordinator state transition (may throw to crash a rank at an
    /// exact protocol phase).
    std::function<void(int rank, coordinator::CoordinatorState entered)>
        coordinator_probe;
    /// The erasure-coded replica tier inside `storage`'s stack, when wired
    /// (core::Job with JobConfig::replica enabled). Each rank's Process
    /// pumps its replica lane (ship contributions, fold peers' shards) and
    /// samples its quiescence bit for the phase-4 aggregate.
    std::shared_ptr<replica::ReplicatedStorage> replica;
    /// The checkpoint pipeline inside `storage`'s stack, when wired (same
    /// object as `storage` under core::Job with ckpt_pipeline on). Grants
    /// the protocol access to the COW capture API (put_capture, deferred-
    /// commit settlement, per-rank quiescence) that the StableStorage
    /// interface does not expose.
    std::shared_ptr<ckptstore::CheckpointStore> pipeline;
  };

  Process(simmpi::Api& api, Shared& shared);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  // ------------------------------------------------------------ identity
  simmpi::Rank rank() const noexcept { return me_; }
  int nranks() const noexcept { return nranks_; }
  std::int32_t epoch() const noexcept { return epoch_; }
  bool logging() const noexcept { return am_logging_; }
  /// True while this rank participates in an unfinished coordination round
  /// (initiator: from initiation to commit; others: from the
  /// pleaseCheckpoint relay to the phase-4 forward).
  bool checkpoint_in_progress() const noexcept {
    return control_->round_in_flight();
  }
  /// The coordination subsystem (tree topology, state machine, per-phase
  /// traffic counters). Exposed for tests and benchmarks.
  const coordinator::ControlPlane& control_plane() const noexcept {
    return *control_;
  }
  const coordinator::ControlPlaneStats& coordinator_stats() const noexcept {
    return control_->stats();
  }
  const ProcessStats& stats() const noexcept { return stats_; }
  simmpi::Api& api() noexcept { return api_; }
  InstrumentLevel level() const noexcept { return shared_.level; }

  // ------------------------------------------------- point-to-point API
  void send(std::span<const std::byte> data, simmpi::Rank dst, simmpi::Tag tag,
            CommHandle comm = kWorldComm);
  simmpi::Status recv(std::span<std::byte> out, simmpi::Rank src,
                      simmpi::Tag tag, CommHandle comm = kWorldComm);
  RequestId isend(std::span<const std::byte> data, simmpi::Rank dst,
                  simmpi::Tag tag, CommHandle comm = kWorldComm);
  RequestId irecv(std::span<std::byte> out, simmpi::Rank src, simmpi::Tag tag,
                  CommHandle comm = kWorldComm);
  simmpi::Status wait(RequestId id);
  bool test(RequestId id);
  void waitall(std::span<const RequestId> ids);
  /// True while any pseudo-request is incomplete. The c3mpi facade consults
  /// this before treating an MPI call as an implicit checkpoint site: a
  /// checkpoint with a pending receive requires a heap-arena buffer, which
  /// a verbatim MPI application cannot guarantee.
  bool has_incomplete_requests() const noexcept;

  /// Non-consuming probe for a matching application message (MPI_Probe /
  /// MPI_Iprobe semantics; src may be kAnySource, tag kAnyTag). The size
  /// reported is the application payload, piggyback excluded. During
  /// recovery the reply is driven by the replay log: a logged late message
  /// is reported from the log, a logged live match is reported only once
  /// the re-sent message actually arrived.
  std::optional<simmpi::Status> iprobe(simmpi::Rank src, simmpi::Tag tag,
                                       CommHandle comm = kWorldComm);
  /// Blocking probe: waits until iprobe() would succeed.
  simmpi::Status probe(simmpi::Rank src, simmpi::Tag tag,
                       CommHandle comm = kWorldComm);

  template <typename T>
  void send_value(const T& v, simmpi::Rank dst, simmpi::Tag tag,
                  CommHandle comm = kWorldComm) {
    send(util::as_bytes(v), dst, tag, comm);
  }
  template <typename T>
  T recv_value(simmpi::Rank src, simmpi::Tag tag, CommHandle comm = kWorldComm) {
    T v{};
    recv({reinterpret_cast<std::byte*>(&v), sizeof(T)}, src, tag, comm);
    return v;
  }

  // ---------------------------------------------------------- collectives
  void barrier(CommHandle comm = kWorldComm);
  void bcast(std::span<std::byte> data, simmpi::Rank root,
             CommHandle comm = kWorldComm);
  void reduce(std::span<const std::byte> in, std::span<std::byte> out,
              simmpi::Datatype type, simmpi::Op op, simmpi::Rank root,
              CommHandle comm = kWorldComm);
  void allreduce(std::span<const std::byte> in, std::span<std::byte> out,
                 simmpi::Datatype type, simmpi::Op op,
                 CommHandle comm = kWorldComm);
  void gather(std::span<const std::byte> in, std::span<std::byte> out,
              simmpi::Rank root, CommHandle comm = kWorldComm);
  void allgather(std::span<const std::byte> in, std::span<std::byte> out,
                 CommHandle comm = kWorldComm);
  void alltoall(std::span<const std::byte> in, std::span<std::byte> out,
                CommHandle comm = kWorldComm);

  // ------------------------------------------- persistent opaque objects
  CommHandle comm_dup(CommHandle parent);
  CommHandle comm_split(CommHandle parent, int color, int key);
  void comm_free(CommHandle handle);
  const simmpi::Comm& resolve(CommHandle handle) const;
  simmpi::Rank comm_rank(CommHandle handle) const;
  int comm_size(CommHandle handle) const;

  // --------------------------------------------------- non-determinism
  /// Deterministic per-rank stream whose draws are logged while logging and
  /// replayed on recovery (state is part of every checkpoint).
  std::uint64_t random_u64();
  double random_double();
  /// A genuinely non-deterministic event (clock read, external input...):
  /// `source` is consulted live, but the observed value is logged while
  /// amLogging and replayed during recovery.
  std::uint64_t nondet(const std::function<std::uint64_t()>& source);

  // ------------------------------------------------ state & checkpoints
  /// Register an application buffer to be saved with every checkpoint and
  /// restored on recovery. Must be called before complete_registration().
  void register_state(std::string name, void* addr, std::size_t size);
  template <typename T>
  void register_value(std::string name, T& v) {
    register_state(std::move(name), &v, sizeof(T));
  }

  /// Register a buffer whose contents are *recomputed* by the application's
  /// own initialization on every (re)start -- e.g. a deterministically
  /// generated matrix. Checkpoints store only a CRC, not the bytes (the
  /// paper's Section 7 "recomputation checkpointing" for read-only data);
  /// recovery verifies the recomputed contents against the saved CRC.
  void register_readonly_state(std::string name, const void* addr,
                               std::size_t size);
  /// Finish registration. On a recovery run this restores all registered
  /// buffers (and the instrumentation structures) from the committed
  /// checkpoint; afterwards restored() reports true.
  void complete_registration();

  /// Enable per-chunk write tracking for a registered (non-readonly)
  /// buffer: the COW capture then re-hashes only the chunks reported dirty
  /// since the last checkpoint instead of the whole buffer. The returned
  /// handle is passed to notify_write(). Contract: after enabling, the
  /// application MUST report *every* write to the buffer -- a missed
  /// notification lets the capture reuse a stale chunk fingerprint and can
  /// silently checkpoint old bytes. Harmless (unused) when the job runs
  /// without the COW pipeline.
  std::size_t enable_write_tracking(const std::string& name);
  /// Report that [offset, offset + len) of the tracked buffer was written.
  void notify_write(std::size_t handle, std::size_t offset, std::size_t len);
  /// True when this execution resumed from a checkpoint.
  bool restored() const noexcept { return restored_; }

  /// The paper's potentialCheckpoint(): take a local checkpoint here if one
  /// was requested. On the initiator this is also where the checkpoint
  /// policy may start a new global checkpoint.
  void potential_checkpoint();

  /// Drive the protocol to quiescence after the application's main returns:
  /// finish any in-flight global checkpoint (taking a final local
  /// checkpoint if one is pending) and wait for the initiator's shutdown
  /// broadcast. Called by the Job runner.
  void shutdown();

  /// Instrumentation structures (Position Stack, VDS, globals, heap) used
  /// by precompiler-emitted code.
  statesave::SaveContext& save_context() noexcept { return save_ctx_; }

  /// Checkpointable heap arena (only when Shared.heap_capacity > 0).
  statesave::HeapArena& heap() { return save_ctx_.heap(); }

  /// Make protocol progress without blocking (control messages, staged
  /// receives, initiator duties). Exposed for tests.
  void pump();

 private:
  bool passthrough() const noexcept {
    return shared_.level == InstrumentLevel::kRaw;
  }
  bool checkpoints_enabled() const noexcept {
    return shared_.level == InstrumentLevel::kNoAppState ||
           shared_.level == InstrumentLevel::kFull;
  }

  // Failure-injection hook, called on every application-level operation.
  void event();

  // Progress engine.
  void drain_control();
  void process_completed_recvs();
  void handle_control(ControlKind kind, simmpi::Rank from,
                      std::span<const std::byte> payload);
  void block_until(const std::function<bool()>& done);

  // Send/receive plumbing.
  simmpi::Status send_now(std::span<const std::byte> data, simmpi::Rank dst,
                          simmpi::Tag tag, CommHandle comm);
  RequestId post_recv(std::span<std::byte> out, simmpi::Rank src,
                      simmpi::Tag tag, CommHandle comm);
  void process_one_recv(PseudoRequest& pr);
  /// iprobe body without the failure-injection event (probe() loops on it).
  std::optional<simmpi::Status> iprobe_now(simmpi::Rank src, simmpi::Tag tag,
                                           CommHandle comm);

  // Protocol actions.
  void initiate_checkpoint();
  void do_checkpoint();
  /// True when the COW capture path applies to this checkpoint (pipeline
  /// wired in COW mode, full instrumentation, application still attached).
  bool use_cow_capture() const;
  /// The write-tracked (or freshly hashed) per-chunk CRCs for a registry
  /// entry, sized to the pipeline's chunk grid; empty when untracked (the
  /// store then hashes the buffer itself).
  std::vector<std::uint32_t> tracked_crcs(std::size_t reg_index,
                                          std::span<const std::byte> data);
  void maybe_ready();
  void finalize_log();
  /// Phase-4 hook from the control plane (initiator only): commit `epoch`
  /// and run superseded-epoch GC using the aggregated detached bit. The
  /// aggregated parity bit tells the replica tier (if wired) that every
  /// rank's replica lane was already quiescent.
  void commit_round(std::int32_t epoch, bool any_detached,
                    bool parity_complete);

  // Collective helpers.
  using CollectiveFlags = coordinator::CollectiveFlags;
  CollectiveFlags exchange_collective_control(const simmpi::Comm& comm);
  void after_collective(const CollectiveFlags& flags,
                        std::span<const std::byte> result);
  /// Returns logged result if this collective call replays from the log.
  std::optional<util::Bytes> replay_collective();

  // Recovery.
  void recover_from_checkpoint();
  /// True when any rank's local checkpoint at `epoch` was taken during
  /// shutdown (its "detached" marker blob exists): that epoch cannot
  /// restore application state on every rank. Probes storage -- used only
  /// on the recovery path; the steady-state commit path learns the same
  /// fact from the phase-4 aggregate's detached bit.
  bool epoch_has_detached_rank(std::int32_t epoch);
  void exchange_suppression_lists(
      const std::vector<std::vector<std::uint32_t>>& saved_early);
  void reinit_pending_requests(const std::vector<SavedRequest>& saved);

  // Checkpoint policy (initiator only).
  bool policy_fires();

  /// True once this process's recovery replay has fully drained: all logged
  /// receive outcomes, non-deterministic events and collective results have
  /// been consumed, and every suppressed early send has been re-executed.
  /// Taking a *new* local checkpoint before this point would break the
  /// send/receive-count agreement (the receiver's seeded counts include
  /// early messages the sender has not yet re-counted) and would split the
  /// replay window across epochs; checkpoint requests are deferred until
  /// quiescence. In the paper's model this ordering is implicit: recovery
  /// resumes *after* the restored potentialCheckpoint, and every logging
  /// window closes no later than the next global synchronization point.
  bool recovery_quiesced() const;

  /// Replay entries may only be consumed once the application has passed
  /// complete_registration(): operations before it are re-executed
  /// initialization, not re-execution of the logged window.
  bool replay_armed() const noexcept {
    return shared_.recovering && registration_complete_;
  }

  simmpi::Api& api_;
  Shared& shared_;
  simmpi::Rank me_;
  int nranks_;

  // Protocol state (Section 4.4 variable list).
  std::int32_t epoch_ = 0;
  bool am_logging_ = false;
  std::uint32_t next_message_id_ = 0;
  bool checkpoint_requested_ = false;
  std::int32_t requested_target_epoch_ = -1;
  std::vector<std::int64_t> send_count_;
  std::vector<std::vector<std::uint32_t>> early_ids_;
  std::vector<std::int64_t> current_receive_count_;
  std::vector<std::int64_t> previous_receive_count_;
  std::vector<std::int64_t> total_sent_;  // -1 = unknown
  bool ready_sent_ = false;
  EventLog log_;
  util::Rng rng_;

  // Coordination: phase state, tree routing and fan-in aggregation live in
  // the control plane; the data plane drives it via note_*() calls.
  std::unique_ptr<coordinator::ControlPlane> control_;

  // Checkpoint-policy state (consulted at the initiator only).
  std::uint64_t potential_calls_ = 0;
  std::uint64_t checkpoints_started_ = 0;
  std::chrono::steady_clock::time_point last_ckpt_time_;

  // Recovery state.
  bool restored_ = false;
  ReplayLog replay_;
  std::vector<std::set<std::uint32_t>> suppress_;  // per destination
  std::optional<util::Bytes> pending_appstate_;

  // Application state registry.
  struct RegEntry {
    std::string name;
    void* addr;
    std::size_t size;
    bool readonly = false;  ///< checkpoint stores a CRC instead of bytes
  };
  std::vector<RegEntry> registry_;
  /// Write tracking for registered buffers (COW capture): last capture's
  /// per-chunk CRCs plus the dirty bits accumulated since. Unprimed after
  /// registration and after every restore (the buffer bytes changed under
  /// the tracker), so the next capture hashes everything once.
  struct BufTracker {
    std::size_t reg_index = 0;
    std::vector<std::uint32_t> crcs;
    std::vector<bool> dirty;
    bool primed = false;
  };
  std::vector<BufTracker> trackers_;
  bool registration_complete_ = false;
  /// Set once the application body has returned (shutdown): registered
  /// buffers may be destroyed and must never be dereferenced again.
  bool app_detached_ = false;

  // Pseudo-handles.
  std::map<RequestId, PseudoRequest> requests_;
  RequestId next_request_id_ = 1;
  std::vector<RequestId> outstanding_recvs_;
  std::map<CommHandle, simmpi::Comm> comms_;
  CommHandle next_comm_handle_ = 1;
  std::vector<CommCallRecord> comm_calls_;
  bool replaying_comm_calls_ = false;

  statesave::SaveContext save_ctx_;
  ProcessStats stats_;
};

}  // namespace c3::core
