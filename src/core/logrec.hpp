// The protocol's event log and its recovery-time replay view.
//
// While a process is logging (between its local checkpoint and the moment
// it learns that every process has checkpointed), it records everything the
// new global checkpoint may causally depend on:
//
//  - every application receive it performs, as a RecvOutcome: the posted
//    pattern, the concrete (source, tag, id) that matched, its late /
//    intra-epoch classification, and -- for late messages -- the payload.
//    Late payloads are what recovery replays (the sender will not resend
//    them); intra-epoch outcomes pin down the *matching order*, which
//    resolves the non-determinism of wildcard receives;
//  - every non-deterministic event (random draws, time reads);
//  - every collective result logged under the conjunction rule (Sec. 4.5).
//
// On recovery the saved log becomes a ReplayLog with one FIFO cursor per
// category; re-executed operations consume entries until the log runs dry,
// after which execution is live again (nothing saved depends on it).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/piggyback.hpp"
#include "simmpi/types.hpp"
#include "util/archive.hpp"

namespace c3::core {

/// One application receive performed while logging.
struct RecvOutcome {
  // The pattern the application posted (world rank or kAnySource / kAnyTag).
  simmpi::Rank pattern_src = simmpi::kAnySource;
  simmpi::Tag pattern_tag = simmpi::kAnyTag;
  // What actually matched.
  simmpi::Rank src = 0;  ///< world rank of the sender
  simmpi::Tag tag = 0;
  std::uint32_t message_id = 0;
  MessageClass cls = MessageClass::kIntraEpoch;
  /// Payload, recorded only for late messages (cls == kLate).
  util::Bytes payload;
};

/// One logged non-deterministic event.
struct NondetEvent {
  std::uint64_t value = 0;
};

/// One logged collective result.
struct CollectiveResult {
  util::Bytes payload;
};

/// Append-only log written while amLogging is true.
class EventLog {
 public:
  void add_recv(RecvOutcome rec) { recvs_.push_back(std::move(rec)); }
  void add_nondet(std::uint64_t value) { nondets_.push_back({value}); }
  void add_collective(util::Bytes result) {
    collectives_.push_back({std::move(result)});
  }

  std::size_t recv_count() const noexcept { return recvs_.size(); }
  std::size_t nondet_count() const noexcept { return nondets_.size(); }
  std::size_t collective_count() const noexcept { return collectives_.size(); }

  void clear() {
    recvs_.clear();
    nondets_.clear();
    collectives_.clear();
  }

  /// Serialize for stable storage (finalizeLog writes this blob).
  util::Bytes serialize() const;

 private:
  std::vector<RecvOutcome> recvs_;
  std::vector<NondetEvent> nondets_;
  std::vector<CollectiveResult> collectives_;
};

/// Recovery-time view over a saved EventLog blob.
class ReplayLog {
 public:
  ReplayLog() = default;
  explicit ReplayLog(std::span<const std::byte> blob);

  /// Next receive outcome whose posted pattern equals (src, tag); consumed
  /// if found. Entries are matched in log order per pattern, which makes
  /// replay of deterministic programs exact.
  std::optional<RecvOutcome> take_recv(simmpi::Rank pattern_src,
                                       simmpi::Tag pattern_tag);

  /// Like take_recv, but non-consuming: the entry a receive posted with
  /// (src, tag) would replay next, or nullptr. Used by probe interposition
  /// to answer "is a message available" deterministically during replay.
  const RecvOutcome* peek_recv(simmpi::Rank pattern_src,
                               simmpi::Tag pattern_tag) const;

  std::optional<std::uint64_t> take_nondet();
  std::optional<util::Bytes> take_collective();

  bool recvs_exhausted() const noexcept { return recvs_.empty(); }
  bool nondets_exhausted() const noexcept { return nondets_.empty(); }
  bool collectives_exhausted() const noexcept { return collectives_.empty(); }
  std::size_t pending_recvs() const noexcept { return recvs_.size(); }

 private:
  std::deque<RecvOutcome> recvs_;
  std::deque<NondetEvent> nondets_;
  std::deque<CollectiveResult> collectives_;
};

}  // namespace c3::core
