// Piggybacked protocol information on application messages (Section 4.2).
//
// Every application message carries <epoch, amLogging, messageID>. The
// receiver uses it to classify the message as late / intra-epoch / early,
// to learn whether the sender stopped logging, and (for early messages) to
// record the ID for resend suppression during recovery.
//
// Two encodings are implemented, matching the paper's discussion:
//  - kFull:   the whole triple (9 bytes): epoch i32, logging u8, id u32.
//  - kPacked: a single 32-bit word. Because at most one global checkpoint
//    is in flight, epochs differ by at most one, so one "color" bit
//    (epoch parity) suffices; one more bit carries amLogging; the low 30
//    bits carry the message ID.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "util/archive.hpp"

namespace c3::core {

struct Piggyback {
  std::int32_t epoch = 0;     ///< sender's epoch (kPacked keeps parity only)
  bool logging = false;       ///< sender's amLogging flag
  std::uint32_t message_id = 0;

  bool color() const noexcept { return (epoch & 1) != 0; }
};

/// Maximum message ID representable in packed mode (30 bits).
inline constexpr std::uint32_t kMaxPackedMessageId = (1u << 30) - 1;

/// Encoded size in bytes for a mode.
std::size_t piggyback_size(PiggybackMode mode);

/// Append the header to `w`.
void encode_piggyback(PiggybackMode mode, const Piggyback& pb, util::Writer& w);

/// Encode the header in place into `out`, which must be exactly
/// piggyback_size(mode) bytes (the headroom of a pooled message buffer).
void encode_piggyback_into(PiggybackMode mode, const Piggyback& pb,
                           std::span<std::byte> out);

/// Decode a header from `r`. In kPacked mode the returned epoch is the
/// color bit (0 or 1); classification uses parity only.
Piggyback decode_piggyback(PiggybackMode mode, util::Reader& r);

/// Message classification relative to the receiving process (Definition 1).
enum class MessageClass : std::uint8_t { kLate, kIntraEpoch, kEarly };

/// Classify using the packed-mode rule: same color => intra-epoch; different
/// color => late if the receiver is logging, early otherwise. With full
/// epochs this agrees with the direct epoch comparison (asserted in tests).
MessageClass classify(bool sender_color, bool receiver_color,
                      bool receiver_logging);

/// Direct classification from full epoch numbers (Definition 1).
MessageClass classify_by_epoch(std::int32_t sender_epoch,
                               std::int32_t receiver_epoch);

}  // namespace c3::core
