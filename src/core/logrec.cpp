#include "core/logrec.hpp"

#include "util/error.hpp"

namespace c3::core {

namespace {
constexpr std::uint32_t kLogMagic = 0xC3106001u;

void put_recv(util::Writer& w, const RecvOutcome& rec) {
  w.put<std::int32_t>(rec.pattern_src);
  w.put<std::int32_t>(rec.pattern_tag);
  w.put<std::int32_t>(rec.src);
  w.put<std::int32_t>(rec.tag);
  w.put<std::uint32_t>(rec.message_id);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(rec.cls));
  w.put_bytes(rec.payload);
}

RecvOutcome get_recv(util::Reader& r) {
  RecvOutcome rec;
  rec.pattern_src = r.get<std::int32_t>();
  rec.pattern_tag = r.get<std::int32_t>();
  rec.src = r.get<std::int32_t>();
  rec.tag = r.get<std::int32_t>();
  rec.message_id = r.get<std::uint32_t>();
  rec.cls = static_cast<MessageClass>(r.get<std::uint8_t>());
  rec.payload = r.get_bytes();
  return rec;
}
}  // namespace

util::Bytes EventLog::serialize() const {
  // Exact encoded size, so the Writer never regrows mid-serialization.
  constexpr std::size_t kRecvFixed = 4 * 4 + 4 + 1 + 8;
  std::size_t total = 4 + 8 + 8 + 8 + 8 * nondets_.size();
  for (const auto& rec : recvs_) total += kRecvFixed + rec.payload.size();
  for (const auto& c : collectives_) total += 8 + c.payload.size();
  util::Writer w(total);
  w.put<std::uint32_t>(kLogMagic);
  w.put<std::uint64_t>(recvs_.size());
  for (const auto& rec : recvs_) put_recv(w, rec);
  w.put<std::uint64_t>(nondets_.size());
  for (const auto& e : nondets_) w.put<std::uint64_t>(e.value);
  w.put<std::uint64_t>(collectives_.size());
  for (const auto& c : collectives_) w.put_bytes(c.payload);
  return w.take();
}

ReplayLog::ReplayLog(std::span<const std::byte> blob) {
  util::Reader r(blob);
  if (r.get<std::uint32_t>() != kLogMagic) {
    throw util::CorruptionError("event log: bad magic");
  }
  const auto nrecv = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nrecv; ++i) recvs_.push_back(get_recv(r));
  const auto nnd = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nnd; ++i) {
    nondets_.push_back({r.get<std::uint64_t>()});
  }
  const auto ncoll = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < ncoll; ++i) {
    collectives_.push_back({r.get_bytes()});
  }
}

std::optional<RecvOutcome> ReplayLog::take_recv(simmpi::Rank pattern_src,
                                                simmpi::Tag pattern_tag) {
  for (auto it = recvs_.begin(); it != recvs_.end(); ++it) {
    if (it->pattern_src == pattern_src && it->pattern_tag == pattern_tag) {
      RecvOutcome rec = std::move(*it);
      recvs_.erase(it);
      return rec;
    }
  }
  return std::nullopt;
}

const RecvOutcome* ReplayLog::peek_recv(simmpi::Rank pattern_src,
                                        simmpi::Tag pattern_tag) const {
  for (const auto& rec : recvs_) {
    if (rec.pattern_src == pattern_src && rec.pattern_tag == pattern_tag) {
      return &rec;
    }
  }
  return nullptr;
}

std::optional<std::uint64_t> ReplayLog::take_nondet() {
  if (nondets_.empty()) return std::nullopt;
  const auto v = nondets_.front().value;
  nondets_.pop_front();
  return v;
}

std::optional<util::Bytes> ReplayLog::take_collective() {
  if (collectives_.empty()) return std::nullopt;
  auto v = std::move(collectives_.front().payload);
  collectives_.pop_front();
  return v;
}

}  // namespace c3::core
