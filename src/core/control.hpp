// Protocol control messages (Section 4.1).
//
// Control traffic flows on the communicator's control context, so it can
// never be matched by application receives. The message kind doubles as
// the tag; payloads are Archive-encoded.
//
// Coordination-phase traffic (please/ready/stop/stopped/shutdown) is
// routed over the binomial tree owned by coordinator::ControlPlane:
// fan-outs are relayed parent -> children, fan-ins are aggregated child ->
// parent (one message per edge per phase, tagged with the round's target
// epoch). Per-peer traffic (mySendCount, suppressList) stays direct
// point-to-point -- it carries pairwise data that cannot be aggregated.
#pragma once

#include <cstdint>

#include "simmpi/types.hpp"

namespace c3::core {

enum class ControlKind : simmpi::Tag {
  /// tree fan-out: please take a local checkpoint when you can (Phase 1).
  /// Payload: target epoch i32.
  kPleaseCheckpoint = 1,
  /// checkpointer -> every receiver: how many messages I sent you in the
  /// epoch that just ended (Section 4.3)
  kMySendCount = 2,
  /// tree fan-in: my subtree has received all its late messages (Phase 2).
  /// Payload: target epoch i32, subtree rank count i32.
  kReadyToStopLogging = 3,
  /// tree fan-out: every process has checkpointed; stop logging (Phase 3).
  /// Payload: target epoch i32.
  kStopLogging = 4,
  /// tree fan-in: my subtree's logs are on stable storage (Phase 4).
  /// Payload: target epoch i32, subtree rank count i32, detached bit u8.
  kStoppedLogging = 5,
  /// recovery: receiver -> sender, the early-message IDs to suppress
  kSuppressList = 6,
  /// tree fan-out: the job is complete, protocol layer may exit
  kShutdown = 7,
};

inline simmpi::Tag control_tag(ControlKind k) {
  return static_cast<simmpi::Tag>(k);
}

}  // namespace c3::core
