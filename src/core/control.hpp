// Protocol control messages (Section 4.1).
//
// Control traffic flows on the communicator's control context, so it can
// never be matched by application receives. The message kind doubles as
// the tag; payloads are Archive-encoded.
#pragma once

#include <cstdint>

#include "simmpi/types.hpp"

namespace c3::core {

enum class ControlKind : simmpi::Tag {
  /// initiator -> all: please take a local checkpoint when you can (Phase 1)
  kPleaseCheckpoint = 1,
  /// checkpointer -> every receiver: how many messages I sent you in the
  /// epoch that just ended (Section 4.3)
  kMySendCount = 2,
  /// process -> initiator: I have received all my late messages (Phase 2)
  kReadyToStopLogging = 3,
  /// initiator -> all: every process has checkpointed; stop logging (Phase 3)
  kStopLogging = 4,
  /// process -> initiator: my log is on stable storage (Phase 4)
  kStoppedLogging = 5,
  /// recovery: receiver -> sender, the early-message IDs to suppress
  kSuppressList = 6,
  /// initiator -> all: the job is complete, protocol layer may exit
  kShutdown = 7,
};

inline simmpi::Tag control_tag(ControlKind k) {
  return static_cast<simmpi::Tag>(k);
}

}  // namespace c3::core
