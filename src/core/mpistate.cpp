#include "core/mpistate.hpp"

namespace c3::core {

void serialize_comm_calls(const std::vector<CommCallRecord>& calls,
                          util::Writer& w) {
  w.put<std::uint64_t>(calls.size());
  for (const auto& c : calls) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(c.kind));
    w.put<std::int64_t>(c.parent);
    w.put<std::int32_t>(c.color);
    w.put<std::int32_t>(c.key);
    w.put<std::int64_t>(c.result);
  }
}

std::vector<CommCallRecord> deserialize_comm_calls(util::Reader& r) {
  const auto n = r.get<std::uint64_t>();
  std::vector<CommCallRecord> calls;
  calls.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    CommCallRecord c;
    c.kind = static_cast<CommCallRecord::Kind>(r.get<std::uint8_t>());
    c.parent = r.get<std::int64_t>();
    c.color = r.get<std::int32_t>();
    c.key = r.get<std::int32_t>();
    c.result = r.get<std::int64_t>();
    calls.push_back(c);
  }
  return calls;
}

void serialize_saved_requests(const std::vector<SavedRequest>& reqs,
                              util::Writer& w) {
  w.put<std::uint64_t>(reqs.size());
  for (const auto& q : reqs) {
    w.put<std::int64_t>(q.id);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(q.kind));
    w.put<std::uint8_t>(q.complete ? 1 : 0);
    w.put<std::int32_t>(q.status.source);
    w.put<std::int32_t>(q.status.tag);
    w.put<std::uint64_t>(q.status.size);
    w.put<std::int64_t>(q.comm);
    w.put<std::int32_t>(q.pattern_src);
    w.put<std::int32_t>(q.pattern_tag);
    w.put<std::uint64_t>(q.out_addr);
    w.put<std::uint64_t>(q.out_size);
  }
}

std::vector<SavedRequest> deserialize_saved_requests(util::Reader& r) {
  const auto n = r.get<std::uint64_t>();
  std::vector<SavedRequest> reqs;
  reqs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SavedRequest q;
    q.id = r.get<std::int64_t>();
    q.kind = static_cast<PseudoRequest::Kind>(r.get<std::uint8_t>());
    q.complete = r.get<std::uint8_t>() != 0;
    q.status.source = r.get<std::int32_t>();
    q.status.tag = r.get<std::int32_t>();
    q.status.size = r.get<std::uint64_t>();
    q.comm = r.get<std::int64_t>();
    q.pattern_src = r.get<std::int32_t>();
    q.pattern_tag = r.get<std::int32_t>();
    q.out_addr = r.get<std::uint64_t>();
    q.out_size = r.get<std::uint64_t>();
    reqs.push_back(q);
  }
  return reqs;
}

}  // namespace c3::core
