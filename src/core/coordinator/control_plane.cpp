#include "core/coordinator/control_plane.hpp"

#include <algorithm>
#include <string>

#include "util/archive.hpp"
#include "util/error.hpp"

namespace c3::core::coordinator {

namespace {
constexpr auto kCtrl = simmpi::ContextClass::kCtrl;
}  // namespace

const char* to_string(CoordinatorState s) {
  switch (s) {
    case CoordinatorState::kIdle: return "idle";
    case CoordinatorState::kCheckpointPending: return "checkpoint-pending";
    case CoordinatorState::kLogging: return "logging";
    case CoordinatorState::kReadySent: return "ready-sent";
    case CoordinatorState::kLogClosed: return "log-closed";
  }
  return "?";
}

ControlPlane::ControlPlane(simmpi::Api& api, const simmpi::Comm& world,
                           int initiator, Hooks hooks, ProcessStats& pstats)
    : api_(api),
      world_(world),
      me_(api.world_rank()),
      nranks_(api.world_size()),
      tree_(api.world_size(), initiator),
      hooks_(std::move(hooks)),
      pstats_(pstats) {
  children_ = tree_.children(me_);
  parent_ = tree_.parent(me_);
}

void ControlPlane::invariant(bool cond, const char* what) const {
  if (!cond) {
    throw util::CorruptionError(
        std::string("protocol invariant violated: ") + what + " (rank " +
        std::to_string(me_) + ", state " + to_string(state_) + ", round " +
        std::to_string(round_target_) + ")");
  }
}

void ControlPlane::transition(CoordinatorState next) {
  state_ = next;
  if (hooks_.probe) hooks_.probe(me_, next);
}

void ControlPlane::send_control(int dst, ControlKind kind,
                                std::span<const std::byte> payload) {
  api_.send(world_, payload, dst, control_tag(kind), kCtrl);
  pstats_.control_messages++;
}

void ControlPlane::relay_to_children(
    ControlKind kind, std::span<const std::byte> payload,
    std::uint64_t ControlPlaneStats::* counter) {
  if (children_.empty()) return;
  // One batched fan-out per hop: all children are staged in a single fabric
  // call, so an interior tree node costs one wakeup per child inbox and the
  // phase relay at P ranks never pays per-message notify overhead.
  api_.send_batch(world_, payload, children_, control_tag(kind), kCtrl);
  pstats_.control_messages += children_.size();
  stats_.*counter += children_.size();
}

void ControlPlane::open_round(std::int32_t target) {
  invariant(state_ == CoordinatorState::kIdle,
            "round opened while another is in flight");
  invariant(target > last_completed_, "round target is not fresh");
  round_target_ = target;
  children_ready_msgs_ = 0;
  ready_from_children_ = 0;
  children_stopped_msgs_ = 0;
  stopped_from_children_ = 0;
  local_ready_ = false;
  local_stopped_ = false;
  local_detached_ = false;
  children_detached_ = false;
  children_parity_ok_ = true;
}

// ------------------------------------------------------- initiator duties

void ControlPlane::start_round(std::int32_t target_epoch) {
  invariant(is_initiator(), "start_round at a non-initiator");
  open_round(target_epoch);
  util::Writer w;
  w.put<std::int32_t>(target_epoch);
  relay_to_children(ControlKind::kPleaseCheckpoint, w.bytes(),
                    &ControlPlaneStats::please_sends);
  transition(CoordinatorState::kCheckpointPending);
  hooks_.request_checkpoint(target_epoch);
}

void ControlPlane::broadcast_shutdown() {
  invariant(is_initiator(), "shutdown broadcast at a non-initiator");
  invariant(!round_in_flight(), "shutdown broadcast during a round");
  relay_to_children(ControlKind::kShutdown, {},
                    &ControlPlaneStats::shutdown_sends);
}

// ------------------------------------------------ data-plane notifications

void ControlPlane::note_local_checkpoint(std::int32_t new_epoch,
                                         bool detached) {
  if (state_ == CoordinatorState::kIdle) {
    // Barrier-forced checkpoint (Section 4.5): the epoch-agreement rule
    // fired before this rank's pleaseCheckpoint relay arrived. The round
    // opens here; the late relay is forwarded when it shows up.
    invariant(!is_initiator(), "initiator checkpoint outside a round");
    open_round(new_epoch);
  } else {
    invariant(state_ == CoordinatorState::kCheckpointPending,
              "local checkpoint in the wrong phase");
    invariant(new_epoch == round_target_,
              "local checkpoint epoch disagrees with the round target");
  }
  local_detached_ = detached;
  transition(CoordinatorState::kLogging);
}

void ControlPlane::note_local_ready() {
  invariant(state_ == CoordinatorState::kLogging,
            "readiness outside the logging phase");
  invariant(!local_ready_, "readiness reported twice");
  local_ready_ = true;
  maybe_forward_ready();
}

void ControlPlane::note_log_closed() {
  // Phase 3 starts only after every rank (this one included) reported
  // readiness, so a log can never close before the readiness forward --
  // whether stopLogging arrived over the tree or the conjunction rule
  // closed the window first.
  invariant(state_ == CoordinatorState::kReadySent,
            "log closed outside phase 3");
  local_stopped_ = true;
  transition(CoordinatorState::kLogClosed);
  maybe_forward_stopped();
}

// -------------------------------------------------------- fan-in plumbing

void ControlPlane::maybe_forward_ready() {
  if (!local_ready_ ||
      children_ready_msgs_ < static_cast<int>(children_.size())) {
    return;
  }
  const int total = 1 + ready_from_children_;
  invariant(total == tree_.subtree_size(me_),
            "phase-2 aggregate disagrees with the subtree size");
  if (is_initiator()) {
    // Phase 3: every process has checkpointed; no message sent from now on
    // can be early, so logging may stop everywhere.
    invariant(total == nranks_, "phase 2 complete without every rank");
    transition(CoordinatorState::kReadySent);
    util::Writer w;
    w.put<std::int32_t>(round_target_);
    relay_to_children(ControlKind::kStopLogging, w.bytes(),
                      &ControlPlaneStats::stop_sends);
    hooks_.finalize_log();
    return;
  }
  util::Writer w;
  w.put<std::int32_t>(round_target_);
  w.put<std::int32_t>(total);
  send_control(parent_, ControlKind::kReadyToStopLogging, w.bytes());
  stats_.ready_sends++;
  transition(CoordinatorState::kReadySent);
}

void ControlPlane::maybe_forward_stopped() {
  if (!local_stopped_ ||
      children_stopped_msgs_ < static_cast<int>(children_.size())) {
    return;
  }
  const int total = 1 + stopped_from_children_;
  invariant(total == tree_.subtree_size(me_),
            "phase-4 aggregate disagrees with the subtree size");
  const std::int32_t target = round_target_;
  const bool any_detached = local_detached_ || children_detached_;
  // The parity bit is sampled at the last possible moment -- the phase-4
  // forward -- so it reflects this rank's replica lane *after* its log
  // write (the round's final put) entered the parity pipeline.
  const bool parity_ok =
      children_parity_ok_ &&
      (!hooks_.parity_quiescent || hooks_.parity_quiescent());
  last_completed_ = target;
  if (is_initiator()) {
    // Phase 4 complete: every log is durable; this checkpoint becomes the
    // recovery point. The aggregated detached bit decides superseded-epoch
    // GC without probing any rank's storage; the aggregated parity bit
    // tells the commit whether replica traffic is already quiescent.
    invariant(total == nranks_, "phase 4 complete without every rank");
    stats_.rounds_completed++;
    transition(CoordinatorState::kIdle);
    hooks_.commit(target, any_detached, parity_ok);
    return;
  }
  util::Writer w;
  w.put<std::int32_t>(target);
  w.put<std::int32_t>(total);
  w.put<std::uint8_t>(any_detached ? 1 : 0);
  w.put<std::uint8_t>(parity_ok ? 1 : 0);
  send_control(parent_, ControlKind::kStoppedLogging, w.bytes());
  stats_.stopped_sends++;
  transition(CoordinatorState::kIdle);
}

// --------------------------------------------------------------- routing

bool ControlPlane::on_control(ControlKind kind, simmpi::Rank from,
                              std::span<const std::byte> payload) {
  util::Reader r(payload);
  switch (kind) {
    case ControlKind::kPleaseCheckpoint: {
      invariant(from == parent_, "pleaseCheckpoint from outside the tree");
      const auto target = r.get<std::int32_t>();
      if (target <= last_completed_) {
        // Straggling relay for a round this rank already finished -- which
        // required every child's phase-4 aggregate, so the whole subtree is
        // provably done and the relay would be noise. This can even arrive
        // *inside a newer round* when both this rank and the relay path
        // were barrier-forced past the old one.
        return true;
      }
      if (state_ != CoordinatorState::kIdle) {
        // Barrier-forced ranks opened this round before the relay arrived;
        // forward it so unforced descendants still learn of the round.
        invariant(target == round_target_,
                  "pleaseCheckpoint for a different round while one is in "
                  "flight");
        relay_to_children(kind, payload, &ControlPlaneStats::please_sends);
        return true;
      }
      open_round(target);
      relay_to_children(kind, payload, &ControlPlaneStats::please_sends);
      transition(CoordinatorState::kCheckpointPending);
      hooks_.request_checkpoint(target);
      return true;
    }
    case ControlKind::kReadyToStopLogging: {
      invariant(tree_.is_child(me_, from),
                "readyToStopLogging from a non-child");
      invariant(state_ == CoordinatorState::kCheckpointPending ||
                    state_ == CoordinatorState::kLogging,
                "phase-2 aggregate in the wrong phase");
      const auto target = r.get<std::int32_t>();
      const auto count = r.get<std::int32_t>();
      invariant(target == round_target_,
                "phase-2 aggregate for a different round");
      invariant(count == tree_.subtree_size(from),
                "phase-2 aggregate disagrees with the child's subtree");
      children_ready_msgs_++;
      ready_from_children_ += count;
      stats_.ready_recvs++;
      invariant(children_ready_msgs_ <= static_cast<int>(children_.size()),
                "more phase-2 aggregates than children");
      maybe_forward_ready();
      return true;
    }
    case ControlKind::kStopLogging: {
      invariant(from == parent_, "stopLogging from outside the tree");
      const auto target = r.get<std::int32_t>();
      if (target <= last_completed_) {
        // The conjunction rule already closed every log in this subtree
        // and the phase-4 aggregates went up; the straggling relay is
        // obsolete. It must be swallowed even mid-newer-round (a barrier
        // can force this rank into round N+1 with round N's relay still
        // in flight): relaying is noise and finalize_log here would
        // wrongly close the *new* round's logging window before phase 3.
        return true;
      }
      invariant(state_ != CoordinatorState::kIdle,
                "stopLogging for a round never opened");
      invariant(target == round_target_,
                "stopLogging for a different round while one is in flight");
      relay_to_children(kind, payload, &ControlPlaneStats::stop_sends);
      hooks_.finalize_log();  // no-op if the conjunction rule closed it
      return true;
    }
    case ControlKind::kStoppedLogging: {
      invariant(tree_.is_child(me_, from), "stoppedLogging from a non-child");
      invariant(state_ == CoordinatorState::kReadySent ||
                    state_ == CoordinatorState::kLogClosed,
                "phase-4 aggregate in the wrong phase");
      const auto target = r.get<std::int32_t>();
      const auto count = r.get<std::int32_t>();
      const bool detached = r.get<std::uint8_t>() != 0;
      const bool parity_ok = r.get<std::uint8_t>() != 0;
      invariant(target == round_target_,
                "phase-4 aggregate for a different round");
      invariant(count == tree_.subtree_size(from),
                "phase-4 aggregate disagrees with the child's subtree");
      children_stopped_msgs_++;
      stopped_from_children_ += count;
      children_detached_ = children_detached_ || detached;
      children_parity_ok_ = children_parity_ok_ && parity_ok;
      stats_.stopped_recvs++;
      invariant(children_stopped_msgs_ <= static_cast<int>(children_.size()),
                "more phase-4 aggregates than children");
      maybe_forward_stopped();
      return true;
    }
    case ControlKind::kShutdown:
      invariant(from == parent_, "shutdown from outside the tree");
      relay_to_children(kind, payload, &ControlPlaneStats::shutdown_sends);
      shutdown_received_ = true;
      return true;
    case ControlKind::kMySendCount:
    case ControlKind::kSuppressList:
      return false;  // per-peer data-plane traffic
  }
  return false;
}

// --------------------------------------------------- collective exchange

CollectiveFlags ControlPlane::exchange_collective_control(
    const simmpi::Comm& comm, std::int32_t epoch, bool logging,
    bool detached) {
  // The paper precedes each data collective with a control collective that
  // circulates <epoch, amLogging>; the conjunction decides result logging.
  // The word also carries the rank's detached bit so a participant whose
  // application body has returned is detectable in one exchange.
  const std::uint32_t mine = (static_cast<std::uint32_t>(epoch) << 2) |
                             (detached ? 2u : 0u) | (logging ? 1u : 0u);
  std::vector<std::uint32_t> all(static_cast<std::size_t>(comm.size()));
  api_.allgather(comm, util::as_bytes(mine),
                 {reinterpret_cast<std::byte*>(all.data()), all.size() * 4});
  pstats_.control_messages += static_cast<std::uint64_t>(comm.size());
  CollectiveFlags flags;
  flags.max_epoch = epoch;
  for (const auto word : all) {
    const auto their_epoch = static_cast<std::int32_t>(word >> 2);
    flags.max_epoch = std::max(flags.max_epoch, their_epoch);
    if ((word & 2u) != 0) flags.someone_detached = true;
  }
  // A peer in the *newest* epoch that is not logging has *stopped* logging;
  // a peer in an older epoch simply has not checkpointed yet. The exact
  // epoch comparison matters at a barrier: a laggard's exchange word names
  // its own pre-checkpoint epoch, and judging that by color (epoch mod 2)
  // would let the laggard mistake *itself* for a stopped-logging peer and
  // close its logging window the moment the forced checkpoint opens it --
  // before it ever reported readyToStopLogging, wedging phase 3.
  for (const auto word : all) {
    const auto their_epoch = static_cast<std::int32_t>(word >> 2);
    const bool their_logging = (word & 1u) != 0;
    if (their_epoch == flags.max_epoch && !their_logging) {
      flags.someone_stopped_logging = true;
    }
  }
  return flags;
}

}  // namespace c3::core::coordinator
