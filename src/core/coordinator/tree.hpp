// Binomial coordination tree over the world ranks.
//
// The four-phase protocol's control traffic (Section 4.1) used to be flat:
// the initiator sent pleaseCheckpoint / stopLogging to every rank and
// collected readyToStopLogging / stoppedLogging individually, so each phase
// cost O(P) serialized messages at one rank. The control plane instead
// routes broadcasts down -- and aggregates fan-ins up -- a binomial tree
// rooted at the (configurable) initiator: every node talks only to its
// parent and its <= ceil(log2 P) children, so the initiator's per-phase
// cost is O(log P) and the total stays P-1 messages per phase.
//
// Topology: ranks are relabelled relative to the root (v = (rank - root)
// mod P) and the classic binomial embedding is used on the virtual ids:
// parent(v) clears v's lowest set bit, and the subtree of v > 0 is exactly
// the contiguous virtual interval [v, v + lowbit(v)) clipped to P -- which
// gives O(1) subtree sizes for the fan-in aggregation invariants.
#pragma once

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace c3::core::coordinator {

class BinomialTree {
 public:
  BinomialTree(int size, int root) : size_(size), root_(root) {
    if (size <= 0) throw util::UsageError("coordination tree needs ranks");
    if (root < 0 || root >= size) {
      throw util::UsageError("coordination tree root out of range");
    }
  }

  int size() const noexcept { return size_; }
  int root() const noexcept { return root_; }

  /// Parent in the tree, or -1 at the root.
  int parent(int rank) const {
    const int v = to_virtual(rank);
    if (v == 0) return -1;
    return to_rank(v & (v - 1));
  }

  /// Children in relay order (nearest subtree first).
  std::vector<int> children(int rank) const {
    const int v = to_virtual(rank);
    std::vector<int> out;
    for (int m = 1; m < limit(v); m <<= 1) {
      if (v + m >= size_) break;
      out.push_back(to_rank(v + m));
    }
    return out;
  }

  /// Number of ranks in `rank`'s subtree, itself included.
  int subtree_size(int rank) const {
    const int v = to_virtual(rank);
    if (v == 0) return size_;
    const int span = std::min(v + lowbit(v), size_);
    return span - v;
  }

  bool is_child(int parent_rank, int child_rank) const {
    return child_rank != parent_rank && parent(child_rank) == parent_rank;
  }

 private:
  static int lowbit(int v) noexcept { return v & -v; }
  /// Children of v are v + 2^k for 2^k below this bound.
  int limit(int v) const noexcept { return v == 0 ? size_ : lowbit(v); }

  int to_virtual(int rank) const {
    if (rank < 0 || rank >= size_) {
      throw util::UsageError("rank out of range in coordination tree");
    }
    return (rank - root_ + size_) % size_;
  }
  int to_rank(int v) const noexcept { return (v + root_) % size_; }

  int size_;
  int root_;
};

}  // namespace c3::core::coordinator
