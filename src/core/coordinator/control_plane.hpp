// The protocol's control plane: tree-structured four-phase coordination.
//
// One ControlPlane per rank owns the coordination side of the paper's
// four-phase non-blocking protocol (Section 4.1) that used to be inlined
// across Process as flat point-to-point loops and ad-hoc counters:
//
//   phase 1  pleaseCheckpoint   initiator -> all   (tree fan-out relay)
//   phase 2  readyToStopLogging all -> initiator   (tree fan-in, aggregated)
//   phase 3  stopLogging        initiator -> all   (tree fan-out relay)
//   phase 4  stoppedLogging     all -> initiator   (tree fan-in, aggregated)
//   (+ the shutdown broadcast, relayed over the same tree)
//
// Fan-outs are relayed down a binomial tree rooted at the configurable
// initiator; fan-ins aggregate *in the tree*: a node forwards one message
// to its parent carrying its whole subtree's count once its own condition
// holds and every child has reported. The initiator therefore sends and
// receives O(log P) messages per phase instead of O(P), while the total
// stays P-1 messages per phase.
//
// The per-rank protocol position is an explicit state machine
// (CoordinatorState) with named states and invariant checks, replacing the
// scattered `me_ == 0` branches and ready/stopped counters. The phase-4
// aggregate also carries a "detached" bit (ORed over the subtree), so at
// commit time the initiator knows -- with zero storage reads -- whether any
// rank's local checkpoint was taken during shutdown and the superseded
// epoch must be retained for fallback.
//
// The control plane is purely coordination: message classification,
// logging, replay and checkpoint serialization (the data plane) stay in
// Process, which drives this object through the note_*() entry points and
// receives decisions back through Hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/control.hpp"
#include "core/coordinator/tree.hpp"
#include "core/types.hpp"
#include "simmpi/api.hpp"

namespace c3::core::coordinator {

/// Where a rank stands in the current coordination round. Transitions are
/// strictly linear within a round:
///   kIdle -> kCheckpointPending -> kLogging -> kReadySent -> kLogClosed
///         -> kIdle
/// A rank whose local checkpoint is forced by the barrier epoch-agreement
/// rule (Section 4.5) before its pleaseCheckpoint relay arrives enters the
/// round at kLogging directly; the late relay is then only forwarded.
enum class CoordinatorState : std::uint8_t {
  kIdle = 0,            ///< no round in flight at this rank
  kCheckpointPending,   ///< pleaseCheckpoint seen; local checkpoint not yet
  kLogging,             ///< checkpoint taken; collecting late messages
  kReadySent,           ///< subtree readiness forwarded (phase 2 done here)
  kLogClosed,           ///< log durable; awaiting children's phase-4 counts
};

const char* to_string(CoordinatorState s);

/// Per-rank control-plane traffic counters, split by protocol phase. At
/// the initiator every counter is O(log P) per round -- the scaling claim
/// BENCH_scaling.json tracks.
struct ControlPlaneStats {
  std::uint64_t please_sends = 0;    ///< phase-1 fan-out (+ relays)
  std::uint64_t ready_sends = 0;     ///< phase-2 fan-in forwards
  std::uint64_t stop_sends = 0;      ///< phase-3 fan-out (+ relays)
  std::uint64_t stopped_sends = 0;   ///< phase-4 fan-in forwards
  std::uint64_t shutdown_sends = 0;  ///< shutdown fan-out (+ relays)
  std::uint64_t ready_recvs = 0;     ///< phase-2 aggregates from children
  std::uint64_t stopped_recvs = 0;   ///< phase-4 aggregates from children
  std::uint64_t rounds_completed = 0;  ///< initiator: committed rounds
};

/// Result of the pre-collective control exchange (Section 4.5). The word
/// circulated is (epoch << 2) | detached << 1 | amLogging.
struct CollectiveFlags {
  bool someone_stopped_logging = false;
  /// Some participant's application body has already returned (its word
  /// carried the detached bit). Impossible in a data collective -- asserted
  /// by the caller, never silently acted on.
  bool someone_detached = false;
  std::int32_t max_epoch = 0;  ///< highest participant epoch (barrier rule)
};

class ControlPlane {
 public:
  /// Decisions handed back to the data plane (Process).
  struct Hooks {
    /// Phase 1: a checkpoint round targeting `target` opened at this rank;
    /// take a local checkpoint at the next potentialCheckpoint.
    std::function<void(std::int32_t target)> request_checkpoint;
    /// Phase 3: every process has checkpointed; close the logging window
    /// and write the log to stable storage now (idempotent).
    std::function<void()> finalize_log;
    /// Phase 4 complete (initiator only): commit `epoch` as the recovery
    /// point. `any_detached` aggregates every rank's shutdown-window flag,
    /// deciding superseded-epoch GC without touching storage.
    /// `parity_complete` is the AND-aggregated replica-quiescence bit: true
    /// when every rank sampled parity_quiescent() true at its phase-4
    /// forward, letting the commit skip the parity flush-nudge grace
    /// period (always true when no replica tier is wired).
    std::function<void(std::int32_t epoch, bool any_detached,
                       bool parity_complete)>
        commit;
    /// Sampled when this rank forwards its phase-4 aggregate: true when the
    /// rank has no replica-tier traffic in flight (parity contributions,
    /// acks). Unset = no replica tier = true.
    std::function<bool()> parity_quiescent;
    /// Test probe, invoked after every state transition (may throw to
    /// simulate a crash at an exact protocol phase).
    std::function<void(int rank, CoordinatorState entered)> probe;
  };

  ControlPlane(simmpi::Api& api, const simmpi::Comm& world, int initiator,
               Hooks hooks, ProcessStats& pstats);

  int initiator() const noexcept { return tree_.root(); }
  bool is_initiator() const noexcept { return me_ == tree_.root(); }
  CoordinatorState state() const noexcept { return state_; }
  const BinomialTree& tree() const noexcept { return tree_; }
  const ControlPlaneStats& stats() const noexcept { return stats_; }

  /// True while this rank participates in an unfinished round: at the
  /// initiator from start_round() until commit, elsewhere from the
  /// pleaseCheckpoint relay (or a forced checkpoint) until the phase-4
  /// forward.
  bool round_in_flight() const noexcept {
    return state_ != CoordinatorState::kIdle;
  }
  bool shutdown_received() const noexcept { return shutdown_received_; }

  // ---------------------------------------------------- initiator duties
  /// Open a coordination round targeting `target_epoch` (phase-1 fan-out).
  void start_round(std::int32_t target_epoch);
  /// Fan the job-complete notice down the tree.
  void broadcast_shutdown();

  // ------------------------------------------- data-plane notifications
  /// This rank took its local checkpoint entering `new_epoch`; `detached`
  /// is true when it was a shutdown-window checkpoint whose application
  /// state could not be captured.
  void note_local_checkpoint(std::int32_t new_epoch, bool detached);
  /// All of this rank's late messages are in (the Section 4.3 counts
  /// agree): aggregate towards phase 2.
  void note_local_ready();
  /// This rank's event log reached stable storage: aggregate towards
  /// phase 4.
  void note_log_closed();

  /// Route one inbound control message. Returns false when `kind` is not
  /// control-plane traffic (per-peer counts and suppression lists stay
  /// with the data plane).
  bool on_control(ControlKind kind, simmpi::Rank from,
                  std::span<const std::byte> payload);

  /// The paper's pre-collective control exchange (Section 4.5), with the
  /// control word grown by a detached bit.
  CollectiveFlags exchange_collective_control(const simmpi::Comm& comm,
                                              std::int32_t epoch,
                                              bool logging, bool detached);

 private:
  void open_round(std::int32_t target);
  void transition(CoordinatorState next);
  void maybe_forward_ready();
  void maybe_forward_stopped();
  void relay_to_children(ControlKind kind, std::span<const std::byte> payload,
                         std::uint64_t ControlPlaneStats::* counter);
  void send_control(int dst, ControlKind kind,
                    std::span<const std::byte> payload);
  void invariant(bool cond, const char* what) const;

  simmpi::Api& api_;
  const simmpi::Comm& world_;
  int me_;
  int nranks_;
  BinomialTree tree_;
  std::vector<int> children_;  ///< cached tree children of this rank
  int parent_;                 ///< cached tree parent (-1 at the root)
  Hooks hooks_;
  ProcessStats& pstats_;  ///< shared control_messages counter
  ControlPlaneStats stats_;

  CoordinatorState state_ = CoordinatorState::kIdle;
  std::int32_t round_target_ = -1;    ///< epoch of the in-flight round
  std::int32_t last_completed_ = -1;  ///< newest round finished at this rank
  bool shutdown_received_ = false;

  // Fan-in aggregation for the current round.
  int children_ready_msgs_ = 0;    ///< children that reported phase 2
  int ready_from_children_ = 0;    ///< ranks those reports cover
  int children_stopped_msgs_ = 0;  ///< children that reported phase 4
  int stopped_from_children_ = 0;  ///< ranks those reports cover
  bool local_ready_ = false;
  bool local_stopped_ = false;
  bool local_detached_ = false;
  bool children_detached_ = false;
  bool children_parity_ok_ = true;  ///< AND over children's phase-4 bits
};

}  // namespace c3::core::coordinator
