// MPI library state saving through the MPI interface only (Section 5.2).
//
// The protocol layer never sees inside the MPI library; it records and
// recovers library state via pseudo-handles:
//
//  - Persistent opaque objects (communicators, and by extension groups /
//    datatypes / ops) are recreated on recovery by replaying the record of
//    every call that created or manipulated them.
//  - Transient objects (requests) follow the paper's reinitialization
//    rules: a pre-checkpoint Isend's pseudo-handle completes immediately
//    after recovery; a pre-checkpoint Irecv either matches a late message
//    in the log (deliver + complete) or is re-issued live with identical
//    arguments.
//
// Application code holds plain integer pseudo-handles, which are trivially
// copyable and therefore safe to save/restore as raw bytes by the VDS.
#pragma once

#include <cstdint>
#include <vector>

#include "simmpi/request.hpp"
#include "simmpi/types.hpp"
#include "util/archive.hpp"

namespace c3::core {

/// Pseudo-handle to a communicator. Handle 0 is always the world
/// communicator; others are allocated by comm_dup / comm_split.
using CommHandle = std::int64_t;
inline constexpr CommHandle kWorldComm = 0;

/// Pseudo-handle to a request. 0 is "invalid".
using RequestId = std::int64_t;
inline constexpr RequestId kNullRequest = 0;

/// One recorded call that created or destroyed a persistent opaque object.
struct CommCallRecord {
  enum class Kind : std::uint8_t { kDup = 0, kSplit = 1, kFree = 2 };
  Kind kind = Kind::kDup;
  CommHandle parent = kWorldComm;  ///< input communicator
  std::int32_t color = 0;          ///< split only
  std::int32_t key = 0;            ///< split only
  CommHandle result = kWorldComm;  ///< handle assigned to the new object
};

void serialize_comm_calls(const std::vector<CommCallRecord>& calls,
                          util::Writer& w);
std::vector<CommCallRecord> deserialize_comm_calls(util::Reader& r);

/// Protocol-layer request state behind a RequestId.
struct PseudoRequest {
  enum class Kind : std::uint8_t { kSend = 0, kRecv = 1 };
  Kind kind = Kind::kSend;
  bool complete = false;
  /// Set when the protocol has examined the piggyback of the completed
  /// receive (classification, counting, logging).
  bool processed = false;
  simmpi::Status status;  ///< app-facing status (header stripped)

  // Receive bookkeeping.
  CommHandle comm = kWorldComm;
  simmpi::Rank pattern_src = simmpi::kAnySource;  ///< as posted (comm-local)
  simmpi::Tag pattern_tag = simmpi::kAnyTag;
  std::byte* out = nullptr;
  std::size_t out_size = 0;
  /// Live simmpi request, when posted. Posted in owned-payload mode: on
  /// completion its state holds the framed wire buffer (header + payload)
  /// moved straight off the packet -- there is no staging copy.
  simmpi::Request real;
  util::Bytes replay_payload;  ///< payload delivered from the log
  bool from_replay = false;
};

/// Checkpointed form of a live pseudo-request (Section 5.2 reinit rules).
struct SavedRequest {
  RequestId id = kNullRequest;
  PseudoRequest::Kind kind = PseudoRequest::Kind::kSend;
  bool complete = false;
  simmpi::Status status;
  CommHandle comm = kWorldComm;
  simmpi::Rank pattern_src = simmpi::kAnySource;
  simmpi::Tag pattern_tag = simmpi::kAnyTag;
  std::uint64_t out_addr = 0;  ///< must be heap-arena-backed to cross a restart
  std::uint64_t out_size = 0;
};

void serialize_saved_requests(const std::vector<SavedRequest>& reqs,
                              util::Writer& w);
std::vector<SavedRequest> deserialize_saved_requests(util::Reader& r);

}  // namespace c3::core
