#include "core/piggyback.hpp"

#include "util/error.hpp"

namespace c3::core {

std::size_t piggyback_size(PiggybackMode mode) {
  return mode == PiggybackMode::kPacked ? 4 : 9;
}

void encode_piggyback_into(PiggybackMode mode, const Piggyback& pb,
                           std::span<std::byte> out) {
  if (out.size() != piggyback_size(mode)) {
    throw util::UsageError("piggyback headroom size mismatch");
  }
  if (mode == PiggybackMode::kPacked) {
    if (pb.message_id > kMaxPackedMessageId) {
      // "...it is unlikely that a single process will send more than a
      // billion messages between checkpoints!" -- but fail loudly if it does.
      throw util::UsageError("packed piggyback: message ID exceeds 30 bits");
    }
    std::uint32_t word = pb.message_id;
    if (pb.color()) word |= (1u << 31);
    if (pb.logging) word |= (1u << 30);
    std::memcpy(out.data(), &word, sizeof(word));
  } else {
    std::memcpy(out.data(), &pb.epoch, sizeof(pb.epoch));
    out[4] = std::byte{pb.logging ? std::uint8_t{1} : std::uint8_t{0}};
    std::memcpy(out.data() + 5, &pb.message_id, sizeof(pb.message_id));
  }
}

void encode_piggyback(PiggybackMode mode, const Piggyback& pb,
                      util::Writer& w) {
  // Single source of truth for the wire layout: encode into a scratch
  // frame exactly as the headroom path does, then append it.
  std::byte buf[9];
  const std::span<std::byte> frame(buf, piggyback_size(mode));
  encode_piggyback_into(mode, pb, frame);
  w.put_raw(frame);
}

Piggyback decode_piggyback(PiggybackMode mode, util::Reader& r) {
  Piggyback pb;
  if (mode == PiggybackMode::kPacked) {
    const auto word = r.get<std::uint32_t>();
    pb.epoch = (word >> 31) & 1u;  // color bit only
    pb.logging = ((word >> 30) & 1u) != 0;
    pb.message_id = word & kMaxPackedMessageId;
  } else {
    pb.epoch = r.get<std::int32_t>();
    pb.logging = r.get<std::uint8_t>() != 0;
    pb.message_id = r.get<std::uint32_t>();
  }
  return pb;
}

MessageClass classify(bool sender_color, bool receiver_color,
                      bool receiver_logging) {
  if (sender_color == receiver_color) return MessageClass::kIntraEpoch;
  // Colors differ: epochs differ by exactly one. If the receiver is still
  // logging it has already taken its checkpoint, so the sender must be one
  // epoch behind => late. If the receiver is not logging it has not yet
  // taken its checkpoint, so the sender is one ahead => early.
  return receiver_logging ? MessageClass::kLate : MessageClass::kEarly;
}

MessageClass classify_by_epoch(std::int32_t sender_epoch,
                               std::int32_t receiver_epoch) {
  if (sender_epoch < receiver_epoch) return MessageClass::kLate;
  if (sender_epoch > receiver_epoch) return MessageClass::kEarly;
  return MessageClass::kIntraEpoch;
}

}  // namespace c3::core
