#include "core/process.hpp"

#include <algorithm>
#include <cstring>

#include "ckptstore/store.hpp"
#include "replica/replicated_storage.hpp"
#include "util/buffer_pool.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace c3::core {

namespace {
constexpr auto kIdleSlice = std::chrono::microseconds(200);
constexpr auto kCtrl = simmpi::ContextClass::kCtrl;

void protocol_invariant(bool cond, const char* what) {
  if (!cond) {
    throw util::CorruptionError(std::string("protocol invariant violated: ") +
                                what);
  }
}
}  // namespace

Process::Process(simmpi::Api& api, Shared& shared)
    : api_(api),
      shared_(shared),
      me_(api.world_rank()),
      nranks_(api.world_size()),
      rng_(util::Rng(shared.seed).fork(static_cast<std::uint64_t>(me_))),
      save_ctx_(shared.heap_capacity) {
  if (shared_.initiator < 0 || shared_.initiator >= nranks_) {
    throw util::UsageError("Shared.initiator out of range");
  }
  coordinator::ControlPlane::Hooks hooks;
  hooks.request_checkpoint = [this](std::int32_t target) {
    protocol_invariant(epoch_ < target, "checkpoint request for a stale epoch");
    checkpoint_requested_ = true;
    requested_target_epoch_ = target;
  };
  hooks.finalize_log = [this] { finalize_log(); };
  hooks.commit = [this](std::int32_t epoch, bool any_detached,
                        bool parity_complete) {
    commit_round(epoch, any_detached, parity_complete);
  };
  hooks.parity_quiescent = [this] {
    // The phase-4 quiescence bit covers the whole storage stack: it must
    // not assert while this rank's capture buffers are still draining
    // through a writer lane or an epoch's deferred commit is outstanding
    // (COW mode), nor while its replica lane still owes parity traffic.
    if (shared_.pipeline && !shared_.pipeline->rank_quiescent(me_)) {
      return false;
    }
    return !shared_.replica || shared_.replica->rank_quiescent(me_);
  };
  hooks.probe = shared_.coordinator_probe;
  control_ = std::make_unique<coordinator::ControlPlane>(
      api_, api_.world(), shared_.initiator, std::move(hooks), stats_);
  const auto n = static_cast<std::size_t>(nranks_);
  send_count_.assign(n, 0);
  early_ids_.assign(n, {});
  current_receive_count_.assign(n, 0);
  previous_receive_count_.assign(n, 0);
  total_sent_.assign(n, -1);
  suppress_.assign(n, {});
  comms_[kWorldComm] = api_.world();
  last_ckpt_time_ = std::chrono::steady_clock::now();
  // The ctor runs on the rank's own thread (Runtime spawns one per rank):
  // bind it so a commit initiated here can pump its own replica lane.
  if (shared_.replica) shared_.replica->bind_thread_api(&api_);
  if (shared_.recovering && checkpoints_enabled()) {
    recover_from_checkpoint();
  }
}

Process::~Process() = default;

// ----------------------------------------------------------------- helpers

void Process::event() {
  for (const auto& injector : shared_.injectors) {
    if (injector && injector->on_event(me_)) {
      throw util::StoppingFailure(me_);
    }
  }
}

const simmpi::Comm& Process::resolve(CommHandle handle) const {
  auto it = comms_.find(handle);
  if (it == comms_.end()) {
    throw util::UsageError("unknown communicator pseudo-handle " +
                           std::to_string(handle));
  }
  return it->second;
}

simmpi::Rank Process::comm_rank(CommHandle handle) const {
  return resolve(handle).rank();
}

int Process::comm_size(CommHandle handle) const {
  return resolve(handle).size();
}

void Process::block_until(const std::function<bool()>& done) {
  for (;;) {
    pump();
    if (done()) return;
    api_.check_abort();
    api_.idle_wait(kIdleSlice);
  }
}

void Process::pump() {
  api_.poll();
  process_completed_recvs();
  drain_control();
  // Ship this rank's queued parity contributions/acks and fold any peer
  // frames waiting on the replica lane.
  if (shared_.replica) shared_.replica->drain(api_);
}

// -------------------------------------------------------------------- send

void Process::send(std::span<const std::byte> data, simmpi::Rank dst,
                   simmpi::Tag tag, CommHandle comm) {
  // A blocking send is complete the moment the protocol hands the buffer
  // to the fabric; no pseudo-request is registered (isend-then-forget used
  // to leave a completed request in the table forever).
  (void)send_now(data, dst, tag, comm);
}

simmpi::Status Process::send_now(std::span<const std::byte> data,
                                 simmpi::Rank dst, simmpi::Tag tag,
                                 CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  // The failure-injection hook fires at every instrumentation level: a
  // stopping failure is a property of the machine, not of the protocol.
  event();
  if (passthrough()) {
    simmpi::Request r = api_.isend(c, data, dst, tag);
    return r.status();
  }
  pump();
  stats_.app_sends++;
  const simmpi::Rank dst_world = c.to_world(dst);
  const std::uint32_t msg_id = next_message_id_++;
  send_count_[static_cast<std::size_t>(dst_world)]++;

  // Early-message suppression (Section 3.2): the receiver's checkpointed
  // state already contains this message, so it must not be resent.
  auto& sup = suppress_[static_cast<std::size_t>(dst_world)];
  if (auto it = sup.find(msg_id); it != sup.end()) {
    sup.erase(it);
    stats_.suppressed_sends++;
  } else {
    // Frame the message in pooled buffers: the piggyback header is encoded
    // directly into the first buffer's headroom and every buffer is *moved*
    // through the MPI layer into the wire packet -- the payload is touched
    // exactly once on the send side (the buffered-semantics capture).
    // Messages whose framed size exceeds the pool's largest class are split
    // into pooled fragments (piggyback only in fragment 0) that ship as one
    // fabric batch and reach the receiver as one logical message, so the
    // oversize path -- an exact-size heap allocation per send -- is never
    // taken for app payloads.
    const std::size_t header = piggyback_size(shared_.piggyback);
    constexpr std::size_t kFrag = util::BufferPool::kMaxClassBytes;
    auto& fabric = api_.runtime().fabric();
    if (header + data.size() <= kFrag) {
      util::MsgBuffer mb(fabric.acquire_buffer(header + data.size()), header);
      encode_piggyback_into(shared_.piggyback,
                            Piggyback{epoch_, am_logging_, msg_id},
                            mb.header());
      if (!data.empty()) {
        std::memcpy(mb.payload().data(), data.data(), data.size());
      }
      api_.send(c, mb.take(), dst, tag);
    } else {
      const std::size_t head_payload = kFrag - header;
      std::vector<util::Bytes> frags;
      frags.reserve(1 + (data.size() - head_payload + kFrag - 1) / kFrag);
      util::MsgBuffer mb(fabric.acquire_buffer(kFrag), header);
      encode_piggyback_into(shared_.piggyback,
                            Piggyback{epoch_, am_logging_, msg_id},
                            mb.header());
      std::memcpy(mb.payload().data(), data.data(), head_payload);
      frags.push_back(mb.take());
      for (std::size_t off = head_payload; off < data.size(); off += kFrag) {
        const std::size_t n = std::min(kFrag, data.size() - off);
        util::Bytes b = fabric.acquire_buffer(n);
        std::memcpy(b.data(), data.data() + off, n);
        frags.push_back(std::move(b));
      }
      api_.send_fragments(c, std::move(frags), dst, tag);
    }
    stats_.piggyback_bytes += header;
  }
  return simmpi::Status{dst, tag, data.size()};
}

RequestId Process::isend(std::span<const std::byte> data, simmpi::Rank dst,
                         simmpi::Tag tag, CommHandle comm) {
  PseudoRequest pr;
  pr.kind = PseudoRequest::Kind::kSend;
  pr.complete = true;
  pr.processed = true;
  pr.status = send_now(data, dst, tag, comm);
  const RequestId id = next_request_id_++;
  requests_[id] = std::move(pr);
  return id;
}

// -------------------------------------------------------------------- recv

simmpi::Status Process::recv(std::span<std::byte> out, simmpi::Rank src,
                             simmpi::Tag tag, CommHandle comm) {
  RequestId id = irecv(out, src, tag, comm);
  return wait(id);
}

RequestId Process::irecv(std::span<std::byte> out, simmpi::Rank src,
                         simmpi::Tag tag, CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  event();
  if (passthrough()) {
    PseudoRequest pr;
    pr.kind = PseudoRequest::Kind::kRecv;
    pr.comm = comm;  // comm_free's pending-receive guard must see this
    pr.real = api_.irecv(c, out, src, tag);
    pr.processed = true;  // no piggyback to strip
    pr.out = out.data();
    pr.out_size = out.size();
    const RequestId id = next_request_id_++;
    requests_[id] = std::move(pr);
    outstanding_recvs_.push_back(id);
    return id;
  }
  return post_recv(out, src, tag, comm);
}

RequestId Process::post_recv(std::span<std::byte> out, simmpi::Rank src,
                             simmpi::Tag tag, CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  PseudoRequest pr;
  pr.kind = PseudoRequest::Kind::kRecv;
  pr.comm = comm;
  pr.pattern_src = src;
  pr.pattern_tag = tag;
  pr.out = out.data();
  pr.out_size = out.size();

  const simmpi::Rank pattern_world =
      (src == simmpi::kAnySource) ? simmpi::kAnySource : c.to_world(src);

  if (shared_.recovering && !registration_complete_) {
    throw util::UsageError(
        "point-to-point communication before complete_registration() is not "
        "supported on a recovery run (message IDs would not line up with "
        "the suppression lists)");
  }
  // Recovery replay: the log pins down which message this receive got.
  if (replay_armed() && !replay_.recvs_exhausted()) {
    if (auto entry = replay_.take_recv(pattern_world, tag)) {
      if (entry->cls == MessageClass::kLate) {
        // The sender will not resend a late message (its send happened
        // before its checkpoint); deliver the logged payload.
        if (entry->payload.size() > out.size()) {
          throw util::UsageError("replayed late message larger than buffer");
        }
        if (!entry->payload.empty()) {
          std::memcpy(out.data(), entry->payload.data(),
                      entry->payload.size());
        }
        pr.complete = true;
        pr.processed = true;
        pr.from_replay = true;
        pr.status = simmpi::Status{c.from_world(entry->src), entry->tag,
                                   entry->payload.size()};
        stats_.replayed_recvs++;
        stats_.app_recvs++;
        const RequestId id = next_request_id_++;
        requests_[id] = std::move(pr);
        return id;
      }
      // Intra-epoch outcome: the sender re-executes the matching send, so
      // receive it live -- but pinned to the logged (source, tag), which
      // resolves any wildcard non-determinism exactly as in the original
      // execution.
      stats_.replayed_recv_pins++;
      pr.real = api_.irecv_owned(c, c.from_world(entry->src), entry->tag);
      const RequestId id = next_request_id_++;
      requests_[id] = std::move(pr);
      outstanding_recvs_.push_back(id);
      return id;
    }
  }

  pr.real = api_.irecv_owned(c, src, tag);
  const RequestId id = next_request_id_++;
  requests_[id] = std::move(pr);
  outstanding_recvs_.push_back(id);
  return id;
}

void Process::process_completed_recvs() {
  for (auto it = outstanding_recvs_.begin(); it != outstanding_recvs_.end();) {
    auto rit = requests_.find(*it);
    if (rit == requests_.end()) {
      it = outstanding_recvs_.erase(it);
      continue;
    }
    PseudoRequest& pr = rit->second;
    if (pr.real.valid() && pr.real.complete() && !pr.complete) {
      if (passthrough()) {
        // kRaw receives have no piggyback header to strip.
        pr.status = pr.real.status();
        pr.complete = true;
      } else {
        process_one_recv(pr);
      }
      it = outstanding_recvs_.erase(it);
    } else {
      ++it;
    }
  }
}

void Process::process_one_recv(PseudoRequest& pr) {
  const simmpi::Status& net_status = pr.real.status();
  const std::size_t header = piggyback_size(shared_.piggyback);
  protocol_invariant(net_status.size >= header, "message without piggyback");

  // The owned wire buffers, moved off the packet by the matching engine
  // (a segmented message arrives as the head buffer plus continuation
  // fragments, reassembled in order by the inbox): decode the piggyback in
  // place -- it lives entirely in the head fragment -- and copy the payload
  // *once*, straight into the application's buffer.
  util::Bytes wire = std::move(pr.real.state()->payload);
  std::vector<util::Bytes> frags = std::move(pr.real.state()->frags);
  util::Reader r(wire);
  const Piggyback pb = decode_piggyback(shared_.piggyback, r);
  const std::size_t payload_size = net_status.size - header;
  if (payload_size > pr.out_size) {
    throw util::UsageError(
        "message truncation: recv buffer " + std::to_string(pr.out_size) +
        " bytes, message " + std::to_string(payload_size) + " bytes");
  }
  if (payload_size > 0) {
    std::size_t off = wire.size() - header;
    std::memcpy(pr.out, wire.data() + header, off);
    for (const auto& f : frags) {
      std::memcpy(pr.out + off, f.data(), f.size());
      off += f.size();
    }
    protocol_invariant(off == payload_size, "fragment sizes disagree");
    api_.runtime().fabric().count_copied(payload_size);
  }
  pr.status = simmpi::Status{net_status.source, net_status.tag, payload_size};
  pr.complete = true;
  pr.processed = true;
  stats_.app_recvs++;

  const simmpi::Comm& c = resolve(pr.comm);
  const simmpi::Rank src_world = c.to_world(net_status.source);

  MessageClass cls;
  if (shared_.piggyback == PiggybackMode::kFull) {
    cls = classify_by_epoch(pb.epoch, epoch_);
    if (shared_.validate_classification) {
      const MessageClass packed =
          classify(pb.color(), (epoch_ & 1) != 0, am_logging_);
      protocol_invariant(packed == cls,
                         "packed color classification disagrees with epochs");
    }
  } else {
    cls = classify(pb.color(), (epoch_ & 1) != 0, am_logging_);
  }

  const simmpi::Rank pattern_world =
      (pr.pattern_src == simmpi::kAnySource) ? simmpi::kAnySource
                                             : c.to_world(pr.pattern_src);

  switch (cls) {
    case MessageClass::kEarly: {
      // The receiver has not checkpointed yet but the sender has: record
      // the ID so the resend is suppressed after recovery.
      protocol_invariant(!am_logging_, "early message while logging");
      early_ids_[static_cast<std::size_t>(src_world)].push_back(pb.message_id);
      stats_.early_messages++;
      break;
    }
    case MessageClass::kIntraEpoch: {
      // Phase 4 rule: hearing from a process that has stopped logging means
      // every process has checkpointed -- stop logging *before* this
      // message's consequences can enter the log.
      if (am_logging_ && !pb.logging) finalize_log();
      current_receive_count_[static_cast<std::size_t>(src_world)]++;
      stats_.intra_epoch_messages++;
      if (am_logging_) {
        log_.add_recv(RecvOutcome{pattern_world, pr.pattern_tag, src_world,
                                  net_status.tag, pb.message_id,
                                  MessageClass::kIntraEpoch,
                                  {}});
      }
      break;
    }
    case MessageClass::kLate: {
      protocol_invariant(am_logging_, "late message while not logging");
      previous_receive_count_[static_cast<std::size_t>(src_world)]++;
      stats_.late_messages++;
      // Strip the header in place and *move* the wire buffer into the log
      // instead of re-slicing into a fresh allocation; a segmented message
      // concatenates its continuation fragments onto the head first (the
      // log stores one contiguous payload per message). The erase memmoves
      // the payload over the header (counted), but late messages are rare:
      // the steady-state intra-epoch path never pays it.
      wire.erase(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(header));
      for (auto& f : frags) {
        wire.insert(wire.end(), f.begin(), f.end());
        api_.runtime().fabric().release_buffer(std::move(f));
      }
      frags.clear();
      api_.runtime().fabric().count_copied(wire.size());
      log_.add_recv(RecvOutcome{pattern_world, pr.pattern_tag, src_world,
                                net_status.tag, pb.message_id,
                                MessageClass::kLate, std::move(wire)});
      maybe_ready();
      break;
    }
  }
  // Intra-epoch and early messages are done with the wire buffers; recycle
  // them for this rank's later sends. (A late message moved them into the
  // log.)
  if (cls != MessageClass::kLate) {
    api_.runtime().fabric().release_buffer(std::move(wire));
    for (auto& f : frags) {
      api_.runtime().fabric().release_buffer(std::move(f));
    }
  }
}

simmpi::Status Process::wait(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    throw util::UsageError("wait on unknown request " + std::to_string(id));
  }
  block_until([&] {
    auto i = requests_.find(id);
    return i == requests_.end() || i->second.complete;
  });
  it = requests_.find(id);
  protocol_invariant(it != requests_.end(), "request vanished during wait");
  const simmpi::Status st = it->second.status;
  requests_.erase(it);
  return st;
}

bool Process::test(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    throw util::UsageError("test on unknown request " + std::to_string(id));
  }
  pump();
  it = requests_.find(id);
  return it != requests_.end() && it->second.complete;
}

void Process::waitall(std::span<const RequestId> ids) {
  for (RequestId id : ids) (void)wait(id);
}

bool Process::has_incomplete_requests() const noexcept {
  for (const auto& [id, pr] : requests_) {
    if (!pr.complete) return true;
  }
  return false;
}

// ------------------------------------------------------------------- probe

std::optional<simmpi::Status> Process::iprobe_now(simmpi::Rank src,
                                                 simmpi::Tag tag,
                                                 CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  if (passthrough()) {
    if (auto info = api_.iprobe(c, src, tag)) {
      return simmpi::Status{info->source, info->tag, info->size};
    }
    return std::nullopt;
  }
  pump();
  const std::size_t header = piggyback_size(shared_.piggyback);
  const simmpi::Rank pattern_world =
      (src == simmpi::kAnySource) ? simmpi::kAnySource : c.to_world(src);
  if (replay_armed() && !replay_.recvs_exhausted()) {
    if (const RecvOutcome* entry = replay_.peek_recv(pattern_world, tag)) {
      if (entry->cls == MessageClass::kLate) {
        // The sender will not resend a late message; its availability and
        // size come straight from the log.
        return simmpi::Status{c.from_world(entry->src), entry->tag,
                              entry->payload.size()};
      }
      // Logged live match: the sender re-executes the send, so report the
      // message only once it is really here (pinned to the logged origin).
      if (auto info = api_.iprobe(c, c.from_world(entry->src), entry->tag)) {
        protocol_invariant(info->size >= header, "message without piggyback");
        return simmpi::Status{info->source, info->tag, info->size - header};
      }
      return std::nullopt;
    }
  }
  if (auto info = api_.iprobe(c, src, tag)) {
    protocol_invariant(info->size >= header, "message without piggyback");
    return simmpi::Status{info->source, info->tag, info->size - header};
  }
  return std::nullopt;
}

std::optional<simmpi::Status> Process::iprobe(simmpi::Rank src,
                                             simmpi::Tag tag,
                                             CommHandle comm) {
  event();
  return iprobe_now(src, tag, comm);
}

simmpi::Status Process::probe(simmpi::Rank src, simmpi::Tag tag,
                              CommHandle comm) {
  event();
  for (;;) {
    if (auto st = iprobe_now(src, tag, comm)) return *st;
    api_.check_abort();
    api_.idle_wait(kIdleSlice);
  }
}

// ----------------------------------------------------------------- control

void Process::drain_control() {
  if (passthrough() || !checkpoints_enabled()) return;
  const simmpi::Comm& world = resolve(kWorldComm);
  for (;;) {
    // pump() polled just before this call (and recv_any polls while it
    // waits), so peek at the unexpected queue instead of draining again.
    auto info = api_.peek(world, simmpi::kAnySource, simmpi::kAnyTag, kCtrl);
    if (!info) break;
    auto [bytes, st] = api_.recv_any(world, info->source, info->tag, kCtrl);
    stats_.control_messages++;
    handle_control(static_cast<ControlKind>(st.tag), st.source, bytes);
    // Control payloads arrive zero-copy in a pooled wire buffer; recycle it.
    api_.runtime().fabric().release_buffer(std::move(bytes));
  }
}

void Process::handle_control(ControlKind kind, simmpi::Rank from,
                             std::span<const std::byte> payload) {
  // Coordination-phase traffic (tree fan-outs, aggregated fan-ins and the
  // shutdown relay) belongs to the control plane; only per-peer data-plane
  // messages are handled here.
  if (control_->on_control(kind, from, payload)) return;
  util::Reader r(payload);
  switch (kind) {
    case ControlKind::kMySendCount: {
      const auto count = r.get<std::int64_t>();
      total_sent_[static_cast<std::size_t>(from)] = count;
      if (am_logging_) maybe_ready();
      break;
    }
    case ControlKind::kSuppressList: {
      const auto ids = r.get_vector<std::uint32_t>();
      suppress_[static_cast<std::size_t>(from)].insert(ids.begin(), ids.end());
      break;
    }
    default:
      protocol_invariant(false, "unroutable control message kind");
  }
}

void Process::maybe_ready() {
  if (!am_logging_ || ready_sent_) return;
  for (int q = 0; q < nranks_; ++q) {
    const auto idx = static_cast<std::size_t>(q);
    if (total_sent_[idx] < 0) return;
    if (previous_receive_count_[idx] > total_sent_[idx]) {
      throw util::CorruptionError(
          "protocol invariant violated: rank " + std::to_string(me_) +
          " received " + std::to_string(previous_receive_count_[idx]) +
          " previous-epoch messages from rank " + std::to_string(q) +
          " which only sent " + std::to_string(total_sent_[idx]) +
          " (epoch " + std::to_string(epoch_) + ")");
    }
    if (previous_receive_count_[idx] != total_sent_[idx]) return;
  }
  // All late messages are in: aggregate readiness towards the initiator
  // (Phase 2), and forget the totals so the next epoch starts unknown
  // again.
  ready_sent_ = true;
  std::fill(total_sent_.begin(), total_sent_.end(), -1);
  control_->note_local_ready();
}

void Process::finalize_log() {
  if (!am_logging_) return;
  am_logging_ = false;
  auto blob = log_.serialize();
  stats_.log_bytes += blob.size();
  // Moved into the storage pipeline: a pipelined backend encodes and
  // writes it on its background thread while this rank keeps computing.
  shared_.storage->put({.epoch = epoch_, .rank = me_, .section = "log"},
                       std::move(blob));
  log_.clear();
  // Aggregate towards phase 4 over the tree.
  control_->note_log_closed();
}

void Process::commit_round(std::int32_t epoch, bool any_detached,
                           bool parity_complete) {
  protocol_invariant(epoch == epoch_, "commit for a different epoch");
  // Every rank's phase-4 sample saw its replica lane quiescent: the
  // commit's parity wait will normally pass on its first check.
  if (parity_complete && shared_.replica) {
    shared_.replica->note_quiescent_hint(epoch);
  }
  // Phase 4 complete: this checkpoint becomes the recovery point. With a
  // pipelined backend, commit() is a barrier that drains the async write
  // queue before recording the recovery point -- an epoch whose blobs
  // are still in flight can never be named for recovery.
  shared_.storage->commit(epoch);
  // Superseded-epoch GC -- unless some rank took its local checkpoint
  // during shutdown ("detached": its application state is unreadable).
  // Then the previous epoch stays retained so recovery has a complete
  // epoch to fall back to. The detached bit arrived aggregated in the
  // phase-4 fan-in, so this decision reads nothing from storage.
  if (epoch >= 2 && !any_detached) {
    shared_.storage->drop_epoch(epoch - 1);
  }
}

bool Process::epoch_has_detached_rank(std::int32_t epoch) {
  for (int q = 0; q < nranks_; ++q) {
    stats_.detached_probe_gets++;
    const auto marker = shared_.storage->get(
        {.epoch = epoch, .rank = q, .section = "detached"});
    if (marker && !marker->empty() &&
        (*marker)[0] == std::byte{1}) {
      return true;
    }
  }
  return false;
}

// -------------------------------------------------------------- checkpoint

bool Process::recovery_quiesced() const {
  if (!shared_.recovering) return true;
  if (!replay_.recvs_exhausted() || !replay_.nondets_exhausted() ||
      !replay_.collectives_exhausted()) {
    return false;
  }
  for (const auto& s : suppress_) {
    if (!s.empty()) return false;
  }
  return true;
}

bool Process::policy_fires() {
  const auto& p = shared_.policy;
  if (p.max_checkpoints > 0 && checkpoints_started_ >= p.max_checkpoints) {
    return false;
  }
  if (p.every_calls > 0 && potential_calls_ % p.every_calls == 0) return true;
  if (p.interval.count() > 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_ckpt_time_ >= p.interval) return true;
  }
  return false;
}

void Process::initiate_checkpoint() {
  checkpoints_started_++;
  last_ckpt_time_ = std::chrono::steady_clock::now();
  // Phase 1: the control plane fans pleaseCheckpoint down the tree and
  // requests this rank's own local checkpoint through the hook.
  control_->start_round(epoch_ + 1);
}

void Process::potential_checkpoint() {
  event();
  if (passthrough()) return;
  pump();
  // A natural cancellation point: an application that spins on
  // potential_checkpoint (e.g. waiting out an epoch) must still observe a
  // peer's failure and unwind, like every blocking send/receive does.
  api_.check_abort();
  if (!checkpoints_enabled()) return;
  potential_calls_++;
  if (me_ == shared_.initiator && !control_->round_in_flight() &&
      recovery_quiesced() && policy_fires()) {
    initiate_checkpoint();
  }
  if (checkpoint_requested_ && recovery_quiesced()) do_checkpoint();
}

void Process::do_checkpoint() {
  checkpoint_requested_ = false;
  const std::int32_t new_epoch = epoch_ + 1;
  stats_.checkpoints_taken++;

  // Old-epoch send counts, captured before the reset; they travel in
  // mySendCount control messages (Section 4.3).
  const std::vector<std::int64_t> old_send = send_count_;

  statesave::CheckpointBuilder builder;
  {
    util::Writer w;
    w.put<std::int32_t>(new_epoch);
    const auto rst = rng_.state();
    for (const auto word : rst.s) w.put<std::uint64_t>(word);
    w.put<std::int64_t>(next_request_id_);
    // Early-message IDs per sender: the recovery run sends these to the
    // senders so the resends are suppressed.
    w.put<std::uint64_t>(early_ids_.size());
    for (const auto& ids : early_ids_) w.put_vector(ids);
    // Live pseudo-requests (Section 5.2 transient objects). A receive that
    // is still pending must target a heap-arena buffer (fixed virtual
    // address after a restart); reject other buffers eagerly so the error
    // surfaces at checkpoint time, not at a later recovery.
    std::vector<SavedRequest> saved;
    for (const auto& [rid, pr] : requests_) {
      if (shared_.level == InstrumentLevel::kFull && !pr.complete &&
          pr.kind == PseudoRequest::Kind::kRecv &&
          (!save_ctx_.has_heap() || !save_ctx_.heap().contains(pr.out))) {
        throw util::UsageError(
            "a receive pending across a checkpoint must target a heap-arena "
            "buffer (fixed virtual address); request " + std::to_string(rid));
      }
      SavedRequest sq;
      sq.id = rid;
      sq.kind = pr.kind;
      sq.complete = pr.complete;
      sq.status = pr.status;
      sq.comm = pr.comm;
      sq.pattern_src = pr.pattern_src;
      sq.pattern_tag = pr.pattern_tag;
      sq.out_addr = reinterpret_cast<std::uintptr_t>(pr.out);
      sq.out_size = pr.out_size;
      saved.push_back(sq);
    }
    serialize_saved_requests(saved, w);
    // Persistent opaque-object call records (Section 5.2).
    serialize_comm_calls(comm_calls_, w);
    builder.add_section("protocol", w.take());
  }
  if (use_cow_capture()) {
    // Copy-on-write capture: instead of serializing every registered
    // buffer into the v1 container on this thread, hand the store live
    // spans plus (for write-tracked buffers) the per-chunk CRCs it needs
    // to decide ref-vs-inline. Only the chunks that changed since the
    // previous epoch are copied before control returns; the encode,
    // compression and backend write all happen behind the running
    // application. Registered buffers travel as one section each
    // ("app!<name>") beside an "appmeta" section holding the registry
    // shape; recovery reassembles the classic "appstate" bytes from them,
    // so complete_registration() is untouched.
    {
      util::Writer mw;
      mw.put<std::uint64_t>(registry_.size());
      for (const auto& e : registry_) {
        mw.put_string(e.name);
        mw.put<std::uint8_t>(e.readonly ? 1 : 0);
        mw.put<std::uint64_t>(e.size);
        if (e.readonly) {
          const std::span<const std::byte> bytes{
              static_cast<const std::byte*>(e.addr), e.size};
          mw.put<std::uint32_t>(util::crc32(bytes));
        }
      }
      builder.add_section("appmeta", mw.take());
    }
    save_ctx_.capture(builder);
    std::vector<ckptstore::CaptureSection> caps;
    caps.reserve(builder.sections().size() + registry_.size());
    for (const auto& [name, data] : builder.sections()) {
      caps.push_back(ckptstore::CaptureSection{name, std::span(data), {}});
    }
    for (std::size_t i = 0; i < registry_.size(); ++i) {
      const RegEntry& e = registry_[i];
      if (e.readonly) continue;  // appmeta carries the CRC; no bytes travel
      const std::span<const std::byte> data{
          static_cast<const std::byte*>(e.addr), e.size};
      caps.push_back(ckptstore::CaptureSection{"app!" + e.name, data,
                                               tracked_crcs(i, data)});
    }
    for (const auto& c : caps) stats_.checkpoint_bytes += c.data.size();
    shared_.pipeline->put_capture(
        {.epoch = new_epoch, .rank = me_, .section = "state"},
        std::move(caps));
  } else if (shared_.level == InstrumentLevel::kFull && app_detached_) {
    // Shutdown-window checkpoint: the application body has returned and
    // its registered buffers (commonly locals of the app function) are
    // gone. Reading them would be use-after-free, so the protocol still
    // participates -- a stalled global checkpoint would wedge every other
    // rank's shutdown -- but records that this epoch cannot restore this
    // rank's application state. A separate "detached" blob marks the fact
    // cheaply, so the initiator skips the superseded-epoch GC and a later
    // recovery can fall back to the previous epoch (see
    // recover_from_checkpoint) instead of failing outright.
    builder.add_section("appstate-detached", {});
  } else if (shared_.level == InstrumentLevel::kFull) {
    std::size_t appstate_bytes = 8;
    for (const auto& e : registry_) {
      appstate_bytes += 8 + e.name.size() + 1 + (e.readonly ? 12 : 8 + e.size);
    }
    util::Writer w(appstate_bytes);
    w.put<std::uint64_t>(registry_.size());
    for (const auto& e : registry_) {
      w.put_string(e.name);
      w.put<std::uint8_t>(e.readonly ? 1 : 0);
      const std::span<const std::byte> bytes{
          static_cast<const std::byte*>(e.addr), e.size};
      if (e.readonly) {
        // Recomputation checkpointing (Section 7): the application's own
        // initialization regenerates these bytes; store only a fingerprint.
        w.put<std::uint64_t>(e.size);
        w.put<std::uint32_t>(util::crc32(bytes));
      } else {
        w.put_bytes(bytes);
      }
    }
    builder.add_section("appstate", w.take());
    save_ctx_.capture(builder);
  }
  if (shared_.level == InstrumentLevel::kFull) {
    // Per-rank detachment marker, written every epoch (a tombstone value
    // of 0 overwrites any stale marker left under the same epoch number
    // by an earlier execution, so a normally captured epoch can never be
    // mistaken for unrestorable).
    util::Writer dw;
    dw.put<std::uint8_t>(app_detached_ ? 1 : 0);
    shared_.storage->put(
        {.epoch = new_epoch, .rank = me_, .section = "detached"}, dw.take());
  }
  if (!use_cow_capture()) {
    auto blob = builder.finish();
    stats_.checkpoint_bytes += blob.size();
    // Hand the serialized checkpoint to the storage pipeline by move: with
    // a pipelined backend the rank resumes computing immediately and the
    // delta-encode + compress + write happens on the writer thread.
    shared_.storage->put({.epoch = new_epoch, .rank = me_, .section = "state"},
                         std::move(blob));
  }

  // Enter the new epoch (the paper's potentialCheckpoint pseudo-code) and
  // tell the control plane, which advances the coordinator state machine
  // (opening the round here if the barrier rule forced this checkpoint
  // before the pleaseCheckpoint relay arrived) and records whether this
  // local checkpoint was detached for the phase-4 aggregate.
  epoch_ = new_epoch;
  am_logging_ = true;
  ready_sent_ = false;
  control_->note_local_checkpoint(
      new_epoch, app_detached_ && shared_.level == InstrumentLevel::kFull);
  next_message_id_ = 0;
  for (int q = 0; q < nranks_; ++q) {
    const auto idx = static_cast<std::size_t>(q);
    previous_receive_count_[idx] = current_receive_count_[idx];
    current_receive_count_[idx] =
        static_cast<std::int64_t>(early_ids_[idx].size());
    early_ids_[idx].clear();
    send_count_[idx] = 0;
    suppress_[idx].clear();
  }
  // Tell every receiver how many messages I sent it in the ended epoch.
  const simmpi::Comm& world = resolve(kWorldComm);
  for (int q = 0; q < nranks_; ++q) {
    if (q == me_) {
      total_sent_[static_cast<std::size_t>(q)] =
          old_send[static_cast<std::size_t>(q)];
      continue;
    }
    util::Writer w;
    w.put<std::int64_t>(old_send[static_cast<std::size_t>(q)]);
    api_.send(world, w.bytes(), q, control_tag(ControlKind::kMySendCount),
              kCtrl);
    stats_.control_messages++;
  }
  maybe_ready();
}

// ------------------------------------------------------------- collectives

Process::CollectiveFlags Process::exchange_collective_control(
    const simmpi::Comm& comm) {
  const auto flags = control_->exchange_collective_control(
      comm, epoch_, am_logging_, app_detached_);
  // A detached rank's application body has returned; it can never be a
  // participant in a data collective.
  protocol_invariant(!flags.someone_detached,
                     "collective includes a detached (shut-down) rank");
  return flags;
}

std::optional<util::Bytes> Process::replay_collective() {
  // Replay arms at complete_registration(): everything before it is
  // initialization the application re-executes live on recovery (its
  // collectives predate the restored checkpoint and are in nobody's log).
  if (!replay_armed() || replay_.collectives_exhausted()) {
    return std::nullopt;
  }
  auto logged = replay_.take_collective();
  protocol_invariant(logged.has_value(), "collective replay underflow");
  stats_.replayed_collectives++;
  return logged;
}

void Process::after_collective(const CollectiveFlags& flags,
                               std::span<const std::byte> result) {
  if (!am_logging_) return;
  if (flags.someone_stopped_logging) {
    // Section 4.5: some participant had already stopped logging, so the
    // global checkpoint cannot depend on this call -- do not log the
    // result, and stop logging ourselves.
    finalize_log();
    return;
  }
  log_.add_collective(util::Bytes(result.begin(), result.end()));
  stats_.logged_collectives++;
}

void Process::allreduce(std::span<const std::byte> in,
                        std::span<std::byte> out, simmpi::Datatype type,
                        simmpi::Op op, CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  if (passthrough()) {
    api_.allreduce(c, in, out, type, op);
    return;
  }
  event();
  pump();
  stats_.app_collectives++;
  if (auto logged = replay_collective()) {
    protocol_invariant(logged->size() == out.size(),
                       "replayed collective size mismatch");
    std::memcpy(out.data(), logged->data(), logged->size());
    return;
  }
  const auto flags = exchange_collective_control(c);
  api_.allreduce(c, in, out, type, op);
  after_collective(flags, out);
}

void Process::reduce(std::span<const std::byte> in, std::span<std::byte> out,
                     simmpi::Datatype type, simmpi::Op op, simmpi::Rank root,
                     CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  if (passthrough()) {
    api_.reduce(c, in, out, type, op, root);
    return;
  }
  event();
  pump();
  stats_.app_collectives++;
  const bool has_result = (c.rank() == root);
  if (auto logged = replay_collective()) {
    if (has_result) {
      protocol_invariant(logged->size() == out.size(),
                         "replayed collective size mismatch");
      std::memcpy(out.data(), logged->data(), logged->size());
    }
    return;
  }
  const auto flags = exchange_collective_control(c);
  api_.reduce(c, in, out, type, op, root);
  after_collective(flags, has_result ? out : std::span<std::byte>{});
}

void Process::bcast(std::span<std::byte> data, simmpi::Rank root,
                    CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  if (passthrough()) {
    api_.bcast(c, data, root);
    return;
  }
  event();
  pump();
  stats_.app_collectives++;
  if (auto logged = replay_collective()) {
    protocol_invariant(logged->size() == data.size(),
                       "replayed collective size mismatch");
    std::memcpy(data.data(), logged->data(), logged->size());
    return;
  }
  const auto flags = exchange_collective_control(c);
  api_.bcast(c, data, root);
  after_collective(flags, data);
}

void Process::gather(std::span<const std::byte> in, std::span<std::byte> out,
                     simmpi::Rank root, CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  if (passthrough()) {
    api_.gather(c, in, out, root);
    return;
  }
  event();
  pump();
  stats_.app_collectives++;
  const bool has_result = (c.rank() == root);
  if (auto logged = replay_collective()) {
    if (has_result) {
      protocol_invariant(logged->size() == out.size(),
                         "replayed collective size mismatch");
      std::memcpy(out.data(), logged->data(), logged->size());
    }
    return;
  }
  const auto flags = exchange_collective_control(c);
  api_.gather(c, in, out, root);
  after_collective(flags, has_result ? out : std::span<std::byte>{});
}

void Process::allgather(std::span<const std::byte> in,
                        std::span<std::byte> out, CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  if (passthrough()) {
    api_.allgather(c, in, out);
    return;
  }
  event();
  pump();
  stats_.app_collectives++;
  if (auto logged = replay_collective()) {
    protocol_invariant(logged->size() == out.size(),
                       "replayed collective size mismatch");
    std::memcpy(out.data(), logged->data(), logged->size());
    return;
  }
  const auto flags = exchange_collective_control(c);
  api_.allgather(c, in, out);
  after_collective(flags, out);
}

void Process::alltoall(std::span<const std::byte> in, std::span<std::byte> out,
                       CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  if (passthrough()) {
    api_.alltoall(c, in, out);
    return;
  }
  event();
  pump();
  stats_.app_collectives++;
  if (auto logged = replay_collective()) {
    protocol_invariant(logged->size() == out.size(),
                       "replayed collective size mismatch");
    std::memcpy(out.data(), logged->data(), logged->size());
    return;
  }
  const auto flags = exchange_collective_control(c);
  api_.alltoall(c, in, out);
  after_collective(flags, out);
}

void Process::barrier(CommHandle comm) {
  const simmpi::Comm& c = resolve(comm);
  if (passthrough()) {
    api_.barrier(c);
    return;
  }
  event();
  pump();
  stats_.app_collectives++;
  // Section 4.5: a barrier must execute with every participant in the same
  // epoch (replaying it as a no-op would erase its synchronization
  // semantics). The pre-barrier control exchange detects epoch skew and
  // forces laggards to take their local checkpoint first.
  const auto flags = exchange_collective_control(c);
  if (checkpoints_enabled() && epoch_ < flags.max_epoch) {
    // A peer can only be an epoch ahead at a barrier once its own replay
    // has drained, and the conjunction rule closes every logging window no
    // later than this barrier -- so the laggard is quiesced too (asserted,
    // not assumed).
    protocol_invariant(recovery_quiesced(),
                       "barrier-forced checkpoint while replay pending");
    do_checkpoint();
  }
  api_.barrier(c);
  if (am_logging_ && flags.someone_stopped_logging) finalize_log();
}

// --------------------------------------------------------- opaque objects

CommHandle Process::comm_dup(CommHandle parent) {
  const simmpi::Comm dup = api_.comm_dup(resolve(parent));
  const CommHandle handle = next_comm_handle_++;
  comms_[handle] = dup;
  if (!replaying_comm_calls_) {
    comm_calls_.push_back(CommCallRecord{CommCallRecord::Kind::kDup, parent,
                                         0, 0, handle});
  }
  return handle;
}

CommHandle Process::comm_split(CommHandle parent, int color, int key) {
  const simmpi::Comm sub = api_.comm_split(resolve(parent), color, key);
  const CommHandle handle = next_comm_handle_++;
  comms_[handle] = sub;
  if (!replaying_comm_calls_) {
    comm_calls_.push_back(CommCallRecord{CommCallRecord::Kind::kSplit, parent,
                                         color, key, handle});
  }
  return handle;
}

void Process::comm_free(CommHandle handle) {
  if (handle == kWorldComm) {
    throw util::UsageError("cannot free the world communicator");
  }
  // Pending receives borrow the Comm object (simmpi requests hold it by
  // pointer); destroying it under them would be a use-after-free at match
  // time. Real MPI defers the free until pending ops complete -- we fail
  // loudly instead of deferring silently.
  for (const auto& [rid, pr] : requests_) {
    if (pr.kind == PseudoRequest::Kind::kRecv && !pr.complete &&
        pr.comm == handle) {
      throw util::UsageError(
          "comm_free with a pending receive on the communicator (request " +
          std::to_string(rid) + ")");
    }
  }
  if (comms_.erase(handle) == 0) {
    throw util::UsageError("comm_free of unknown handle");
  }
  if (!replaying_comm_calls_) {
    comm_calls_.push_back(CommCallRecord{CommCallRecord::Kind::kFree, handle,
                                         0, 0, kNullRequest});
  }
}

// -------------------------------------------------------- non-determinism

std::uint64_t Process::random_u64() {
  // Advance the deterministic stream unconditionally so that its state
  // stays in lock-step between the original and the recovered execution.
  const std::uint64_t fresh = rng_.next_u64();
  if (passthrough()) return fresh;
  if (replay_armed()) {
    if (auto logged = replay_.take_nondet()) {
      stats_.replayed_nondet_events++;
      return *logged;
    }
  }
  if (am_logging_) {
    log_.add_nondet(fresh);
    stats_.logged_nondet_events++;
  }
  return fresh;
}

double Process::random_double() {
  return static_cast<double>(random_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Process::nondet(const std::function<std::uint64_t()>& source) {
  if (passthrough()) return source();
  if (replay_armed()) {
    if (auto logged = replay_.take_nondet()) {
      stats_.replayed_nondet_events++;
      return *logged;
    }
  }
  const std::uint64_t v = source();
  if (am_logging_) {
    log_.add_nondet(v);
    stats_.logged_nondet_events++;
  }
  return v;
}

// ------------------------------------------------------ state registration

bool Process::use_cow_capture() const {
  return shared_.pipeline && shared_.pipeline->cow_enabled() &&
         shared_.level == InstrumentLevel::kFull && !app_detached_;
}

std::size_t Process::enable_write_tracking(const std::string& name) {
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    if (registry_[i].name != name) continue;
    if (registry_[i].readonly) {
      throw util::UsageError("write tracking on read-only state '" + name +
                             "' is meaningless (it stores only a CRC)");
    }
    for (std::size_t h = 0; h < trackers_.size(); ++h) {
      if (trackers_[h].reg_index == i) return h;
    }
    BufTracker t;
    t.reg_index = i;
    trackers_.push_back(std::move(t));
    return trackers_.size() - 1;
  }
  throw util::UsageError("write tracking requested for unregistered state '" +
                         name + "'");
}

void Process::notify_write(std::size_t handle, std::size_t offset,
                           std::size_t len) {
  if (handle >= trackers_.size()) {
    throw util::UsageError("notify_write with an unknown tracking handle");
  }
  BufTracker& t = trackers_[handle];
  if (!t.primed || len == 0) return;  // unprimed: next capture hashes all
  const std::size_t cs =
      shared_.pipeline ? shared_.pipeline->chunk_size() : std::size_t{4096};
  const std::size_t size = registry_[t.reg_index].size;
  const std::size_t end = std::min(size, offset + len);
  for (std::size_t i = offset / cs; i * cs < end && i < t.dirty.size(); ++i) {
    t.dirty[i] = true;
  }
}

std::vector<std::uint32_t> Process::tracked_crcs(
    std::size_t reg_index, std::span<const std::byte> data) {
  BufTracker* t = nullptr;
  for (auto& cand : trackers_) {
    if (cand.reg_index == reg_index) {
      t = &cand;
      break;
    }
  }
  if (t == nullptr) return {};  // untracked: the store hashes the buffer
  const std::size_t cs = shared_.pipeline->chunk_size();
  const std::size_t n = ckptstore::chunk_count(data.size(), cs);
  if (!t->primed || t->crcs.size() != n) {
    t->crcs.assign(n, 0);
    t->dirty.assign(n, true);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!t->dirty[i]) continue;
    t->crcs[i] = util::crc32(
        data.subspan(i * cs, ckptstore::chunk_len(data.size(), cs, i)));
  }
  t->dirty.assign(n, false);
  t->primed = true;
  return t->crcs;
}

void Process::register_state(std::string name, void* addr, std::size_t size) {
  if (registration_complete_) {
    throw util::UsageError(
        "register_state after complete_registration (register everything "
        "before finishing registration)");
  }
  for (const auto& e : registry_) {
    if (e.name == name) {
      throw util::UsageError("state '" + name + "' registered twice");
    }
  }
  registry_.push_back(RegEntry{std::move(name), addr, size, false});
}

void Process::register_readonly_state(std::string name, const void* addr,
                                      std::size_t size) {
  register_state(std::move(name), const_cast<void*>(addr), size);
  registry_.back().readonly = true;
}

void Process::complete_registration() {
  registration_complete_ = true;
  if (!shared_.recovering || !checkpoints_enabled()) return;
  if (shared_.level != InstrumentLevel::kFull) {
    throw util::UsageError(
        "recovery requires full checkpoints (InstrumentLevel::kFull)");
  }
  protocol_invariant(pending_appstate_.has_value(),
                     "recovering without application state");
  util::Reader r(*pending_appstate_);
  const auto count = r.get<std::uint64_t>();
  if (count != registry_.size()) {
    throw util::CorruptionError(
        "checkpoint has " + std::to_string(count) +
        " registered buffers, application registered " +
        std::to_string(registry_.size()));
  }
  for (const auto& e : registry_) {
    const auto name = r.get_string();
    const bool readonly = r.get<std::uint8_t>() != 0;
    if (name != e.name || readonly != e.readonly) {
      throw util::CorruptionError("registered state mismatch at '" + name +
                                  "'");
    }
    if (readonly) {
      const auto size = r.get<std::uint64_t>();
      const auto crc = r.get<std::uint32_t>();
      if (size != e.size) {
        throw util::CorruptionError("read-only state '" + name +
                                    "' size mismatch");
      }
      // The application's re-run initialization must have recomputed the
      // identical contents; a mismatch means the data was not read-only.
      const std::span<const std::byte> bytes{
          static_cast<const std::byte*>(e.addr), e.size};
      if (util::crc32(bytes) != crc) {
        throw util::CorruptionError(
            "read-only state '" + name +
            "' was not recomputed identically on recovery");
      }
      continue;
    }
    const auto bytes = r.get_bytes();
    if (bytes.size() != e.size) {
      throw util::CorruptionError("registered state '" + name +
                                  "' size mismatch");
    }
    std::memcpy(e.addr, bytes.data(), bytes.size());
  }
  pending_appstate_.reset();
  // The restore rewrote every tracked buffer underneath its tracker: the
  // recorded chunk fingerprints are stale, so the next capture re-hashes
  // everything once and re-primes.
  for (auto& t : trackers_) t.primed = false;
  restored_ = true;
}

// ---------------------------------------------------------------- recovery

void Process::recover_from_checkpoint() {
  const auto committed = shared_.storage->committed_epoch();
  protocol_invariant(committed.has_value(), "recovery without a commit");
  std::int32_t target = *committed;
  // If any rank's local checkpoint at the committed epoch was taken during
  // shutdown (detached: its application state was not captured), every
  // rank uniformly falls back to the previous epoch -- retained exactly
  // for this case (the initiator skips the superseded-epoch GC when it
  // commits a detached epoch). Mixed per-rank decisions would restore an
  // inconsistent global state, so the check looks at all ranks' markers.
  if (shared_.level == InstrumentLevel::kFull &&
      epoch_has_detached_rank(target)) {
    if (target <= 1) {
      throw util::CorruptionError(
          "the only committed recovery point was taken during shutdown, "
          "after the application released its registered state; it cannot "
          "be restored -- rerun the computation");
    }
    target = target - 1;
  }
  const auto blob = shared_.storage->get(
      {.epoch = target, .rank = me_, .section = "state"});
  protocol_invariant(blob.has_value(), "committed checkpoint blob missing");
  statesave::CheckpointView view(*blob);

  std::vector<std::vector<std::uint32_t>> saved_early;
  std::vector<SavedRequest> saved_requests;
  {
    const auto proto = view.require_section("protocol");
    util::Reader r(proto);
    epoch_ = r.get<std::int32_t>();
    protocol_invariant(epoch_ == target, "epoch/commit mismatch");
    util::Rng::State rst;
    for (auto& word : rst.s) word = r.get<std::uint64_t>();
    rng_.set_state(rst);
    next_request_id_ = r.get<std::int64_t>();
    const auto npeer = r.get<std::uint64_t>();
    protocol_invariant(npeer == static_cast<std::uint64_t>(nranks_),
                       "peer count mismatch in checkpoint");
    saved_early.resize(npeer);
    for (auto& ids : saved_early) ids = r.get_vector<std::uint32_t>();
    saved_requests = deserialize_saved_requests(r);
    comm_calls_ = deserialize_comm_calls(r);
  }

  // The log of the committed epoch (finalizeLog wrote it before the commit).
  const auto logblob = shared_.storage->get(
      {.epoch = epoch_, .rank = me_, .section = "log"});
  protocol_invariant(logblob.has_value(), "committed log blob missing");
  replay_ = ReplayLog(*logblob);

  if (shared_.level == InstrumentLevel::kFull) {
    if (view.section("appstate-detached").has_value()) {
      throw util::CorruptionError(
          "the committed recovery point was taken during shutdown, after "
          "the application released its registered state; it cannot be "
          "restored -- rerun the computation");
    }
    if (view.section("appmeta").has_value()) {
      // COW-captured epoch: registered buffers travel as one section each
      // ("app!<name>") beside the "appmeta" registry shape. Reassemble the
      // classic "appstate" byte stream from them here so
      // complete_registration() parses one format regardless of how the
      // epoch was captured.
      util::Reader mr(view.require_section("appmeta"));
      const auto count = mr.get<std::uint64_t>();
      util::Writer w;
      w.put<std::uint64_t>(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto name = mr.get_string();
        const bool readonly = mr.get<std::uint8_t>() != 0;
        const auto size = mr.get<std::uint64_t>();
        w.put_string(name);
        w.put<std::uint8_t>(readonly ? 1 : 0);
        if (readonly) {
          w.put<std::uint64_t>(size);
          w.put<std::uint32_t>(mr.get<std::uint32_t>());
          continue;
        }
        const auto bytes = view.require_section("app!" + name);
        protocol_invariant(bytes.size() == size,
                           "COW app section size disagrees with appmeta");
        w.put_bytes(bytes);
      }
      pending_appstate_.emplace(w.take());
    } else {
      // require_section() returns a view into `blob`; the appstate bytes
      // are needed after it goes out of scope, so copy them out.
      const auto appstate = view.require_section("appstate");
      pending_appstate_.emplace(appstate.begin(), appstate.end());
    }
    // Globals are registered by precompiler-emitted code that has not run
    // yet (ccift_register_globals executes once the application re-enters);
    // defer their value restore to finish_restore(), reached at the resume
    // point after the registry has been rebuilt.
    save_ctx_.begin_restore(view, /*defer_globals=*/true);
  }

  // Counter state at the instant just after the checkpoint was taken.
  am_logging_ = false;  // the saved log already covers the logged window
  next_message_id_ = 0;
  for (int q = 0; q < nranks_; ++q) {
    const auto idx = static_cast<std::size_t>(q);
    send_count_[idx] = 0;
    previous_receive_count_[idx] = 0;
    current_receive_count_[idx] =
        static_cast<std::int64_t>(saved_early[idx].size());
    total_sent_[idx] = -1;
    early_ids_[idx].clear();
  }
  checkpoint_requested_ = false;

  // Any partially written next checkpoint is abandoned. With the COW
  // pipeline the crash may have caught *several* epochs above the last
  // drained commit (captures enqueued while earlier epochs' deferred
  // commits were still in flight), so sweep everything newer than the
  // recovery point rather than assuming exactly one. When recovery fell
  // back past a detached epoch, that sweep happens later (after the
  // suppression exchange below, which doubles as a barrier proving every
  // rank has finished consulting its markers).
  const bool fell_back = (target != *committed);
  if (!fell_back) {
    // epoch_ + 1 is dropped unconditionally -- even when none of its blobs
    // landed (so it is absent from list_epochs), the drop clears its
    // failed-write latch so the re-executed epoch can commit.
    shared_.storage->drop_epoch(epoch_ + 1);
    for (const int e : shared_.storage->list_epochs()) {
      if (e > epoch_ + 1) shared_.storage->drop_epoch(e);
    }
  }

  // Recreate persistent opaque objects by replaying the recorded calls
  // (collective across ranks: every rank replays in the same order).
  replaying_comm_calls_ = true;
  for (const auto& call : comm_calls_) {
    switch (call.kind) {
      case CommCallRecord::Kind::kDup: {
        const simmpi::Comm dup = api_.comm_dup(resolve(call.parent));
        comms_[call.result] = dup;
        next_comm_handle_ = std::max(next_comm_handle_, call.result + 1);
        break;
      }
      case CommCallRecord::Kind::kSplit: {
        const simmpi::Comm sub =
            api_.comm_split(resolve(call.parent), call.color, call.key);
        comms_[call.result] = sub;
        next_comm_handle_ = std::max(next_comm_handle_, call.result + 1);
        break;
      }
      case CommCallRecord::Kind::kFree:
        comms_.erase(call.parent);
        break;
    }
  }
  replaying_comm_calls_ = false;

  exchange_suppression_lists(saved_early);
  if (fell_back && me_ == shared_.initiator) {
    // Completing the exchange above means every rank sent its lists, i.e.
    // every rank already decided its recovery target from the detached
    // markers. Now it is safe to re-point the recovery marker at the
    // epoch actually restored and discard the unrestorable detached epoch
    // (which also clears its markers for future commits) -- plus every
    // partially written epoch after it, whose stale detached markers
    // would otherwise poison the re-executed epochs' commits. The
    // re-commit must be synchronous even in COW mode: recovery needs the
    // marker re-pointed before anything else proceeds.
    if (shared_.pipeline) {
      shared_.pipeline->commit_now(target);
    } else {
      shared_.storage->commit(target);
    }
    // target + 1 is dropped unconditionally -- even if none of its blobs
    // landed (absent from list_epochs), the drop clears its failed-write
    // latch so the re-executed epoch can commit.
    shared_.storage->drop_epoch(target + 1);
    for (const int e : shared_.storage->list_epochs()) {
      if (e > target + 1) shared_.storage->drop_epoch(e);
    }
  }
  reinit_pending_requests(saved_requests);
}

void Process::exchange_suppression_lists(
    const std::vector<std::vector<std::uint32_t>>& saved_early) {
  const simmpi::Comm& world = resolve(kWorldComm);
  // Tell each sender which of its epoch-local message IDs I already hold.
  for (int q = 0; q < nranks_; ++q) {
    if (q == me_) {
      suppress_[static_cast<std::size_t>(q)].insert(
          saved_early[static_cast<std::size_t>(q)].begin(),
          saved_early[static_cast<std::size_t>(q)].end());
      continue;
    }
    util::Writer w;
    w.put_vector(saved_early[static_cast<std::size_t>(q)]);
    api_.send(world, w.bytes(), q, control_tag(ControlKind::kSuppressList),
              kCtrl);
    stats_.control_messages++;
  }
  // And collect every receiver's list for my own outgoing messages.
  for (int q = 0; q < nranks_; ++q) {
    if (q == me_) continue;
    auto [bytes, st] = api_.recv_any(
        world, q, control_tag(ControlKind::kSuppressList), kCtrl);
    util::Reader r(bytes);
    const auto ids = r.get_vector<std::uint32_t>();
    suppress_[static_cast<std::size_t>(q)].insert(ids.begin(), ids.end());
    stats_.control_messages++;
    api_.runtime().fabric().release_buffer(std::move(bytes));
  }
}

void Process::reinit_pending_requests(
    const std::vector<SavedRequest>& saved) {
  for (const auto& sq : saved) {
    PseudoRequest pr;
    pr.kind = sq.kind;
    pr.comm = sq.comm;
    pr.pattern_src = sq.pattern_src;
    pr.pattern_tag = sq.pattern_tag;
    if (sq.complete || sq.kind == PseudoRequest::Kind::kSend) {
      // Paper rule: a pre-checkpoint Isend's pseudo-handle is reinitialized
      // so that MPI_Wait returns immediately (the data is either in the
      // receiver's checkpoint or in its log). Completed receives likewise
      // just report their saved status; the delivered bytes are part of the
      // restored application state.
      pr.complete = true;
      pr.processed = true;
      pr.status = sq.status;
      requests_[sq.id] = std::move(pr);
      continue;
    }
    // Incomplete pre-checkpoint Irecv. The buffer must live at its original
    // virtual address, which we can only guarantee for heap-arena storage.
    auto* out = reinterpret_cast<std::byte*>(
        static_cast<std::uintptr_t>(sq.out_addr));
    if (!save_ctx_.has_heap() || !save_ctx_.heap().contains(out)) {
      throw util::UsageError(
          "a receive pending across a checkpoint must target a heap-arena "
          "buffer (fixed virtual address)");
    }
    pr.out = out;
    pr.out_size = sq.out_size;
    const simmpi::Comm& c = resolve(sq.comm);
    const simmpi::Rank pattern_world =
        (sq.pattern_src == simmpi::kAnySource)
            ? simmpi::kAnySource
            : c.to_world(sq.pattern_src);
    if (auto entry = replay_.take_recv(pattern_world, sq.pattern_tag)) {
      if (entry->cls == MessageClass::kLate) {
        // Matches a late message in the log: copy to the buffer, and the
        // wait will return immediately (Section 5.2).
        protocol_invariant(entry->payload.size() <= sq.out_size,
                           "pending recv replay larger than buffer");
        if (!entry->payload.empty()) {
          std::memcpy(out, entry->payload.data(), entry->payload.size());
        }
        pr.complete = true;
        pr.processed = true;
        pr.from_replay = true;
        pr.status = simmpi::Status{c.from_world(entry->src), entry->tag,
                                   entry->payload.size()};
        stats_.replayed_recvs++;
        requests_[sq.id] = std::move(pr);
        continue;
      }
      // Completed during logging from a live (re-sent) message: re-issue
      // pinned to the logged source/tag.
      stats_.replayed_recv_pins++;
      pr.real = api_.irecv_owned(c, c.from_world(entry->src), entry->tag);
      requests_[sq.id] = std::move(pr);
      outstanding_recvs_.push_back(sq.id);
      continue;
    }
    // No logged outcome: re-issue with exactly the original arguments.
    pr.real = api_.irecv_owned(c, sq.pattern_src, sq.pattern_tag);
    requests_[sq.id] = std::move(pr);
    outstanding_recvs_.push_back(sq.id);
  }
}

// ---------------------------------------------------------------- shutdown

void Process::shutdown() {
  // The application body has returned: its registered buffers may be dead.
  // Any checkpoint the protocol is still obliged to take from here on must
  // not dereference them (see do_checkpoint's detached branch).
  app_detached_ = true;
  if (passthrough() || !checkpoints_enabled()) return;
  if (me_ == shared_.initiator) {
    for (;;) {
      pump();
      if (checkpoint_requested_ && recovery_quiesced()) do_checkpoint();
      // With COW deferred commits the round can be over while the last
      // epoch's commit is still draining behind the app. Keep pumping
      // until it settles -- other ranks' parity acks ride the network we
      // are servicing here -- before tearing the job down.
      if (!control_->round_in_flight() &&
          (!shared_.pipeline || shared_.pipeline->commits_settled())) {
        break;
      }
      api_.check_abort();
      api_.idle_wait(kIdleSlice);
    }
    control_->broadcast_shutdown();
    // The round closes at *this* rank's commit; the commit relay is still
    // fanning down the tree, so the other ranks' commit_round calls can
    // enqueue their deferred commits after the check above. Keep pumping
    // until those settle too -- their parity acks need this rank's lane.
    while (shared_.pipeline && !shared_.pipeline->commits_settled()) {
      pump();
      api_.check_abort();
      api_.idle_wait(kIdleSlice);
    }
    // Surface any committer-latched write error now, while the failure can
    // still abort the job loudly instead of vanishing with the store.
    if (shared_.pipeline) shared_.pipeline->flush();
  } else {
    // Keep pumping until the shutdown relay arrives: interior tree nodes
    // still owe their subtrees phase relays and fan-in aggregation for the
    // final checkpoint round. With COW deferred commits, stay past the
    // relay until the pipeline settles: this rank's own final commit was
    // only *enqueued* by commit_round, and its parity traffic needs this
    // rank pumping until the committer finalizes it.
    while (!control_->shutdown_received() ||
           (shared_.pipeline && !shared_.pipeline->commits_settled())) {
      pump();
      if (checkpoint_requested_ && recovery_quiesced()) do_checkpoint();
      api_.check_abort();
      api_.idle_wait(kIdleSlice);
    }
  }
}

}  // namespace c3::core
