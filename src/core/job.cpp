#include "core/job.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace c3::core {

Job::Job(JobConfig config) : config_(std::move(config)) {
  if (config_.ranks <= 0) {
    throw util::UsageError("JobConfig.ranks must be positive");
  }
  if (!config_.storage) {
    config_.storage = std::make_shared<util::MemoryStorage>();
  }
  std::shared_ptr<util::StableStorage> base = config_.storage;
  if (config_.replica_group_size > 0) {
    replica::ReplicaConfig rc;
    rc.group_size = config_.replica_group_size;
    rc.parity_k = config_.replica_parity_k;
    rc.commit_timeout = config_.replica_commit_timeout;
    replica_ = std::make_shared<replica::ReplicatedStorage>(
        config_.storage, config_.ranks, rc);
    // Jobs always run parity over the fabric; loopback mode is for
    // single-process store tests.
    replica_->enable_wire();
    base = replica_;
  }
  if (config_.ckpt_pipeline) {
    // Default lane wiring: one writer lane per rank, so every rank's
    // checkpoint drains onto its own (modelled per-node) disk concurrently
    // and the commit barrier costs max-over-ranks write time, not the sum.
    if (config_.ckpt.writer_lanes == 0) {
      config_.ckpt.writer_lanes = static_cast<std::size_t>(config_.ranks);
    }
    pipeline_ =
        std::make_shared<ckptstore::CheckpointStore>(base, config_.ckpt);
  }
}

JobReport Job::run(const std::function<void(Process&)>& app_main) {
  JobReport report;
  // Injectors are shared across executions: each is one-shot, so a
  // recovery run does not re-kill the victim at the same event count.
  std::vector<std::shared_ptr<net::FailureInjector>> injectors;
  if (config_.failure) {
    injectors.push_back(
        std::make_shared<net::FailureInjector>(*config_.failure));
  }
  for (const auto& spec : config_.extra_failures) {
    injectors.push_back(std::make_shared<net::FailureInjector>(spec));
  }

  simmpi::Runtime runtime(config_.ranks, config_.net);
  bool recovering = false;
  const auto storage = effective_storage();

  for (;;) {
    report.executions++;
    if (replica_) {
      // Fence the parity plane per execution: frames from the aborted run
      // carry the old execution id and are dropped on arrival, and all
      // accumulator / pending-ack state is reset before any rank restarts.
      replica_->begin_execution(
          static_cast<std::uint64_t>(report.executions));
    }
    Process::Shared shared;
    shared.storage = storage;
    shared.pipeline = pipeline_;
    shared.replica = replica_;
    shared.injectors = injectors;
    shared.level = config_.level;
    shared.piggyback = config_.piggyback;
    shared.policy = config_.policy;
    shared.seed = config_.seed;
    shared.heap_capacity = config_.heap_capacity;
    shared.initiator = config_.initiator;
    shared.coordinator_probe = config_.coordinator_probe;
    shared.recovering = recovering;
    shared.validate_classification = config_.validate_classification;

    try {
      runtime.run([&](simmpi::Api& api) {
        try {
          Process process(api, shared);
          app_main(process);
          process.shutdown();
        } catch (...) {
          // This rank's pump is gone: any commit waiting on parity acks it
          // would have shipped can only ever time out. Fail those waits
          // now, before the surviving ranks (and the join below) stall
          // behind a 30s commit timeout.
          if (replica_) replica_->abort_waits();
          throw;
        }
      });
      if (recovering) report.recovered = true;
      break;
    } catch (const util::StoppingFailure& f) {
      report.failures++;
      C3_LOG(kInfo) << "stopping failure at rank " << f.rank()
                    << "; rolling back";
      if (report.executions > config_.max_restarts) {
        throw;
      }
      // The crash may have caught an epoch with its commit still in
      // flight (COW deferred commit) or captures still draining: cancel
      // the pending commits -- the fully drained epoch below them is the
      // recovery point -- and drain the lanes before anything reads or
      // wipes the backend. Cancel the replica tier's ack waits first:
      // the rank threads that would pump those acks are gone, so a
      // deferred commit stuck in the parity wait would otherwise hold
      // abort_in_flight() for the whole commit timeout.
      if (replica_) replica_->abort_waits();
      if (pipeline_) pipeline_->abort_in_flight();
      // Model the node dying with its local storage: wipe the failed
      // rank's entire backend holding (and any configured extras) before
      // recovery, so every blob it contributed must come back through
      // parity reconstruction.
      if (config_.wipe_failed_rank_storage) {
        storage->wipe_rank(f.rank());
      }
      for (int r : config_.extra_wipe_ranks) {
        storage->wipe_rank(r);
      }
      const auto committed = storage->committed_epoch();
      if (!committed.has_value()) {
        // No global checkpoint yet: the computation restarts from scratch
        // (epoch 0), exactly as a real deployment would.
        recovering = false;
      } else {
        if (config_.level != InstrumentLevel::kFull) {
          throw util::UsageError(
              "cannot recover: checkpoints were taken without application "
              "state (InstrumentLevel::kNoAppState)");
        }
        recovering = true;
      }
    }
  }

  report.last_committed_epoch = storage->committed_epoch();
  report.storage_bytes_written = storage->bytes_written();
  return report;
}

}  // namespace c3::core
