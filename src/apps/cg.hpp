// Dense Conjugate Gradient with block-row distribution -- the paper's first
// benchmark (Section 6.1): "a parallel matrix vector multiply and a
// parallel dot product, with communication coming from an allReduce and an
// allGather". The matrix block is the dominant application state, which is
// what drives the paper's 14% -> 43% overhead jump at 16384x16384.
#pragma once

#include <cstdint>

#include "core/process.hpp"

namespace c3::apps {

struct CgConfig {
  std::size_t n = 256;        ///< matrix dimension
  int iterations = 50;        ///< CG iterations to run
  std::uint64_t seed = 7;     ///< matrix/vector generator seed
  bool checkpoints = true;    ///< call potential_checkpoint each iteration
  /// The matrix block never changes after initialization; with this set it
  /// is registered read-only (recomputation checkpointing, paper Section
  /// 7), shrinking every checkpoint by the matrix size.
  bool readonly_matrix = false;
};

struct CgResult {
  double residual = 0.0;      ///< ||r||_2 after the final iteration
  double checksum = 0.0;      ///< sum of solution entries (determinism probe)
  int iterations_done = 0;
  std::size_t state_bytes = 0;  ///< per-rank registered application state
};

/// Run CG on `p`'s world communicator. Deterministic for a given
/// (config, world size); recovery must reproduce the exact result.
CgResult run_cg(core::Process& p, const CgConfig& cfg);

}  // namespace c3::apps
