// Shared scaffolding for the paper's three benchmark applications
// (Section 6.1): dense Conjugate Gradient, a Laplace solver, and Neurosys.
// Each app communicates through the c3mpi facade (typed MPI calls resolved
// by a per-rank MpiBinding) and uses the C3 Process API as the SPI for
// state registration and potentialCheckpoint placement, exactly as the
// CCIFT precompiler would instrument it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "c3mpi/binding.hpp"
#include "c3mpi/mpi.h"
#include "core/process.hpp"

namespace c3::apps {

/// Convenient typed views for Process byte-span calls.
template <typename T>
std::span<const std::byte> bytes_of(const std::vector<T>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T)};
}

template <typename T>
std::span<std::byte> bytes_of(std::vector<T>& v) {
  return {reinterpret_cast<std::byte*>(v.data()), v.size() * sizeof(T)};
}

template <typename T>
std::span<const std::byte> bytes_of_value(const T& v) {
  return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
}

template <typename T>
std::span<std::byte> bytes_of_value(T& v) {
  return {reinterpret_cast<std::byte*>(&v), sizeof(T)};
}

/// Block-row partition helpers: rows [row_begin, row_end) of an n-row
/// problem belong to `rank` of `nranks`.
struct BlockRows {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t count() const noexcept { return end - begin; }
};

inline BlockRows block_rows(std::size_t n, int rank, int nranks) {
  const std::size_t base = n / static_cast<std::size_t>(nranks);
  const std::size_t extra = n % static_cast<std::size_t>(nranks);
  const auto r = static_cast<std::size_t>(rank);
  const std::size_t begin = r * base + std::min(r, extra);
  const std::size_t count = base + (r < extra ? 1 : 0);
  return {begin, begin + count};
}

}  // namespace c3::apps
