#include "apps/laplace.hpp"

#include <algorithm>
#include <cmath>

#include "apps/app_common.hpp"

namespace c3::apps {

LaplaceResult run_laplace(core::Process& p, const LaplaceConfig& cfg) {
  // Communication goes through the c3mpi facade: typed (buf, count, type)
  // arguments and MPI_Request handles instead of raw byte spans and manual
  // RequestId bookkeeping. Process stays the SPI for state registration and
  // the explicit potentialCheckpoint cadence the paper's kernels use.
  c3mpi::MpiBinding mpi(p);
  const int nranks = p.nranks();
  const std::size_t n = cfg.n;
  const BlockRows rows = block_rows(n, p.rank(), nranks);
  const std::size_t local = rows.count();
  const bool has_up = p.rank() > 0;
  const bool has_down = p.rank() + 1 < nranks;

  // Grid with two halo rows (index 0 = halo above, local+1 = halo below).
  std::vector<double> grid((local + 2) * n, 0.0);
  std::vector<double> next((local + 2) * n, 0.0);
  int iter = 0;
  double max_delta = 0.0;

  auto cell = [&](std::vector<double>& g, std::size_t r,
                  std::size_t c) -> double& { return g[r * n + c]; };

  // Heated top edge.
  if (rows.begin == 0) {
    for (std::size_t c = 0; c < n; ++c) cell(grid, 1, c) = 100.0;
  }

  p.register_state("laplace.grid", grid.data(), grid.size() * sizeof(double));
  p.register_value("laplace.iter", iter);
  p.register_value("laplace.max_delta", max_delta);
  p.complete_registration();

  constexpr int kUpTag = 11;    // border row travelling upward
  constexpr int kDownTag = 12;  // border row travelling downward
  const int count = static_cast<int>(n);

  while (iter < cfg.iterations) {
    // Halo exchange: send my first row up / last row down, receive the
    // neighbour rows into the halos.
    MPI_Request reqs[4];
    int nreq = 0;
    if (has_up) {
      MPI_Isend(&cell(grid, 1, 0), count, MPI_DOUBLE, p.rank() - 1, kUpTag,
                MPI_COMM_WORLD, &reqs[nreq++]);
      MPI_Irecv(&cell(grid, 0, 0), count, MPI_DOUBLE, p.rank() - 1, kDownTag,
                MPI_COMM_WORLD, &reqs[nreq++]);
    }
    if (has_down) {
      MPI_Isend(&cell(grid, local, 0), count, MPI_DOUBLE, p.rank() + 1,
                kDownTag, MPI_COMM_WORLD, &reqs[nreq++]);
      MPI_Irecv(&cell(grid, local + 1, 0), count, MPI_DOUBLE, p.rank() + 1,
                kUpTag, MPI_COMM_WORLD, &reqs[nreq++]);
    }
    MPI_Waitall(nreq, reqs, MPI_STATUSES_IGNORE);

    // Jacobi update of interior cells; global boundary cells stay fixed.
    max_delta = 0.0;
    for (std::size_t r = 1; r <= local; ++r) {
      const std::size_t global_row = rows.begin + (r - 1);
      for (std::size_t c = 0; c < n; ++c) {
        const bool boundary = global_row == 0 || global_row == n - 1 ||
                              c == 0 || c == n - 1;
        if (boundary) {
          cell(next, r, c) = cell(grid, r, c);
          continue;
        }
        const double v = 0.25 * (cell(grid, r - 1, c) + cell(grid, r + 1, c) +
                                 cell(grid, r, c - 1) + cell(grid, r, c + 1));
        max_delta = std::max(max_delta, std::abs(v - cell(grid, r, c)));
        cell(next, r, c) = v;
      }
    }
    // Copy back rather than pointer-swap: the registered checkpoint buffer
    // must stay the live grid.
    std::copy(next.begin() + static_cast<std::ptrdiff_t>(n),
              next.begin() + static_cast<std::ptrdiff_t>((local + 1) * n),
              grid.begin() + static_cast<std::ptrdiff_t>(n));

    ++iter;
    if (cfg.checkpoints) p.potential_checkpoint();
  }

  double local_sum = 0.0;
  for (std::size_t r = 1; r <= local; ++r) {
    for (std::size_t c = 0; c < n; ++c) local_sum += cell(grid, r, c);
  }
  LaplaceResult result;
  MPI_Allreduce(&local_sum, &result.checksum, 1, MPI_DOUBLE, MPI_SUM,
                MPI_COMM_WORLD);
  result.max_delta = max_delta;
  result.iterations_done = iter;
  result.state_bytes = grid.size() * sizeof(double) + sizeof(iter) +
                       sizeof(max_delta);
  return result;
}

}  // namespace c3::apps
