#include "apps/laplace.hpp"

#include <algorithm>
#include <cmath>

#include "apps/app_common.hpp"

namespace c3::apps {

LaplaceResult run_laplace(core::Process& p, const LaplaceConfig& cfg) {
  const int nranks = p.nranks();
  const std::size_t n = cfg.n;
  const BlockRows rows = block_rows(n, p.rank(), nranks);
  const std::size_t local = rows.count();
  const bool has_up = p.rank() > 0;
  const bool has_down = p.rank() + 1 < nranks;

  // Grid with two halo rows (index 0 = halo above, local+1 = halo below).
  std::vector<double> grid((local + 2) * n, 0.0);
  std::vector<double> next((local + 2) * n, 0.0);
  int iter = 0;
  double max_delta = 0.0;

  auto cell = [&](std::vector<double>& g, std::size_t r,
                  std::size_t c) -> double& { return g[r * n + c]; };

  // Heated top edge.
  if (rows.begin == 0) {
    for (std::size_t c = 0; c < n; ++c) cell(grid, 1, c) = 100.0;
  }

  p.register_state("laplace.grid", grid.data(), grid.size() * sizeof(double));
  p.register_value("laplace.iter", iter);
  p.register_value("laplace.max_delta", max_delta);
  p.complete_registration();

  constexpr simmpi::Tag kUpTag = 11;    // border row travelling upward
  constexpr simmpi::Tag kDownTag = 12;  // border row travelling downward

  while (iter < cfg.iterations) {
    // Halo exchange: send my first row up / last row down, receive the
    // neighbour rows into the halos.
    std::vector<core::RequestId> reqs;
    if (has_up) {
      reqs.push_back(p.isend({reinterpret_cast<const std::byte*>(&cell(grid, 1, 0)),
                              n * sizeof(double)},
                             p.rank() - 1, kUpTag));
      reqs.push_back(p.irecv({reinterpret_cast<std::byte*>(&cell(grid, 0, 0)),
                              n * sizeof(double)},
                             p.rank() - 1, kDownTag));
    }
    if (has_down) {
      reqs.push_back(
          p.isend({reinterpret_cast<const std::byte*>(&cell(grid, local, 0)),
                   n * sizeof(double)},
                  p.rank() + 1, kDownTag));
      reqs.push_back(
          p.irecv({reinterpret_cast<std::byte*>(&cell(grid, local + 1, 0)),
                   n * sizeof(double)},
                  p.rank() + 1, kUpTag));
    }
    p.waitall(reqs);

    // Jacobi update of interior cells; global boundary cells stay fixed.
    max_delta = 0.0;
    for (std::size_t r = 1; r <= local; ++r) {
      const std::size_t global_row = rows.begin + (r - 1);
      for (std::size_t c = 0; c < n; ++c) {
        const bool boundary = global_row == 0 || global_row == n - 1 ||
                              c == 0 || c == n - 1;
        if (boundary) {
          cell(next, r, c) = cell(grid, r, c);
          continue;
        }
        const double v = 0.25 * (cell(grid, r - 1, c) + cell(grid, r + 1, c) +
                                 cell(grid, r, c - 1) + cell(grid, r, c + 1));
        max_delta = std::max(max_delta, std::abs(v - cell(grid, r, c)));
        cell(next, r, c) = v;
      }
    }
    // Copy back rather than pointer-swap: the registered checkpoint buffer
    // must stay the live grid.
    std::copy(next.begin() + static_cast<std::ptrdiff_t>(n),
              next.begin() + static_cast<std::ptrdiff_t>((local + 1) * n),
              grid.begin() + static_cast<std::ptrdiff_t>(n));

    ++iter;
    if (cfg.checkpoints) p.potential_checkpoint();
  }

  double local_sum = 0.0;
  for (std::size_t r = 1; r <= local; ++r) {
    for (std::size_t c = 0; c < n; ++c) local_sum += cell(grid, r, c);
  }
  LaplaceResult result;
  p.allreduce(bytes_of_value(local_sum), bytes_of_value(result.checksum),
              simmpi::Datatype::kDouble, simmpi::Op::kSum);
  result.max_delta = max_delta;
  result.iterations_done = iter;
  result.state_bytes = grid.size() * sizeof(double) + sizeof(iter) +
                       sizeof(max_delta);
  return result;
}

}  // namespace c3::apps
