// Laplace solver on an n x n grid, block-row distributed -- the paper's
// second benchmark (Section 6.1): every iteration each grid cell becomes
// the average of its four neighbours; communication is a halo exchange of
// border rows with the ranks above and below.
#pragma once

#include <cstdint>

#include "core/process.hpp"

namespace c3::apps {

struct LaplaceConfig {
  std::size_t n = 128;      ///< grid dimension (n x n)
  int iterations = 100;     ///< Jacobi iterations
  bool checkpoints = true;  ///< call potential_checkpoint each iteration
};

struct LaplaceResult {
  double checksum = 0.0;  ///< sum of interior cells (determinism probe)
  double max_delta = 0.0; ///< last iteration's max cell change (local)
  int iterations_done = 0;
  std::size_t state_bytes = 0;
};

/// Run the solver on `p`'s world communicator. Boundary condition: the top
/// edge is held at 100, the others at 0 (a standard heated-plate setup).
LaplaceResult run_laplace(core::Process& p, const LaplaceConfig& cfg);

}  // namespace c3::apps
