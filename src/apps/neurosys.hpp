// Neurosys -- the paper's third benchmark (Section 6.1): a neuron-network
// simulator. Neurons excite and inhibit each other through a connection
// graph; each neuron's state evolves by a Runge-Kutta (RK4) integration of
// a function of its neighbours' states. The network is block-partitioned
// across ranks; per iteration the communication is 5 MPI_Allgather calls
// (one per RK stage plus the final state exchange) and 1 MPI_Gather (output
// collection at the root) -- the collective-heavy profile that produces the
// paper's piggyback-overhead curve on small problem sizes.
#pragma once

#include <cstdint>

#include "core/process.hpp"

namespace c3::apps {

struct NeurosysConfig {
  std::size_t neurons = 256;  ///< network size (paper sweeps 16^2 .. 128^2)
  int fan_in = 8;             ///< connections per neuron
  int iterations = 50;        ///< time steps
  double dt = 0.01;           ///< integration step
  std::uint64_t seed = 11;    ///< connectivity/weight generator seed
  bool checkpoints = true;
};

struct NeurosysResult {
  double checksum = 0.0;    ///< sum of neuron potentials at the end
  double root_probe = 0.0;  ///< value assembled by the per-step Gather
  int iterations_done = 0;
  std::size_t state_bytes = 0;
};

NeurosysResult run_neurosys(core::Process& p, const NeurosysConfig& cfg);

}  // namespace c3::apps
