#include "apps/neurosys.hpp"

#include <cmath>

#include "apps/app_common.hpp"
#include "util/rng.hpp"

namespace c3::apps {

namespace {
/// Deterministic connection target and weight for (neuron, slot).
struct Link {
  std::size_t target;
  double weight;
};

Link link_of(std::uint64_t seed, std::size_t n, std::size_t neuron, int slot) {
  std::uint64_t h = seed ^ (neuron * 0x9E3779B97F4A7C15ull) ^
                    (static_cast<std::uint64_t>(slot) * 0xC2B2AE3D27D4EB4Full);
  const std::uint64_t a = util::splitmix64(h);
  const std::uint64_t b = util::splitmix64(h);
  Link link;
  link.target = a % n;
  // Weights in [-1, 1): mixture of excitatory and inhibitory connections.
  link.weight = static_cast<double>(b >> 11) * 0x1.0p-52 - 1.0;
  return link;
}

/// Membrane dynamics: leak toward rest plus a squashed synaptic drive.
double dv(double v, double drive) {
  return -0.5 * v + std::tanh(drive);
}
}  // namespace

NeurosysResult run_neurosys(core::Process& p, const NeurosysConfig& cfg) {
  // Typed MPI communication via the c3mpi facade; Process remains the SPI
  // for state registration and the explicit checkpoint cadence.
  c3mpi::MpiBinding mpi(p);
  const int nranks = p.nranks();
  const std::size_t n = cfg.neurons;
  const BlockRows rows = block_rows(n, p.rank(), nranks);
  const std::size_t local = rows.count();
  const bool equal_blocks = (n % static_cast<std::size_t>(nranks) == 0);

  std::vector<double> v(local);       // local membrane potentials
  std::vector<double> v_full(n);      // allgathered network state
  std::vector<double> stage(local);   // RK stage evaluation buffer
  std::vector<double> k1(local), k2(local), k3(local), k4(local);
  std::vector<double> gathered(static_cast<std::size_t>(nranks));
  int iter = 0;
  double root_probe = 0.0;

  for (std::size_t i = 0; i < local; ++i) {
    // Deterministic initial potentials in [-0.5, 0.5).
    std::uint64_t h = cfg.seed ^ ((rows.begin + i) * 0xA24BAED4963EE407ull);
    v[i] = static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53 - 0.5;
  }

  p.register_state("neurosys.v", v.data(), v.size() * sizeof(double));
  p.register_value("neurosys.iter", iter);
  p.register_value("neurosys.probe", root_probe);
  p.complete_registration();

  // Exchange the full network state (one of the paper's 5 allgathers).
  auto exchange = [&](const std::vector<double>& src) {
    if (equal_blocks) {
      std::vector<double> tmp(n);
      MPI_Allgather(src.data(), static_cast<int>(local), MPI_DOUBLE,
                    tmp.data(), static_cast<int>(local), MPI_DOUBLE,
                    MPI_COMM_WORLD);
      v_full = std::move(tmp);
    } else {
      for (int root = 0; root < nranks; ++root) {
        const BlockRows rb = block_rows(n, root, nranks);
        if (root == p.rank()) {
          std::copy(src.begin(), src.end(),
                    v_full.begin() + static_cast<std::ptrdiff_t>(rb.begin));
        }
        MPI_Bcast(v_full.data() + rb.begin, static_cast<int>(rb.count()),
                  MPI_DOUBLE, root, MPI_COMM_WORLD);
      }
    }
  };

  // Synaptic drive of local neuron i given the full network state.
  auto drive_of = [&](std::size_t i) {
    double drive = 0.0;
    for (int s = 0; s < cfg.fan_in; ++s) {
      const Link link = link_of(cfg.seed, n, rows.begin + i, s);
      drive += link.weight * v_full[link.target];
    }
    return drive;
  };

  while (iter < cfg.iterations) {
    // RK4: each stage needs the neighbours' stage values -> one allgather
    // per stage (4), plus the post-step state exchange (5th).
    exchange(v);
    for (std::size_t i = 0; i < local; ++i) k1[i] = dv(v[i], drive_of(i));

    for (std::size_t i = 0; i < local; ++i) {
      stage[i] = v[i] + 0.5 * cfg.dt * k1[i];
    }
    exchange(stage);
    for (std::size_t i = 0; i < local; ++i) k2[i] = dv(stage[i], drive_of(i));

    for (std::size_t i = 0; i < local; ++i) {
      stage[i] = v[i] + 0.5 * cfg.dt * k2[i];
    }
    exchange(stage);
    for (std::size_t i = 0; i < local; ++i) k3[i] = dv(stage[i], drive_of(i));

    for (std::size_t i = 0; i < local; ++i) {
      stage[i] = v[i] + cfg.dt * k3[i];
    }
    exchange(stage);
    for (std::size_t i = 0; i < local; ++i) k4[i] = dv(stage[i], drive_of(i));

    for (std::size_t i = 0; i < local; ++i) {
      v[i] += cfg.dt / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
    }
    exchange(v);  // 5th allgather: publish the post-step state

    // The per-step Gather: the root collects a per-rank activity probe.
    double local_activity = 0.0;
    for (std::size_t i = 0; i < local; ++i) local_activity += v[i];
    MPI_Gather(&local_activity, 1, MPI_DOUBLE, gathered.data(), 1,
               MPI_DOUBLE, /*root=*/0, MPI_COMM_WORLD);
    if (p.rank() == 0) {
      root_probe = 0.0;
      for (double g : gathered) root_probe += g;
    }

    ++iter;
    if (cfg.checkpoints) p.potential_checkpoint();
  }

  double local_sum = 0.0;
  for (std::size_t i = 0; i < local; ++i) local_sum += v[i];
  NeurosysResult result;
  MPI_Allreduce(&local_sum, &result.checksum, 1, MPI_DOUBLE, MPI_SUM,
                MPI_COMM_WORLD);
  result.root_probe = root_probe;
  result.iterations_done = iter;
  result.state_bytes = v.size() * sizeof(double) + sizeof(iter) +
                       sizeof(root_probe);
  return result;
}

}  // namespace c3::apps
