#include "apps/cg.hpp"

#include <cmath>

#include "apps/app_common.hpp"
#include "util/rng.hpp"

namespace c3::apps {

namespace {
/// Deterministic SPD-ish matrix entry: symmetric off-diagonal noise with a
/// dominant diagonal, generated without storing the whole matrix anywhere.
double matrix_entry(std::uint64_t seed, std::size_t n, std::size_t i,
                    std::size_t j) {
  const std::size_t a = std::min(i, j), b = std::max(i, j);
  std::uint64_t h = seed ^ (a * 0x9E3779B97F4A7C15ull) ^
                    (b * 0xC2B2AE3D27D4EB4Full);
  const double noise =
      static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53;
  if (i == j) return static_cast<double>(n) + 1.0 + noise;
  return noise / static_cast<double>(n);
}
}  // namespace

CgResult run_cg(core::Process& p, const CgConfig& cfg) {
  // Typed MPI communication via the c3mpi facade; Process remains the SPI
  // for state registration and the explicit checkpoint cadence.
  c3mpi::MpiBinding mpi(p);
  const int nranks = p.nranks();
  const std::size_t n = cfg.n;
  const BlockRows rows = block_rows(n, p.rank(), nranks);
  const std::size_t local = rows.count();

  // Local block of A, plus the CG vectors. All of it is checkpointable
  // application state (the precompiler saves everything; Section 5.1).
  std::vector<double> a(local * n);
  std::vector<double> x(n, 0.0);        // full solution vector
  std::vector<double> r(local);         // local residual block
  std::vector<double> d(local);         // local direction block
  std::vector<double> dir_full(n);      // allgathered direction
  std::vector<double> q(local);         // A * dir block
  double delta = 0.0;
  int iter = 0;

  for (std::size_t i = 0; i < local; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] = matrix_entry(cfg.seed, n, rows.begin + i, j);
    }
  }
  // b_i = 1 + i/n gives a deterministic right-hand side.
  auto rhs = [&](std::size_t gi) {
    return 1.0 + static_cast<double>(gi) / static_cast<double>(n);
  };
  for (std::size_t i = 0; i < local; ++i) {
    r[i] = rhs(rows.begin + i);
    d[i] = r[i];
  }
  {
    double local_delta = 0.0;
    for (std::size_t i = 0; i < local; ++i) local_delta += r[i] * r[i];
    MPI_Allreduce(&local_delta, &delta, 1, MPI_DOUBLE, MPI_SUM,
                  MPI_COMM_WORLD);
  }

  if (cfg.readonly_matrix) {
    p.register_readonly_state("cg.a", a.data(), a.size() * sizeof(double));
  } else {
    p.register_state("cg.a", a.data(), a.size() * sizeof(double));
  }
  p.register_state("cg.x", x.data(), x.size() * sizeof(double));
  p.register_state("cg.r", r.data(), r.size() * sizeof(double));
  p.register_state("cg.d", d.data(), d.size() * sizeof(double));
  p.register_value("cg.delta", delta);
  p.register_value("cg.iter", iter);
  p.complete_registration();

  // Uneven block-row sizes: allgather requires equal blocks, so exchange
  // directions with the butterfly-style allgather only when divisible, and
  // fall back to gather+bcast otherwise. The paper's codes use power-of-two
  // grids where blocks are equal.
  const bool equal_blocks = (n % static_cast<std::size_t>(nranks) == 0);

  while (iter < cfg.iterations) {
    // dir_full = allgather(d)
    for (std::size_t i = 0; i < local; ++i) {
      dir_full[rows.begin + i] = d[i];
    }
    if (equal_blocks) {
      MPI_Allgather(d.data(), static_cast<int>(local), MPI_DOUBLE,
                    dir_full.data(), static_cast<int>(local), MPI_DOUBLE,
                    MPI_COMM_WORLD);
    } else {
      // Ragged blocks: broadcast each rank's segment (allgatherv stand-in).
      for (int root_rank = 0; root_rank < nranks; ++root_rank) {
        const BlockRows rb = block_rows(n, root_rank, nranks);
        MPI_Bcast(dir_full.data() + rb.begin, static_cast<int>(rb.count()),
                  MPI_DOUBLE, root_rank, MPI_COMM_WORLD);
      }
    }

    // q = A_block * dir_full
    for (std::size_t i = 0; i < local; ++i) {
      double acc = 0.0;
      const double* row = &a[i * n];
      for (std::size_t j = 0; j < n; ++j) acc += row[j] * dir_full[j];
      q[i] = acc;
    }

    // alpha = delta / (d . q)
    double local_dq = 0.0;
    for (std::size_t i = 0; i < local; ++i) local_dq += d[i] * q[i];
    double dq = 0.0;
    MPI_Allreduce(&local_dq, &dq, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    const double alpha = delta / dq;

    for (std::size_t i = 0; i < local; ++i) {
      x[rows.begin + i] += alpha * d[i];
      r[i] -= alpha * q[i];
    }

    double local_new_delta = 0.0;
    for (std::size_t i = 0; i < local; ++i) local_new_delta += r[i] * r[i];
    double new_delta = 0.0;
    MPI_Allreduce(&local_new_delta, &new_delta, 1, MPI_DOUBLE, MPI_SUM,
                  MPI_COMM_WORLD);
    const double beta = new_delta / delta;
    delta = new_delta;
    for (std::size_t i = 0; i < local; ++i) d[i] = r[i] + beta * d[i];

    ++iter;
    if (cfg.checkpoints) p.potential_checkpoint();
  }

  // The solution pieces live scattered in x; combine via allreduce of the
  // per-rank contributions for a determinism checksum.
  double local_sum = 0.0;
  for (std::size_t i = 0; i < local; ++i) local_sum += x[rows.begin + i];
  CgResult result;
  MPI_Allreduce(&local_sum, &result.checksum, 1, MPI_DOUBLE, MPI_SUM,
                MPI_COMM_WORLD);
  result.residual = std::sqrt(delta);
  result.iterations_done = iter;
  result.state_bytes = (a.size() + x.size() + r.size() + d.size()) *
                           sizeof(double) +
                       sizeof(delta) + sizeof(iter);
  return result;
}

}  // namespace c3::apps
