#include "util/rng.hpp"

namespace c3::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : st_.s) w = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t sm = st_.s[0] ^ (stream * 0xD1342543DE82EF95ull + 1);
  Rng r;
  for (auto& w : r.st_.s) w = splitmix64(sm);
  return r;
}

std::uint64_t Rng::next_u64() {
  auto& s = st_.s;
  const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl(s[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

}  // namespace c3::util
