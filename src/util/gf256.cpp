#include "util/gf256.hpp"

#include <array>

#include "util/error.hpp"

namespace c3::util::gf256 {
namespace {

// exp/log tables over the 0x11d field, generator 2. exp_ is doubled so
// mul() can skip the mod-255 reduction.
struct Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint16_t, 256> log{};
  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw UsageError("gf256: inverse of zero");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned n) noexcept {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[(static_cast<unsigned>(t.log[a]) * n) % 255];
}

std::uint8_t coef(int j, int i) {
  if (i < 0 || i >= 255 || j < 0) throw UsageError("gf256: coef out of range");
  return pow(static_cast<std::uint8_t>(i + 1), static_cast<unsigned>(j));
}

void axpy(std::byte* dst, const std::byte* src, std::size_t n,
          std::uint8_t c) noexcept {
  if (c == 0 || n == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  // Per-call multiplication table for c: one 256-byte build, then a
  // single lookup per byte -- far cheaper than log/exp per byte.
  std::array<std::uint8_t, 256> row;
  for (unsigned b = 0; b < 256; ++b)
    row[b] = mul(c, static_cast<std::uint8_t>(b));
  for (std::size_t i = 0; i < n; ++i)
    dst[i] ^= static_cast<std::byte>(row[static_cast<std::uint8_t>(src[i])]);
}

std::vector<Bytes> solve_erasures(std::vector<std::vector<std::uint8_t>> a,
                                  std::vector<Bytes> rhs, std::size_t len) {
  const std::size_t rows = a.size();
  if (rhs.size() != rows)
    throw UsageError("gf256: coefficient/rhs row count mismatch");
  const std::size_t cols = rows == 0 ? 0 : a[0].size();
  for (const auto& row : a)
    if (row.size() != cols) throw UsageError("gf256: ragged coefficient rows");
  for (auto& r : rhs) r.resize(len);

  // Forward elimination with row pivoting over *all* available
  // equations: succeeds iff the column rank covers every unknown.
  std::size_t pivot_row = 0;
  std::vector<std::size_t> pivot_of(cols);
  for (std::size_t col = 0; col < cols; ++col) {
    std::size_t p = pivot_row;
    while (p < rows && a[p][col] == 0) ++p;
    if (p == rows)
      throw CorruptionError(
          "gf256: erasure system is singular (more shards lost than the "
          "surviving parity can reconstruct)");
    std::swap(a[p], a[pivot_row]);
    std::swap(rhs[p], rhs[pivot_row]);
    const std::uint8_t piv_inv = inv(a[pivot_row][col]);
    for (std::size_t c = col; c < cols; ++c)
      a[pivot_row][c] = mul(a[pivot_row][c], piv_inv);
    for (std::size_t i = 0; i < len; ++i)
      rhs[pivot_row][i] = static_cast<std::byte>(
          mul(piv_inv, static_cast<std::uint8_t>(rhs[pivot_row][i])));
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pivot_row || a[r][col] == 0) continue;
      const std::uint8_t f = a[r][col];
      for (std::size_t c = col; c < cols; ++c)
        a[r][c] ^= mul(f, a[pivot_row][c]);
      axpy(rhs[r].data(), rhs[pivot_row].data(), len, f);
    }
    pivot_of[col] = pivot_row;
    ++pivot_row;
  }

  std::vector<Bytes> out;
  out.reserve(cols);
  for (std::size_t col = 0; col < cols; ++col)
    out.push_back(std::move(rhs[pivot_of[col]]));
  return out;
}

}  // namespace c3::util::gf256
