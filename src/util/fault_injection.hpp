// Deterministic storage fault injection for crash-recovery tests.
//
// The pipeline's correctness claims ("an uncommitted epoch is never the
// recovery point", "no blob a committed manifest references is ever
// GC'd") used to be exercised by ad-hoc kill timing: throttle the backend
// and hope the interesting interleaving arises. FaultInjectingStorage
// makes the failure point a *count*, not a race: arm a plan and the fault
// fires on exactly the N-th put, on the first put of a chosen rank (torn,
// leaving a truncated blob behind), or at the commit-marker write --
// every run, every scheduler.
//
// The companion hook for killing *between writer-lane flushes* lives in
// ckptstore::StoreOptions::after_lane_flush (the fault has to fire inside
// the store's flush loop, which this decorator never sees).
//
// Simulating the crash: the injected fault unwinds as InjectedFault; the
// test drops the wrapper/store ("the process died"), then reopens the
// surviving inner storage with a fresh store ("the restarted job") and
// asserts recovery invariants.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/stable_storage.hpp"

namespace c3::util {

/// Thrown at an armed fault point. Deliberately not a CorruptionError:
/// tests distinguish "the injected crash fired" from "the store detected
/// real corruption".
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// What to break, counted from the moment the plan is armed.
struct FaultPlan {
  /// Fail the (N+1)-th put after arming (0 = the very next put fails);
  /// negative = disabled. The failing put writes nothing.
  std::int64_t fail_after_puts = -1;
  /// The first put for this rank is torn: only `torn_keep_bytes` of the
  /// blob reach the backend before the fault fires (clamped to size-1: a
  /// tear never completes the write). Negative = disabled.
  int torn_write_rank = -1;
  std::size_t torn_keep_bytes = 0;
  /// Fail the commit-marker write instead of recording it.
  bool fail_on_commit = false;
  /// When a fault fires (any of the above), also wipe this rank's entire
  /// backend holding (StableStorage::wipe_rank) before the InjectedFault
  /// unwinds: the node's local disk dies *with* the process, the failure
  /// the diskless replica tier exists for. Negative = disabled.
  int wipe_rank_on_fault = -1;
};

/// Decorator over any StableStorage that executes a FaultPlan. Thread-safe:
/// concurrent writer lanes race only for the put *count*, decided under a
/// lock; the forwarded write itself runs outside it.
class FaultInjectingStorage final : public StableStorage {
 public:
  explicit FaultInjectingStorage(std::shared_ptr<StableStorage> inner,
                                 FaultPlan plan = {});

  /// Install a plan; resets the put counter so counts are relative to the
  /// arming point (e.g. "3 puts into epoch 2").
  void arm(FaultPlan plan);
  /// Clear the plan: the "restarted process" reuses the surviving inner
  /// storage without faults.
  void disarm();

  /// Puts forwarded to the backend since the last arm()/disarm().
  std::uint64_t puts_observed() const noexcept {
    return puts_.load(std::memory_order_relaxed);
  }

  void put(const BlobKey& key, const Bytes& data) override;
  void put(const BlobKey& key, Bytes&& data) override;
  std::optional<Bytes> get(const BlobKey& key) const override;
  void commit(int epoch) override;
  std::optional<int> committed_epoch() const override;
  void drop_epoch(int epoch) override;
  std::vector<int> list_epochs() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t bytes_written() const override;
  StorageStats storage_stats() const override;
  std::vector<LaneStats> lane_stats() const override;
  void wipe_rank(int rank) override;

 private:
  enum class Action { kForward, kFail, kTear };
  Action decide(const BlobKey& key);
  /// Execute the plan's wipe (if any) just before an injected fault
  /// unwinds.
  void wipe_on_fault();

  std::shared_ptr<StableStorage> inner_;
  mutable std::mutex mu_;
  FaultPlan plan_;
  bool armed_ = false;
  bool torn_fired_ = false;
  std::atomic<std::uint64_t> puts_{0};
};

}  // namespace c3::util
