// Monotonic-clock helpers shared by the storage/pipeline accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace c3::util {

using MonoClock = std::chrono::steady_clock;

/// Nanoseconds elapsed since `t0` (monotonic).
inline std::uint64_t ns_since(MonoClock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(MonoClock::now() -
                                                           t0)
          .count());
}

}  // namespace c3::util
