#include "util/buffer_pool.hpp"

#include <bit>

namespace c3::util {

BufferPool::BufferPool() {
  // Pre-reserve every free list so release() never grows a vector: it is
  // noexcept and runs on the hot receive path, where an allocation failure
  // must drop the buffer, not terminate the process.
  for (auto& shard : shards_) shard.free.reserve(kMaxFreePerClass);
}

std::size_t BufferPool::class_capacity(std::size_t n) noexcept {
  if (n > kMaxClassBytes) return n;
  return std::bit_ceil(std::max(n, kMinClassBytes));
}

int BufferPool::class_index(std::size_t cap) noexcept {
  if (cap < kMinClassBytes || cap > kMaxClassBytes || !std::has_single_bit(cap)) {
    return -1;
  }
  return std::countr_zero(cap) - std::countr_zero(kMinClassBytes);
}

Bytes BufferPool::acquire(std::size_t n, bool* fresh) {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t cap = class_capacity(n);
  const int idx = class_index(cap);
  if (idx >= 0) {
    auto& shard = shards_[idx];
    std::lock_guard lock(shard.mu);
    auto& list = shard.free;
    if (!list.empty()) {
      Bytes b = std::move(list.back());
      list.pop_back();
      b.resize(n);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (fresh) *fresh = false;
      return b;
    }
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  if (n > kMaxClassBytes) {
    oversize_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
  if (fresh) *fresh = true;
  Bytes b;
  b.reserve(cap);
  b.resize(n);
  return b;
}

void BufferPool::release(Bytes&& b) noexcept {
  const int idx = class_index(b.capacity() > kMaxClassBytes
                                  ? b.capacity()
                                  : std::bit_floor(b.capacity()));
  if (idx < 0) {
    discards_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto& shard = shards_[idx];
  std::lock_guard lock(shard.mu);
  auto& list = shard.free;
  if (list.size() >= kMaxFreePerClass) {
    discards_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  releases_.fetch_add(1, std::memory_order_relaxed);
  list.push_back(std::move(b));
}

BufferPool::Stats BufferPool::stats() const noexcept {
  return Stats{acquires_.load(std::memory_order_relaxed),
               hits_.load(std::memory_order_relaxed),
               allocs_.load(std::memory_order_relaxed),
               oversize_allocs_.load(std::memory_order_relaxed),
               releases_.load(std::memory_order_relaxed),
               discards_.load(std::memory_order_relaxed)};
}

std::size_t BufferPool::free_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.free.size();
  }
  return total;
}

}  // namespace c3::util
