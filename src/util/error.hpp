// Error types shared across the C3 reproduction.
//
// The library distinguishes three failure categories:
//  - UsageError:    the caller violated an API contract (a bug in the
//                   application or test, not in the runtime).
//  - CorruptionError: a checkpoint or log failed validation on read.
//  - JobAborted:    cooperative teardown after an injected stopping failure;
//                   rank threads unwind with this exception so the job runner
//                   can roll the computation back to the last committed
//                   global checkpoint.
#pragma once

#include <stdexcept>
#include <string>

namespace c3::util {

/// API misuse by the caller (wrong rank, negative tag, mismatched sizes...).
class UsageError : public std::logic_error {
 public:
  explicit UsageError(const std::string& what) : std::logic_error(what) {}
};

/// A checkpoint, log, or piggyback record failed validation on read.
class CorruptionError : public std::runtime_error {
 public:
  explicit CorruptionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown inside rank threads when the job is being torn down after an
/// injected stopping failure. Caught by the runtime's thread trampoline.
class JobAborted : public std::runtime_error {
 public:
  JobAborted() : std::runtime_error("job aborted") {}
  explicit JobAborted(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the failure injector at the victim's trigger point.
class StoppingFailure : public std::runtime_error {
 public:
  explicit StoppingFailure(int rank)
      : std::runtime_error("stopping failure injected at rank " +
                           std::to_string(rank)),
        rank_(rank) {}
  int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

}  // namespace c3::util
