// GF(256) arithmetic for the erasure-coded checkpoint replica tier.
//
// Self-contained Galois-field codec (polynomial 0x11d, the common
// Reed-Solomon generator field) sitting beside the LZ codec: log/exp
// tables built once, multiply-accumulate over byte vectors, and a
// rectangular Gaussian erasure solver. The replica tier encodes parity
// shard j of a group as
//
//   P_j = sum_i coef(j, i) (x) D_i        coef(j, i) = (i + 1)^j
//
// over the members' encoded blobs (zero-padded to the longest). Row
// j = 0 is all-ones, so parity_k = 1 degrades to plain XOR; the
// Vandermonde rows keep any <= k erasures within a group solvable for
// the k <= 2 configurations the tier supports (and the solver pivots
// across every available equation, so it recovers whenever the erasure
// system has full column rank, whatever the k).
#pragma once

#include <cstdint>
#include <vector>

#include "util/archive.hpp"

namespace c3::util::gf256 {

/// Product of two field elements.
std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept;

/// Multiplicative inverse (UsageError on 0).
std::uint8_t inv(std::uint8_t a);

/// a^n (with 0^0 = 1).
std::uint8_t pow(std::uint8_t a, unsigned n) noexcept;

/// Vandermonde coefficient of parity row `j` for group member `i`:
/// (i + 1)^j. Requires i < 255 so the evaluation points stay distinct
/// and non-zero.
std::uint8_t coef(int j, int i);

/// dst[i] ^= c (x) src[i] for i < n (dst must hold >= n bytes). c == 1
/// is a plain XOR fast path; c == 0 is a no-op.
void axpy(std::byte* dst, const std::byte* src, std::size_t n,
          std::uint8_t c) noexcept;

/// Solve an erasure system: `rows` equations over `unknowns` columns,
/// each equation i being  sum_u a[i][u] (x) X_u = rhs[i]  with every
/// rhs vector `len` bytes long. Returns the `unknowns` solution vectors
/// (each `len` bytes). Throws CorruptionError when the system does not
/// have full column rank (more erasures than the surviving parity can
/// express).
std::vector<Bytes> solve_erasures(std::vector<std::vector<std::uint8_t>> a,
                                  std::vector<Bytes> rhs, std::size_t len);

}  // namespace c3::util::gf256
