#include "util/stable_storage.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <fstream>
#include <thread>

#include "util/clock.hpp"
#include "util/error.hpp"

namespace c3::util {

namespace {

using Clock = MonoClock;

/// Flatten a per-rank map into a dense vector indexed by rank. Negative
/// ranks (legal in BlobKey, never produced by the protocol) are skipped --
/// both for sizing and filling, so they cannot blow up the resize.
std::vector<LaneStats> flatten(const std::map<int, LaneStats>& per_rank) {
  std::vector<LaneStats> lanes;
  const auto first = per_rank.lower_bound(0);
  if (first == per_rank.end()) return lanes;
  lanes.resize(static_cast<std::size_t>(per_rank.rbegin()->first) + 1);
  for (auto it = first; it != per_rank.end(); ++it) {
    lanes[static_cast<std::size_t>(it->first)] = it->second;
  }
  return lanes;
}

/// Shared per-put accounting for plain backends (caller holds the
/// backend's lock): lifetime byte counter plus the rank's disk stats.
void account_put(std::uint64_t& written, std::map<int, LaneStats>& per_rank,
                 int rank, std::size_t size) {
  written += size;
  LaneStats& lane = per_rank[rank];
  lane.puts++;
  lane.raw_bytes += size;
  lane.stored_bytes += size;
}

}  // namespace

// ---------------------------------------------------------------- memory

void MemoryStorage::put(const BlobKey& key, const Bytes& data) {
  const std::size_t size = data.size();
  {
    std::lock_guard lock(mu_);
    account_put(written_, per_rank_, key.rank, size);
    blobs_[key] = data;
  }
  throttle_sleep(key.rank, size);
}

void MemoryStorage::put(const BlobKey& key, Bytes&& data) {
  const std::size_t size = data.size();
  {
    std::lock_guard lock(mu_);
    account_put(written_, per_rank_, key.rank, size);
    blobs_[key] = std::move(data);
  }
  throttle_sleep(key.rank, size);
}

// Bandwidth model: sleep outside the lock so ranks "write" in parallel,
// as they would to per-node local disks; the modelled write time is then
// folded into the rank's disk accounting under the lock.
void MemoryStorage::throttle_sleep(int rank, std::size_t size) const {
  if (throttle_ == 0 || size == 0) return;
  const double secs =
      static_cast<double>(size) / static_cast<double>(throttle_);
  const auto t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  std::lock_guard lock(mu_);
  per_rank_[rank].write_ns += ns_since(t0);
}

std::optional<Bytes> MemoryStorage::get(const BlobKey& key) const {
  std::lock_guard lock(mu_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

void MemoryStorage::commit(int epoch) {
  std::lock_guard lock(mu_);
  committed_ = epoch;
}

std::optional<int> MemoryStorage::committed_epoch() const {
  std::lock_guard lock(mu_);
  return committed_;
}

void MemoryStorage::drop_epoch(int epoch) {
  std::lock_guard lock(mu_);
  for (auto it = blobs_.begin(); it != blobs_.end();) {
    if (it->first.epoch == epoch) {
      it = blobs_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<int> MemoryStorage::list_epochs() const {
  std::lock_guard lock(mu_);
  std::vector<int> epochs;
  for (const auto& [k, v] : blobs_) {
    // blobs_ is ordered by key (epoch first): one entry per distinct epoch.
    if (epochs.empty() || epochs.back() != k.epoch) epochs.push_back(k.epoch);
  }
  return epochs;
}

std::uint64_t MemoryStorage::total_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [k, v] : blobs_) n += v.size();
  return n;
}

std::uint64_t MemoryStorage::bytes_written() const {
  std::lock_guard lock(mu_);
  return written_;
}

std::vector<LaneStats> MemoryStorage::lane_stats() const {
  std::lock_guard lock(mu_);
  return flatten(per_rank_);
}

void MemoryStorage::wipe_rank(int rank) {
  std::lock_guard lock(mu_);
  for (auto it = blobs_.begin(); it != blobs_.end();) {
    if (it->first.rank == rank) {
      it = blobs_.erase(it);
    } else {
      ++it;
    }
  }
}

// ------------------------------------------------------------------ disk

DiskStorage::DiskStorage(std::filesystem::path root,
                         std::uint64_t throttle_bytes_per_sec)
    : root_(std::move(root)), throttle_(throttle_bytes_per_sec) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path DiskStorage::blob_path(const BlobKey& key) const {
  return root_ / ("ep" + std::to_string(key.epoch)) /
         ("rank" + std::to_string(key.rank)) / (key.section + ".blob");
}

void DiskStorage::put(const BlobKey& key, const Bytes& data) {
  const auto path = blob_path(key);
  {
    std::lock_guard lock(mu_);
    std::filesystem::create_directories(path.parent_path());
  }
  const auto t0 = Clock::now();
  // Write to a temp name then rename, so a torn write never looks valid.
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw CorruptionError("cannot open " + tmp + " for write");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) throw CorruptionError("short write to " + tmp);
  }
  std::filesystem::rename(tmp, path);
  if (throttle_ > 0 && !data.empty()) {
    const double secs = static_cast<double>(data.size()) /
                        static_cast<double>(throttle_);
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  }
  // Accounted only after the rename: a failed write (disk full, torn tmp)
  // must never show up as stored bytes.
  std::lock_guard lock(mu_);
  account_put(written_, per_rank_, key.rank, data.size());
  per_rank_[key.rank].write_ns += ns_since(t0);
}

std::optional<Bytes> DiskStorage::get(const BlobKey& key) const {
  const auto path = blob_path(key);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw CorruptionError("short read from " + path.string());
  return data;
}

void DiskStorage::commit(int epoch) {
  const auto tmp = root_ / "COMMIT.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << epoch << "\n";
  }
  std::filesystem::rename(tmp, root_ / "COMMIT");
}

std::optional<int> DiskStorage::committed_epoch() const {
  std::ifstream in(root_ / "COMMIT");
  if (!in) return std::nullopt;
  int epoch = -1;
  in >> epoch;
  if (!in) return std::nullopt;
  return epoch;
}

void DiskStorage::drop_epoch(int epoch) {
  std::error_code ec;
  std::filesystem::remove_all(root_ / ("ep" + std::to_string(epoch)), ec);
}

std::vector<int> DiskStorage::list_epochs() const {
  std::vector<int> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (!entry.is_directory(ec)) continue;
    const auto name = entry.path().filename().string();
    if (name.rfind("ep", 0) != 0) continue;
    // Only an exactly "ep<number>" directory is an epoch: a partial parse
    // would misattribute foreign directories like "ep3-backup" (and a
    // stray "ep3" file is excluded by the directory check above).
    int epoch = 0;
    const char* first = name.data() + 2;
    const char* last = name.data() + name.size();
    const auto [ptr, err] = std::from_chars(first, last, epoch);
    if (err != std::errc{} || ptr != last) continue;
    epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

std::uint64_t DiskStorage::total_bytes() const {
  std::uint64_t n = 0;
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(root_, ec);
       it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file(ec)) n += it->file_size(ec);
  }
  return n;
}

std::uint64_t DiskStorage::bytes_written() const {
  std::lock_guard lock(mu_);
  return written_;
}

std::vector<LaneStats> DiskStorage::lane_stats() const {
  std::lock_guard lock(mu_);
  return flatten(per_rank_);
}

void DiskStorage::wipe_rank(int rank) {
  // Every epoch directory loses its rank<r> subtree; the COMMIT marker is
  // global and survives (the commit record lives on, the node's data does
  // not -- exactly the failure the replica tier reconstructs from).
  std::error_code ec;
  const std::string dir = "rank" + std::to_string(rank);
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (!entry.is_directory(ec)) continue;
    const auto name = entry.path().filename().string();
    if (name.rfind("ep", 0) != 0) continue;
    std::filesystem::remove_all(entry.path() / dir, ec);
  }
}

}  // namespace c3::util
