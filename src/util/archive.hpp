// Binary serialization used for checkpoints, message logs, piggyback
// headers and control messages.
//
// `Writer` appends little-endian primitives / strings / vectors to a byte
// buffer; `Reader` consumes them, throwing CorruptionError on underflow so a
// truncated checkpoint never silently yields garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace c3::util {

using Bytes = std::vector<std::byte>;

/// Append-only binary encoder.
class Writer {
 public:
  Writer() = default;

  /// Pre-size the underlying buffer (exact encodings avoid regrowth).
  explicit Writer(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  /// Ensure capacity for `additional` more bytes beyond the current size.
  void reserve(std::size_t additional) { buf_.reserve(buf_.size() + additional); }

  /// Write a trivially-copyable scalar (integers, floats, enums, bool).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Write a length-prefixed string.
  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  /// Write a length-prefixed raw byte span.
  void put_bytes(std::span<const std::byte> b) {
    put<std::uint64_t>(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Write a length-prefixed vector of trivially-copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  /// Append raw bytes with no length prefix (caller knows the framing).
  void put_raw(std::span<const std::byte> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consuming binary decoder over a borrowed byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    auto n = get<std::uint64_t>();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes get_bytes() {
    auto n = get<std::uint64_t>();
    need(n);
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    auto n = get<std::uint64_t>();
    // Divide instead of multiplying: n * sizeof(T) can wrap for a corrupt
    // length prefix, which would slip past need() into a huge memcpy.
    if (n > remaining() / sizeof(T)) {
      throw CorruptionError("archive underflow: vector of " +
                            std::to_string(n) + " elements exceeds " +
                            std::to_string(remaining()) + " remaining bytes");
    }
    std::vector<T> v(n);
    if (n != 0) {
      // An empty vector's data() may be null, and memcpy's pointer
      // arguments are declared nonnull even for zero sizes.
      std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return v;
  }

  /// Borrow `n` raw bytes in place (no copy). The span aliases the Reader's
  /// underlying buffer and is only valid while that buffer lives.
  std::span<const std::byte> get_span(std::size_t n) {
    need(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Read `n` raw bytes with no length prefix.
  Bytes get_raw(std::size_t n) {
    need(n);
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool empty() const noexcept { return remaining() == 0; }
  std::size_t position() const noexcept { return pos_; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw CorruptionError("archive underflow: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(remaining()));
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Convenience: view any trivially-copyable value as bytes.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<const std::byte> as_bytes(const T& v) {
  return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
}

}  // namespace c3::util
