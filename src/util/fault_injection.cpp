#include "util/fault_injection.hpp"

#include "util/error.hpp"

namespace c3::util {

FaultInjectingStorage::FaultInjectingStorage(
    std::shared_ptr<StableStorage> inner, FaultPlan plan)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw UsageError("FaultInjectingStorage requires a backend");
  }
  arm(plan);
}

void FaultInjectingStorage::arm(FaultPlan plan) {
  std::lock_guard lock(mu_);
  plan_ = plan;
  armed_ = true;
  torn_fired_ = false;
  puts_.store(0, std::memory_order_relaxed);
}

void FaultInjectingStorage::disarm() {
  std::lock_guard lock(mu_);
  plan_ = FaultPlan{};
  armed_ = false;
  torn_fired_ = false;
  puts_.store(0, std::memory_order_relaxed);
}

FaultInjectingStorage::Action FaultInjectingStorage::decide(
    const BlobKey& key) {
  std::lock_guard lock(mu_);
  if (!armed_) {
    puts_.fetch_add(1, std::memory_order_relaxed);
    return Action::kForward;
  }
  if (plan_.torn_write_rank >= 0 && key.rank == plan_.torn_write_rank &&
      !torn_fired_) {
    torn_fired_ = true;
    // The tear does forward a (truncated) put to the backend; count it so
    // puts_observed() and a combined fail_after_puts plan stay exact.
    puts_.fetch_add(1, std::memory_order_relaxed);
    return Action::kTear;
  }
  const auto done =
      static_cast<std::int64_t>(puts_.load(std::memory_order_relaxed));
  if (plan_.fail_after_puts >= 0 && done >= plan_.fail_after_puts) {
    return Action::kFail;
  }
  puts_.fetch_add(1, std::memory_order_relaxed);
  return Action::kForward;
}

void FaultInjectingStorage::wipe_on_fault() {
  int rank = -1;
  {
    std::lock_guard lock(mu_);
    rank = plan_.wipe_rank_on_fault;
  }
  if (rank >= 0) inner_->wipe_rank(rank);
}

void FaultInjectingStorage::put(const BlobKey& key, const Bytes& data) {
  switch (decide(key)) {
    case Action::kForward:
      inner_->put(key, data);
      return;
    case Action::kFail:
      wipe_on_fault();
      throw InjectedFault("injected crash before put of rank " +
                          std::to_string(key.rank) + " '" + key.section +
                          "'");
    case Action::kTear: {
      // The crash lands mid-write: a truncated prefix survives on the
      // backend under the real key, then the process "dies". A tear is by
      // definition incomplete, so at least the final byte is always lost
      // no matter how large torn_keep_bytes is.
      const std::size_t keep =
          std::min(plan_.torn_keep_bytes,
                   data.empty() ? std::size_t{0} : data.size() - 1);
      inner_->put(key, Bytes(data.begin(), data.begin() + keep));
      wipe_on_fault();
      throw InjectedFault("injected torn write at rank " +
                          std::to_string(key.rank) + " '" + key.section +
                          "' (" + std::to_string(keep) + " of " +
                          std::to_string(data.size()) + " bytes kept)");
    }
  }
}

void FaultInjectingStorage::put(const BlobKey& key, Bytes&& data) {
  // Route through the copying overload: fault decisions need the bytes
  // after a potential tear, and test blobs are small.
  put(key, static_cast<const Bytes&>(data));
}

std::optional<Bytes> FaultInjectingStorage::get(const BlobKey& key) const {
  return inner_->get(key);
}

void FaultInjectingStorage::commit(int epoch) {
  bool fire = false;
  {
    std::lock_guard lock(mu_);
    fire = armed_ && plan_.fail_on_commit;
  }
  if (fire) {
    wipe_on_fault();
    throw InjectedFault("injected crash at commit of epoch " +
                        std::to_string(epoch));
  }
  inner_->commit(epoch);
}

std::optional<int> FaultInjectingStorage::committed_epoch() const {
  return inner_->committed_epoch();
}

void FaultInjectingStorage::drop_epoch(int epoch) {
  inner_->drop_epoch(epoch);
}

std::vector<int> FaultInjectingStorage::list_epochs() const {
  return inner_->list_epochs();
}

std::uint64_t FaultInjectingStorage::total_bytes() const {
  return inner_->total_bytes();
}

std::uint64_t FaultInjectingStorage::bytes_written() const {
  return inner_->bytes_written();
}

StorageStats FaultInjectingStorage::storage_stats() const {
  return inner_->storage_stats();
}

std::vector<LaneStats> FaultInjectingStorage::lane_stats() const {
  return inner_->lane_stats();
}

void FaultInjectingStorage::wipe_rank(int rank) { inner_->wipe_rank(rank); }

}  // namespace c3::util
