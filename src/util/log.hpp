// Minimal leveled diagnostic logging (not the protocol's message log --
// that lives in core/logrec.hpp). Disabled below the configured level with
// near-zero cost; output is line-atomic across rank threads.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace c3::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide minimum level; default kWarn so tests stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (thread-safe). Prefer the C3_LOG macro below.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { log_line(level_, ss_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace c3::util

/// Usage: C3_LOG(kDebug) << "rank " << r << " took checkpoint " << e;
#define C3_LOG(level)                                            \
  if (::c3::util::LogLevel::level < ::c3::util::log_level()) {   \
  } else                                                         \
    ::c3::util::detail::LineBuilder(::c3::util::LogLevel::level)
