// CRC-32 (IEEE 802.3 polynomial) used to validate checkpoint sections and
// message logs on read-back. Table-driven, no dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace c3::util {

/// Compute the CRC-32 of `data`, continuing from `seed` (pass the previous
/// result to checksum data in chunks; start with the default seed).
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

}  // namespace c3::util
