#include "util/crc32.hpp"

#include <array>
#include <cstring>

namespace c3::util {
namespace {

// Slice-by-8 tables: table[0] is the classic byte-wise CRC-32 table for
// the reflected 0xEDB88320 polynomial; table[s][b] advances a byte seen
// s positions earlier through s extra zero bytes. Processing 8 input
// bytes per step quadruples throughput over the byte-at-a-time loop,
// which matters because the replica tier CRCs every parity contribution
// on the commit path.
std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (int s = 1; s < 8; ++s) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
    }
  }
  return t;
}

const std::array<std::array<std::uint32_t, 256>, 8>& tables() {
  static const auto t = make_tables();
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  const auto& t = tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ static_cast<std::uint8_t>(*p++)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace c3::util
