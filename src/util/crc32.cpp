#include "util/crc32.hpp"

#include <array>

namespace c3::util {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  const auto& t = table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = t[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace c3::util
