#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace c3::util {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mu;
const char* name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[c3 %s] %s\n", name(level), msg.c_str());
}

}  // namespace c3::util
