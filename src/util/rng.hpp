// Deterministic pseudo-random number generation.
//
// Every rank derives its generator from (job seed, rank), so a failure-free
// run and a run that recovers from a checkpoint see the same stream --
// *provided* the protocol layer replays logged non-deterministic draws (the
// paper's "non-deterministic event" log). The generator is splitmix64-seeded
// xoshiro256**, chosen for statistical quality with trivial state
// serialization (4 u64 words, saved inside checkpoints).
#pragma once

#include <cstdint>

namespace c3::util {

/// splitmix64 step; used for seeding and cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with serializable state.
class Rng {
 public:
  Rng() : Rng(0x9E3779B97F4A7C15ull) {}
  explicit Rng(std::uint64_t seed);

  /// Derive an independent stream, e.g. `Rng(seed).fork(rank)`.
  Rng fork(std::uint64_t stream) const;

  std::uint64_t next_u64();
  /// Uniform in [0, bound) without modulo bias for small bounds.
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double next_double();
  /// Bernoulli with probability p.
  bool next_bool(double p);

  struct State {
    std::uint64_t s[4];
  };
  State state() const noexcept { return st_; }
  void set_state(const State& s) noexcept { st_ = s; }

 private:
  State st_{};
};

}  // namespace c3::util
