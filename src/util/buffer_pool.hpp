// Pooled message buffers for the zero-copy send/receive path.
//
// Every in-flight message lives in one `Bytes` buffer from sender framing to
// final delivery; the buffer is acquired from a size-classed free-list pool
// and released back once the payload has been copied into the application's
// receive buffer. In steady state no per-message heap allocation happens:
// the pool recycles buffers between a rank's sends and the buffers released
// by its receives.
//
// `MsgBuffer` frames one outgoing message: a fixed headroom prefix (the
// piggyback header is encoded in place, no separate Writer buffer) followed
// by the payload bytes. `take()` surrenders the framed buffer so it can be
// *moved* into a `net::Packet` without copying.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "util/archive.hpp"

namespace c3::util {

/// Thread-safe size-classed free list of `Bytes` buffers.
///
/// Classes are powers of two from kMinClassBytes to kMaxClassBytes; a
/// request is served from the smallest class that fits. Requests larger
/// than kMaxClassBytes are allocated exactly and never pooled (huge
/// one-off messages should not pin memory). Each class keeps at most
/// kMaxFreePerClass buffers; surplus releases are discarded.
///
/// The pool is sharded per size class: each class has its own cache-line-
/// aligned mutex + free list, so threads working on different sizes (e.g.
/// rank threads recycling small message frames while the checkpoint writer
/// thread recycles megabyte compression buffers) never contend on a lock.
class BufferPool {
 public:
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxClassBytes = std::size_t{1} << 20;
  static constexpr std::size_t kMaxFreePerClass = 64;

  /// Counter snapshot (relaxed atomics; approximate under concurrency).
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;      ///< served by recycling a pooled buffer
    std::uint64_t allocs = 0;    ///< served by a fresh heap allocation
    /// Subset of `allocs`: requests above kMaxClassBytes, which bypass the
    /// size classes entirely (allocated exactly, never pooled). The
    /// segmented large-message path exists to keep this at zero; a growing
    /// count means some caller still ships whole oversized buffers.
    std::uint64_t oversize_allocs = 0;
    std::uint64_t releases = 0;  ///< buffers returned to the pool
    std::uint64_t discards = 0;  ///< released buffers the pool refused
  };

  BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with size() == n and capacity >= class_capacity(n). Sets
  /// *fresh to true when the request missed the pool (heap allocation).
  Bytes acquire(std::size_t n, bool* fresh = nullptr);

  /// Return a buffer for reuse. Small, oversized or surplus buffers are
  /// simply freed.
  void release(Bytes&& b) noexcept;

  Stats stats() const noexcept;

  /// Total buffers currently held on free lists (test/diagnostic hook).
  std::size_t free_count() const;

  /// The pooled capacity a request of n bytes is rounded up to: the
  /// smallest power of two >= max(n, kMinClassBytes), or exactly n when
  /// n > kMaxClassBytes (unpooled).
  static std::size_t class_capacity(std::size_t n) noexcept;

 private:
  static constexpr int kNumClasses = 15;  // 64B, 128B, ..., 1MiB

  /// Index of the class whose capacity is exactly `cap`, or -1.
  static int class_index(std::size_t cap) noexcept;

  /// One size class: its own lock and free list, padded to a cache line so
  /// adjacent classes never false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<Bytes> free;
  };
  Shard shards_[kNumClasses];
  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> oversize_allocs_{0};
  std::atomic<std::uint64_t> releases_{0};
  std::atomic<std::uint64_t> discards_{0};
};

/// One framed outgoing message: `headroom` header bytes, then the payload.
class MsgBuffer {
 public:
  MsgBuffer() = default;

  /// Acquire a framed buffer of headroom + payload_size bytes from `pool`.
  MsgBuffer(BufferPool& pool, std::size_t headroom, std::size_t payload_size,
            bool* fresh = nullptr)
      : buf_(pool.acquire(headroom + payload_size, fresh)),
        headroom_(headroom) {}

  /// Adopt an already-acquired buffer (e.g. from Fabric::acquire_buffer)
  /// whose first `headroom` bytes are the header region.
  MsgBuffer(Bytes buf, std::size_t headroom)
      : buf_(std::move(buf)), headroom_(headroom) {}

  std::size_t headroom() const noexcept { return headroom_; }
  std::size_t payload_size() const noexcept { return buf_.size() - headroom_; }
  std::size_t size() const noexcept { return buf_.size(); }

  /// The header region (encode the piggyback directly into this).
  std::span<std::byte> header() noexcept {
    return std::span(buf_).first(headroom_);
  }

  /// The payload region, immediately after the header.
  std::span<std::byte> payload() noexcept {
    return std::span(buf_).subspan(headroom_);
  }

  /// Surrender the framed buffer (header + payload) for a move into a
  /// packet. The MsgBuffer is empty afterwards.
  Bytes take() noexcept {
    headroom_ = 0;
    return std::move(buf_);
  }

 private:
  Bytes buf_;
  std::size_t headroom_ = 0;
};

}  // namespace c3::util
