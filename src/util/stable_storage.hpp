// Stable storage abstraction for checkpoints and message logs.
//
// The protocol writes, per rank and per epoch, named blobs: "state" (the
// local checkpoint: application state, early-message IDs, pending-request
// table, MPI call records, protocol counters) and "log" (the late-message /
// non-determinism / collective-result event log, written at finalizeLog).
// A global checkpoint becomes the recovery point only when the initiator
// *commits* it -- mirroring the paper's "records on stable storage that the
// checkpoint that was just created is the one to be used for recovery".
//
// Two backends:
//   MemoryStorage -- lock-protected map; used by tests and most benchmarks.
//   DiskStorage   -- one file per blob under a root directory, with an
//                    atomically renamed COMMIT marker; optional write
//                    bandwidth throttle to model the paper's 40 MB/s local
//                    disks.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/archive.hpp"

namespace c3::util {

/// Identifies one blob within a global checkpoint.
struct BlobKey {
  int epoch = 0;        ///< global checkpoint number the blob belongs to
  int rank = 0;         ///< owning rank
  std::string section;  ///< e.g. "state", "log", "early", "mpi-calls"

  auto operator<=>(const BlobKey&) const = default;
};

/// One writer lane's (or, for a plain backend, one rank's "per-node
/// disk") slice of the pipeline accounting. Plain backends key lanes by
/// rank -- the bandwidth throttle models one independent local disk per
/// node -- while the ckptstore::CheckpointStore wrapper keys them by
/// writer lane (rank mod lane count).
struct LaneStats {
  std::uint64_t puts = 0;          ///< blobs written through this lane
  std::uint64_t raw_bytes = 0;     ///< bytes handed to this lane's put()
  std::uint64_t stored_bytes = 0;  ///< bytes physically written by the lane
  std::uint64_t write_ns = 0;      ///< lane time encoding + writing
  std::uint64_t stall_ns = 0;      ///< producer time blocked on this lane
};

/// Storage-pipeline accounting. Plain backends report raw == stored; the
/// ckptstore::CheckpointStore wrapper separates what the protocol handed to
/// put() from what physically reached the backend after delta encoding and
/// compression, and accounts the time ranks spent stalled on the pipeline.
struct StorageStats {
  std::uint64_t raw_bytes = 0;     ///< bytes handed to put()
  std::uint64_t stored_bytes = 0;  ///< bytes physically written to the backend
  std::uint64_t inline_chunks = 0; ///< chunks whose data was (re)written
  std::uint64_t ref_chunks = 0;    ///< chunks served by a delta reference
  std::uint64_t put_stall_ns = 0;  ///< rank time blocked inside put()
  std::uint64_t commit_stall_ns = 0;  ///< time draining the queue at commit
  /// Contended acquisitions of per-lane metadata shard locks (delta index):
  /// the convoying lane of the 64-256-rank scaling claim -- near zero once
  /// ref/index decisions are partitioned per rank. 0 for plain backends.
  std::uint64_t meta_lock_waits = 0;
  /// Contended acquisitions of the short global GC lock (cross-rank
  /// retention decisions). 0 for plain backends.
  std::uint64_t gc_lock_waits = 0;
  // Replica-tier accounting (0 unless a replica::ReplicatedStorage is in
  // the stack; CheckpointStore merges its inner tier's values upward).
  /// Parity contribution bytes handed to the replica lane (wire mode) or
  /// folded in-process (loopback).
  std::uint64_t parity_bytes_sent = 0;
  /// Contribution bytes folded into parity shards at their owners.
  std::uint64_t parity_bytes_received = 0;
  /// Blobs reconstructed from parity on a backend read miss.
  std::uint64_t reconstruct_reads = 0;
  /// Parity acks still outstanding when a commit entered its wait.
  std::uint64_t parity_acks_waited = 0;
  /// Fraction of chunks that did not need rewriting (0 when no chunks yet).
  double delta_hit_rate() const {
    const auto total = inline_chunks + ref_chunks;
    return total == 0 ? 0.0
                      : static_cast<double>(ref_chunks) /
                            static_cast<double>(total);
  }
};

/// Interface shared by all storage backends. Thread-safe.
class StableStorage {
 public:
  virtual ~StableStorage() = default;

  /// Durably store `data` under `key`, replacing any previous blob.
  virtual void put(const BlobKey& key, const Bytes& data) = 0;

  /// Move-in overload: pipelined backends take ownership of the blob so the
  /// caller does not keep a copy alive while the write drains. Defaults to
  /// the copying put().
  virtual void put(const BlobKey& key, Bytes&& data) { put(key, data); }

  /// Retrieve a blob; nullopt if absent.
  virtual std::optional<Bytes> get(const BlobKey& key) const = 0;

  /// Mark `epoch` as the committed recovery point (atomic).
  virtual void commit(int epoch) = 0;

  /// The last committed epoch, or nullopt if no checkpoint committed yet.
  virtual std::optional<int> committed_epoch() const = 0;

  /// Drop all blobs belonging to `epoch` (e.g. superseded checkpoints).
  virtual void drop_epoch(int epoch) = 0;

  /// Epochs that currently hold at least one blob, ascending. Used by the
  /// ckptstore startup retention sweep: in-memory drop bookkeeping is lost
  /// in a crash, so a restart enumerates what the backend actually holds
  /// and drops what the one-hop reference rule proves unreachable.
  virtual std::vector<int> list_epochs() const = 0;

  /// Total bytes currently stored (for tests / size accounting).
  virtual std::uint64_t total_bytes() const = 0;

  /// Bytes written over the lifetime of this object (monotonic; includes
  /// overwritten blobs). Used by benchmarks to report checkpoint volume.
  virtual std::uint64_t bytes_written() const = 0;

  /// Drop every blob this backend holds for `rank` -- all epochs, all
  /// sections, commit markers untouched -- modelling the loss of one
  /// node's local storage (the replica tier reconstructs from peers).
  /// Backends that cannot express per-rank loss refuse.
  virtual void wipe_rank(int rank) {
    throw UsageError("this storage backend cannot wipe rank " +
                     std::to_string(rank));
  }

  /// Pipeline accounting; plain backends report raw == stored == written.
  virtual StorageStats storage_stats() const {
    StorageStats s;
    s.raw_bytes = s.stored_bytes = bytes_written();
    return s;
  }

  /// Per-lane slices of the accounting (index = lane, or rank for plain
  /// backends; ranks never written are zero-filled). Empty when the
  /// backend does not track lanes.
  virtual std::vector<LaneStats> lane_stats() const { return {}; }
};

/// In-memory backend. An optional write-bandwidth throttle models the
/// paper's 40 MB/s local checkpoint disks without performing real I/O
/// (each put() sleeps for size/bandwidth).
class MemoryStorage final : public StableStorage {
 public:
  MemoryStorage() = default;
  explicit MemoryStorage(std::uint64_t throttle_bytes_per_sec)
      : throttle_(throttle_bytes_per_sec) {}

  void put(const BlobKey& key, const Bytes& data) override;
  void put(const BlobKey& key, Bytes&& data) override;
  std::optional<Bytes> get(const BlobKey& key) const override;
  void commit(int epoch) override;
  std::optional<int> committed_epoch() const override;
  void drop_epoch(int epoch) override;
  std::vector<int> list_epochs() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t bytes_written() const override;
  std::vector<LaneStats> lane_stats() const override;
  void wipe_rank(int rank) override;

 private:
  /// Sleep out the modelled write and account it to `rank`'s disk.
  void throttle_sleep(int rank, std::size_t size) const;

  mutable std::mutex mu_;
  std::map<BlobKey, Bytes> blobs_;
  std::optional<int> committed_;
  std::uint64_t written_ = 0;
  std::uint64_t throttle_ = 0;
  /// Per-rank "local disk" accounting (throttle sleeps happen outside mu_,
  /// so write_ns is folded in under mu_ afterwards -- thread-safe even
  /// with one writer lane per rank hammering concurrently).
  mutable std::map<int, LaneStats> per_rank_;
};

/// Directory-backed backend. Layout:
///   root/ep<epoch>/rank<rank>/<section>.blob
///   root/COMMIT            (contains the committed epoch number)
class DiskStorage final : public StableStorage {
 public:
  /// @param throttle_bytes_per_sec 0 = unthrottled; otherwise each put()
  ///        sleeps to emulate the given write bandwidth.
  explicit DiskStorage(std::filesystem::path root,
                       std::uint64_t throttle_bytes_per_sec = 0);

  void put(const BlobKey& key, const Bytes& data) override;
  std::optional<Bytes> get(const BlobKey& key) const override;
  void commit(int epoch) override;
  std::optional<int> committed_epoch() const override;
  void drop_epoch(int epoch) override;
  std::vector<int> list_epochs() const override;
  std::uint64_t total_bytes() const override;
  std::uint64_t bytes_written() const override;
  std::vector<LaneStats> lane_stats() const override;
  void wipe_rank(int rank) override;

 private:
  std::filesystem::path blob_path(const BlobKey& key) const;

  std::filesystem::path root_;
  std::uint64_t throttle_;
  mutable std::mutex mu_;
  std::uint64_t written_ = 0;
  mutable std::map<int, LaneStats> per_rank_;
};

}  // namespace c3::util
