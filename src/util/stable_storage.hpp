// Stable storage abstraction for checkpoints and message logs.
//
// The protocol writes, per rank and per epoch, named blobs: "state" (the
// local checkpoint: application state, early-message IDs, pending-request
// table, MPI call records, protocol counters) and "log" (the late-message /
// non-determinism / collective-result event log, written at finalizeLog).
// A global checkpoint becomes the recovery point only when the initiator
// *commits* it -- mirroring the paper's "records on stable storage that the
// checkpoint that was just created is the one to be used for recovery".
//
// Two backends:
//   MemoryStorage -- lock-protected map; used by tests and most benchmarks.
//   DiskStorage   -- one file per blob under a root directory, with an
//                    atomically renamed COMMIT marker; optional write
//                    bandwidth throttle to model the paper's 40 MB/s local
//                    disks.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/archive.hpp"

namespace c3::util {

/// Identifies one blob within a global checkpoint.
struct BlobKey {
  int epoch = 0;        ///< global checkpoint number the blob belongs to
  int rank = 0;         ///< owning rank
  std::string section;  ///< e.g. "state", "log", "early", "mpi-calls"

  auto operator<=>(const BlobKey&) const = default;
};

/// Interface shared by all storage backends. Thread-safe.
class StableStorage {
 public:
  virtual ~StableStorage() = default;

  /// Durably store `data` under `key`, replacing any previous blob.
  virtual void put(const BlobKey& key, const Bytes& data) = 0;

  /// Retrieve a blob; nullopt if absent.
  virtual std::optional<Bytes> get(const BlobKey& key) const = 0;

  /// Mark `epoch` as the committed recovery point (atomic).
  virtual void commit(int epoch) = 0;

  /// The last committed epoch, or nullopt if no checkpoint committed yet.
  virtual std::optional<int> committed_epoch() const = 0;

  /// Drop all blobs belonging to `epoch` (e.g. superseded checkpoints).
  virtual void drop_epoch(int epoch) = 0;

  /// Total bytes currently stored (for tests / size accounting).
  virtual std::uint64_t total_bytes() const = 0;

  /// Bytes written over the lifetime of this object (monotonic; includes
  /// overwritten blobs). Used by benchmarks to report checkpoint volume.
  virtual std::uint64_t bytes_written() const = 0;
};

/// In-memory backend. An optional write-bandwidth throttle models the
/// paper's 40 MB/s local checkpoint disks without performing real I/O
/// (each put() sleeps for size/bandwidth).
class MemoryStorage final : public StableStorage {
 public:
  MemoryStorage() = default;
  explicit MemoryStorage(std::uint64_t throttle_bytes_per_sec)
      : throttle_(throttle_bytes_per_sec) {}

  void put(const BlobKey& key, const Bytes& data) override;
  std::optional<Bytes> get(const BlobKey& key) const override;
  void commit(int epoch) override;
  std::optional<int> committed_epoch() const override;
  void drop_epoch(int epoch) override;
  std::uint64_t total_bytes() const override;
  std::uint64_t bytes_written() const override;

 private:
  mutable std::mutex mu_;
  std::map<BlobKey, Bytes> blobs_;
  std::optional<int> committed_;
  std::uint64_t written_ = 0;
  std::uint64_t throttle_ = 0;
};

/// Directory-backed backend. Layout:
///   root/ep<epoch>/rank<rank>/<section>.blob
///   root/COMMIT            (contains the committed epoch number)
class DiskStorage final : public StableStorage {
 public:
  /// @param throttle_bytes_per_sec 0 = unthrottled; otherwise each put()
  ///        sleeps to emulate the given write bandwidth.
  explicit DiskStorage(std::filesystem::path root,
                       std::uint64_t throttle_bytes_per_sec = 0);

  void put(const BlobKey& key, const Bytes& data) override;
  std::optional<Bytes> get(const BlobKey& key) const override;
  void commit(int epoch) override;
  std::optional<int> committed_epoch() const override;
  void drop_epoch(int epoch) override;
  std::uint64_t total_bytes() const override;
  std::uint64_t bytes_written() const override;

 private:
  std::filesystem::path blob_path(const BlobKey& key) const;

  std::filesystem::path root_;
  std::uint64_t throttle_;
  mutable std::mutex mu_;
  std::uint64_t written_ = 0;
};

}  // namespace c3::util
