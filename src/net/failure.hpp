// Stopping-failure injection and detection.
//
// The paper's fault model: a faulty process hangs and stops responding
// (no Byzantine behaviour), and a distributed failure detector notices.
// In this single-process simulation, an injected failure makes the victim
// rank throw StoppingFailure at a chosen trigger point; the detector (the
// job runner observing the fabric abort flag) then tears the job down and
// restarts every rank from the last committed global checkpoint -- exactly
// the paper's recovery semantics, where all processes roll back together.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

namespace c3::net {

/// Where a failure fires: after the victim has performed `trigger_events`
/// protocol-layer operations (sends, receives, collectives, checkpoints).
struct FailureSpec {
  int victim_rank = 0;
  std::uint64_t trigger_events = 0;
};

/// Shared between the job runner and the victim's protocol layer.
/// One-shot: fires at most once per process lifetime (recovery runs must
/// not re-kill the victim at the same event count).
class FailureInjector {
 public:
  FailureInjector() = default;
  explicit FailureInjector(FailureSpec spec) : spec_(spec) {}

  /// Called by the protocol layer on each event at `rank`. Returns true
  /// exactly once, when the victim reaches its trigger point.
  bool on_event(int rank) {
    if (!spec_ || fired_.load(std::memory_order_acquire)) return false;
    if (rank != spec_->victim_rank) return false;
    const auto n = count_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (n >= spec_->trigger_events) {
      bool expected = false;
      return fired_.compare_exchange_strong(expected, true);
    }
    return false;
  }

  bool fired() const noexcept { return fired_.load(std::memory_order_acquire); }
  const std::optional<FailureSpec>& spec() const noexcept { return spec_; }

 private:
  std::optional<FailureSpec> spec_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<bool> fired_{false};
};

}  // namespace c3::net
