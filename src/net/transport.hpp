// Reliable in-memory transport connecting simulated ranks.
//
// Each rank owns an Inbox. Senders call Fabric::send() from their own
// thread; the packet is staged in the destination inbox and becomes visible
// ("released") according to the inbox's DeliveryPolicy. Per-source FIFO is
// always preserved; policies only control cross-source interleaving.
//
// The Fabric also carries the job-wide abort signal: when a stopping failure
// is injected, every blocked rank must wake up and unwind so the job runner
// can roll back to the last committed global checkpoint.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/delivery.hpp"
#include "net/packet.hpp"
#include "util/buffer_pool.hpp"

namespace c3::net {

/// Aggregate traffic statistics (approximate; relaxed atomics).
struct FabricStats {
  std::atomic<std::uint64_t> packets{0};
  std::atomic<std::uint64_t> payload_bytes{0};
  /// Fresh heap allocations for message buffers (pool misses). In steady
  /// state this stops growing: sends recycle the buffers receives release.
  std::atomic<std::uint64_t> allocs{0};
  /// Bytes memcpy'd from an already-framed wire buffer into another buffer.
  /// The framing capture of user data into a fresh message buffer (inherent
  /// to MPI buffered-send semantics) is not counted; the zero-copy path's
  /// invariant is exactly one counted copy per delivered message -- the
  /// final header-strip memcpy into the application's receive buffer.
  std::atomic<std::uint64_t> copied_bytes{0};
};

/// Per-rank receive queue with policy-driven release of staged packets.
class Inbox {
 public:
  Inbox(int owner, std::unique_ptr<DeliveryPolicy> policy);

  /// Called from sender threads.
  void deliver(Packet p);

  /// Move all currently released packets out in one container swap
  /// (receiver thread only). Counts as an inbox event: held streams make
  /// progress on every call.
  std::vector<Packet> drain();

  /// Swap-based drain into a caller-owned container: `out` is cleared and
  /// exchanged with the released queue, so the capacity of both vectors is
  /// recycled between calls (no per-drain allocation in steady state).
  void drain(std::vector<Packet>& out);

  /// Block until a released packet may be available, the timeout elapses,
  /// or `stop` becomes true. Returns immediately if something is released.
  void wait(std::chrono::microseconds timeout, const std::atomic<bool>& stop);

  /// Wake any waiter (used on abort).
  void interrupt();

 private:
  struct Stream {
    std::deque<Packet> staged;
    std::uint32_t hold = 0;  ///< events left before the head is released
  };

  // Pre: mu_ held. Decrement holds and move eligible packets to released_.
  void on_event_locked(int arriving_src);

  int owner_;
  std::unique_ptr<DeliveryPolicy> policy_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, Stream> streams_;
  std::vector<Packet> released_;
  int waiters_ = 0;  ///< receivers parked in wait() (guarded by mu_)
};

/// The whole interconnect: N inboxes plus the abort signal.
class Fabric {
 public:
  Fabric(int nranks, const DeliveryPolicy& policy_prototype);

  int size() const noexcept { return static_cast<int>(inboxes_.size()); }

  /// Reliable, asynchronous delivery (never blocks, never drops).
  void send(Packet p);

  Inbox& inbox(int rank) { return *inboxes_.at(static_cast<std::size_t>(rank)); }

  /// Signal job teardown; wakes every blocked receiver.
  void abort();
  bool aborted() const noexcept { return abort_.load(std::memory_order_acquire); }
  const std::atomic<bool>& abort_flag() const noexcept { return abort_; }

  const FabricStats& stats() const noexcept { return stats_; }

  // ------------------------------------------------ pooled message buffers
  /// Acquire a message buffer of `n` bytes from the fabric-wide pool
  /// (counts a fresh allocation in stats().allocs on a pool miss).
  util::Bytes acquire_buffer(std::size_t n) {
    bool fresh = false;
    util::Bytes b = pool_.acquire(n, &fresh);
    if (fresh) stats_.allocs.fetch_add(1, std::memory_order_relaxed);
    return b;
  }

  /// Return a delivered payload's buffer for reuse by later sends.
  void release_buffer(util::Bytes&& b) noexcept {
    pool_.release(std::move(b));
  }

  /// Record a post-framing payload copy (see FabricStats::copied_bytes).
  void count_copied(std::size_t n) noexcept {
    stats_.copied_bytes.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::atomic<bool> abort_{false};
  FabricStats stats_;
  util::BufferPool pool_;
};

}  // namespace c3::net
