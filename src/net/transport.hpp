// Reliable in-memory transport connecting simulated ranks.
//
// Each rank owns an Inbox. Senders call Fabric::send() from their own
// thread; the packet is staged in the destination inbox and becomes visible
// ("released") according to the inbox's DeliveryPolicy. Per-source FIFO is
// always preserved; policies only control cross-source interleaving.
//
// The inbox is sharded per source: each (src -> dst) stream owns a
// cache-line-padded shard with its own lock and staged queue, so delivery
// is O(1) -- one uncontended shard lock, one atomic pending increment, one
// conditional wakeup -- regardless of how many sources talk to the rank.
// Shards with staged packets self-register on a lock-free active list
// (Treiber stack of shard indices), so drain() visits only streams that
// actually hold traffic, not every source that ever sent. Hold aging for
// reordering policies happens lazily at drain time against a global event
// counter instead of touching every stream on every delivery.
//
// The Fabric also carries the job-wide abort signal: when a stopping failure
// is injected, every blocked rank must wake up and unwind so the job runner
// can roll back to the last committed global checkpoint.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "net/delivery.hpp"
#include "net/packet.hpp"
#include "util/buffer_pool.hpp"

namespace c3::net {

/// Aggregate traffic statistics (approximate; relaxed atomics).
struct FabricStats {
  std::atomic<std::uint64_t> packets{0};
  std::atomic<std::uint64_t> payload_bytes{0};
  /// Fresh heap allocations for message buffers (pool misses). In steady
  /// state this stops growing: sends recycle the buffers receives release.
  std::atomic<std::uint64_t> allocs{0};
  /// Subset of `allocs`: buffer requests above the pool's largest size
  /// class, which are allocated exactly and never recycled. The segmented
  /// large-message path splits oversized sends into pooled fragments
  /// precisely so this stays at zero in steady state.
  std::atomic<std::uint64_t> oversize_allocs{0};
  /// Bytes memcpy'd from an already-framed wire buffer into another buffer.
  /// The framing capture of user data into a fresh message buffer (inherent
  /// to MPI buffered-send semantics) is not counted; the zero-copy path's
  /// invariant is exactly one counted copy per delivered message -- the
  /// final header-strip memcpy into the application's receive buffer.
  std::atomic<std::uint64_t> copied_bytes{0};
  /// Condition-variable notifies actually issued (a receiver was parked).
  /// A busy receiver polls and pays nothing; batched delivery collapses a
  /// whole packet vector into at most one wakeup per destination.
  std::atomic<std::uint64_t> wakeups{0};
  /// Shard-lock acquisitions that found the lock held (try_lock failed).
  /// The contention lane of the 64-256-rank scaling claim: with per-source
  /// shards this stays near zero where the single inbox mutex convoyed.
  std::atomic<std::uint64_t> lock_waits{0};
  /// Packet vectors handed to Fabric::send_batch.
  std::atomic<std::uint64_t> batches{0};
  /// Packets carried on a ContextClass::kReplica lane (erasure-coded
  /// checkpoint replication: parity contributions, acks, flush nudges).
  /// Subset of `packets`; lets tests assert the replica tier's traffic
  /// rides the pooled zero-copy path (allocs flat while these grow).
  std::atomic<std::uint64_t> replica_packets{0};
  /// Payload bytes of those packets (subset of `payload_bytes`).
  std::atomic<std::uint64_t> replica_bytes{0};
};

/// Per-rank receive queue with policy-driven release of staged packets.
class Inbox {
 public:
  /// `nsources` bounds Packet::src (one shard per possible source);
  /// `stats` may be null (standalone tests).
  Inbox(int owner, int nsources, const DeliveryPolicy& policy_prototype,
        FabricStats* stats);

  /// Called from sender threads. One shard lock, no cross-stream work.
  void deliver(Packet p);

  /// Deliver several packets bound for this inbox in one shot: packets
  /// from the same source share one shard-lock acquisition and the whole
  /// batch issues at most one receiver wakeup.
  void deliver_batch(std::span<Packet> batch);

  /// Move all currently released packets out in one container swap
  /// (receiver thread only). Counts as an inbox event: held streams make
  /// progress on every call.
  std::vector<Packet> drain();

  /// Drain into a caller-owned container: `out` is cleared and refilled,
  /// so its capacity is recycled between calls (no per-drain allocation in
  /// steady state). Receiver thread only.
  void drain(std::vector<Packet>& out);

  /// Block until a staged packet may be available, the timeout elapses,
  /// or `stop` becomes true. Returns immediately if something is staged.
  void wait(std::chrono::microseconds timeout, const std::atomic<bool>& stop);

  /// Wake any waiter (used on abort). Notifies while holding the wait
  /// lock, so a receiver between its predicate check and the actual park
  /// can never miss the signal and eat the full wait_for timeout.
  void interrupt();

 private:
  /// One (src -> this rank) stream. Padded so concurrent senders to the
  /// same inbox never false-share each other's shard state.
  struct alignas(64) Shard {
    std::mutex mu;
    /// Staged packets in arrival order; [head, size) are live. The vector
    /// is compacted when fully drained so capacity is recycled.
    std::vector<Packet> staged;
    std::size_t head = 0;
    /// Events left before the stream head is released (reorder policies).
    std::uint32_t hold = 0;
    /// Lazy aging bookkeeping: inbox events already applied to `hold`, and
    /// this shard's own deliveries (which never age their own stream).
    std::uint64_t aged_events = 0;
    std::uint64_t own_deliveries = 0;
    std::uint64_t own_at_age = 0;
    /// Per-stream policy fork (null when the policy is immediate).
    std::unique_ptr<DeliveryPolicy> policy;
    /// True while the shard index sits on the active list.
    std::atomic<bool> queued{false};
    /// Next shard index on the active list (-1 = end of list).
    std::atomic<int> next_active{-1};
  };

  /// Push shard `idx` onto the active list unless it is already on it.
  void activate(Shard& s, int idx);
  /// Move every releasable packet of shard `src` into `out` after applying
  /// lazy hold aging. Pre: shard mutex held. Returns packets moved.
  std::size_t collect_locked(int src, std::vector<Packet>& out);
  /// Notify a parked receiver (at most one per inbox).
  void wake();

  int owner_;
  bool immediate_;  ///< policy holds nothing: skip all hold bookkeeping
  std::unique_ptr<DeliveryPolicy> proto_;  ///< forked lazily per shard
  std::unique_ptr<Shard[]> shards_;
  int nsources_;
  FabricStats* stats_;

  /// Total staged-but-undrained packets (wait() predicate). seq_cst pairs
  /// with waiters_ below so a deliver and a parking receiver can never
  /// both miss each other.
  std::atomic<std::uint64_t> pending_{0};
  /// Global inbox event counter for lazy hold aging: one tick per
  /// delivered packet and one per drain attempt.
  std::atomic<std::uint64_t> events_{0};
  /// Head of the active-shard Treiber stack (-1 = empty).
  std::atomic<int> active_head_{-1};

  std::mutex wait_mu_;  ///< guards only the waiter park/unpark handshake
  std::condition_variable cv_;
  std::atomic<int> waiters_{0};
};

/// The whole interconnect: N inboxes plus the abort signal.
class Fabric {
 public:
  Fabric(int nranks, const DeliveryPolicy& policy_prototype);

  int size() const noexcept { return static_cast<int>(inboxes_.size()); }

  /// Reliable, asynchronous delivery (never blocks, never drops).
  void send(Packet p);

  /// Deliver a packet vector in one shot: packets are grouped by
  /// destination, each destination inbox takes its group under one batch
  /// delivery (one wakeup), and the vector's capacity is returned to the
  /// caller via the cleared argument. Per-(src,dst) order is the vector
  /// order, as if send() were called element by element.
  void send_batch(std::vector<Packet>& batch);

  Inbox& inbox(int rank) { return *inboxes_.at(static_cast<std::size_t>(rank)); }

  /// Signal job teardown; wakes every blocked receiver.
  void abort();
  bool aborted() const noexcept { return abort_.load(std::memory_order_acquire); }
  const std::atomic<bool>& abort_flag() const noexcept { return abort_; }

  const FabricStats& stats() const noexcept { return stats_; }

  // ------------------------------------------------ pooled message buffers
  /// Acquire a message buffer of `n` bytes from the fabric-wide pool
  /// (counts a fresh allocation in stats().allocs on a pool miss).
  util::Bytes acquire_buffer(std::size_t n) {
    bool fresh = false;
    util::Bytes b = pool_.acquire(n, &fresh);
    if (fresh) {
      stats_.allocs.fetch_add(1, std::memory_order_relaxed);
      if (n > util::BufferPool::kMaxClassBytes) {
        stats_.oversize_allocs.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return b;
  }

  /// Return a delivered payload's buffer for reuse by later sends.
  void release_buffer(util::Bytes&& b) noexcept {
    pool_.release(std::move(b));
  }

  /// Record a post-framing payload copy (see FabricStats::copied_bytes).
  void count_copied(std::size_t n) noexcept {
    stats_.copied_bytes.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  void validate(const Packet& p) const;

  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::atomic<bool> abort_{false};
  FabricStats stats_;
  util::BufferPool pool_;
};

}  // namespace c3::net
