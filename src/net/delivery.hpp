// Delivery policies for the simulated transport.
//
// The transport is *reliable* (the paper assumes a reliable message layer,
// e.g. LA-MPI) but need not be globally FIFO. We always preserve per-source
// FIFO order -- MPI's non-overtaking guarantee -- while policies may
// interleave different sources adversarially. Application-level non-FIFO
// behaviour (the paper's Section 3.3) additionally arises from tag matching
// in simmpi regardless of policy.
#pragma once

#include <cstdint>
#include <memory>

#include "util/rng.hpp"

namespace c3::net {

/// Decides how long the head packet of a (src -> dst) stream is held back
/// before becoming visible to the receiver. A hold of n means the packet is
/// released after n further "events" at the destination inbox (arrivals from
/// other sources or failed drain attempts), guaranteeing liveness.
class DeliveryPolicy {
 public:
  virtual ~DeliveryPolicy() = default;
  /// Hold count for a newly arrived head-of-stream packet.
  virtual std::uint32_t hold_for(int src, int dst) = 0;
  /// Deep copy (each inbox gets an independent policy instance).
  virtual std::unique_ptr<DeliveryPolicy> clone() const = 0;
  /// True when hold_for always returns 0: the inbox then skips all hold
  /// bookkeeping and delivery is a sharded push + flag (the common case).
  virtual bool immediate() const noexcept { return false; }
  /// Independent copy for one (src -> dst) stream shard. Policies with
  /// internal randomness should derive a per-stream sequence from `salt`
  /// so shards of one inbox do not replay identical hold patterns.
  virtual std::unique_ptr<DeliveryPolicy> fork(std::uint64_t salt) const {
    (void)salt;
    return clone();
  }
};

/// Immediate delivery: classic FIFO network.
class FifoDelivery final : public DeliveryPolicy {
 public:
  std::uint32_t hold_for(int, int) override { return 0; }
  std::unique_ptr<DeliveryPolicy> clone() const override {
    return std::make_unique<FifoDelivery>();
  }
  bool immediate() const noexcept override { return true; }
};

/// Randomly delays streams to interleave sources out of order.
class RandomReorderDelivery final : public DeliveryPolicy {
 public:
  /// @param seed      determinism seed (forked per inbox)
  /// @param p_hold    probability a head packet is held at all
  /// @param max_hold  maximum number of inbox events to hold for
  RandomReorderDelivery(std::uint64_t seed, double p_hold,
                        std::uint32_t max_hold)
      : rng_(seed), p_hold_(p_hold), max_hold_(max_hold) {}

  std::uint32_t hold_for(int src, int dst) override {
    (void)src;
    (void)dst;
    if (!rng_.next_bool(p_hold_)) return 0;
    return static_cast<std::uint32_t>(rng_.next_below(max_hold_ + 1));
  }

  std::unique_ptr<DeliveryPolicy> clone() const override {
    // Clones fork the seed so inboxes do not share one stream.
    auto copy = std::make_unique<RandomReorderDelivery>(*this);
    copy->rng_ = rng_.fork(0xC10E);
    return copy;
  }

  std::unique_ptr<DeliveryPolicy> fork(std::uint64_t salt) const override {
    auto copy = std::make_unique<RandomReorderDelivery>(*this);
    copy->rng_ = rng_.fork(0xC10E ^ salt);
    return copy;
  }

 private:
  util::Rng rng_;
  double p_hold_;
  std::uint32_t max_hold_;
};

}  // namespace c3::net
