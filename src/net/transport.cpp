#include "net/transport.hpp"

#include "util/error.hpp"

namespace c3::net {

Inbox::Inbox(int owner, std::unique_ptr<DeliveryPolicy> policy)
    : owner_(owner), policy_(std::move(policy)) {}

void Inbox::deliver(Packet p) {
  bool wake;
  {
    std::lock_guard lock(mu_);
    const int src = p.src;
    auto& stream = streams_[src];
    const bool was_empty = stream.staged.empty();
    stream.staged.push_back(std::move(p));
    if (was_empty) stream.hold = policy_->hold_for(src, owner_);
    on_event_locked(src);
    // Only signal when the receiver is actually parked in wait(): a busy
    // receiver polls the queue itself, and the wakeup syscall is the single
    // most expensive step of an uncontended delivery.
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_all();
}

void Inbox::on_event_locked(int arriving_src) {
  for (auto& [src, stream] : streams_) {
    if (stream.staged.empty()) continue;
    if (src != arriving_src && stream.hold > 0) --stream.hold;
    // Release every packet whose hold has expired; packets behind a released
    // head draw a fresh hold so reordering opportunities recur mid-stream.
    while (!stream.staged.empty() && stream.hold == 0) {
      released_.push_back(std::move(stream.staged.front()));
      stream.staged.pop_front();
      if (!stream.staged.empty()) stream.hold = policy_->hold_for(src, owner_);
    }
  }
}

std::vector<Packet> Inbox::drain() {
  std::vector<Packet> out;
  drain(out);
  return out;
}

void Inbox::drain(std::vector<Packet>& out) {
  out.clear();
  std::lock_guard lock(mu_);
  // A drain attempt is an inbox event: it ages all held streams, which
  // guarantees a blocked receiver eventually sees every staged packet.
  on_event_locked(/*arriving_src=*/-1);
  // Swap the whole released queue out instead of popping packet-by-packet
  // through a second move; the caller's vector donates its capacity back.
  out.swap(released_);
}

void Inbox::wait(std::chrono::microseconds timeout,
                 const std::atomic<bool>& stop) {
  std::unique_lock lock(mu_);
  if (!released_.empty() || stop.load(std::memory_order_acquire)) return;
  ++waiters_;
  cv_.wait_for(lock, timeout, [&] {
    return !released_.empty() || stop.load(std::memory_order_acquire);
  });
  --waiters_;
}

void Inbox::interrupt() { cv_.notify_all(); }

Fabric::Fabric(int nranks, const DeliveryPolicy& policy_prototype) {
  if (nranks <= 0) throw util::UsageError("Fabric needs at least one rank");
  inboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    inboxes_.push_back(std::make_unique<Inbox>(r, policy_prototype.clone()));
  }
}

void Fabric::send(Packet p) {
  if (p.dst < 0 || p.dst >= size()) {
    throw util::UsageError("send to invalid rank " + std::to_string(p.dst));
  }
  stats_.packets.fetch_add(1, std::memory_order_relaxed);
  stats_.payload_bytes.fetch_add(p.payload.size(), std::memory_order_relaxed);
  inboxes_[static_cast<std::size_t>(p.dst)]->deliver(std::move(p));
}

void Fabric::abort() {
  abort_.store(true, std::memory_order_release);
  for (auto& box : inboxes_) box->interrupt();
}

}  // namespace c3::net
