#include "net/transport.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace c3::net {
namespace {

/// Acquire `mu`, recording contended acquisitions in `stats` (try-then-lock:
/// the uncontended fast path costs one CAS, the same as a plain lock).
inline void lock_counted(std::mutex& mu, FabricStats* stats) {
  if (mu.try_lock()) return;
  if (stats) stats->lock_waits.fetch_add(1, std::memory_order_relaxed);
  mu.lock();
}

/// Merge the complete fragment run starting at staged[i] into one logical
/// packet: the head fragment keeps its identity (tag, seq, piggybacked
/// header bytes) and the continuation payloads move into its `frags`
/// vector, still in their own pooled buffers -- reassembly is a pointer
/// shuffle, not a copy. Pre: staged[i].frag_total fragments are staged
/// contiguously from i (per-source FIFO guarantees the order).
Packet merge_fragment_run(std::vector<Packet>& staged, std::size_t i) {
  Packet head = std::move(staged[i]);
  head.frags.reserve(head.frag_total - 1);
  for (std::uint32_t f = 1; f < head.frag_total; ++f) {
    head.frags.push_back(std::move(staged[i + f].payload));
  }
  return head;
}

}  // namespace

Inbox::Inbox(int owner, int nsources, const DeliveryPolicy& policy_prototype,
             FabricStats* stats)
    : owner_(owner),
      immediate_(policy_prototype.immediate()),
      proto_(policy_prototype.clone()),
      shards_(std::make_unique<Shard[]>(static_cast<std::size_t>(nsources))),
      nsources_(nsources),
      stats_(stats) {}

void Inbox::deliver(Packet p) {
  const int src = p.src;
  Shard& s = shards_[static_cast<std::size_t>(src)];
  if (!immediate_) events_.fetch_add(1, std::memory_order_relaxed);
  lock_counted(s.mu, stats_);
  {
    std::lock_guard lock(s.mu, std::adopt_lock);
    if (!immediate_) {
      ++s.own_deliveries;
      // A packet arriving to an empty stream becomes the stream head and
      // draws its hold now; packets queued behind a held head draw theirs
      // later, when the cascade in collect_locked() reaches them.
      if (s.head >= s.staged.size()) {
        if (!s.policy) s.policy = proto_->fork(static_cast<std::uint64_t>(src));
        s.hold = s.policy->hold_for(src, owner_);
        // Fresh baseline: events up to and including this arrival never age
        // the hold just drawn (a stream's own arrivals are not its events).
        s.aged_events = events_.load(std::memory_order_relaxed);
        s.own_at_age = s.own_deliveries;
      }
    }
    s.staged.push_back(std::move(p));
  }
  activate(s, src);
  pending_.fetch_add(1, std::memory_order_seq_cst);
  wake();
}

void Inbox::deliver_batch(std::span<Packet> batch) {
  // Packets from one source share a single shard-lock acquisition; the
  // whole batch issues at most one wakeup. Callers send from their own
  // rank, so a batch is typically one run per destination.
  std::size_t i = 0;
  while (i < batch.size()) {
    const int src = batch[i].src;
    std::size_t j = i;
    while (j < batch.size() && batch[j].src == src) ++j;
    const std::size_t run = j - i;
    Shard& s = shards_[static_cast<std::size_t>(src)];
    if (!immediate_) events_.fetch_add(run, std::memory_order_relaxed);
    lock_counted(s.mu, stats_);
    {
      std::lock_guard lock(s.mu, std::adopt_lock);
      for (std::size_t k = i; k < j; ++k) {
        if (!immediate_) {
          ++s.own_deliveries;
          if (s.head >= s.staged.size()) {
            if (!s.policy) {
              s.policy = proto_->fork(static_cast<std::uint64_t>(src));
            }
            s.hold = s.policy->hold_for(src, owner_);
            s.aged_events = events_.load(std::memory_order_relaxed);
            s.own_at_age = s.own_deliveries;
          }
        }
        s.staged.push_back(std::move(batch[k]));
      }
    }
    activate(s, src);
    i = j;
  }
  pending_.fetch_add(batch.size(), std::memory_order_seq_cst);
  wake();
}

void Inbox::activate(Shard& s, int idx) {
  // Flag-guarded Treiber push: a shard is on the active list at most once.
  // seq_cst on `queued` orders the flag against the consumer's clear so a
  // skipped push always implies the consumer will still collect the data.
  if (s.queued.exchange(true, std::memory_order_seq_cst)) return;
  int head = active_head_.load(std::memory_order_relaxed);
  do {
    s.next_active.store(head, std::memory_order_relaxed);
  } while (!active_head_.compare_exchange_weak(head, idx,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
}

std::size_t Inbox::collect_locked(int src, std::vector<Packet>& out) {
  Shard& s = shards_[static_cast<std::size_t>(src)];
  std::size_t moved = 0;
  if (immediate_) {
    std::size_t i = s.head;
    while (i < s.staged.size()) {
      const std::uint32_t total = s.staged[i].frag_total;
      if (total <= 1) {
        out.push_back(std::move(s.staged[i]));
        ++i;
        ++moved;
        continue;
      }
      // A fragment run releases only once every fragment is staged; the
      // shard stays active and the next drain retries. Senders deliver the
      // whole run under one batch, so an incomplete run is a transient
      // mid-send snapshot, never a steady state.
      if (i + total > s.staged.size()) break;
      out.push_back(merge_fragment_run(s.staged, i));
      i += total;
      moved += total;
    }
    s.head = i;
    if (s.head >= s.staged.size()) {
      s.staged.clear();
      s.head = 0;
    }
  } else {
    // Lazy hold aging: replay the foreign events that occurred since this
    // shard was last visited (global events minus the shard's own arrivals,
    // which never age its own stream). Replaying one event at a time keeps
    // the exact cascade semantics: a fresh hold drawn mid-cascade is aged
    // only by events "after" it in the replay.
    const std::uint64_t ev = events_.load(std::memory_order_relaxed);
    const std::uint64_t ev_delta = ev - s.aged_events;
    const std::uint64_t own_delta = s.own_deliveries - s.own_at_age;
    std::uint64_t budget = ev_delta > own_delta ? ev_delta - own_delta : 0;
    s.aged_events = ev;
    s.own_at_age = s.own_deliveries;
    while (s.head < s.staged.size()) {
      if (s.hold == 0) {
        const std::uint32_t total = s.staged[s.head].frag_total;
        if (total <= 1) {
          out.push_back(std::move(s.staged[s.head]));
          ++s.head;
          ++moved;
        } else {
          // One logical message releases as one unit: its head drew the
          // hold, its continuation fragments ride along (reorder policies
          // interleave messages, never the bytes inside one). An
          // incomplete run waits with hold spent, so the next drain
          // releases it as soon as the rest of the batch is staged.
          if (s.head + total > s.staged.size()) break;
          out.push_back(merge_fragment_run(s.staged, s.head));
          s.head += total;
          moved += total;
        }
        // Packets behind a released head draw a fresh hold so reordering
        // opportunities recur mid-stream.
        if (s.head < s.staged.size()) s.hold = s.policy->hold_for(src, owner_);
        continue;
      }
      if (budget == 0) break;
      const std::uint64_t step = std::min<std::uint64_t>(s.hold, budget);
      s.hold -= static_cast<std::uint32_t>(step);
      budget -= step;
    }
    if (s.head >= s.staged.size()) {
      s.staged.clear();
      s.head = 0;
    }
  }
  // Streams that went quiet release burst capacity instead of pinning it
  // forever; modest capacities are kept for steady-state recycling.
  if (s.staged.empty() && s.staged.capacity() > 256) {
    s.staged.shrink_to_fit();
  }
  return moved;
}

std::vector<Packet> Inbox::drain() {
  std::vector<Packet> out;
  drain(out);
  return out;
}

void Inbox::drain(std::vector<Packet>& out) {
  out.clear();
  // A drain attempt is an inbox event: it ages all held streams, which
  // guarantees a blocked receiver eventually sees every staged packet.
  if (!immediate_) events_.fetch_add(1, std::memory_order_relaxed);
  // Steal the whole active list; shards activated during the walk land on
  // a fresh list for the next drain. Only the head-of-walk shard can be
  // re-pushed concurrently (its `queued` is cleared below), and its next
  // pointer is captured before the clear, so the traversal never jumps
  // into the new list.
  int idx = active_head_.exchange(-1, std::memory_order_acq_rel);
  std::size_t collected = 0;
  while (idx != -1) {
    Shard& s = shards_[static_cast<std::size_t>(idx)];
    const int next = s.next_active.load(std::memory_order_relaxed);
    s.queued.store(false, std::memory_order_seq_cst);
    bool live;
    lock_counted(s.mu, stats_);
    {
      std::lock_guard lock(s.mu, std::adopt_lock);
      collected += collect_locked(idx, out);
      live = s.head < s.staged.size();
    }
    // Still-held packets keep the shard on the active list so the next
    // drain revisits it (and ages it) without scanning quiet sources.
    if (live) activate(s, idx);
    idx = next;
  }
  if (collected > 0) {
    pending_.fetch_sub(collected, std::memory_order_relaxed);
  }
}

void Inbox::wait(std::chrono::microseconds timeout,
                 const std::atomic<bool>& stop) {
  if (pending_.load(std::memory_order_seq_cst) > 0 ||
      stop.load(std::memory_order_acquire)) {
    return;
  }
  std::unique_lock lock(wait_mu_);
  // Registration before the predicate re-check pairs with deliver's
  // pending-then-waiters order (both seq_cst): either the waiter sees the
  // staged packet, or the deliverer sees the waiter and notifies under
  // wait_mu_, which cannot land between this check and the park.
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  cv_.wait_for(lock, timeout, [&] {
    return pending_.load(std::memory_order_seq_cst) > 0 ||
           stop.load(std::memory_order_acquire);
  });
  waiters_.fetch_sub(1, std::memory_order_relaxed);
}

void Inbox::wake() {
  if (waiters_.load(std::memory_order_seq_cst) == 0) return;
  if (stats_) stats_->wakeups.fetch_add(1, std::memory_order_relaxed);
  // Notify while holding wait_mu_: the waiter holds it from predicate
  // check to park, so the signal can never fall into that window. One
  // receiver per inbox, so notify_one suffices.
  std::lock_guard lock(wait_mu_);
  cv_.notify_one();
}

void Inbox::interrupt() {
  if (stats_) stats_->wakeups.fetch_add(1, std::memory_order_relaxed);
  // Abort path: the stop flag was published before this call, and taking
  // wait_mu_ here (a) fences that store ahead of the waiter's re-check and
  // (b) closes the lost-wakeup window -- a receiver between its predicate
  // check and the actual park holds wait_mu_, so this notify waits until
  // it is parked and cannot be missed.
  std::lock_guard lock(wait_mu_);
  cv_.notify_all();
}

Fabric::Fabric(int nranks, const DeliveryPolicy& policy_prototype) {
  if (nranks <= 0) throw util::UsageError("Fabric needs at least one rank");
  inboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    inboxes_.push_back(
        std::make_unique<Inbox>(r, nranks, policy_prototype, &stats_));
  }
}

void Fabric::validate(const Packet& p) const {
  if (p.dst < 0 || p.dst >= size()) {
    throw util::UsageError("send to invalid rank " + std::to_string(p.dst));
  }
  if (p.src < 0 || p.src >= size()) {
    throw util::UsageError("send from invalid rank " + std::to_string(p.src));
  }
  if (p.frag_total < 1 || p.frag_index >= p.frag_total) {
    throw util::UsageError("send with inconsistent fragment header");
  }
}

void Fabric::send(Packet p) {
  validate(p);
  stats_.packets.fetch_add(1, std::memory_order_relaxed);
  stats_.payload_bytes.fetch_add(p.payload.size(), std::memory_order_relaxed);
  // Context ids encode the class in the low two bits (Comm::context).
  if (p.context % 4 == 3) {
    stats_.replica_packets.fetch_add(1, std::memory_order_relaxed);
    stats_.replica_bytes.fetch_add(p.payload.size(),
                                   std::memory_order_relaxed);
  }
  inboxes_[static_cast<std::size_t>(p.dst)]->deliver(std::move(p));
}

void Fabric::send_batch(std::vector<Packet>& batch) {
  if (batch.empty()) return;
  std::uint64_t bytes = 0;
  std::uint64_t replica_pkts = 0;
  std::uint64_t replica_bytes = 0;
  for (const auto& p : batch) {
    validate(p);
    bytes += p.payload.size();
    if (p.context % 4 == 3) {
      replica_pkts++;
      replica_bytes += p.payload.size();
    }
  }
  stats_.packets.fetch_add(batch.size(), std::memory_order_relaxed);
  stats_.payload_bytes.fetch_add(bytes, std::memory_order_relaxed);
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  if (replica_pkts > 0) {
    stats_.replica_packets.fetch_add(replica_pkts, std::memory_order_relaxed);
    stats_.replica_bytes.fetch_add(replica_bytes, std::memory_order_relaxed);
  }
  // Contiguous same-destination runs share one inbox batch delivery (one
  // lock hold, one wakeup). Per-(src,dst) order is the vector order.
  std::size_t i = 0;
  while (i < batch.size()) {
    const int dst = batch[i].dst;
    std::size_t j = i;
    while (j < batch.size() && batch[j].dst == dst) ++j;
    inboxes_[static_cast<std::size_t>(dst)]->deliver_batch(
        std::span<Packet>(batch.data() + i, j - i));
    i = j;
  }
  batch.clear();
}

void Fabric::abort() {
  abort_.store(true, std::memory_order_release);
  for (auto& box : inboxes_) box->interrupt();
}

}  // namespace c3::net
