// Wire-level packet exchanged between simulated ranks.
//
// `context` namespaces traffic the way real MPI implementations use
// communicator context ids: application point-to-point, protocol control
// messages, and collective-internal messages never match each other even if
// tags collide.
#pragma once

#include <cstdint>
#include <vector>

#include "util/archive.hpp"

namespace c3::net {

using util::Bytes;

struct Packet {
  int src = -1;
  int dst = -1;
  int context = 0;  ///< communicator context id (see simmpi::ContextId)
  int tag = 0;
  std::uint64_t seq = 0;  ///< per-(src,dst,context) send sequence number
  Bytes payload;
};

}  // namespace c3::net
