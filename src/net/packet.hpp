// Wire-level packet exchanged between simulated ranks.
//
// `context` namespaces traffic the way real MPI implementations use
// communicator context ids: application point-to-point, protocol control
// messages, and collective-internal messages never match each other even if
// tags collide.
#pragma once

#include <cstdint>
#include <vector>

#include "util/archive.hpp"

namespace c3::net {

using util::Bytes;

struct Packet {
  int src = -1;
  int dst = -1;
  int context = 0;  ///< communicator context id (see simmpi::ContextId)
  int tag = 0;
  std::uint64_t seq = 0;  ///< per-(src,dst,context) send sequence number
  /// Segmented large messages: one logical message above the buffer pool's
  /// largest size class travels as `frag_total` wire fragments, each in its
  /// own pooled buffer. Fragments of one message are sent back-to-back on
  /// the same (src, dst, context) stream, so per-source FIFO keeps them
  /// contiguous; the destination inbox reassembles the run into a single
  /// logical packet before the matching engine ever sees it.
  std::uint32_t frag_index = 0;  ///< 0 = head fragment (or whole message)
  std::uint32_t frag_total = 1;  ///< wire fragments in this logical message
  Bytes payload;
  /// Receiver side only: continuation-fragment payloads, merged in order by
  /// inbox reassembly behind the head fragment's `payload`. Each entry is a
  /// pooled buffer the consumer releases (or moves) individually.
  std::vector<Bytes> frags;

  /// Logical payload size across the head buffer and all merged fragments.
  std::size_t total_payload_size() const noexcept {
    std::size_t n = payload.size();
    for (const auto& f : frags) n += f.size();
    return n;
  }
};

}  // namespace c3::net
