// ccift --check: whole-program checkpoint-safety analysis.
//
// The paper's precompiler is trusted to decide what state must be saved and
// where checkpoints may be taken; a program it cannot handle must be
// *diagnosed*, not silently mis-transformed. run_checks() takes one or more
// translation units (the whole program, the way Section 5.1.2 assumes the
// precompiler sees every source file at once) and reports violations of the
// checkpoint-safety rules as stable, suppressible findings:
//
//   CK001  a loop reachable from main can run unboundedly without crossing
//          a checkpoint site (no bound on rollback work after a failure);
//   CK002  a mutable global declared extern is defined in no analyzed unit,
//          yet checkpointed code references it -- its bytes are never
//          registered, so recovery restores a program whose global state
//          silently diverges;
//   CK003  a nondeterminism source (time, clock, rand, getenv,
//          gettimeofday, ...) is called outside the logged nondet path;
//          replay after recovery will not reproduce the pre-failure run;
//   CK004  the address of a local escapes to a global or through a pointer
//          across a potential checkpoint site -- the VDS rebuilds the frame
//          at a new address on restart, leaving the stored pointer dangling;
//   CK005  an unsupported C construct the transformer would mis-handle
//          (setjmp/longjmp, alloca, goto at a checkpoint site, computed
//          goto, VLA captured across a checkpoint);
//   CK006  a static local in a checkpointable function: neither VDS-saved
//          (it is not an automatic) nor registered (it is not a global);
//   CK007  main cannot reach any checkpoint site at all -- the program is
//          never checkpointed (warning).
//
// A finding on line L is suppressed by a `// ccift-ok: CKxxx` comment on
// line L or L-1. Files outside the ccift C subset (the C++ examples) are
// degraded to a token-level scan covering the call-based checks (CK003,
// CK005) and recorded as such in the report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace c3::ccift {

enum class CheckSeverity { kWarning, kError };

struct Finding {
  std::string id;        // "CK001" ... stable across releases
  CheckSeverity severity = CheckSeverity::kError;
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;
};

/// How deeply one input file was analyzed.
struct CheckedFile {
  std::string path;
  /// "ast": full whole-program analysis; "lexical": token-level scan only
  /// (the file is outside the ccift C subset); the note says why.
  std::string mode;
  std::string note;
};

struct CheckOptions {
  /// Treat the c3mpi blocking entry points as checkpoint sites and the MPI
  /// opaque typedefs as base types (mirrors `ccift --mpi`).
  bool mpi_facade = false;
};

struct CheckInput {
  std::string path;  // used in diagnostics; need not exist on disk
  std::string text;
};

struct CheckReport {
  std::vector<CheckedFile> files;
  /// Ordered by (input order, line, id). Suppressed findings are kept so
  /// the JSON records what was waived.
  std::vector<Finding> findings;

  std::size_t unsuppressed_errors() const;
  std::size_t unsuppressed_warnings() const;
  std::size_t suppressed() const;

  /// Machine-readable report (scripts/check_lint.py consumes this).
  std::string to_json() const;
  /// Compiler-style diagnostics: `file:line: severity: message [CKxxx]`.
  std::string to_text() const;
};

/// Analyze the program formed by `inputs` as a whole.
CheckReport run_checks(const std::vector<CheckInput>& inputs,
                       const CheckOptions& options = {});

}  // namespace c3::ccift
