#include "ccift/transform.hpp"

#include <functional>
#include <map>
#include <set>

#include "ccift/analysis.hpp"
#include "ccift/emit.hpp"
#include "ccift/parser.hpp"
#include "util/error.hpp"

namespace c3::ccift {
namespace {

ExprPtr make_ident(const std::string& name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdentifier;
  e->text = name;
  return e;
}

StmtPtr make_raw(const std::string& text) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kRaw;
  s->text = text;
  return s;
}

StmtPtr make_expr_stmt(ExprPtr e) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kExpr;
  s->expr = std::move(e);
  return s;
}

/// Rewrites one checkpointable function.
class FunctionTransformer {
 public:
  FunctionTransformer(Function& fn, const Analysis& analysis,
                      const std::map<std::string, std::string>& return_types,
                      const TransformOptions& options)
      : fn_(fn),
        analysis_(analysis),
        return_types_(return_types),
        options_(options) {}

  void run() {
    if (!fn_.body) return;
    decompose_block(*fn_.body);
    instrument_block(*fn_.body, /*scope_chain=*/{}, /*loop_scope_base=*/0);
    insert_dispatch();
  }

 private:
  bool is_checkpointable_call(const Expr& e) const {
    return e.kind == ExprKind::kCall &&
           analysis_.checkpointable.count(e.text) != 0;
  }

  std::string fresh_temp() {
    return options_.prefix + "_t" + std::to_string(temp_counter_++);
  }
  int fresh_label() { return label_counter_++; }
  std::string label_name(int k) const {
    return options_.prefix + "_label_" + std::to_string(k) + "_" + fn_.name;
  }

  const std::string& return_type_of(const Expr& call) const {
    auto it = return_types_.find(call.text);
    if (it == return_types_.end()) {
      throw util::UsageError(
          "ccift: cannot decompose call to '" + call.text +
          "' with unknown return type (declare a prototype)");
    }
    return it->second;
  }

  // -------------------------------------------------- statement decomposition

  /// Hoist every checkpointable call nested inside `e` (except when `e`
  /// itself is allowed to stay, controlled by `allow_top`) into temporaries
  /// prepended to `pre`.
  void hoist_calls(ExprPtr& e, std::vector<StmtPtr>& pre, bool allow_top) {
    if (!e) return;
    if (is_checkpointable_call(*e) && allow_top) {
      // Arguments may still contain nested checkpointable calls.
      for (auto& arg : e->args) hoist_calls(arg, pre, false);
      return;
    }
    if (e->kind == ExprKind::kBinary &&
        (e->text == "&&" || e->text == "||")) {
      // Hoisting out of a short-circuit RHS would change evaluation; the
      // paper's subset forbids it, and so do we.
      hoist_calls(e->lhs, pre, false);
      if (e->rhs && contains_call_to(*e->rhs, analysis_.checkpointable)) {
        throw util::UsageError(
            "ccift: checkpointable call in short-circuit right-hand side "
            "(line " +
            std::to_string(e->line) + "); rewrite as an if statement");
      }
      return;
    }
    if (is_checkpointable_call(*e)) {
      for (auto& arg : e->args) hoist_calls(arg, pre, false);
      const std::string type = return_type_of(*e);
      if (type == "void") {
        throw util::UsageError(
            "ccift: void checkpointable call '" + e->text +
            "' used as a value (line " + std::to_string(e->line) + ")");
      }
      // Split into `T temp; temp = call;` so the call lands in a plain
      // assignment statement the PS instrumentation can label.
      const std::string temp = fresh_temp();
      auto decl = std::make_unique<Stmt>();
      decl->kind = StmtKind::kDecl;
      decl->text = type;
      Declarator d;
      d.name = temp;
      decl->decls.push_back(std::move(d));
      pre.push_back(std::move(decl));
      auto assign = std::make_unique<Expr>();
      assign->kind = ExprKind::kBinary;
      assign->text = "=";
      assign->lhs = make_ident(temp);
      assign->rhs = std::move(e);
      pre.push_back(make_expr_stmt(std::move(assign)));
      e = make_ident(temp);
      return;
    }
    hoist_calls(e->lhs, pre, false);
    hoist_calls(e->rhs, pre, false);
    for (auto& arg : e->args) hoist_calls(arg, pre, false);
  }

  bool stmt_has_checkpointable_call(const Stmt& s) const {
    bool found = false;
    auto check = [&](const ExprPtr& e) {
      if (e && contains_call_to(*e, analysis_.checkpointable)) found = true;
    };
    check(s.expr);
    check(s.cond);
    check(s.step);
    for (const auto& d : s.decls) check(d.init);
    return found;
  }

  void decompose_block(Stmt& block) {
    std::vector<StmtPtr> out;
    for (auto& child : block.body) {
      decompose_stmt(child, out);
    }
    block.body = std::move(out);
  }

  void decompose_stmt(StmtPtr& s, std::vector<StmtPtr>& out) {
    switch (s->kind) {
      case StmtKind::kBlock:
        decompose_block(*s);
        out.push_back(std::move(s));
        return;
      case StmtKind::kExpr: {
        if (!s->expr) {
          out.push_back(std::move(s));
          return;
        }
        std::vector<StmtPtr> pre;
        // A plain call, or `lhs = call`, may stay at statement level.
        bool allow_top = is_checkpointable_call(*s->expr);
        if (s->expr->kind == ExprKind::kBinary && s->expr->text == "=" &&
            s->expr->rhs && is_checkpointable_call(*s->expr->rhs)) {
          hoist_calls(s->expr->lhs, pre, false);
          for (auto& arg : s->expr->rhs->args) hoist_calls(arg, pre, false);
        } else {
          hoist_calls(s->expr, pre, allow_top);
        }
        for (auto& p : pre) decompose_stmt(p, out);
        out.push_back(std::move(s));
        return;
      }
      case StmtKind::kDecl: {
        bool any_call = false;
        for (const auto& d : s->decls) {
          if (d.init &&
              contains_call_to(*d.init, analysis_.checkpointable)) {
            any_call = true;
          }
        }
        if (!any_call) {
          out.push_back(std::move(s));
          return;
        }
        // Split into per-declarator statements so each initializer call
        // becomes a labelable assignment: `T x = f();` -> `T x; x = f();`.
        for (auto& d : s->decls) {
          auto decl = std::make_unique<Stmt>();
          decl->kind = StmtKind::kDecl;
          decl->text = s->text;
          ExprPtr init = std::move(d.init);
          decl->decls.push_back(std::move(d));
          if (init &&
              contains_call_to(*init, analysis_.checkpointable)) {
            std::vector<StmtPtr> pre;
            hoist_calls(init, pre, /*allow_top=*/true);
            const std::string name = decl->decls.front().name;
            out.push_back(std::move(decl));
            for (auto& p : pre) out.push_back(std::move(p));
            auto assign = std::make_unique<Expr>();
            assign->kind = ExprKind::kBinary;
            assign->text = "=";
            assign->lhs = make_ident(name);
            assign->rhs = std::move(init);
            out.push_back(make_expr_stmt(std::move(assign)));
          } else {
            decl->decls.front().init = std::move(init);
            out.push_back(std::move(decl));
          }
        }
        return;
      }
      case StmtKind::kReturn: {
        if (s->expr && contains_call_to(*s->expr, analysis_.checkpointable)) {
          std::vector<StmtPtr> pre;
          hoist_calls(s->expr, pre, false);
          for (auto& p : pre) decompose_stmt(p, out);
        }
        out.push_back(std::move(s));
        return;
      }
      case StmtKind::kIf: {
        if (s->expr && contains_call_to(*s->expr, analysis_.checkpointable)) {
          std::vector<StmtPtr> pre;
          hoist_calls(s->expr, pre, false);
          for (auto& p : pre) decompose_stmt(p, out);
        }
        decompose_block(*s->then_branch);
        if (s->else_branch) decompose_block(*s->else_branch);
        out.push_back(std::move(s));
        return;
      }
      case StmtKind::kWhile: {
        if (s->expr && contains_call_to(*s->expr, analysis_.checkpointable)) {
          rewrite_loop(std::move(s), out);
          return;
        }
        decompose_block(*s->body.front());
        out.push_back(std::move(s));
        return;
      }
      case StmtKind::kFor: {
        const bool cond_has = s->cond && contains_call_to(
                                             *s->cond, analysis_.checkpointable);
        const bool step_has = s->step && contains_call_to(
                                             *s->step, analysis_.checkpointable);
        if (s->init && stmt_has_checkpointable_call(*s->init)) {
          StmtPtr init = std::move(s->init);
          decompose_stmt(init, out);  // runs once before the loop
        }
        if (cond_has || step_has) {
          rewrite_loop(std::move(s), out);
          return;
        }
        decompose_block(*s->body.front());
        out.push_back(std::move(s));
        return;
      }
      default:
        out.push_back(std::move(s));
        return;
    }
  }

  /// Rewrite a while/for whose condition or step contains checkpointable
  /// calls into: for(init;;) { <hoists>; if (!(cond)) break; body; step; }
  void rewrite_loop(StmtPtr loop, std::vector<StmtPtr>& out) {
    auto result = std::make_unique<Stmt>();
    result->kind = StmtKind::kFor;
    result->line = loop->line;
    if (loop->kind == StmtKind::kFor) result->init = std::move(loop->init);

    auto body = std::make_unique<Stmt>();
    body->kind = StmtKind::kBlock;

    ExprPtr cond = std::move(loop->kind == StmtKind::kWhile ? loop->expr
                                                            : loop->cond);
    if (cond) {
      std::vector<StmtPtr> pre;
      hoist_calls(cond, pre, false);
      for (auto& p : pre) body->body.push_back(std::move(p));
      auto brk = std::make_unique<Stmt>();
      brk->kind = StmtKind::kIf;
      auto neg = std::make_unique<Expr>();
      neg->kind = ExprKind::kUnary;
      neg->text = "!";
      auto paren = std::make_unique<Expr>();
      paren->kind = ExprKind::kParen;
      paren->lhs = std::move(cond);
      neg->lhs = std::move(paren);
      brk->expr = std::move(neg);
      auto then_block = std::make_unique<Stmt>();
      then_block->kind = StmtKind::kBlock;
      auto b = std::make_unique<Stmt>();
      b->kind = StmtKind::kBreak;
      then_block->body.push_back(std::move(b));
      brk->then_branch = std::move(then_block);
      body->body.push_back(std::move(brk));
    }

    StmtPtr original_body = std::move(loop->body.front());
    decompose_block(*original_body);
    body->body.push_back(std::move(original_body));

    if (loop->kind == StmtKind::kFor && loop->step) {
      auto step_stmt = make_expr_stmt(std::move(loop->step));
      StmtPtr owned = std::move(step_stmt);
      std::vector<StmtPtr> step_out;
      decompose_stmt(owned, step_out);
      for (auto& p : step_out) body->body.push_back(std::move(p));
    }

    result->body.push_back(std::move(body));
    out.push_back(std::move(result));
  }

  // ------------------------------------------------------ PS / VDS weaving

  void instrument_block(Stmt& block, std::vector<int> scope_chain,
                        std::size_t loop_scope_base) {
    scope_chain.push_back(0);
    std::vector<StmtPtr> out;
    for (auto& child : block.body) {
      instrument_stmt(child, out, scope_chain, loop_scope_base);
    }
    // Pop this block's declarations on normal exit.
    if (scope_chain.back() > 0) {
      out.push_back(make_raw("ccift_vds_pop(" +
                             std::to_string(scope_chain.back()) + ");"));
    }
    block.body = std::move(out);
  }

  void instrument_stmt(StmtPtr& s, std::vector<StmtPtr>& out,
                       std::vector<int>& scope_chain,
                       std::size_t loop_scope_base) {
    switch (s->kind) {
      case StmtKind::kDecl: {
        const auto names = [&] {
          std::vector<std::string> v;
          for (const auto& d : s->decls) v.push_back(d.name);
          return v;
        }();
        out.push_back(std::move(s));
        for (const auto& name : names) {
          out.push_back(make_raw("ccift_vds_push(&" + name + ", sizeof(" +
                                 name + "));"));
          scope_chain.back()++;
        }
        return;
      }
      case StmtKind::kExpr: {
        if (s->expr && top_level_checkpointable(*s->expr)) {
          wrap_call_site(std::move(s), out);
          return;
        }
        out.push_back(std::move(s));
        return;
      }
      case StmtKind::kReturn: {
        // Pop everything still in scope before leaving the function.
        int total = 0;
        for (int n : scope_chain) total += n;
        if (total > 0) {
          out.push_back(make_raw("ccift_vds_pop(" + std::to_string(total) +
                                 ");"));
        }
        out.push_back(std::move(s));
        return;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue: {
        // Pop the scopes between here and the loop body (inclusive).
        int total = 0;
        for (std::size_t i = loop_scope_base; i < scope_chain.size(); ++i) {
          total += scope_chain[i];
        }
        if (total > 0) {
          out.push_back(make_raw("ccift_vds_pop(" + std::to_string(total) +
                                 ");"));
        }
        out.push_back(std::move(s));
        return;
      }
      case StmtKind::kBlock:
        instrument_block(*s, scope_chain, loop_scope_base);
        out.push_back(std::move(s));
        return;
      case StmtKind::kIf:
        instrument_block(*s->then_branch, scope_chain, loop_scope_base);
        if (s->else_branch) {
          instrument_block(*s->else_branch, scope_chain, loop_scope_base);
        }
        out.push_back(std::move(s));
        return;
      case StmtKind::kWhile:
      case StmtKind::kFor:
        // The loop body starts a new break/continue scope base.
        instrument_block(*s->body.front(), scope_chain, scope_chain.size());
        out.push_back(std::move(s));
        return;
      default:
        out.push_back(std::move(s));
        return;
    }
  }

  /// Is this expression exactly a checkpointable call, or `lhs = call`?
  bool top_level_checkpointable(const Expr& e) const {
    if (is_checkpointable_call(e)) return true;
    return e.kind == ExprKind::kBinary && e.text == "=" && e.rhs &&
           is_checkpointable_call(*e.rhs);
  }

  void wrap_call_site(StmtPtr call_stmt, std::vector<StmtPtr>& out) {
    const Expr& call = is_checkpointable_call(*call_stmt->expr)
                           ? *call_stmt->expr
                           : *call_stmt->expr->rhs;
    const bool is_checkpoint = (call.text == kPotentialCheckpoint);
    const int k = fresh_label();
    labels_.push_back(k);
    out.push_back(make_raw("ccift_ps_push(" + std::to_string(k) + ");"));
    // Every resume label is followed by ccift_resume(): a no-op on normal
    // execution and at intermediate restart frames, it applies the saved
    // VDS / deferred-global values exactly once, at the innermost label,
    // after every frame on the path has re-pushed its descriptors.
    if (is_checkpoint) {
      // Resume point is *after* the checkpoint call (Figure 6, label_2).
      out.push_back(std::move(call_stmt));
      out.push_back(make_raw(label_name(k) + ": ccift_resume();"));
    } else {
      // Resume point re-invokes the callee, whose own dispatch descends
      // (or, for a facade MPI call, which replays from the event log).
      out.push_back(make_raw(label_name(k) + ": ccift_resume();"));
      out.push_back(std::move(call_stmt));
    }
    out.push_back(make_raw("ccift_ps_pop();"));
  }

  void insert_dispatch() {
    if (labels_.empty()) return;
    std::string dispatch = "if (ccift_restoring()) {\n";
    dispatch += "    switch (ccift_ps_next()) {\n";
    for (int k : labels_) {
      dispatch += "      case " + std::to_string(k) + ": goto " +
                  label_name(k) + ";\n";
    }
    dispatch += "      default: ccift_restore_error();\n";
    dispatch += "    }\n  }";
    // Place the dispatch after the function's leading declarations and
    // their VDS pushes: the restart jump then re-enters a frame whose
    // descriptor shape matches what the checkpoint saved. (Declarations in
    // nested blocks before a resume label cannot be rebuilt this way --
    // the C89 rule: keep checkpoint-live variables at function scope.)
    auto& body = fn_.body->body;
    std::size_t at = 0;
    while (at < body.size()) {
      const Stmt& s = *body[at];
      const bool prologue =
          s.kind == StmtKind::kDecl ||
          (s.kind == StmtKind::kRaw &&
           s.text.find("ccift_vds_push") != std::string::npos);
      if (!prologue) break;
      ++at;
    }
    body.insert(body.begin() + static_cast<std::ptrdiff_t>(at),
                make_raw(dispatch));
  }

  Function& fn_;
  const Analysis& analysis_;
  const std::map<std::string, std::string>& return_types_;
  const TransformOptions& options_;
  int temp_counter_ = 0;
  int label_counter_ = 1;
  std::vector<int> labels_;
};

}  // namespace

const std::set<std::string>& mpi_checkpoint_sites() {
  static const std::set<std::string> sites = {
      "MPI_Send",   "MPI_Recv",      "MPI_Barrier", "MPI_Bcast",
      "MPI_Reduce", "MPI_Allreduce", "MPI_Gather",  "MPI_Allgather",
      "MPI_Alltoall"};
  return sites;
}

const std::set<std::string>& mpi_opaque_types() {
  static const std::set<std::string> types = {
      "MPI_Comm", "MPI_Status", "MPI_Request", "MPI_Datatype", "MPI_Op"};
  return types;
}

void transform(TranslationUnit& unit, const TransformOptions& options) {
  if (!options.rename_main.empty()) {
    for (auto& fn : unit.functions) {
      if (fn.name == "main") fn.name = options.rename_main;
    }
  }

  const Analysis analysis =
      options.mpi_facade ? analyze(unit, mpi_checkpoint_sites())
                         : analyze(unit);

  std::map<std::string, std::string> return_types;
  for (const auto& fn : unit.functions) return_types[fn.name] = fn.return_type;
  return_types[kPotentialCheckpoint] = "void";
  if (options.mpi_facade) {
    // The facade entry points come from a raw #include the parser never
    // sees; they all return int (error codes), which statement
    // decomposition needs when a call is used as a value.
    for (const auto& name : mpi_checkpoint_sites()) {
      return_types.emplace(name, "int");
    }
  }

  // Hard diagnostics before any rewriting: constructs the instrumentation
  // would silently mis-handle are errors, tagged with the same stable IDs
  // `ccift --check` reports (the CLI runs the full checker first; this is
  // the backstop for direct API use).
  for (const auto& fn : unit.functions) {
    if (!fn.body || analysis.checkpointable.count(fn.name) == 0) continue;
    for_each_stmt(fn.body.get(), [&](const Stmt& s) {
      if (s.kind == StmtKind::kDecl && s.storage == StorageClass::kStatic) {
        throw util::UsageError(
            "ccift: [CK006] static local '" + s.decls.front().name +
            "' in checkpointable function '" + fn.name + "' (line " +
            std::to_string(s.line) +
            ") is neither VDS-saved nor registered; hoist it to file scope");
      }
      if (s.kind == StmtKind::kGoto) {
        throw util::UsageError(
            "ccift: [CK005] goto in checkpointable function '" + fn.name +
            "' (line " + std::to_string(s.line) +
            ") bypasses the position-stack instrumentation and cannot be "
            "resumed");
      }
    });
  }

  for (auto& fn : unit.functions) {
    if (analysis.checkpointable.count(fn.name) == 0) continue;
    FunctionTransformer transformer(fn, analysis, return_types, options);
    transformer.run();
  }

  if (options.emit_global_registration) {
    Function reg;
    reg.return_type = "void";
    reg.name = "ccift_register_globals";
    reg.body = std::make_unique<Stmt>();
    reg.body->kind = StmtKind::kBlock;
    for (const auto& g : unit.globals) {
      // extern declarations are registered by the unit that defines them
      // (ccift --check's CK002 catches the case where no unit does), and
      // const globals never change, so recovery has nothing to restore.
      if (g.storage == StorageClass::kExtern || g.is_const) continue;
      reg.body->body.push_back(
          make_raw("ccift_register_global(\"" + g.decl.name + "\", &" +
                   g.decl.name + ", sizeof(" + g.decl.name + "));"));
    }
    unit.functions.push_back(std::move(reg));
    unit.order.push_back({TranslationUnit::Item::Kind::kFunction,
                          unit.functions.size() - 1});
  }
}

std::string transform_source(const std::string& source,
                             const TransformOptions& options) {
  TranslationUnit unit = options.mpi_facade ? parse(source, mpi_opaque_types())
                                            : parse(source);
  transform(unit, options);
  std::string out =
      "/* Instrumented by ccift (C3 precompiler reproduction). */\n";
  if (options.mpi_facade) {
    // Self-contained output: declare the runtime ABI the instrumentation
    // targets (implemented in ccift/runtime_abi.cpp and linked in with the
    // c3mpi facade), so the emitted file compiles as plain C with no
    // include path beyond c3mpi/mpi.h.
    out +=
        "/* ccift runtime ABI (see src/ccift/runtime_abi.hpp). */\n"
        "void ccift_ps_push(int label);\n"
        "void ccift_ps_pop(void);\n"
        "int ccift_restoring(void);\n"
        "int ccift_ps_next(void);\n"
        "void ccift_restore_error(void);\n"
        "void ccift_resume(void);\n"
        "void ccift_vds_push(void *addr, unsigned long size);\n"
        "void ccift_vds_pop(int count);\n"
        "void ccift_register_global(const char *name, void *addr,\n"
        "                           unsigned long size);\n";
  }
  out += emit_unit(unit);
  return out;
}

}  // namespace c3::ccift
