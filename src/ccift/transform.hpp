// The CCIFT instrumentation pass (paper Section 5.1).
//
// Given a parsed translation unit, rewrites every *checkpointable* function
// (one whose call chain can reach potentialCheckpoint) so the emitted C
// saves and restores its own position and stack state:
//
//  1. Statement decomposition: a checkpointable call may only appear as a
//     standalone statement or the full right-hand side of an assignment /
//     return, so each call site has a unique program point. Nested calls
//     are hoisted into fresh temporaries ("the precompiler needs to
//     decompose certain complex statements"); loop conditions containing
//     such calls are rewritten into explicit for(;;)+break form so the
//     hoisted call re-executes every iteration.
//
//  2. Position Stack instrumentation (Figure 6): every checkpointable call
//     site K becomes
//         ccift_ps_push(K);  ccift_label_K: <call>;  ccift_ps_pop();
//     and every potentialCheckpoint site K becomes
//         ccift_ps_push(K);  potentialCheckpoint();  ccift_label_K:
//         ccift_ps_pop();
//     (the resume point is *after* the checkpoint). A restart dispatch
//     switch at function entry consumes one PS entry and jumps to the
//     recorded label, rebuilding the activation stack outermost-first.
//
//  3. VDS instrumentation: each local declaration is followed by
//     ccift_vds_push(&var, sizeof(var)); scope exits (block ends, returns,
//     break/continue) emit the matching pops. The VDS contents themselves
//     are saved/restored with the checkpoint (the restored process reuses
//     identical stack addresses), so the restart goto legitimately skips
//     re-execution of the pushes.
//
//  4. Global registration: a generated ccift_register_globals() registers
//     every global variable discovered across the unit.
//
// The emitted code targets the small ccift_* runtime ABI declared in
// runtime_abi.hpp, implemented over the statesave library.
#pragma once

#include <string>

#include "ccift/ast.hpp"

namespace c3::ccift {

struct TransformOptions {
  /// Also emit the ccift_register_globals() definition.
  bool emit_global_registration = true;
  /// Prefix for generated temporaries and labels.
  std::string prefix = "__ccift";
};

/// Instrument `unit` in place.
void transform(TranslationUnit& unit, const TransformOptions& options = {});

/// Convenience: parse, transform, emit.
std::string transform_source(const std::string& source,
                             const TransformOptions& options = {});

}  // namespace c3::ccift
