// The CCIFT instrumentation pass (paper Section 5.1).
//
// Given a parsed translation unit, rewrites every *checkpointable* function
// (one whose call chain can reach potentialCheckpoint) so the emitted C
// saves and restores its own position and stack state:
//
//  1. Statement decomposition: a checkpointable call may only appear as a
//     standalone statement or the full right-hand side of an assignment /
//     return, so each call site has a unique program point. Nested calls
//     are hoisted into fresh temporaries ("the precompiler needs to
//     decompose certain complex statements"); loop conditions containing
//     such calls are rewritten into explicit for(;;)+break form so the
//     hoisted call re-executes every iteration.
//
//  2. Position Stack instrumentation (Figure 6): every checkpointable call
//     site K becomes
//         ccift_ps_push(K);  ccift_label_K: ccift_resume();  <call>;
//         ccift_ps_pop();
//     and every potentialCheckpoint site K becomes
//         ccift_ps_push(K);  potentialCheckpoint();
//         ccift_label_K: ccift_resume();  ccift_ps_pop();
//     (the resume point is *after* a checkpoint call, *before* an ordinary
//     call so it is re-invoked). A restart dispatch switch consumes one PS
//     entry per function and jumps to the recorded label, rebuilding the
//     activation stack outermost-first; ccift_resume() is a no-op until the
//     innermost label is reached, where it copies the saved VDS (and
//     deferred global) values back onto the rebuilt descriptors.
//
//  3. VDS instrumentation: each local declaration is followed by
//     ccift_vds_push(&var, sizeof(var)); scope exits (block ends, returns,
//     break/continue) emit the matching pops. The restart dispatch is
//     placed *after* the function's leading declarations and their pushes,
//     so re-entering a frame rebuilds the same descriptor shape the
//     checkpoint saved (the paper's C89 idiom: checkpoint-live variables
//     are declared at function scope; declarations in nested blocks that
//     are live at a checkpoint cannot be rebuilt by the restart jump and
//     fail the VDS shape check at restore time).
//
//  4. Global registration: a generated ccift_register_globals() registers
//     every global variable discovered across the unit.
//
// The emitted code targets the small ccift_* runtime ABI declared in
// runtime_abi.hpp, implemented over the statesave library.
#pragma once

#include <set>
#include <string>

#include "ccift/ast.hpp"

namespace c3::ccift {

struct TransformOptions {
  /// Also emit the ccift_register_globals() definition.
  bool emit_global_registration = true;
  /// Prefix for generated temporaries and labels.
  std::string prefix = "__ccift";
  /// MPI facade mode ("recompile and relink" for verbatim MPI programs):
  ///  - the c3mpi blocking entry points (mpi_checkpoint_sites()) become
  ///    checkpointable call sites, so a program with no potentialCheckpoint
  ///    call of its own still gets Position Stack labels at every place the
  ///    facade may take a checkpoint;
  ///  - the MPI opaque typedefs (MPI_Comm, MPI_Status, ...) parse as base
  ///    types;
  ///  - transform_source() prepends the runtime-ABI prelude so the emitted
  ///    file is self-contained C.
  bool mpi_facade = false;
  /// Rename the program's `main` to this (empty = keep). Lets a C++ driver
  /// embed the transformed program and hand it to c3mpi::run_mpi_job.
  std::string rename_main;
};

/// The facade entry points instrumented as checkpoint sites in MPI mode.
/// Must match the checkpoint_site() hooks in src/c3mpi/c3mpi.cpp: a label
/// at a call the facade never checkpoints is harmless, but a checkpoint at
/// an unlabeled call could not be resumed.
const std::set<std::string>& mpi_checkpoint_sites();

/// The MPI opaque typedef names MPI mode registers with the parser.
const std::set<std::string>& mpi_opaque_types();

/// Instrument `unit` in place.
void transform(TranslationUnit& unit, const TransformOptions& options = {});

/// Convenience: parse, transform, emit.
std::string transform_source(const std::string& source,
                             const TransformOptions& options = {});

}  // namespace c3::ccift
