#include "ccift/lexer.hpp"

#include <array>
#include <cctype>

namespace c3::ccift {
namespace {

const std::array<const char*, 21> kKeywords = {
    "int",    "double", "float",  "char",   "void",   "long",
    "short",  "unsigned", "signed", "if",    "else",   "while",
    "for",    "return", "break",  "continue", "sizeof",
    // Storage classes / qualifiers / jumps: recognized so the checker can
    // diagnose them precisely instead of the parser tripping over an
    // "identifier" with a confusing expected-';' error.
    "static", "extern", "const",  "goto"};

bool is_keyword(const std::string& s) {
  for (const char* k : kKeywords) {
    if (s == k) return true;
  }
  return false;
}

// Multi-character punctuators, longest first so maximal munch works.
const std::array<const char*, 19> kPuncts3 = {
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "++",
    "--",  "+=",  "-=",  "*=", "/=", "%=", "->", "<<", ">>"};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < n) {
    const char c = source[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') advance(1);
      continue;
    }
    // Block comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      advance(2);
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        advance(1);
      }
      if (i + 1 >= n) {
        throw ParseError("unterminated block comment", start_line, 1);
      }
      advance(2);
      continue;
    }
    // Preprocessor lines: preserved verbatim for the emitter.
    if (c == '#' && column == 1) {
      Token t{TokenKind::kPunct, "", line, column};
      std::size_t j = i;
      while (j < n && source[j] != '\n') ++j;
      t.text = source.substr(i, j - i);
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t{TokenKind::kIdentifier, "", line, column};
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      t.text = source.substr(i, j - i);
      if (is_keyword(t.text)) t.kind = TokenKind::kKeyword;
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    // Numbers (integers, floats, hex, suffixes, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      Token t{TokenKind::kNumber, "", line, column};
      std::size_t j = i;
      while (j < n) {
        const char d = source[j];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (source[j - 1] == 'e' || source[j - 1] == 'E')) {
          ++j;  // exponent sign
        } else {
          break;
        }
      }
      t.text = source.substr(i, j - i);
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    // String literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      Token t{quote == '"' ? TokenKind::kString : TokenKind::kCharLit, "",
              line, column};
      std::size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (j >= n) throw ParseError("unterminated literal", line, column);
      t.text = source.substr(i, j - i + 1);
      tokens.push_back(std::move(t));
      advance(j - i + 1);
      continue;
    }
    // Punctuators, longest match first.
    bool matched = false;
    for (const char* p : kPuncts3) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (source.compare(i, len, p) == 0) {
        tokens.push_back(Token{TokenKind::kPunct, p, line, column});
        advance(len);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "+-*/%=<>!&|^~?:;,.(){}[]";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line,
                             column});
      advance(1);
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", line,
                     column);
  }
  tokens.push_back(Token{TokenKind::kEof, "", line, column});
  return tokens;
}

}  // namespace c3::ccift
