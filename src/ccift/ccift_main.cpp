// ccift: the CCIFT precompiler CLI.
//
// Usage: ccift <input.c> [output.c]
// Reads a C source file, instruments every function that can reach a
// potentialCheckpoint() call, and writes the transformed source (stdout if
// no output path is given).
#include <fstream>
#include <iostream>
#include <sstream>

#include "ccift/transform.hpp"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::cerr << "usage: ccift <input.c> [output.c]\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "ccift: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string out;
  try {
    out = c3::ccift::transform_source(buf.str());
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  if (argc == 3) {
    std::ofstream os(argv[2]);
    if (!os) {
      std::cerr << "ccift: cannot open " << argv[2] << " for writing\n";
      return 1;
    }
    os << out;
  } else {
    std::cout << out;
  }
  return 0;
}
