// ccift: the CCIFT precompiler CLI.
//
// Transform mode:
//   ccift [--mpi] [--main NAME] <input.c> [output.c]
// Reads a C source file, instruments every function that can reach a
// checkpoint location, and writes the transformed source (stdout if no
// output path is given). The checkpoint-safety checks run implicitly first;
// unsuppressed *errors* abort the transform (warnings proceed).
//
// Check mode:
//   ccift --check [--mpi] [--json PATH] <input>...
// Whole-program static analysis only: every input file is analyzed as one
// program and checkpoint-safety violations are reported as
// `file:line: severity: message [CKxxx]` diagnostics (and optionally as a
// machine-readable JSON report). Exits 1 if any unsuppressed finding
// remains, 0 otherwise. See docs/analysis.md for the check catalog and the
// `// ccift-ok: CKxxx` suppression syntax.
//
//   --mpi        MPI facade mode: the c3mpi blocking entry points become
//                checkpointable call sites, the MPI opaque typedefs parse
//                as base types, and (in transform mode) the runtime-ABI
//                prelude is emitted -- the paper's "recompile and relink"
//                pipeline for verbatim MPI programs.
//   --main NAME  Rename the program's main() to NAME so a driver can embed
//                the transformed unit and run it under c3mpi::run_mpi_job.
//   --json PATH  (check mode) also write the JSON report to PATH.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ccift/check.hpp"
#include "ccift/transform.hpp"

namespace {

int usage() {
  std::cerr << "usage: ccift [--mpi] [--main NAME] <input.c> [output.c]\n"
               "       ccift --check [--mpi] [--json PATH] <input>...\n";
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int run_check_mode(const std::vector<std::string>& paths, bool mpi,
                   const std::string& json_path) {
  std::vector<c3::ccift::CheckInput> inputs;
  for (const auto& path : paths) {
    c3::ccift::CheckInput input;
    input.path = path;
    if (!read_file(path, input.text)) {
      std::cerr << "ccift: cannot open " << path << "\n";
      return 1;
    }
    inputs.push_back(std::move(input));
  }

  c3::ccift::CheckOptions options;
  options.mpi_facade = mpi;
  const c3::ccift::CheckReport report = c3::ccift::run_checks(inputs, options);

  std::cerr << report.to_text();
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "ccift: cannot open " << json_path << " for writing\n";
      return 1;
    }
    os << report.to_json();
  }
  return (report.unsuppressed_errors() + report.unsuppressed_warnings()) > 0
             ? 1
             : 0;
}

}  // namespace

int main(int argc, char** argv) {
  c3::ccift::TransformOptions options;
  bool check_mode = false;
  std::string json_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mpi") {
      options.mpi_facade = true;
    } else if (arg == "--check") {
      check_mode = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) return usage();
      json_path = argv[++i];
    } else if (arg == "--main") {
      if (i + 1 >= argc) return usage();
      options.rename_main = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();
  if (check_mode) return run_check_mode(paths, options.mpi_facade, json_path);
  if (paths.size() > 2 || !json_path.empty()) return usage();

  std::string source;
  if (!read_file(paths[0], source)) {
    std::cerr << "ccift: cannot open " << paths[0] << "\n";
    return 1;
  }

  // The transform trusts the checker: run the safety analysis first and
  // refuse to instrument a program with unsuppressed errors (a silently
  // mis-transformed program is worse than no transform at all).
  {
    c3::ccift::CheckOptions check_options;
    check_options.mpi_facade = options.mpi_facade;
    const c3::ccift::CheckReport report =
        c3::ccift::run_checks({{paths[0], source}}, check_options);
    if (report.unsuppressed_errors() > 0) {
      std::cerr << report.to_text();
      std::cerr << "ccift: refusing to transform " << paths[0]
                << ": fix the errors above or annotate them with "
                   "// ccift-ok: CKxxx\n";
      return 1;
    }
  }

  std::string out;
  try {
    out = c3::ccift::transform_source(source, options);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  if (paths.size() == 2) {
    std::ofstream os(paths[1]);
    if (!os) {
      std::cerr << "ccift: cannot open " << paths[1] << " for writing\n";
      return 1;
    }
    os << out;
  } else {
    std::cout << out;
  }
  return 0;
}
