// ccift: the CCIFT precompiler CLI.
//
// Usage: ccift [--mpi] [--main NAME] <input.c> [output.c]
// Reads a C source file, instruments every function that can reach a
// checkpoint location, and writes the transformed source (stdout if no
// output path is given).
//
//   --mpi        MPI facade mode: the c3mpi blocking entry points become
//                checkpointable call sites, the MPI opaque typedefs parse
//                as base types, and the runtime-ABI prelude is emitted --
//                the paper's "recompile and relink" pipeline for verbatim
//                MPI programs.
//   --main NAME  Rename the program's main() to NAME so a driver can embed
//                the transformed unit and run it under c3mpi::run_mpi_job.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ccift/transform.hpp"

namespace {
int usage() {
  std::cerr << "usage: ccift [--mpi] [--main NAME] <input.c> [output.c]\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  c3::ccift::TransformOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mpi") {
      options.mpi_facade = true;
    } else if (arg == "--main") {
      if (i + 1 >= argc) return usage();
      options.rename_main = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || paths.size() > 2) return usage();

  std::ifstream in(paths[0]);
  if (!in) {
    std::cerr << "ccift: cannot open " << paths[0] << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string out;
  try {
    out = c3::ccift::transform_source(buf.str(), options);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  if (paths.size() == 2) {
    std::ofstream os(paths[1]);
    if (!os) {
      std::cerr << "ccift: cannot open " << paths[1] << " for writing\n";
      return 1;
    }
    os << out;
  } else {
    std::cout << out;
  }
  return 0;
}
