#include "ccift/analysis.hpp"

#include <functional>

namespace c3::ccift {
namespace {

void walk_expr(const Expr* e, const std::function<void(const Expr&)>& fn) {
  if (e == nullptr) return;
  fn(*e);
  walk_expr(e->lhs.get(), fn);
  walk_expr(e->rhs.get(), fn);
  for (const auto& a : e->args) walk_expr(a.get(), fn);
}

void walk_stmt(const Stmt* s, const std::function<void(const Expr&)>& fn) {
  if (s == nullptr) return;
  walk_expr(s->expr.get(), fn);
  walk_expr(s->cond.get(), fn);
  walk_expr(s->step.get(), fn);
  for (const auto& d : s->decls) walk_expr(d.init.get(), fn);
  walk_stmt(s->init.get(), fn);
  walk_stmt(s->then_branch.get(), fn);
  walk_stmt(s->else_branch.get(), fn);
  for (const auto& b : s->body) walk_stmt(b.get(), fn);
}

/// Close `roots` under "calls a member of the set" over `call_graph`.
void close_checkpointable(
    const std::map<std::string, std::set<std::string>>& call_graph,
    std::set<std::string>& roots) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [caller, callees] : call_graph) {
      if (roots.count(caller) != 0) continue;
      for (const auto& callee : callees) {
        if (roots.count(callee) != 0) {
          roots.insert(caller);
          changed = true;
          break;
        }
      }
    }
  }
}

}  // namespace

Analysis analyze(const TranslationUnit& unit,
                 const std::set<std::string>& extra_roots) {
  Analysis result;
  for (const auto& g : unit.globals) result.globals.push_back(g.decl.name);

  for (const auto& fn : unit.functions) {
    auto& callees = result.call_graph[fn.name];
    walk_stmt(fn.body.get(), [&](const Expr& e) {
      if (e.kind == ExprKind::kCall) callees.insert(e.text);
    });
  }

  // Fixed point: a function is checkpointable if it calls
  // potentialCheckpoint, an extra checkpoint root, or any checkpointable
  // function.
  result.checkpointable.insert(kPotentialCheckpoint);
  result.checkpointable.insert(extra_roots.begin(), extra_roots.end());
  close_checkpointable(result.call_graph, result.checkpointable);
  return result;
}

ProgramAnalysis analyze_program(
    const std::vector<const TranslationUnit*>& units,
    const std::set<std::string>& extra_roots) {
  ProgramAnalysis result;
  for (const TranslationUnit* unit : units) {
    for (const auto& fn : unit->functions) {
      auto& callees = result.call_graph[fn.name];
      walk_stmt(fn.body.get(), [&](const Expr& e) {
        if (e.kind == ExprKind::kCall) callees.insert(e.text);
      });
      if (fn.body) result.defined.insert(fn.name);
    }
  }

  result.checkpointable.insert(kPotentialCheckpoint);
  result.checkpointable.insert(extra_roots.begin(), extra_roots.end());
  close_checkpointable(result.call_graph, result.checkpointable);

  result.has_main = result.defined.count("main") != 0;
  if (result.has_main) {
    // BFS down the merged call graph from main.
    std::vector<std::string> frontier = {"main"};
    result.reachable_from_main.insert("main");
    while (!frontier.empty()) {
      const std::string fn = std::move(frontier.back());
      frontier.pop_back();
      auto it = result.call_graph.find(fn);
      if (it == result.call_graph.end()) continue;
      for (const auto& callee : it->second) {
        if (result.reachable_from_main.insert(callee).second) {
          frontier.push_back(callee);
        }
      }
    }
  }
  return result;
}

bool contains_call_to(const Expr& e, const std::set<std::string>& targets) {
  bool found = false;
  walk_expr(&e, [&](const Expr& node) {
    if (node.kind == ExprKind::kCall && targets.count(node.text) != 0) {
      found = true;
    }
  });
  return found;
}

void collect_calls(const Expr& e, std::vector<const Expr*>& out) {
  // Left-to-right, operands before the node itself mirrors evaluation
  // order closely enough for statement decomposition.
  if (e.lhs) collect_calls(*e.lhs, out);
  if (e.rhs) collect_calls(*e.rhs, out);
  for (const auto& a : e.args) collect_calls(*a, out);
  if (e.kind == ExprKind::kCall) out.push_back(&e);
}

void for_each_expr(const Stmt* s, const std::function<void(const Expr&)>& fn) {
  walk_stmt(s, fn);
}

void for_each_stmt(const Stmt* s, const std::function<void(const Stmt&)>& fn) {
  if (s == nullptr) return;
  fn(*s);
  for_each_stmt(s->init.get(), fn);
  for_each_stmt(s->then_branch.get(), fn);
  for_each_stmt(s->else_branch.get(), fn);
  for (const auto& b : s->body) for_each_stmt(b.get(), fn);
}

}  // namespace c3::ccift
