// Abstract syntax tree for the CCIFT C subset.
//
// The tree is deliberately simple: expressions keep enough structure for
// the transformer to find calls and for the emitter to regenerate valid C;
// statements carry the shapes the instrumentation pass manipulates (blocks,
// declarations, control flow, returns).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace c3::ccift {

// ------------------------------------------------------------- expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kIdentifier,  // text
  kLiteral,     // text (number / string / char, verbatim)
  kUnary,       // op text + operand (prefix)
  kPostfix,     // operand + op text (x++ / x--)
  kBinary,      // op text + lhs + rhs (includes assignment ops and comma)
  kCall,        // callee name + args
  kIndex,       // base + subscript
  kMember,      // base + op ("." or "->") + member name
  kCast,        // type text + operand
  kSizeof,      // type text or operand
  kParen,       // parenthesized operand
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  std::string text;            // identifier / literal / operator / type
  std::string member;          // kMember: member name
  std::vector<ExprPtr> args;   // kCall arguments
  ExprPtr lhs;                 // operand / base / left side
  ExprPtr rhs;                 // right side / subscript
  int line = 0;
};

// -------------------------------------------------------------- statements

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kBlock,     // body
  kDecl,      // type text + declarators
  kExpr,      // expr (may be null for ';')
  kIf,        // cond + then_branch + else_branch?
  kWhile,     // cond + body (single stmt)
  kFor,       // init (stmt) + cond (expr?) + step (expr?) + body
  kReturn,    // expr?
  kBreak,
  kContinue,
  kGoto,      // text = target label; expr != null for computed goto
  kLabel,     // text = label name (the labelled statement follows it)
  kRaw,       // verbatim text (preprocessor lines)
};

/// Storage class of a declaration (function-local or file scope).
enum class StorageClass : std::uint8_t { kNone, kStatic, kExtern };

/// One declarator within a declaration: `name[dims] = init`.
struct Declarator {
  std::string name;
  std::string pointer;              // "*", "**", ... prefix
  std::vector<std::string> array_dims;  // textual dimensions
  ExprPtr init;                     // optional initializer
};

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  std::string text;                 // kDecl: base type; kRaw: verbatim;
                                    // kGoto/kLabel: label name
  StorageClass storage = StorageClass::kNone;  // kDecl
  bool is_const = false;                       // kDecl
  std::vector<Declarator> decls;    // kDecl
  ExprPtr expr;                     // kExpr / kReturn value / kIf cond ...
  ExprPtr cond;                     // kFor condition
  ExprPtr step;                     // kFor step
  StmtPtr init;                     // kFor init statement
  std::vector<StmtPtr> body;        // kBlock body; single-stmt bodies are
                                    // normalized into one-element blocks
  StmtPtr then_branch;              // kIf
  StmtPtr else_branch;              // kIf (optional)
  int line = 0;
};

// --------------------------------------------------------------- top level

struct Param {
  std::string type;     // base type text, including pointer stars
  std::string name;
  std::vector<std::string> array_dims;
};

struct Function {
  std::string return_type;
  std::string name;
  std::vector<Param> params;
  StorageClass storage = StorageClass::kNone;
  StmtPtr body;  // null for a prototype
  int line = 0;
};

struct GlobalVar {
  std::string type;
  Declarator decl;
  StorageClass storage = StorageClass::kNone;
  bool is_const = false;
  int line = 0;
};

struct TranslationUnit {
  /// Items in source order so the emitter preserves layout.
  struct Item {
    enum class Kind { kFunction, kGlobal, kRaw } kind;
    std::size_t index;  // into the vector for its kind
  };
  std::vector<Function> functions;
  std::vector<GlobalVar> globals;
  std::vector<std::string> raws;  // preprocessor lines etc.
  std::vector<Item> order;
};

}  // namespace c3::ccift
