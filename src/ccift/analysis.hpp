// Semantic analysis for the instrumentation pass:
//  - call graph over the translation unit;
//  - the set of *checkpointable* functions: those from which a call chain
//    can reach potentialCheckpoint (paper Section 5.1.1: "the precompiler
//    only needs to insert labels at function calls that can eventually lead
//    to a potentialCheckpoint location");
//  - the global variable inventory (Section 5.1.2: the precompiler sees all
//    source files at once and registers every global).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ccift/ast.hpp"

namespace c3::ccift {

/// Name of the checkpoint entry point recognized in source.
inline constexpr const char* kPotentialCheckpoint = "potentialCheckpoint";

struct Analysis {
  /// function name -> names of functions it calls (defined or external).
  std::map<std::string, std::set<std::string>> call_graph;
  /// Functions (defined in this unit) that can reach potentialCheckpoint,
  /// plus the name "potentialCheckpoint" itself.
  std::set<std::string> checkpointable;
  /// Names of all globals in declaration order.
  std::vector<std::string> globals;
};

/// `extra_roots` names additional checkpointable leaf calls besides
/// potentialCheckpoint -- the MPI facade mode seeds the blocking c3mpi
/// entry points here, since each of them is a checkpoint opportunity.
Analysis analyze(const TranslationUnit& unit,
                 const std::set<std::string>& extra_roots = {});

/// Whole-program view over one or more translation units (the checker's
/// substrate; `ccift --check` merges every input file before judging).
struct ProgramAnalysis {
  /// Merged call graph across every unit.
  std::map<std::string, std::set<std::string>> call_graph;
  /// Functions that can reach a checkpoint site, plus the site names.
  std::set<std::string> checkpointable;
  /// Names of functions *defined* (with a body) in any unit.
  std::set<std::string> defined;
  /// Functions reachable from main along the call graph (includes main);
  /// empty when no unit defines main.
  std::set<std::string> reachable_from_main;
  bool has_main = false;
};

ProgramAnalysis analyze_program(
    const std::vector<const TranslationUnit*>& units,
    const std::set<std::string>& extra_roots = {});

/// True if expression `e` contains a call to any function in `targets`.
bool contains_call_to(const Expr& e, const std::set<std::string>& targets);

/// Collect all call names in `e` (in evaluation order, left-to-right).
void collect_calls(const Expr& e, std::vector<const Expr*>& out);

/// Pre-order walk over every expression hanging off `s` (conditions,
/// steps, initializers, nested statements included).
void for_each_expr(const Stmt* s, const std::function<void(const Expr&)>& fn);

/// Pre-order walk over `s` and every nested statement.
void for_each_stmt(const Stmt* s, const std::function<void(const Stmt&)>& fn);

}  // namespace c3::ccift
