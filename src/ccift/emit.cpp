#include "ccift/emit.hpp"

#include <sstream>

namespace c3::ccift {
namespace {

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

std::string emit_declarator(const std::string& base, const Declarator& d) {
  std::string out = base + " " + d.pointer + d.name;
  for (const auto& dim : d.array_dims) out += "[" + dim + "]";
  if (d.init) out += " = " + emit_expr(*d.init);
  return out;
}

std::string storage_prefix(StorageClass storage) {
  switch (storage) {
    case StorageClass::kStatic:
      return "static ";
    case StorageClass::kExtern:
      return "extern ";
    case StorageClass::kNone:
      break;
  }
  return "";
}

}  // namespace

std::string emit_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIdentifier:
    case ExprKind::kLiteral:
      return e.text;
    case ExprKind::kUnary:
      return e.text + emit_expr(*e.lhs);
    case ExprKind::kPostfix:
      return emit_expr(*e.lhs) + e.text;
    case ExprKind::kBinary:
      if (e.text == ",") {
        return emit_expr(*e.lhs) + ", " + emit_expr(*e.rhs);
      }
      return emit_expr(*e.lhs) + " " + e.text + " " + emit_expr(*e.rhs);
    case ExprKind::kCall: {
      std::string out = e.text + "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += emit_expr(*e.args[i]);
      }
      return out + ")";
    }
    case ExprKind::kIndex:
      return emit_expr(*e.lhs) + "[" + emit_expr(*e.rhs) + "]";
    case ExprKind::kMember:
      return emit_expr(*e.lhs) + e.text + e.member;
    case ExprKind::kCast:
      return "(" + e.text + ")" + emit_expr(*e.lhs);
    case ExprKind::kSizeof:
      return e.lhs ? "sizeof(" + emit_expr(*e.lhs) + ")"
                   : "sizeof(" + e.text + ")";
    case ExprKind::kParen:
      return "(" + emit_expr(*e.lhs) + ")";
  }
  return "";
}

std::string emit_stmt(const Stmt& s, int indent) {
  std::ostringstream out;
  switch (s.kind) {
    case StmtKind::kBlock:
      out << pad(indent) << "{\n";
      for (const auto& child : s.body) out << emit_stmt(*child, indent + 1);
      out << pad(indent) << "}\n";
      break;
    case StmtKind::kDecl: {
      out << pad(indent);
      const std::string base =
          storage_prefix(s.storage) + (s.is_const ? "const " : "") + s.text;
      for (std::size_t i = 0; i < s.decls.size(); ++i) {
        if (i > 0) out << "; ";
        out << emit_declarator(base, s.decls[i]);
      }
      out << ";\n";
      break;
    }
    case StmtKind::kExpr:
      out << pad(indent);
      if (s.expr) out << emit_expr(*s.expr);
      out << ";\n";
      break;
    case StmtKind::kIf:
      out << pad(indent) << "if (" << emit_expr(*s.expr) << ")\n";
      out << emit_stmt(*s.then_branch, indent);
      if (s.else_branch) {
        out << pad(indent) << "else\n" << emit_stmt(*s.else_branch, indent);
      }
      break;
    case StmtKind::kWhile:
      out << pad(indent) << "while (" << emit_expr(*s.expr) << ")\n";
      out << emit_stmt(*s.body.front(), indent);
      break;
    case StmtKind::kFor: {
      out << pad(indent) << "for (";
      if (s.init) {
        // Re-emit the init statement inline without its newline/semicolon.
        std::string init = emit_stmt(*s.init, 0);
        while (!init.empty() && (init.back() == '\n' || init.back() == ';')) {
          init.pop_back();
        }
        out << init;
      }
      out << "; ";
      if (s.cond) out << emit_expr(*s.cond);
      out << "; ";
      if (s.step) out << emit_expr(*s.step);
      out << ")\n";
      out << emit_stmt(*s.body.front(), indent);
      break;
    }
    case StmtKind::kReturn:
      out << pad(indent) << "return";
      if (s.expr) out << " " << emit_expr(*s.expr);
      out << ";\n";
      break;
    case StmtKind::kBreak:
      out << pad(indent) << "break;\n";
      break;
    case StmtKind::kContinue:
      out << pad(indent) << "continue;\n";
      break;
    case StmtKind::kGoto:
      out << pad(indent) << "goto ";
      if (s.expr) {
        out << "*" << emit_expr(*s.expr);
      } else {
        out << s.text;
      }
      out << ";\n";
      break;
    case StmtKind::kLabel:
      // The trailing ';' keeps a label legal even when it closes a block.
      out << pad(indent) << s.text << ": ;\n";
      break;
    case StmtKind::kRaw:
      out << s.text << "\n";
      break;
  }
  return out.str();
}

std::string emit_unit(const TranslationUnit& unit) {
  std::ostringstream out;
  for (const auto& item : unit.order) {
    switch (item.kind) {
      case TranslationUnit::Item::Kind::kRaw:
        out << unit.raws[item.index] << "\n";
        break;
      case TranslationUnit::Item::Kind::kGlobal: {
        const auto& g = unit.globals[item.index];
        out << storage_prefix(g.storage) << (g.is_const ? "const " : "")
            << emit_declarator(g.type, g.decl) << ";\n";
        break;
      }
      case TranslationUnit::Item::Kind::kFunction: {
        const auto& fn = unit.functions[item.index];
        out << storage_prefix(fn.storage) << fn.return_type << " " << fn.name
            << "(";
        if (fn.params.empty()) {
          out << "void";
        } else {
          for (std::size_t i = 0; i < fn.params.size(); ++i) {
            if (i > 0) out << ", ";
            out << fn.params[i].type << " " << fn.params[i].name;
            for (const auto& dim : fn.params[i].array_dims) {
              out << "[" << dim << "]";
            }
          }
        }
        out << ")";
        if (fn.body) {
          out << "\n" << emit_stmt(*fn.body, 0);
        } else {
          out << ";\n";
        }
        break;
      }
    }
  }
  return out.str();
}

}  // namespace c3::ccift
