#include "ccift/runtime_abi.hpp"

#include "util/error.hpp"

namespace c3::ccift {
namespace {
thread_local statesave::SaveContext* t_ctx = nullptr;
}

RuntimeBinding::RuntimeBinding(statesave::SaveContext& ctx) {
  if (t_ctx != nullptr) {
    throw util::UsageError("nested ccift RuntimeBinding on one thread");
  }
  t_ctx = &ctx;
}

RuntimeBinding::~RuntimeBinding() { t_ctx = nullptr; }

statesave::SaveContext& RuntimeBinding::current() {
  if (t_ctx == nullptr) {
    throw util::UsageError("ccift runtime used without a RuntimeBinding");
  }
  return *t_ctx;
}

}  // namespace c3::ccift

using c3::ccift::RuntimeBinding;

extern "C" {

void ccift_ps_push(int label) { RuntimeBinding::current().ps().push(label); }
void ccift_ps_pop(void) { RuntimeBinding::current().ps().pop(); }
int ccift_restoring(void) {
  return RuntimeBinding::current().ps().restoring() ? 1 : 0;
}
int ccift_ps_next(void) { return RuntimeBinding::current().ps().restore_next(); }
void ccift_restore_error(void) {
  throw c3::util::CorruptionError("ccift: position stack restore mismatch");
}
void ccift_resume(void) {
  auto& ctx = RuntimeBinding::current();
  if (!ctx.ps().restoring() && ctx.restore_pending()) ctx.finish_restore();
}
void ccift_vds_push(void* addr, std::size_t size) {
  RuntimeBinding::current().vds().push(addr, size);
}
void ccift_vds_pop(int count) {
  RuntimeBinding::current().vds().pop(static_cast<std::size_t>(count));
}
void ccift_register_global(const char* name, void* addr, std::size_t size) {
  RuntimeBinding::current().globals().register_global(name, addr, size);
}

}  // extern "C"
