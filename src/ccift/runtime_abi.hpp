// The small C ABI that ccift-emitted code targets, implemented over the
// statesave library. A transformed program is linked against these symbols
// plus the C3 protocol layer; the instrumented example in examples/
// demonstrates the same idiom through the C++ API directly.
#pragma once

#include <cstddef>

#include "statesave/save_context.hpp"

namespace c3::ccift {

/// Binds the ccift_* ABI to one SaveContext for the current thread (rank).
/// The emitted C calls are free functions; in this reproduction each rank
/// thread installs its context before running instrumented code.
class RuntimeBinding {
 public:
  explicit RuntimeBinding(statesave::SaveContext& ctx);
  ~RuntimeBinding();
  RuntimeBinding(const RuntimeBinding&) = delete;
  RuntimeBinding& operator=(const RuntimeBinding&) = delete;

  static statesave::SaveContext& current();
};

}  // namespace c3::ccift

// --- the ABI itself (extern "C" so emitted C can link against it) ---
extern "C" {
void ccift_ps_push(int label);
void ccift_ps_pop(void);
int ccift_restoring(void);
int ccift_ps_next(void);
void ccift_restore_error(void);
/// Emitted at every resume label. No-op during normal execution and at
/// intermediate restart frames; at the innermost label (Position Stack
/// fully consumed) it applies the checkpoint's saved stack-variable values
/// -- and any deferred global values -- onto the rebuilt descriptors.
void ccift_resume(void);
void ccift_vds_push(void* addr, std::size_t size);
void ccift_vds_pop(int count);
void ccift_register_global(const char* name, void* addr, std::size_t size);
}
