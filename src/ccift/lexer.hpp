// Lexer for the C subset the CCIFT precompiler instruments.
//
// The paper's precompiler reads "almost unmodified single-threaded C/MPI
// source files"; this reproduction implements the transformation on a C
// subset rich enough for the paper's benchmark codes: scalar/pointer/array
// declarations, functions, control flow, and full expression syntax.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace c3::ccift {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdentifier,
  kNumber,       // integer or floating literal (lexeme preserved)
  kString,       // "..." (lexeme includes quotes)
  kCharLit,      // '...'
  kKeyword,      // subset keywords
  kPunct,        // operators and punctuation (lexeme holds the spelling)
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 1;
  int column = 1;

  bool is_punct(const char* p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  bool is_keyword(const char* k) const {
    return kind == TokenKind::kKeyword && text == k;
  }
  bool is_ident() const { return kind == TokenKind::kIdentifier; }
};

/// A syntax error in the input program.
class ParseError : public util::UsageError {
 public:
  ParseError(const std::string& msg, int line, int column)
      : util::UsageError("ccift: " + msg + " at line " + std::to_string(line) +
                         ":" + std::to_string(column)),
        line_(line),
        column_(column) {}
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenize `source`. Comments and preprocessor lines (#include etc.) are
/// skipped; preprocessor lines are preserved verbatim as kPunct tokens with
/// text beginning '#' so the emitter can replay them.
std::vector<Token> lex(const std::string& source);

}  // namespace c3::ccift
