#include "ccift/parser.hpp"

#include <optional>

namespace c3::ccift {
namespace {

/// Binary operator precedence (larger binds tighter). Assignment and comma
/// are handled separately for right-associativity / statement contexts.
int precedence_of(const std::string& op) {
  if (op == "*" || op == "/" || op == "%") return 10;
  if (op == "+" || op == "-") return 9;
  if (op == "<<" || op == ">>") return 8;
  if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
  if (op == "==" || op == "!=") return 6;
  if (op == "&") return 5;
  if (op == "^") return 4;
  if (op == "|") return 3;
  if (op == "&&") return 2;
  if (op == "||") return 1;
  return 0;
}

bool is_assign_op(const std::string& op) {
  return op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" ||
         op == "%=" || op == "<<=" || op == ">>=";
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const std::set<std::string>& extra_types)
      : tokens_(std::move(tokens)), extra_types_(extra_types) {}

  TranslationUnit parse_unit() {
    TranslationUnit unit;
    while (!at_eof()) {
      if (peek().kind == TokenKind::kPunct && !peek().text.empty() &&
          peek().text[0] == '#') {
        unit.raws.push_back(next().text);
        unit.order.push_back({TranslationUnit::Item::Kind::kRaw,
                              unit.raws.size() - 1});
        continue;
      }
      parse_top_level(unit);
    }
    return unit;
  }

 private:
  // ------------------------------------------------------------ utilities
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool at_eof() const { return peek().kind == TokenKind::kEof; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg + " (got '" + peek().text + "')", peek().line,
                     peek().column);
  }

  bool accept_punct(const char* p) {
    if (peek().is_punct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_punct(const char* p) {
    if (!accept_punct(p)) fail(std::string("expected '") + p + "'");
  }

  static bool is_type_keyword(const std::string& t) {
    return t == "int" || t == "double" || t == "float" || t == "char" ||
           t == "void" || t == "long" || t == "short" || t == "unsigned" ||
           t == "signed";
  }

  bool looking_at_type() const {
    const Token& t = peek();
    if (t.is_ident() && extra_types_.count(t.text) != 0) return true;
    if (t.kind != TokenKind::kKeyword) return false;
    return is_type_keyword(t.text) || t.text == "const" ||
           t.text == "static" || t.text == "extern";
  }

  /// Consume leading storage-class specifiers and const qualifiers ahead
  /// of a declaration's base type.
  void parse_decl_prefix(StorageClass& storage, bool& is_const) {
    for (;;) {
      if (peek().is_keyword("static")) {
        storage = StorageClass::kStatic;
        next();
      } else if (peek().is_keyword("extern")) {
        storage = StorageClass::kExtern;
        next();
      } else if (peek().is_keyword("const")) {
        is_const = true;
        next();
      } else {
        break;
      }
    }
  }

  /// Consume a base type: one or more type keywords (e.g. "unsigned long",
  /// interleaved const qualifiers included), or a registered typedef name
  /// (optionally const-qualified).
  std::string parse_base_type() {
    std::string type;
    auto append = [&](const std::string& word) {
      if (!type.empty()) type += " ";
      type += word;
    };
    while (peek().is_keyword("const")) append(next().text);
    if (peek().is_ident() && extra_types_.count(peek().text) != 0) {
      append(next().text);
      return type;
    }
    if (peek().kind != TokenKind::kKeyword || !is_type_keyword(peek().text)) {
      fail("expected a type");
    }
    while (peek().kind == TokenKind::kKeyword &&
           (is_type_keyword(peek().text) || peek().is_keyword("const"))) {
      append(next().text);
    }
    return type;
  }

  std::string parse_pointers() {
    std::string stars;
    while (peek().is_punct("*")) {
      stars += next().text;
    }
    return stars;
  }

  // ------------------------------------------------------------ top level
  void parse_top_level(TranslationUnit& unit) {
    const int line = peek().line;
    StorageClass storage = StorageClass::kNone;
    bool is_const = false;
    parse_decl_prefix(storage, is_const);
    std::string type = parse_base_type();
    // Pointer stars attach to the declarator (variables) or to the return
    // type (functions); decide below once we see '(' or not.
    std::string stars = parse_pointers();
    if (!peek().is_ident()) fail("expected a name");
    std::string name = next().text;

    if (peek().is_punct("(")) {
      Function fn;
      fn.return_type = stars.empty() ? type : type + " " + stars;
      fn.name = name;
      fn.storage = storage;
      fn.line = line;
      parse_params(fn);
      if (accept_punct(";")) {
        // Prototype.
      } else {
        fn.body = parse_block();
      }
      unit.functions.push_back(std::move(fn));
      unit.order.push_back({TranslationUnit::Item::Kind::kFunction,
                            unit.functions.size() - 1});
      return;
    }

    // Global variable declaration (possibly several declarators).
    for (;;) {
      GlobalVar g;
      g.type = type;
      g.line = line;
      g.storage = storage;
      g.is_const = is_const;
      g.decl.pointer = stars;
      g.decl.name = name;
      parse_array_dims(g.decl.array_dims);
      if (accept_punct("=")) g.decl.init = parse_assignment();
      unit.globals.push_back(std::move(g));
      unit.order.push_back({TranslationUnit::Item::Kind::kGlobal,
                            unit.globals.size() - 1});
      if (accept_punct(";")) break;
      expect_punct(",");
      stars = parse_pointers();
      if (!peek().is_ident()) fail("expected a name");
      name = next().text;
    }
  }

  void parse_params(Function& fn) {
    expect_punct("(");
    if (accept_punct(")")) return;
    if (peek().is_keyword("void") && peek(1).is_punct(")")) {
      next();
      next();
      return;
    }
    for (;;) {
      Param param;
      param.type = parse_base_type();
      param.type += parse_pointers();
      if (peek().is_ident()) param.name = next().text;
      parse_array_dims(param.array_dims);
      fn.params.push_back(std::move(param));
      if (accept_punct(")")) break;
      expect_punct(",");
    }
  }

  void parse_array_dims(std::vector<std::string>& dims) {
    while (accept_punct("[")) {
      std::string dim;
      int depth = 1;
      while (depth > 0) {
        if (peek().is_punct("[")) ++depth;
        if (peek().is_punct("]")) {
          --depth;
          if (depth == 0) {
            next();
            break;
          }
        }
        if (at_eof()) fail("unterminated array dimension");
        if (!dim.empty()) dim += " ";
        dim += next().text;
      }
      dims.push_back(dim);
    }
  }

  // ------------------------------------------------------------ statements
  StmtPtr parse_block() {
    expect_punct("{");
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = peek().line;
    while (!accept_punct("}")) {
      if (at_eof()) fail("unterminated block");
      block->body.push_back(parse_statement());
    }
    return block;
  }

  /// Wrap a single statement in a block (normalizes if/while/for bodies so
  /// the transformer can always insert statements).
  StmtPtr as_block(StmtPtr s) {
    if (s->kind == StmtKind::kBlock) return s;
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = s->line;
    block->body.push_back(std::move(s));
    return block;
  }

  StmtPtr parse_statement() {
    const int line = peek().line;
    if (peek().is_punct("{")) return parse_block();
    if (peek().kind == TokenKind::kPunct && !peek().text.empty() &&
        peek().text[0] == '#') {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kRaw;
      s->text = next().text;
      s->line = line;
      return s;
    }
    if (looking_at_type()) return parse_declaration();
    if (peek().is_keyword("if")) {
      next();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kIf;
      s->line = line;
      expect_punct("(");
      s->expr = parse_expression();
      expect_punct(")");
      s->then_branch = as_block(parse_statement());
      if (peek().is_keyword("else")) {
        next();
        s->else_branch = as_block(parse_statement());
      }
      return s;
    }
    if (peek().is_keyword("while")) {
      next();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kWhile;
      s->line = line;
      expect_punct("(");
      s->expr = parse_expression();
      expect_punct(")");
      s->body.push_back(as_block(parse_statement()));
      return s;
    }
    if (peek().is_keyword("for")) {
      next();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kFor;
      s->line = line;
      expect_punct("(");
      if (!peek().is_punct(";")) {
        s->init = looking_at_type() ? parse_declaration_no_semi()
                                    : expr_statement_no_semi();
      }
      expect_punct(";");
      if (!peek().is_punct(";")) s->cond = parse_expression();
      expect_punct(";");
      if (!peek().is_punct(")")) s->step = parse_expression();
      expect_punct(")");
      s->body.push_back(as_block(parse_statement()));
      return s;
    }
    if (peek().is_keyword("return")) {
      next();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kReturn;
      s->line = line;
      if (!peek().is_punct(";")) s->expr = parse_expression();
      expect_punct(";");
      return s;
    }
    if (peek().is_keyword("break")) {
      next();
      expect_punct(";");
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kBreak;
      s->line = line;
      return s;
    }
    if (peek().is_keyword("continue")) {
      next();
      expect_punct(";");
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kContinue;
      s->line = line;
      return s;
    }
    if (peek().is_keyword("goto")) {
      next();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kGoto;
      s->line = line;
      if (accept_punct("*")) {
        // Computed goto (GNU extension): keep the target expression so the
        // checker can name it; the transformer rejects it outright.
        s->expr = parse_expression();
      } else {
        if (!peek().is_ident()) fail("expected a label after goto");
        s->text = next().text;
      }
      expect_punct(";");
      return s;
    }
    if (peek().is_ident() && peek(1).is_punct(":")) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kLabel;
      s->text = next().text;
      next();  // ':'
      s->line = line;
      return s;
    }
    // Expression statement (possibly empty).
    auto s = expr_statement_no_semi();
    expect_punct(";");
    return s;
  }

  StmtPtr expr_statement_no_semi() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kExpr;
    s->line = peek().line;
    if (!peek().is_punct(";")) s->expr = parse_expression();
    return s;
  }

  StmtPtr parse_declaration() {
    auto s = parse_declaration_no_semi();
    expect_punct(";");
    return s;
  }

  StmtPtr parse_declaration_no_semi() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kDecl;
    s->line = peek().line;
    parse_decl_prefix(s->storage, s->is_const);
    s->text = parse_base_type();
    for (;;) {
      Declarator d;
      d.pointer = parse_pointers();
      if (!peek().is_ident()) fail("expected a declarator name");
      d.name = next().text;
      parse_array_dims(d.array_dims);
      if (accept_punct("=")) d.init = parse_assignment();
      s->decls.push_back(std::move(d));
      if (!accept_punct(",")) break;
    }
    return s;
  }

  // ----------------------------------------------------------- expressions
  ExprPtr parse_expression() {
    ExprPtr e = parse_assignment();
    while (peek().is_punct(",")) {
      const int line = next().line;
      auto comma = std::make_unique<Expr>();
      comma->kind = ExprKind::kBinary;
      comma->text = ",";
      comma->line = line;
      comma->lhs = std::move(e);
      comma->rhs = parse_assignment();
      e = std::move(comma);
    }
    return e;
  }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_binary(0);
    if (peek().kind == TokenKind::kPunct && is_assign_op(peek().text)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->text = next().text;
      e->line = peek().line;
      e->lhs = std::move(lhs);
      e->rhs = parse_assignment();  // right-associative
      return e;
    }
    return lhs;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      if (peek().kind != TokenKind::kPunct) break;
      const int prec = precedence_of(peek().text);
      if (prec == 0 || prec < min_prec) break;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->text = next().text;
      e->line = peek().line;
      e->lhs = std::move(lhs);
      e->rhs = parse_binary(prec + 1);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    if (t.is_punct("!") || t.is_punct("-") || t.is_punct("+") ||
        t.is_punct("*") || t.is_punct("&") || t.is_punct("~") ||
        t.is_punct("++") || t.is_punct("--")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->text = next().text;
      e->line = t.line;
      e->lhs = parse_unary();
      return e;
    }
    if (t.is_keyword("sizeof")) {
      next();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kSizeof;
      e->line = t.line;
      expect_punct("(");
      if (looking_at_type()) {
        e->text = parse_base_type() + parse_pointers();
      } else {
        e->lhs = parse_expression();
      }
      expect_punct(")");
      return e;
    }
    // Cast: '(' type [*...] ')' unary
    if (t.is_punct("(")) {
      const std::size_t save = pos_;
      next();
      if (looking_at_type()) {
        std::string type = parse_base_type() + parse_pointers();
        if (accept_punct(")")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kCast;
          e->text = type;
          e->line = t.line;
          e->lhs = parse_unary();
          return e;
        }
      }
      pos_ = save;  // not a cast; fall through to primary
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      if (peek().is_punct("(")) {
        // Calls are only supported on plain identifiers (C subset).
        if (e->kind != ExprKind::kIdentifier) {
          fail("calls through expressions are not supported");
        }
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->text = e->text;
        call->line = e->line;
        next();
        if (!accept_punct(")")) {
          for (;;) {
            call->args.push_back(parse_assignment());
            if (accept_punct(")")) break;
            expect_punct(",");
          }
        }
        e = std::move(call);
      } else if (peek().is_punct("[")) {
        next();
        auto idx = std::make_unique<Expr>();
        idx->kind = ExprKind::kIndex;
        idx->line = peek().line;
        idx->lhs = std::move(e);
        idx->rhs = parse_expression();
        expect_punct("]");
        e = std::move(idx);
      } else if (peek().is_punct(".") || peek().is_punct("->")) {
        auto mem = std::make_unique<Expr>();
        mem->kind = ExprKind::kMember;
        mem->text = next().text;
        mem->line = peek().line;
        if (!peek().is_ident()) fail("expected member name");
        mem->member = next().text;
        mem->lhs = std::move(e);
        e = std::move(mem);
      } else if (peek().is_punct("++") || peek().is_punct("--")) {
        auto post = std::make_unique<Expr>();
        post->kind = ExprKind::kPostfix;
        post->text = next().text;
        post->line = peek().line;
        post->lhs = std::move(e);
        e = std::move(post);
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    if (t.is_punct("(")) {
      next();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kParen;
      e->line = t.line;
      e->lhs = parse_expression();
      expect_punct(")");
      return e;
    }
    if (t.is_ident()) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIdentifier;
      e->text = next().text;
      e->line = t.line;
      return e;
    }
    if (t.kind == TokenKind::kNumber || t.kind == TokenKind::kString ||
        t.kind == TokenKind::kCharLit) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->text = next().text;
      e->line = t.line;
      return e;
    }
    fail("expected an expression");
  }

  std::vector<Token> tokens_;
  const std::set<std::string>& extra_types_;
  std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit parse(const std::string& source,
                      const std::set<std::string>& extra_types) {
  Parser parser(lex(source), extra_types);
  return parser.parse_unit();
}

}  // namespace c3::ccift
