// C source emitter: regenerates compilable C from the (transformed) AST.
#pragma once

#include <string>

#include "ccift/ast.hpp"

namespace c3::ccift {

std::string emit_expr(const Expr& e);
std::string emit_stmt(const Stmt& s, int indent);
std::string emit_unit(const TranslationUnit& unit);

}  // namespace c3::ccift
