#include "ccift/check.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "ccift/analysis.hpp"
#include "ccift/lexer.hpp"
#include "ccift/parser.hpp"
#include "ccift/transform.hpp"

namespace c3::ccift {
namespace {

// --------------------------------------------------------------- catalogs

/// Nondeterminism sources (CK003): each returns a value recovery replay
/// cannot reproduce unless it is routed through the logged nondet path
/// (Process::nondet -- MPI_Wtime is the sanctioned clock).
const std::map<std::string, const char*>& nondet_calls() {
  static const std::map<std::string, const char*> names = {
      {"time", "wall-clock read"},
      {"clock", "CPU-clock read"},
      {"gettimeofday", "wall-clock read"},
      {"clock_gettime", "wall-clock read"},
      {"rand", "PRNG draw"},
      {"srand", "PRNG reseed"},
      {"random", "PRNG draw"},
      {"srandom", "PRNG reseed"},
      {"drand48", "PRNG draw"},
      {"lrand48", "PRNG draw"},
      {"getenv", "environment read"},
  };
  return names;
}

/// Constructs the transformer cannot preserve across a restart (CK005).
const std::map<std::string, const char*>& unsupported_calls() {
  static const std::map<std::string, const char*> names = {
      {"setjmp", "saves a stack context a restarted process cannot revive"},
      {"_setjmp", "saves a stack context a restarted process cannot revive"},
      {"sigsetjmp",
       "saves a stack context a restarted process cannot revive"},
      {"longjmp", "jumps through a stack context recovery invalidates"},
      {"siglongjmp", "jumps through a stack context recovery invalidates"},
      {"alloca", "allocates frame memory the VDS cannot describe"},
  };
  return names;
}

// ---------------------------------------------------------- suppressions

using SuppressionMap = std::map<int, std::set<std::string>>;

/// Scan raw source text for `ccift-ok: CKxxx[, CKyyy...]` annotations.
/// Works on the text, not the token stream, so it also applies to files
/// the parser rejects.
SuppressionMap scan_suppressions(const std::string& text) {
  SuppressionMap out;
  int line = 1;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t eol = text.find('\n', start);
    if (eol == std::string::npos) eol = text.size();
    const std::string row = text.substr(start, eol - start);
    std::size_t at = row.find("ccift-ok");
    while (at != std::string::npos) {
      std::size_t p = at + 8;  // past "ccift-ok"
      if (p < row.size() && row[p] == ':') ++p;
      for (;;) {
        while (p < row.size() &&
               (row[p] == ' ' || row[p] == '\t' || row[p] == ',')) {
          ++p;
        }
        if (p + 2 >= row.size() || row[p] != 'C' || row[p + 1] != 'K' ||
            !std::isdigit(static_cast<unsigned char>(row[p + 2]))) {
          break;
        }
        std::size_t q = p + 2;
        while (q < row.size() &&
               std::isdigit(static_cast<unsigned char>(row[q]))) {
          ++q;
        }
        out[line].insert(row.substr(p, q - p));
        p = q;
      }
      at = row.find("ccift-ok", at + 8);
    }
    start = eol + 1;
    ++line;
  }
  return out;
}

bool is_suppressed(const SuppressionMap& supp, const std::string& id,
                   int line) {
  for (int probe : {line, line - 1}) {
    auto it = supp.find(probe);
    if (it != supp.end() && it->second.count(id) != 0) return true;
  }
  return false;
}

// ------------------------------------------------------------ AST helpers

void walk_expr(const Expr* e, const std::function<void(const Expr&)>& fn) {
  if (e == nullptr) return;
  fn(*e);
  walk_expr(e->lhs.get(), fn);
  walk_expr(e->rhs.get(), fn);
  for (const auto& a : e->args) walk_expr(a.get(), fn);
}

const Expr* strip_parens(const Expr* e) {
  while (e != nullptr && e->kind == ExprKind::kParen) e = e->lhs.get();
  return e;
}

/// Resolve an lvalue chain (x, x[i], x.f, (*p).f ...) to its base, noting
/// whether the chain passes through a pointer dereference.
const Expr* lvalue_base(const Expr* e, bool* through_deref) {
  e = strip_parens(e);
  while (e != nullptr) {
    if (e->kind == ExprKind::kIndex) {
      e = strip_parens(e->lhs.get());
    } else if (e->kind == ExprKind::kMember) {
      if (e->text == "->" && through_deref != nullptr) *through_deref = true;
      e = strip_parens(e->lhs.get());
    } else if (e->kind == ExprKind::kUnary && e->text == "*") {
      if (through_deref != nullptr) *through_deref = true;
      e = strip_parens(e->lhs.get());
    } else {
      break;
    }
  }
  return e;
}

/// True if no identifier or call appears in `e` (a compile-time-constant
/// step for the CK001 boundedness heuristic).
bool is_constant_expr(const Expr& e) {
  bool constant = true;
  walk_expr(&e, [&](const Expr& node) {
    if (node.kind == ExprKind::kIdentifier || node.kind == ExprKind::kCall) {
      constant = false;
    }
  });
  return constant;
}

/// Variables the loop updates by a constant step each iteration
/// (i++, i += 2, i = i + 1, ...): the induction candidates.
std::set<std::string> constant_step_vars(const Stmt& loop) {
  std::set<std::string> updated;
  auto base_name = [](const Expr* e) -> std::string {
    e = strip_parens(e);
    if (e != nullptr && e->kind == ExprKind::kIdentifier) return e->text;
    return "";
  };
  for_each_expr(&loop, [&](const Expr& e) {
    if ((e.kind == ExprKind::kUnary || e.kind == ExprKind::kPostfix) &&
        (e.text == "++" || e.text == "--")) {
      const std::string name = base_name(e.lhs.get());
      if (!name.empty()) updated.insert(name);
      return;
    }
    if (e.kind != ExprKind::kBinary) return;
    if (e.text == "+=" || e.text == "-=") {
      const std::string name = base_name(e.lhs.get());
      if (!name.empty() && e.rhs && is_constant_expr(*e.rhs)) {
        updated.insert(name);
      }
      return;
    }
    if (e.text == "=") {
      // i = i + c / i = i - c / i = c + i
      const std::string name = base_name(e.lhs.get());
      const Expr* rhs = strip_parens(e.rhs.get());
      if (name.empty() || rhs == nullptr || rhs->kind != ExprKind::kBinary ||
          (rhs->text != "+" && rhs->text != "-")) {
        return;
      }
      const Expr* a = strip_parens(rhs->lhs.get());
      const Expr* b = strip_parens(rhs->rhs.get());
      if (a != nullptr && a->kind == ExprKind::kIdentifier &&
          a->text == name && b != nullptr && is_constant_expr(*b)) {
        updated.insert(name);
      } else if (rhs->text == "+" && b != nullptr &&
                 b->kind == ExprKind::kIdentifier && b->text == name &&
                 a != nullptr && is_constant_expr(*a)) {
        updated.insert(name);
      }
    }
  });
  return updated;
}

/// CK001 boundedness heuristic: the loop condition compares a variable the
/// loop advances by a constant step. Conservative -- convergence loops
/// (`while (err > tol)` with multiplicative updates) and `while (1)` /
/// `for (;;)` count as unbounded.
bool loop_statically_bounded(const Stmt& loop) {
  const Expr* cond = loop.kind == StmtKind::kWhile ? loop.expr.get()
                                                   : loop.cond.get();
  cond = strip_parens(cond);
  if (cond == nullptr) return false;                   // for (;;)
  if (cond->kind == ExprKind::kLiteral) return cond->text == "0";
  const std::set<std::string> updated = constant_step_vars(loop);
  if (updated.empty()) return false;
  bool bounded = false;
  walk_expr(cond, [&](const Expr& e) {
    if (e.kind != ExprKind::kBinary) return;
    if (e.text != "<" && e.text != "<=" && e.text != ">" && e.text != ">=" &&
        e.text != "!=") {
      return;
    }
    walk_expr(&e, [&](const Expr& node) {
      if (node.kind == ExprKind::kIdentifier &&
          updated.count(node.text) != 0) {
        bounded = true;
      }
    });
  });
  return bounded;
}

/// True if any array dimension is not a compile-time constant (VLA).
bool has_variable_dim(const Declarator& d) {
  for (const auto& dim : d.array_dims) {
    if (dim.empty()) return true;  // int a[]; no size the VDS could push
    bool variable = false;
    try {
      for (const Token& t : lex(dim)) {
        if (t.kind == TokenKind::kIdentifier ||
            t.kind == TokenKind::kKeyword) {
          variable = true;
        }
      }
    } catch (const std::exception&) {
      variable = true;
    }
    if (variable) return true;
  }
  return false;
}

// ------------------------------------------------------------ the checker

struct ParsedUnit {
  std::size_t input_index = 0;
  std::string path;
  TranslationUnit unit;
  SuppressionMap suppressions;
};

struct GlobalInfo {
  bool defined = false;
  bool extern_decl = false;
  bool is_const = false;
};

class Checker {
 public:
  Checker(std::vector<ParsedUnit>& units, const CheckOptions& options,
          std::vector<Finding>& findings)
      : units_(units), findings_(findings) {
    std::vector<const TranslationUnit*> views;
    views.reserve(units.size());
    for (const auto& u : units_) views.push_back(&u.unit);
    program_ = options.mpi_facade ? analyze_program(views, mpi_checkpoint_sites())
                                  : analyze_program(views);
    for (const auto& u : units_) {
      for (const auto& g : u.unit.globals) {
        GlobalInfo& info = globals_[g.decl.name];
        if (g.storage == StorageClass::kExtern) {
          info.extern_decl = true;
        } else {
          info.defined = true;
        }
        if (g.is_const) info.is_const = true;
      }
    }
  }

  void run() {
    for (const auto& u : units_) {
      for (const auto& fn : u.unit.functions) {
        if (fn.body) check_function(u, fn);
      }
    }
    check_main_reachability();
  }

 private:
  bool in_scope(const std::string& fn) const {
    // With a main in view, dead functions neither run nor roll back; in a
    // partial program (library units) everything is fair game.
    return !program_.has_main || program_.reachable_from_main.count(fn) != 0;
  }
  bool is_checkpointable(const std::string& fn) const {
    return program_.checkpointable.count(fn) != 0;
  }

  void add(const ParsedUnit& u, const std::string& id, CheckSeverity sev,
           int line, std::string message) {
    Finding f;
    f.id = id;
    f.severity = sev;
    f.file = u.path;
    f.line = line;
    f.message = std::move(message);
    f.suppressed = is_suppressed(u.suppressions, id, line);
    findings_.push_back(std::move(f));
  }

  void check_function(const ParsedUnit& u, const Function& fn) {
    const bool ckpt = is_checkpointable(fn.name);
    const bool scoped = in_scope(fn.name);

    std::set<std::string> locals;
    for (const auto& p : fn.params) locals.insert(p.name);
    for_each_stmt(fn.body.get(), [&](const Stmt& s) {
      if (s.kind != StmtKind::kDecl) return;
      for (const auto& d : s.decls) locals.insert(d.name);
    });

    check_calls(u, fn, ckpt, scoped, locals);
    check_constructs(u, fn, ckpt);
    if (scoped) check_loops(u, fn);
    if (ckpt) check_escapes(u, fn, locals);
    if (ckpt) note_extern_uses(u, fn, locals);
  }

  // CK003 (nondeterminism) + CK005 (unsupported library calls).
  void check_calls(const ParsedUnit& u, const Function& fn, bool ckpt,
                   bool scoped, const std::set<std::string>& locals) {
    for_each_expr(fn.body.get(), [&](const Expr& e) {
      if (e.kind != ExprKind::kCall) return;
      auto nd = nondet_calls().find(e.text);
      if (nd != nondet_calls().end() && locals.count(e.text) == 0) {
        const CheckSeverity sev = (ckpt || scoped) ? CheckSeverity::kError
                                                   : CheckSeverity::kWarning;
        add(u, "CK003", sev, e.line,
            "call to '" + e.text + "' (" + nd->second +
                ") is a nondeterminism source outside the logged nondet "
                "path; replay after recovery will diverge -- route it "
                "through the nondet API (e.g. MPI_Wtime) in '" +
                fn.name + "'");
      }
      auto un = unsupported_calls().find(e.text);
      if (un != unsupported_calls().end()) {
        add(u, "CK005", CheckSeverity::kError, e.line,
            "call to '" + e.text + "' in '" + fn.name + "': " + un->second);
      }
    });
  }

  // CK005 (goto / computed goto / VLA) + CK006 (static locals).
  void check_constructs(const ParsedUnit& u, const Function& fn, bool ckpt) {
    for_each_stmt(fn.body.get(), [&](const Stmt& s) {
      if (s.kind == StmtKind::kGoto) {
        if (s.expr) {
          add(u, "CK005", CheckSeverity::kError, s.line,
              "computed goto in '" + fn.name +
                  "': the restart dispatch cannot reconstruct an indirect "
                  "jump target");
        } else if (ckpt) {
          add(u, "CK005", CheckSeverity::kError, s.line,
              "goto '" + s.text + "' in checkpointable function '" +
                  fn.name +
                  "': control flow that bypasses the position-stack "
                  "instrumentation cannot be resumed");
        }
        return;
      }
      if (s.kind != StmtKind::kDecl) return;
      if (s.storage == StorageClass::kStatic) {
        for (const auto& d : s.decls) {
          if (ckpt) {
            add(u, "CK006", CheckSeverity::kError, s.line,
                "static local '" + d.name + "' in checkpointable function '" +
                    fn.name +
                    "' is neither VDS-saved nor registered; hoist it to a "
                    "file-scope global so ccift registers it");
          } else {
            add(u, "CK006", CheckSeverity::kWarning, s.line,
                "static local '" + d.name + "' in '" + fn.name +
                    "' persists across checkpoints but is never saved");
          }
        }
      }
      if (ckpt) {
        for (const auto& d : s.decls) {
          if (has_variable_dim(d)) {
            add(u, "CK005", CheckSeverity::kError, s.line,
                "variable-length array '" + d.name +
                    "' captured across a checkpoint site in '" + fn.name +
                    "': the rebuilt frame's descriptor size depends on "
                    "pre-dispatch state");
          }
        }
      }
    });
  }

  // CK001: loops that can run unboundedly without crossing a checkpoint.
  void check_loops(const ParsedUnit& u, const Function& fn) {
    for_each_stmt(fn.body.get(), [&](const Stmt& s) {
      if (s.kind != StmtKind::kWhile && s.kind != StmtKind::kFor) return;
      bool crosses = false;
      for_each_expr(&s, [&](const Expr& e) {
        if (e.kind == ExprKind::kCall &&
            program_.checkpointable.count(e.text) != 0) {
          crosses = true;
        }
      });
      if (crosses) return;
      if (loop_statically_bounded(s)) return;
      add(u, "CK001", CheckSeverity::kError, s.line,
          "loop in '" + fn.name +
              "' can run unboundedly without crossing a checkpoint site; "
              "a failure rolls back arbitrarily far (add a "
              "potentialCheckpoint() in the loop or bound it)");
    });
  }

  // CK004: address of a local stored to heap/global across a checkpoint.
  void check_escapes(const ParsedUnit& u, const Function& fn,
                     const std::set<std::string>& locals) {
    auto local_addr_in = [&](const Expr* e) -> std::string {
      std::string found;
      walk_expr(e, [&](const Expr& node) {
        if (!found.empty()) return;
        if (node.kind != ExprKind::kUnary || node.text != "&") return;
        const Expr* base = lvalue_base(node.lhs.get(), nullptr);
        if (base != nullptr && base->kind == ExprKind::kIdentifier &&
            locals.count(base->text) != 0) {
          found = base->text;
        }
      });
      return found;
    };
    for_each_expr(fn.body.get(), [&](const Expr& e) {
      if (e.kind != ExprKind::kBinary || e.text != "=") return;
      const std::string local = local_addr_in(e.rhs.get());
      if (local.empty()) return;
      bool deref = false;
      const Expr* base = lvalue_base(e.lhs.get(), &deref);
      const bool to_global = base != nullptr &&
                             base->kind == ExprKind::kIdentifier &&
                             locals.count(base->text) == 0 &&
                             globals_.count(base->text) != 0;
      if (!deref && !to_global) return;
      add(u, "CK004", CheckSeverity::kError, e.line,
          "address of local '" + local + "' escapes " +
              (to_global ? "to global '" + base->text + "'"
                         : std::string("through a pointer store")) +
              " across a potential checkpoint site in '" + fn.name +
              "'; the VDS rebuilds the frame elsewhere on restart, leaving "
              "the stored pointer dangling");
    });
    for_each_stmt(fn.body.get(), [&](const Stmt& s) {
      if (s.kind != StmtKind::kReturn || !s.expr) return;
      const std::string local = local_addr_in(s.expr.get());
      if (local.empty()) return;
      add(u, "CK004", CheckSeverity::kError, s.line,
          "address of local '" + local + "' returned from checkpointable "
          "function '" + fn.name + "' dangles after a restart rebuilds the "
          "frame");
    });
  }

  // CK002: record uses of extern-only globals inside checkpointed code.
  void note_extern_uses(const ParsedUnit& u, const Function& fn,
                        const std::set<std::string>& locals) {
    for_each_expr(fn.body.get(), [&](const Expr& e) {
      if (e.kind != ExprKind::kIdentifier) return;
      if (locals.count(e.text) != 0) return;
      auto it = globals_.find(e.text);
      if (it == globals_.end()) return;
      const GlobalInfo& info = it->second;
      if (info.defined || !info.extern_decl || info.is_const) return;
      auto& use = first_extern_use_[e.text];
      if (use.first == nullptr || (use.first == &u && e.line < use.second)) {
        use = {&u, e.line};
      }
    });
  }

  void check_main_reachability() {
    // Emit CK002 findings gathered across all units.
    for (const auto& [name, use] : first_extern_use_) {
      const ParsedUnit& u = *use.first;
      Finding f;
      f.id = "CK002";
      f.severity = CheckSeverity::kError;
      f.file = u.path;
      f.line = use.second;
      f.message =
          "mutable global '" + name +
          "' is declared extern but defined in no analyzed unit, yet "
          "checkpointed code references it; its bytes are never registered "
          "with the checkpointer (pass the defining file to ccift --check, "
          "or register it explicitly)";
      f.suppressed = is_suppressed(u.suppressions, f.id, f.line);
      findings_.push_back(std::move(f));
    }

    // CK007: a main that never reaches a checkpoint site.
    if (!program_.has_main || is_checkpointable("main")) return;
    for (const auto& u : units_) {
      for (const auto& fn : u.unit.functions) {
        if (fn.name != "main" || !fn.body) continue;
        add(u, "CK007", CheckSeverity::kWarning, fn.line,
            "no checkpoint site is reachable from main: the program never "
            "checkpoints and a failure restarts it from the beginning");
        return;
      }
    }
  }

  std::vector<ParsedUnit>& units_;
  std::vector<Finding>& findings_;
  ProgramAnalysis program_;
  std::map<std::string, GlobalInfo> globals_;
  std::map<std::string, std::pair<const ParsedUnit*, int>> first_extern_use_;
};

// ----------------------------------------------------- lexical fallback

/// Token-level scan for files outside the ccift C subset (the C++ examples
/// and apps): covers the call-based checks only. `prev` guards against
/// member calls (`obj.rand(...)` is not libc rand).
void lexical_scan(const CheckInput& input, const SuppressionMap& supp,
                  std::vector<Finding>& findings) {
  std::vector<Token> tokens;
  try {
    tokens = lex(input.text);
  } catch (const std::exception&) {
    // Fall back to a raw text scan: find `name (` with a word boundary.
    int line = 1;
    std::size_t start = 0;
    const std::string& text = input.text;
    while (start <= text.size()) {
      std::size_t eol = text.find('\n', start);
      if (eol == std::string::npos) eol = text.size();
      const std::string row = text.substr(start, eol - start);
      auto scan_set = [&](const auto& catalog, const char* id,
                          const char* what) {
        for (const auto& [name, detail] : catalog) {
          std::size_t at = row.find(name);
          while (at != std::string::npos) {
            const bool lb =
                at == 0 ||
                (!std::isalnum(static_cast<unsigned char>(row[at - 1])) &&
                 row[at - 1] != '_' && row[at - 1] != '.' &&
                 row[at - 1] != '>');
            std::size_t after = at + name.size();
            while (after < row.size() && row[after] == ' ') ++after;
            if (lb && after < row.size() && row[after] == '(') {
              Finding f;
              f.id = id;
              f.severity = CheckSeverity::kError;
              f.file = input.path;
              f.line = line;
              f.message = std::string("call to '") + name + "' (" + detail +
                          "): " + what;
              f.suppressed = is_suppressed(supp, f.id, line);
              findings.push_back(std::move(f));
            }
            at = row.find(name, at + 1);
          }
        }
      };
      scan_set(nondet_calls(), "CK003",
               "nondeterminism source outside the logged nondet path");
      scan_set(unsupported_calls(), "CK005",
               "unsupported across checkpoint/restart");
      start = eol + 1;
      ++line;
    }
    return;
  }

  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.is_ident() || !tokens[i + 1].is_punct("(")) continue;
    if (i > 0 && (tokens[i - 1].is_punct(".") || tokens[i - 1].is_punct("->"))) {
      continue;  // member call, not the libc symbol
    }
    auto emit = [&](const char* id, const std::string& detail) {
      Finding f;
      f.id = id;
      f.severity = CheckSeverity::kError;
      f.file = input.path;
      f.line = t.line;
      f.message = detail;
      f.suppressed = is_suppressed(supp, f.id, t.line);
      findings.push_back(std::move(f));
    };
    auto nd = nondet_calls().find(t.text);
    if (nd != nondet_calls().end()) {
      emit("CK003", "call to '" + t.text + "' (" + nd->second +
                        ") is a nondeterminism source outside the logged "
                        "nondet path; replay after recovery will diverge");
    }
    auto un = unsupported_calls().find(t.text);
    if (un != unsupported_calls().end()) {
      emit("CK005", "call to '" + t.text + "': " + un->second);
    }
  }
}

// ------------------------------------------------------------- reporting

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* severity_name(CheckSeverity s) {
  return s == CheckSeverity::kError ? "error" : "warning";
}

}  // namespace

std::size_t CheckReport::unsuppressed_errors() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (!f.suppressed && f.severity == CheckSeverity::kError) ++n;
  }
  return n;
}

std::size_t CheckReport::unsuppressed_warnings() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (!f.suppressed && f.severity == CheckSeverity::kWarning) ++n;
  }
  return n;
}

std::size_t CheckReport::suppressed() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.suppressed) ++n;
  }
  return n;
}

std::string CheckReport::to_json() const {
  std::ostringstream out;
  out << "{\n  \"tool\": \"ccift --check\",\n  \"files\": [\n";
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& f = files[i];
    out << "    {\"path\": \"" << json_escape(f.path) << "\", \"mode\": \""
        << json_escape(f.mode) << "\"";
    if (!f.note.empty()) out << ", \"note\": \"" << json_escape(f.note) << "\"";
    out << "}" << (i + 1 < files.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    out << "    {\"id\": \"" << f.id << "\", \"severity\": \""
        << severity_name(f.severity) << "\", \"file\": \""
        << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"suppressed\": " << (f.suppressed ? "true" : "false")
        << ", \"message\": \"" << json_escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"counts\": {\"total\": " << findings.size()
      << ", \"suppressed\": " << suppressed()
      << ", \"unsuppressed_errors\": " << unsuppressed_errors()
      << ", \"unsuppressed_warnings\": " << unsuppressed_warnings()
      << "}\n}\n";
  return out.str();
}

std::string CheckReport::to_text() const {
  std::ostringstream out;
  for (const auto& f : findings) {
    out << f.file << ":" << f.line << ": " << severity_name(f.severity)
        << ": " << f.message << " [" << f.id << "]";
    if (f.suppressed) out << " (suppressed)";
    out << "\n";
  }
  out << "ccift --check: " << unsuppressed_errors() << " error(s), "
      << unsuppressed_warnings() << " warning(s), " << suppressed()
      << " suppressed across " << files.size() << " file(s)\n";
  return out.str();
}

CheckReport run_checks(const std::vector<CheckInput>& inputs,
                       const CheckOptions& options) {
  CheckReport report;
  std::vector<ParsedUnit> parsed;
  std::map<std::string, std::size_t> order;

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const CheckInput& input = inputs[i];
    order.emplace(input.path, i);
    const SuppressionMap supp = scan_suppressions(input.text);
    try {
      TranslationUnit unit = options.mpi_facade
                                 ? parse(input.text, mpi_opaque_types())
                                 : parse(input.text);
      ParsedUnit pu;
      pu.input_index = i;
      pu.path = input.path;
      pu.unit = std::move(unit);
      pu.suppressions = supp;
      parsed.push_back(std::move(pu));
      report.files.push_back({input.path, "ast", ""});
    } catch (const std::exception& e) {
      report.files.push_back({input.path, "lexical", e.what()});
      lexical_scan(input, supp, report.findings);
    }
  }

  if (!parsed.empty()) {
    Checker checker(parsed, options, report.findings);
    checker.run();
  }

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [&](const Finding& a, const Finding& b) {
                     const std::size_t ia = order.at(a.file);
                     const std::size_t ib = order.at(b.file);
                     if (ia != ib) return ia < ib;
                     if (a.line != b.line) return a.line < b.line;
                     return a.id < b.id;
                   });
  return report;
}

}  // namespace c3::ccift
