// Recursive-descent parser for the CCIFT C subset.
#pragma once

#include <string>

#include "ccift/ast.hpp"
#include "ccift/lexer.hpp"

namespace c3::ccift {

/// Parse a translation unit. Throws ParseError on malformed input.
TranslationUnit parse(const std::string& source);

}  // namespace c3::ccift
