// Recursive-descent parser for the CCIFT C subset.
#pragma once

#include <set>
#include <string>

#include "ccift/ast.hpp"
#include "ccift/lexer.hpp"

namespace c3::ccift {

/// Parse a translation unit. Throws ParseError on malformed input.
/// `extra_types` names typedefs (e.g. the MPI opaque handle types) treated
/// as base types in declarations, casts and sizeof -- the subset has no
/// typedef tracking of its own, and headers arrive as raw preprocessor
/// lines the parser never sees.
TranslationUnit parse(const std::string& source,
                      const std::set<std::string>& extra_types = {});

}  // namespace c3::ccift
