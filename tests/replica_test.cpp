// Diskless checkpoint tier: erasure-coded peer replication (src/replica/).
//
// Layers under test, bottom-up: the GF(256) codec, parity-group placement,
// the ReplicatedStorage tier in loopback mode (fold + persist + reconstruct),
// the full CheckpointStore(ReplicatedStorage(backend)) stack with delta
// healing, and finally whole jobs over the wire -- kill a rank AND wipe its
// storage backend, and require the recovered run byte-identical to the
// failure-free one. Losing parity_k + 1 members of one group must fail
// loudly with a diagnostic, never silently diverge.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>
#include <vector>

#include "ckptstore/store.hpp"
#include "core/job.hpp"
#include "core/process.hpp"
#include "replica/group.hpp"
#include "replica/replicated_storage.hpp"
#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"
#include "net/transport.hpp"
#include "util/error.hpp"
#include "util/gf256.hpp"
#include "util/stable_storage.hpp"

namespace c3 {
namespace {

util::Bytes pattern_blob(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xff);
  return out;
}

// ------------------------------------------------------------ GF(256) codec

TEST(Gf256, MulInvRoundtripOverWholeField) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(util::gf256::mul(ua, util::gf256::inv(ua)), 1) << a;
  }
  EXPECT_EQ(util::gf256::mul(0, 57), 0);
  EXPECT_THROW(util::gf256::inv(0), util::UsageError);
}

TEST(Gf256, AxpyCoefficientOneIsXor) {
  auto dst = pattern_blob(257, 1);
  const auto src = pattern_blob(257, 2);
  auto expect = dst;
  for (std::size_t i = 0; i < dst.size(); ++i) expect[i] ^= src[i];
  util::gf256::axpy(dst.data(), src.data(), dst.size(), 1);
  EXPECT_EQ(dst, expect);
  // c == 0 must be a no-op.
  util::gf256::axpy(dst.data(), src.data(), dst.size(), 0);
  EXPECT_EQ(dst, expect);
}

TEST(Gf256, SolveErasuresRecoversTwoUnknowns) {
  // Four data vectors, two Reed-Solomon parity rows, erase two.
  const std::size_t len = 113;
  std::vector<util::Bytes> data;
  for (int i = 0; i < 4; ++i) data.push_back(pattern_blob(len, 10 + i));
  std::vector<util::Bytes> parity(2, util::Bytes(len));
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 4; ++i) {
      util::gf256::axpy(parity[j].data(), data[i].data(), len,
                        util::gf256::coef(j, i));
    }
  }
  // Unknowns: members 1 and 3. Subtract the known members from each row.
  std::vector<util::Bytes> rhs = parity;
  for (int j = 0; j < 2; ++j) {
    for (int i : {0, 2}) {
      util::gf256::axpy(rhs[j].data(), data[i].data(), len,
                        util::gf256::coef(j, i));
    }
  }
  std::vector<std::vector<std::uint8_t>> a = {
      {util::gf256::coef(0, 1), util::gf256::coef(0, 3)},
      {util::gf256::coef(1, 1), util::gf256::coef(1, 3)}};
  const auto solved = util::gf256::solve_erasures(a, rhs, len);
  ASSERT_EQ(solved.size(), 2u);
  EXPECT_EQ(solved[0], data[1]);
  EXPECT_EQ(solved[1], data[3]);
}

// ------------------------------------------------------------ group layout

TEST(GroupMap, PartitionAndRemainderAbsorption) {
  replica::GroupMap m(10, 4, 1);
  EXPECT_EQ(m.ngroups(), 2);
  EXPECT_EQ(m.group_count(0), 4);
  EXPECT_EQ(m.group_count(1), 6);  // remainder joins the last group
  EXPECT_EQ(m.gid_of(3), 0);
  EXPECT_EQ(m.gid_of(4), 1);
  EXPECT_EQ(m.gid_of(9), 1);
  EXPECT_EQ(m.member_index(9), 5);
}

TEST(GroupMap, ParityOwnersLiveInNextGroupAndRotate) {
  replica::GroupMap m(8, 4, 2);
  for (int epoch = 1; epoch < 6; ++epoch) {
    // Group 0's shards live in group 1 and vice versa: losing a whole
    // group never takes its own parity with it (two or more groups).
    for (int gid = 0; gid < 2; ++gid) {
      const int o0 = m.owner(gid, 0, epoch);
      const int o1 = m.owner(gid, 1, epoch);
      EXPECT_EQ(m.gid_of(o0), (gid + 1) % 2);
      EXPECT_EQ(m.gid_of(o1), (gid + 1) % 2);
      EXPECT_NE(o0, o1) << "shards of one group must spread across owners";
    }
    // Rotation: consecutive epochs shift the owner slot.
    EXPECT_NE(m.owner(0, 0, epoch), m.owner(0, 0, epoch + 1));
  }
}

// ------------------------------------------- loopback tier, single process

TEST(ReplicaLoopback, XorParityReconstructsWipedRankByteIdentical) {
  auto inner = std::make_shared<util::MemoryStorage>();
  replica::ReplicaConfig rc;
  rc.group_size = 4;
  rc.parity_k = 1;
  replica::ReplicatedStorage rs(inner, 4, rc);
  std::vector<util::Bytes> blobs;
  for (int r = 0; r < 4; ++r) {
    blobs.push_back(pattern_blob(900 + static_cast<std::size_t>(r) * 37,
                                 static_cast<std::uint64_t>(100 + r)));
    rs.put({1, r, "state"}, blobs.back());
  }
  rs.commit(1);
  // The node (and its modelled disk) dies: the backend no longer has any
  // blob of rank 2, including parity shards rank 2 hosted.
  rs.wipe_rank(2);
  EXPECT_FALSE(inner->get({1, 2, "state"}).has_value());
  const auto back = rs.get({1, 2, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blobs[2]);
  // Reconstruction heals the backend: the next read is a plain hit.
  EXPECT_TRUE(inner->get({1, 2, "state"}).has_value());
  const auto s = rs.storage_stats();
  EXPECT_GE(s.reconstruct_reads, 1u);
  EXPECT_GT(s.parity_bytes_sent, 0u);
  EXPECT_GT(s.parity_bytes_received, 0u);
}

TEST(ReplicaLoopback, ReedSolomonSurvivesDoubleWipe) {
  auto inner = std::make_shared<util::MemoryStorage>();
  replica::ReplicaConfig rc;
  rc.group_size = 4;
  rc.parity_k = 2;
  replica::ReplicatedStorage rs(inner, 8, rc);
  std::vector<util::Bytes> blobs;
  for (int r = 0; r < 8; ++r) {
    blobs.push_back(pattern_blob(512 + static_cast<std::size_t>(r) * 61,
                                 static_cast<std::uint64_t>(r)));
    rs.put({1, r, "state"}, blobs.back());
  }
  rs.commit(1);
  rs.wipe_rank(2);
  rs.wipe_rank(3);
  for (int r : {2, 3}) {
    const auto back = rs.get({1, r, "state"});
    ASSERT_TRUE(back.has_value()) << "rank " << r;
    EXPECT_EQ(*back, blobs[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

TEST(ReplicaLoopback, LosingParityKPlusOneFailsWithDiagnostic) {
  auto inner = std::make_shared<util::MemoryStorage>();
  replica::ReplicaConfig rc;
  rc.group_size = 4;
  rc.parity_k = 1;
  replica::ReplicatedStorage rs(inner, 8, rc);
  for (int r = 0; r < 8; ++r) {
    rs.put({1, r, "state"}, pattern_blob(256, static_cast<std::uint64_t>(r)));
  }
  rs.commit(1);
  rs.wipe_rank(2);
  rs.wipe_rank(3);  // two losses in group 0, one XOR shard: unrecoverable
  try {
    (void)rs.get({1, 2, "state"});
    FAIL() << "double loss under XOR parity must not reconstruct";
  } catch (const util::CorruptionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("group"), std::string::npos) << what;
    EXPECT_NE(what.find("parity"), std::string::npos) << what;
  }
}

TEST(ReplicaLoopback, DuplicatePutOfSameKeyIsRejected) {
  auto inner = std::make_shared<util::MemoryStorage>();
  replica::ReplicatedStorage rs(inner, 4, {});
  rs.put({1, 0, "state"}, pattern_blob(64, 7));
  // Overwriting a contribution would silently corrupt the folded parity.
  EXPECT_THROW(rs.put({1, 0, "state"}, pattern_blob(64, 8)),
               util::UsageError);
  // A new execution resets the ledger and accepts the key again.
  rs.begin_execution(2);
  EXPECT_NO_THROW(rs.put({1, 0, "state"}, pattern_blob(64, 9)));
}

// Full stack: the pipeline's delta chains heal recursively through the
// replica tier -- an epoch-2 delta blob reconstructed from parity pulls its
// wiped epoch-1 home blob back through the same path.
TEST(ReplicaLoopback, DeltaChainsHealRecursivelyThroughReconstruction) {
  auto backend = std::make_shared<util::MemoryStorage>();
  replica::ReplicaConfig rc;
  rc.group_size = 4;
  rc.parity_k = 1;
  // Two groups: parity always lives in the *other* group, so wiping a rank
  // never takes the covering shard with it (single-group placement is the
  // documented degraded mode).
  auto tier = std::make_shared<replica::ReplicatedStorage>(backend, 8, rc);
  ckptstore::StoreOptions so;
  so.async = false;
  ckptstore::CheckpointStore store(tier, so);

  std::vector<util::Bytes> epoch1, epoch2;
  for (int r = 0; r < 8; ++r) {
    epoch1.push_back(pattern_blob(8192, static_cast<std::uint64_t>(40 + r)));
    store.put({1, r, "state"}, epoch1.back());
  }
  store.commit(1);
  tier->begin_execution(2);
  for (int r = 0; r < 8; ++r) {
    // Small mutation: epoch 2 delta-encodes against epoch 1.
    epoch2.push_back(epoch1[static_cast<std::size_t>(r)]);
    epoch2.back()[100] ^= std::byte{0xff};
    store.put({2, r, "state"}, epoch2.back());
  }
  store.commit(2);
  const auto pre = store.storage_stats();
  EXPECT_GT(pre.ref_chunks, 0u) << "epoch 2 never delta-encoded";

  store.wipe_rank(1);
  EXPECT_FALSE(backend->get({2, 1, "state"}).has_value());
  const auto back = store.get({2, 1, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, epoch2[1]);
  EXPECT_GE(tier->storage_stats().reconstruct_reads, 1u);
}

// ------------------------------------------------------- whole jobs (wire)

/// Thread-safe per-rank result collector (same shape as recovery_test).
struct ResultSink {
  std::mutex mu;
  std::vector<long long> values;
  void put(int rank, long long v) {
    std::lock_guard lock(mu);
    if (values.size() <= static_cast<std::size_t>(rank)) {
      values.resize(static_cast<std::size_t>(rank) + 1);
    }
    values[static_cast<std::size_t>(rank)] = v;
  }
};

void ring_app(core::Process& p, std::shared_ptr<ResultSink> sink, int iters) {
  std::vector<std::uint64_t> blob(4096);
  long long acc = p.rank() + 1;
  int iter = 0;
  p.register_state("blob", blob.data(), blob.size() * 8);
  p.register_value("acc", acc);
  p.register_value("iter", iter);
  p.complete_registration();
  const int right = (p.rank() + 1) % p.nranks();
  const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
  while (iter < iters) {
    blob[static_cast<std::size_t>(iter) % blob.size()] =
        static_cast<std::uint64_t>(acc);
    p.send_value(acc, right, 0);
    // Unsigned mix: the fold is a wraparound hash, and signed overflow
    // would be UB.
    acc = static_cast<long long>(
        static_cast<unsigned long long>(acc) * 3u +
        static_cast<unsigned long long>(p.recv_value<long long>(left, 0)));
    ++iter;
    p.potential_checkpoint();
  }
  sink->put(p.rank(), acc);
}

struct WireRun {
  std::vector<long long> values;
  core::JobReport report;
  util::StorageStats stats;
  std::uint64_t reconstructs = 0;
};

WireRun run_replicated_ring(int ranks, int iters, int parity_k,
                            std::optional<net::FailureSpec> failure,
                            bool wipe_on_failure,
                            std::vector<int> extra_wipes = {},
                            int group_size = 4) {
  auto sink = std::make_shared<ResultSink>();
  core::JobConfig cfg;
  cfg.ranks = ranks;
  cfg.policy = core::CheckpointPolicy::every(3);
  cfg.replica_group_size = group_size;
  cfg.replica_parity_k = parity_k;
  cfg.wipe_failed_rank_storage = wipe_on_failure;
  cfg.extra_wipe_ranks = std::move(extra_wipes);
  cfg.failure = failure;
  core::Job job(cfg);
  WireRun out;
  out.report = job.run([&](core::Process& p) { ring_app(p, sink, iters); });
  out.values = sink->values;
  out.stats = job.storage_stats();
  out.reconstructs =
      job.replica() ? job.replica()->storage_stats().reconstruct_reads : 0;
  return out;
}

// Iterations / trigger for the kill-and-wipe jobs: coordination rounds
// progress on wall clock (cross-thread hops) while the app races through
// iterations, so the failure must land late enough that the first commit
// reliably precedes it. The retry loop absorbs scheduling outliers: every
// attempt must produce byte-identical results; at least one must recover
// from a committed checkpoint (not restart from scratch).
constexpr int kJobIters = 48;
constexpr std::uint64_t kJobTrigger = 120;

TEST(ReplicaJob, XorParityRecoversKilledAndWipedRank) {
  const auto clean =
      run_replicated_ring(8, kJobIters, 1, std::nullopt, false);
  EXPECT_EQ(clean.report.executions, 1);
  EXPECT_GT(clean.stats.parity_bytes_sent, 0u);
  EXPECT_GT(clean.stats.parity_bytes_received, 0u);

  bool recovered_once = false;
  for (int attempt = 0; attempt < 5 && !recovered_once; ++attempt) {
    const auto recovered = run_replicated_ring(
        8, kJobIters, 1,
        net::FailureSpec{.victim_rank = 2,
                         .trigger_events = kJobTrigger +
                                           static_cast<std::uint64_t>(
                                               attempt) * 8},
        /*wipe_on_failure=*/true);
    EXPECT_GE(recovered.report.failures, 1);
    ASSERT_EQ(clean.values, recovered.values);
    if (recovered.report.recovered) {
      recovered_once = true;
      EXPECT_GT(recovered.reconstructs, 0u)
          << "the wiped rank's blobs must have come back through parity";
    }
  }
  EXPECT_TRUE(recovered_once)
      << "no attempt recovered from a committed checkpoint";
}

TEST(ReplicaJob, ReedSolomonRecoversCorrelatedDoubleWipe) {
  const auto clean =
      run_replicated_ring(8, kJobIters, 2, std::nullopt, false);
  bool recovered_once = false;
  for (int attempt = 0; attempt < 5 && !recovered_once; ++attempt) {
    // Rank 2 dies; ranks 2 AND 3 (same parity group) lose their disks.
    const auto recovered = run_replicated_ring(
        8, kJobIters, 2,
        net::FailureSpec{.victim_rank = 2,
                         .trigger_events = kJobTrigger +
                                           static_cast<std::uint64_t>(
                                               attempt) * 8},
        /*wipe_on_failure=*/true, /*extra_wipes=*/{3});
    EXPECT_GE(recovered.report.failures, 1);
    ASSERT_EQ(clean.values, recovered.values);
    if (recovered.report.recovered) {
      recovered_once = true;
      EXPECT_GT(recovered.reconstructs, 0u);
    }
  }
  EXPECT_TRUE(recovered_once)
      << "no attempt recovered from a committed checkpoint";
}

TEST(ReplicaJob, DoubleLossBeyondParityFailsLoudly) {
  // XOR parity, two losses in group 0: a recovery that needs the wiped
  // blobs must fail with the reconstruction diagnostic, never silently
  // produce wrong state. (An attempt whose failure lands before the first
  // commit restarts from scratch without reading storage -- retry later.)
  bool diagnosed = false;
  for (int attempt = 0; attempt < 5 && !diagnosed; ++attempt) {
    try {
      const auto r = run_replicated_ring(
          8, kJobIters, 1,
          net::FailureSpec{.victim_rank = 2,
                           .trigger_events = kJobTrigger +
                                             static_cast<std::uint64_t>(
                                                 attempt) * 8},
          /*wipe_on_failure=*/true, /*extra_wipes=*/{3});
      ASSERT_FALSE(r.report.recovered)
          << "recovery beyond the parity budget must not succeed";
    } catch (const util::CorruptionError& e) {
      diagnosed = true;
      const std::string what = e.what();
      EXPECT_NE(what.find("group"), std::string::npos) << what;
    }
  }
  EXPECT_TRUE(diagnosed) << "no attempt hit the reconstruction path";
}

// --------------------------------------- wire transport: pooled zero-copy

// Parity traffic must ride the fabric's pooled buffers: after a warm-up
// rotation of shard owners, further epochs move replica packets without a
// single fresh allocation.
TEST(ReplicaWire, SteadyStateReplicaTrafficDoesNotAllocate) {
  const int n = 8;
  auto inner = std::make_shared<util::MemoryStorage>();
  replica::ReplicaConfig rc;
  rc.group_size = 4;
  rc.parity_k = 1;
  auto rs = std::make_shared<replica::ReplicatedStorage>(inner, n, rc);
  rs->enable_wire();
  rs->begin_execution(1);

  const int warm_epochs = 5;   // > one full owner rotation (group size 4)
  const int total_epochs = 10;
  std::atomic<std::uint64_t> allocs_mid{0}, allocs_end{0};
  std::atomic<std::uint64_t> replica_mid{0}, replica_end{0};
  std::atomic<int> done{0};

  simmpi::Runtime rt(n, {});
  rt.run([&](simmpi::Api& api) {
    rs->bind_thread_api(&api);
    const int me = api.world_rank();
    // Pre-warm the fabric pool across every size class replica frames use
    // (contributions ~2 KiB, acks and flush nudges are tiny). Peak
    // in-flight depth is timing-dependent, so without this a lucky first
    // half can under-fill the pool and a later burst would count a miss
    // against the steady-state assertion.
    {
      auto& fabric = api.runtime().fabric();
      std::vector<util::Bytes> warm;
      for (std::size_t cls = 64; cls <= 8192; cls *= 2) {
        for (int i = 0; i < 8; ++i) warm.push_back(fabric.acquire_buffer(cls));
      }
      for (auto& b : warm) fabric.release_buffer(std::move(b));
    }
    for (int epoch = 1; epoch <= total_epochs; ++epoch) {
      rs->put({epoch, me, "state"},
              pattern_blob(2048, static_cast<std::uint64_t>(epoch * n + me)));
      // Every rank commits: commit() self-pumps its replica lane until all
      // contributions for epochs <= epoch are folded, persisted and acked.
      rs->commit(epoch);
      if (me == 0 && epoch == warm_epochs) {
        const auto& fs = api.runtime().fabric().stats();
        allocs_mid = fs.allocs.load();
        replica_mid = fs.replica_packets.load();
      }
    }
    const auto& fs = api.runtime().fabric().stats();
    if (me == 0) {
      allocs_end = fs.allocs.load();
      replica_end = fs.replica_packets.load();
    }
    // Keep pumping until every rank is done: a finished rank must still
    // serve acks and nudges for slower peers.
    done.fetch_add(1);
    while (done.load() < n) {
      rs->drain(api);
      api.idle_wait(std::chrono::microseconds(50));
    }
  });

  EXPECT_GT(replica_mid.load(), 0u);
  EXPECT_GT(replica_end.load(), replica_mid.load())
      << "the post-warm-up half must have moved replica packets";
  EXPECT_EQ(allocs_end.load(), allocs_mid.load())
      << "steady-state replica traffic allocated fresh buffers";
}

}  // namespace
}  // namespace c3
