// Point-to-point semantics of the simulated MPI runtime: blocking and
// non-blocking transfers, tag matching, wildcards, probing, MPI
// non-overtaking, and the application-level non-FIFO behaviour from
// Section 3.3 of the paper (a receiver using tags to take messages in a
// different order than they were sent).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"

namespace c3::simmpi {
namespace {

util::Bytes bytes_of(const std::string& s) {
  util::Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string string_of(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(P2p, BlockingSendRecv) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      auto msg = bytes_of("hello");
      api.send(api.world(), msg, 1, 7);
    } else {
      util::Bytes buf(5);
      Status st = api.recv(api.world(), buf, 0, 7);
      EXPECT_EQ(string_of(buf), "hello");
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.size, 5u);
    }
  });
}

TEST(P2p, EmptyMessage) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      api.send(api.world(), std::span<const std::byte>{}, 1, 0);
    } else {
      Status st = api.recv(api.world(), {}, 0, 0);
      EXPECT_EQ(st.size, 0u);
    }
  });
}

TEST(P2p, RecvIntoLargerBufferReportsActualSize) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      auto msg = bytes_of("abc");
      api.send(api.world(), msg, 1, 0);
    } else {
      util::Bytes buf(100);
      Status st = api.recv(api.world(), buf, 0, 0);
      EXPECT_EQ(st.size, 3u);
    }
  });
}

TEST(P2p, TruncationThrows) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      auto msg = bytes_of("too long");
      api.send(api.world(), msg, 1, 0);
    } else {
      util::Bytes buf(2);
      api.recv(api.world(), buf, 0, 0);
    }
  }),
               util::UsageError);
}

TEST(P2p, AnySourceWildcard) {
  Runtime rt(4);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      std::vector<bool> seen(4, false);
      for (int i = 0; i < 3; ++i) {
        std::int32_t v = 0;
        Status st = api.recv(api.world(),
                             {reinterpret_cast<std::byte*>(&v), 4},
                             kAnySource, 5);
        EXPECT_EQ(v, st.source * 10);
        seen[static_cast<std::size_t>(st.source)] = true;
      }
      EXPECT_TRUE(seen[1] && seen[2] && seen[3]);
    } else {
      const std::int32_t v = api.world_rank() * 10;
      api.send(api.world(), util::as_bytes(v), 0, 5);
    }
  });
}

TEST(P2p, AnyTagWildcard) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      const std::int32_t v = 99;
      api.send(api.world(), util::as_bytes(v), 1, 123);
    } else {
      std::int32_t v = 0;
      Status st = api.recv(api.world(), {reinterpret_cast<std::byte*>(&v), 4},
                           0, kAnyTag);
      EXPECT_EQ(v, 99);
      EXPECT_EQ(st.tag, 123);
    }
  });
}

// The paper's Section 3.3: application-level delivery is not FIFO because
// tag matching lets the receiver take messages out of send order.
TEST(P2p, TagMatchingBreaksFifoAtApplicationLevel) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      const std::int32_t first = 1, second = 2;
      api.send(api.world(), util::as_bytes(first), 1, /*tag=*/10);
      api.send(api.world(), util::as_bytes(second), 1, /*tag=*/20);
    } else {
      std::int32_t a = 0, b = 0;
      // Receive the *later* message first by asking for its tag.
      api.recv(api.world(), {reinterpret_cast<std::byte*>(&a), 4}, 0, 20);
      api.recv(api.world(), {reinterpret_cast<std::byte*>(&b), 4}, 0, 10);
      EXPECT_EQ(a, 2);
      EXPECT_EQ(b, 1);
    }
  });
}

// MPI non-overtaking: same (src, tag) messages arrive in send order.
TEST(P2p, NonOvertakingSameTag) {
  Runtime rt(2, NetConfig{.order = NetConfig::Order::kRandomReorder,
                          .seed = 99,
                          .p_hold = 0.8,
                          .max_hold = 6});
  rt.run([](Api& api) {
    constexpr int kN = 64;
    if (api.world_rank() == 0) {
      for (std::int32_t i = 0; i < kN; ++i) {
        api.send(api.world(), util::as_bytes(i), 1, 3);
      }
    } else {
      for (std::int32_t i = 0; i < kN; ++i) {
        std::int32_t v = -1;
        api.recv(api.world(), {reinterpret_cast<std::byte*>(&v), 4}, 0, 3);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2p, IsendIrecvWaitall) {
  Runtime rt(2);
  rt.run([](Api& api) {
    constexpr int kN = 8;
    if (api.world_rank() == 0) {
      std::vector<std::int32_t> vals(kN);
      std::iota(vals.begin(), vals.end(), 100);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(api.isend(
            api.world(),
            {reinterpret_cast<const std::byte*>(&vals[static_cast<std::size_t>(i)]), 4},
            1, i));
      }
      api.waitall(reqs);
    } else {
      std::vector<std::int32_t> vals(kN, -1);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(api.irecv(
            api.world(),
            {reinterpret_cast<std::byte*>(&vals[static_cast<std::size_t>(i)]), 4},
            0, i));
      }
      api.waitall(reqs);
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(vals[static_cast<std::size_t>(i)], 100 + i);
      }
    }
  });
}

TEST(P2p, TestPollsCompletion) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      // Give the receiver a moment to post its irecv first (not required
      // for correctness, just exercising both match paths).
      const std::int32_t v = 5;
      api.send(api.world(), util::as_bytes(v), 1, 0);
    } else {
      std::int32_t v = 0;
      Request r = api.irecv(api.world(), {reinterpret_cast<std::byte*>(&v), 4},
                            0, 0);
      while (!api.test(r)) {
        api.idle_wait(std::chrono::microseconds(100));
      }
      EXPECT_EQ(v, 5);
      EXPECT_TRUE(r.complete());
    }
  });
}

TEST(P2p, PostedReceivesMatchInPostOrder) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      const std::int32_t a = 1, b = 2;
      api.send(api.world(), util::as_bytes(a), 1, 0);
      api.send(api.world(), util::as_bytes(b), 1, 0);
    } else {
      std::int32_t first = 0, second = 0;
      Request r1 = api.irecv(api.world(),
                             {reinterpret_cast<std::byte*>(&first), 4}, 0, 0);
      Request r2 = api.irecv(api.world(),
                             {reinterpret_cast<std::byte*>(&second), 4}, 0, 0);
      api.wait(r1);
      api.wait(r2);
      EXPECT_EQ(first, 1);
      EXPECT_EQ(second, 2);
    }
  });
}

TEST(P2p, IprobeSeesWithoutConsuming) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      auto msg = bytes_of("probe-me");
      api.send(api.world(), msg, 1, 9);
    } else {
      ProbeInfo info = api.probe(api.world(), kAnySource, kAnyTag);
      EXPECT_EQ(info.source, 0);
      EXPECT_EQ(info.tag, 9);
      EXPECT_EQ(info.size, 8u);
      // The message is still there.
      util::Bytes buf(info.size);
      Status st = api.recv(api.world(), buf, info.source, info.tag);
      EXPECT_EQ(string_of(buf), "probe-me");
      EXPECT_EQ(st.size, 8u);
      // And now it is gone.
      EXPECT_FALSE(api.iprobe(api.world(), kAnySource, kAnyTag).has_value());
    }
  });
}

TEST(P2p, RecvAnySizesDynamically) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      auto m1 = bytes_of("short");
      auto m2 = bytes_of("a much longer message body");
      api.send(api.world(), m1, 1, 1);
      api.send(api.world(), m2, 1, 2);
    } else {
      auto [b1, s1] = api.recv_any(api.world(), 0, 1);
      auto [b2, s2] = api.recv_any(api.world(), 0, 2);
      EXPECT_EQ(string_of(b1), "short");
      EXPECT_EQ(string_of(b2), "a much longer message body");
    }
  });
}

TEST(P2p, CancelRemovesPostedReceive) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 1) {
      std::int32_t v = 0;
      Request r = api.irecv(api.world(), {reinterpret_cast<std::byte*>(&v), 4},
                            0, 0);
      api.cancel(r);
      EXPECT_TRUE(r.complete());
      EXPECT_TRUE(r.state()->cancelled);
    }
  });
}

TEST(P2p, SelfSend) {
  Runtime rt(1);
  rt.run([](Api& api) {
    const std::int32_t v = 42;
    Request s = api.isend(api.world(), util::as_bytes(v), 0, 0);
    std::int32_t got = 0;
    api.recv(api.world(), {reinterpret_cast<std::byte*>(&got), 4}, 0, 0);
    api.wait(s);
    EXPECT_EQ(got, 42);
  });
}

TEST(P2p, ManyToOneStress) {
  constexpr int kRanks = 8;
  constexpr int kPerRank = 200;
  Runtime rt(kRanks, NetConfig{.order = NetConfig::Order::kRandomReorder,
                               .seed = 3,
                               .p_hold = 0.5,
                               .max_hold = 4});
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      std::vector<std::int64_t> sums(kRanks, 0);
      for (int i = 0; i < (kRanks - 1) * kPerRank; ++i) {
        std::int64_t v = 0;
        Status st = api.recv(api.world(), {reinterpret_cast<std::byte*>(&v), 8},
                             kAnySource, 0);
        sums[static_cast<std::size_t>(st.source)] += v;
      }
      for (int r = 1; r < kRanks; ++r) {
        // Each sender sends 0..kPerRank-1 scaled by its rank.
        const std::int64_t expect =
            static_cast<std::int64_t>(r) * kPerRank * (kPerRank - 1) / 2;
        EXPECT_EQ(sums[static_cast<std::size_t>(r)], expect);
      }
    } else {
      for (std::int64_t i = 0; i < kPerRank; ++i) {
        const std::int64_t v = i * api.world_rank();
        api.send(api.world(), util::as_bytes(v), 0, 0);
      }
    }
  });
}

TEST(P2p, InvalidTagThrows) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      const std::int32_t v = 0;
      api.send(api.world(), util::as_bytes(v), 1, -5);
    }
  }),
               util::UsageError);
}

TEST(P2p, StatsTrackTraffic) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      auto msg = bytes_of("xyz");
      api.send(api.world(), msg, 1, 0);
      EXPECT_EQ(api.stats().sends, 1u);
      EXPECT_EQ(api.stats().send_bytes, 3u);
    } else {
      util::Bytes buf(3);
      api.recv(api.world(), buf, 0, 0);
      EXPECT_EQ(api.stats().recvs, 1u);
      EXPECT_EQ(api.stats().recv_bytes, 3u);
    }
  });
}

}  // namespace
}  // namespace c3::simmpi
