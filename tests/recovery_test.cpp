// Failure injection and recovery: the whole point of the system. Every test
// runs an application twice -- once failure-free, once with an injected
// stopping failure and automatic rollback -- and requires identical results
// (Sections 3.2, 4, 5).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/job.hpp"
#include "core/process.hpp"

namespace c3::core {
namespace {

/// Thread-safe per-rank result collector.
struct ResultSink {
  std::mutex mu;
  std::vector<long long> values;
  std::vector<ProcessStats> stats;
  void put(int rank, long long v, const ProcessStats& s) {
    std::lock_guard lock(mu);
    if (values.size() <= static_cast<std::size_t>(rank)) {
      values.resize(static_cast<std::size_t>(rank) + 1);
      stats.resize(static_cast<std::size_t>(rank) + 1);
    }
    values[static_cast<std::size_t>(rank)] = v;
    stats[static_cast<std::size_t>(rank)] = s;
  }
};

/// Ring accumulation app: every iteration each rank sends its accumulator
/// to the right, receives from the left, and folds it in. Deterministic
/// final state, lots of cross-epoch traffic.
void ring_app(Process& p, std::shared_ptr<ResultSink> sink, int iters) {
  long long acc = p.rank() + 1;
  int iter = 0;
  p.register_value("acc", acc);
  p.register_value("iter", iter);
  p.complete_registration();
  const int right = (p.rank() + 1) % p.nranks();
  const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
  while (iter < iters) {
    p.send_value(acc, right, 0);
    const long long got = p.recv_value<long long>(left, 0);
    acc = acc * 3 + got;
    ++iter;
    p.potential_checkpoint();
  }
  sink->put(p.rank(), acc, p.stats());
}

std::vector<long long> run_ring(int ranks, int iters,
                                std::optional<net::FailureSpec> failure,
                                std::uint64_t net_seed = 0,
                                int* executions = nullptr) {
  auto sink = std::make_shared<ResultSink>();
  JobConfig cfg;
  cfg.ranks = ranks;
  cfg.policy = CheckpointPolicy::every(3);
  cfg.failure = failure;
  if (net_seed != 0) {
    cfg.net.order = simmpi::NetConfig::Order::kRandomReorder;
    cfg.net.seed = net_seed;
    cfg.net.p_hold = 0.6;
    cfg.net.max_hold = 5;
  }
  Job job(cfg);
  auto report = job.run([&](Process& p) { ring_app(p, sink, iters); });
  if (executions) *executions = report.executions;
  if (failure) {
    EXPECT_GE(report.failures, 1) << "the injected failure never fired";
  }
  return sink->values;
}

TEST(Recovery, RingSurvivesFailureWithIdenticalResult) {
  const auto clean = run_ring(4, 12, std::nullopt);
  int executions = 0;
  const auto recovered =
      run_ring(4, 12,
               net::FailureSpec{.victim_rank = 2, .trigger_events = 25},
               /*net_seed=*/0, &executions);
  EXPECT_GE(executions, 2) << "job must have rolled back at least once";
  EXPECT_EQ(clean, recovered);
}

class RingFailurePoints : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingFailurePoints, AnyFailurePointRecoversExactly) {
  const auto clean = run_ring(4, 10, std::nullopt);
  const auto recovered = run_ring(
      4, 10, net::FailureSpec{.victim_rank = 1,
                              .trigger_events = GetParam()});
  EXPECT_EQ(clean, recovered) << "divergence after failure at event "
                              << GetParam();
}

// 10 iterations x 3 protocol events each = 30 events total; triggers must
// stay below that or the failure never fires.
INSTANTIATE_TEST_SUITE_P(TriggerSweep, RingFailurePoints,
                         ::testing::Values(1ull, 5ull, 9ull, 14ull, 20ull,
                                           27ull, 29ull));

TEST(Recovery, SurvivesUnderAdversarialReordering) {
  for (std::uint64_t seed : {11ull, 23ull}) {
    const auto clean = run_ring(4, 10, std::nullopt, seed);
    const auto recovered = run_ring(
        4, 10, net::FailureSpec{.victim_rank = 3, .trigger_events = 18}, seed);
    EXPECT_EQ(clean, recovered) << "seed " << seed;
  }
}

TEST(Recovery, FailureBeforeFirstCheckpointRestartsFromScratch) {
  // Policy never fires -> no checkpoint exists when the failure hits; the
  // job must restart from the beginning and still produce the right answer.
  auto sink = std::make_shared<ResultSink>();
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.policy = CheckpointPolicy::none();
  cfg.failure = net::FailureSpec{.victim_rank = 1, .trigger_events = 4};
  Job job(cfg);
  auto report = job.run([&](Process& p) {
    long long acc = 0;
    int iter = 0;
    p.register_value("acc", acc);
    p.register_value("iter", iter);
    p.complete_registration();
    EXPECT_FALSE(p.restored());
    while (iter < 5) {
      p.send_value(iter, (p.rank() + 1) % 2, 0);
      acc += p.recv_value<long long>((p.rank() + 1) % 2, 0);
      ++iter;
      p.potential_checkpoint();
    }
    sink->put(p.rank(), acc, p.stats());
  });
  EXPECT_EQ(report.executions, 2);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(sink->values[0], 10);
  EXPECT_EQ(sink->values[1], 10);
}

TEST(Recovery, RestoredFlagSetOnRecoveryRun) {
  auto observed_restore = std::make_shared<std::atomic<int>>(0);
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.policy = CheckpointPolicy::every(1);
  // Late trigger: the first global checkpoint needs several control
  // round-trips to commit, and recovery only happens from a commit.
  cfg.failure = net::FailureSpec{.victim_rank = 0, .trigger_events = 16};
  Job job(cfg);
  auto report = job.run([&](Process& p) {
    int iter = 0;
    p.register_value("iter", iter);
    p.complete_registration();
    if (p.restored()) observed_restore->fetch_add(1);
    while (iter < 6) {
      p.send_value(iter, (p.rank() + 1) % 2, 0);
      (void)p.recv_value<int>((p.rank() + 1) % 2, 0);
      ++iter;
      p.potential_checkpoint();
    }
  });
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(observed_restore->load(), 2) << "both ranks must restore";
}

// Non-deterministic events: random draws logged while logging must replay
// so that the recovered execution agrees with the original (Section 3.2,
// "a global checkpoint that depends on a non-deterministic event").
TEST(Recovery, NondetEventsReplayExactly) {
  auto run = [&](std::optional<net::FailureSpec> failure) {
    auto sink = std::make_shared<ResultSink>();
    JobConfig cfg;
    cfg.ranks = 3;
    cfg.policy = CheckpointPolicy::every(2);
    cfg.failure = failure;
    Job job(cfg);
    job.run([&](Process& p) {
      long long acc = 0;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 10) {
        // Each rank draws a random value and shares it: every rank's state
        // depends on every rank's non-determinism.
        const auto mine = static_cast<long long>(p.random_u64() % 1000);
        long long sum = 0;
        p.allreduce(util::as_bytes(mine),
                    {reinterpret_cast<std::byte*>(&sum), 8},
                    simmpi::Datatype::kInt64, simmpi::Op::kSum);
        acc = acc * 7 + sum;
        ++iter;
        p.potential_checkpoint();
      }
      sink->put(p.rank(), acc, p.stats());
    });
    return sink;
  };
  const auto clean = run(std::nullopt);
  const auto recovered =
      run(net::FailureSpec{.victim_rank = 1, .trigger_events = 17});
  EXPECT_EQ(clean->values, recovered->values);
  // The recovery run must actually have replayed something.
  std::uint64_t replayed = 0;
  for (const auto& s : recovered->stats) {
    replayed += s.replayed_nondet_events + s.replayed_collectives +
                s.replayed_recvs;
  }
  EXPECT_GT(replayed, 0u);
}

// A genuinely non-deterministic source (a shared call counter standing in
// for a clock): without logging+replay the recovered run would diverge.
TEST(Recovery, ExternalNondetSourceReplays) {
  auto counter = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto run = [&](std::optional<net::FailureSpec> failure) {
    auto sink = std::make_shared<ResultSink>();
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(2);
    cfg.failure = failure;
    Job job(cfg);
    job.run([&](Process& p) {
      long long acc = 0;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 8) {
        const auto stamp = p.nondet(
            [&] { return counter->fetch_add(1) * 10 + 3; });
        p.send_value(static_cast<long long>(stamp), (p.rank() + 1) % 2, 0);
        acc += p.recv_value<long long>((p.rank() + 1) % 2, 0);
        ++iter;
        p.potential_checkpoint();
      }
      sink->put(p.rank(), acc, p.stats());
    });
    return sink->values;
  };
  // The counter keeps monotonically increasing across executions, so a
  // *re-executed* (rather than replayed) nondet() in the recovery run would
  // observe different values and change the sums -- the test would fail
  // without correct replay. The two jobs use disjoint counter ranges, so we
  // only compare the recovered run against itself via determinism of
  // accumulated per-rank sums: both ranks see the same exchanged stamps.
  const auto vals =
      run(net::FailureSpec{.victim_rank = 0, .trigger_events = 13});
  // Rank sums must match each other because the exchange is symmetric.
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_GT(vals[0], 0);
}

// Early-message suppression: after recovery the sender must not resend
// messages the receiver's checkpoint already contains; a duplicate would
// shift the ring sequence and change the result.
TEST(Recovery, EarlyMessagesSuppressedOnRecovery) {
  auto run = [&](std::optional<net::FailureSpec> failure,
                 std::shared_ptr<ResultSink>& sink_out) {
    auto sink = std::make_shared<ResultSink>();
    sink_out = sink;
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(1);
    cfg.failure = failure;
    Job job(cfg);
    job.run([&](Process& p) {
      long long acc = 0;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 8) {
        if (p.rank() == 0) {
          // Initiator checkpoints first, then sends: its message is early
          // at rank 1 whenever rank 1 has not yet hit its own
          // potential_checkpoint for that epoch. (Checkpoint at the top of
          // the body: a restored run re-executes this body, whose protocol
          // events fall inside the logged window and replay.)
          p.potential_checkpoint();
          p.send_value(static_cast<long long>(iter * 1000), 1, 0);
          acc += p.recv_value<long long>(1, 0);
          ++iter;
        } else {
          const long long got = p.recv_value<long long>(0, 0);
          acc = acc * 2 + got;
          p.send_value(acc, 0, 0);
          ++iter;
          p.potential_checkpoint();
        }
      }
      sink->put(p.rank(), acc, p.stats());
    });
  };
  std::shared_ptr<ResultSink> clean_sink, rec_sink;
  run(std::nullopt, clean_sink);
  // Whether a message classifies as early depends on thread scheduling, so
  // a single attempt occasionally produces a recovery with nothing to
  // suppress. Retry until the scheduling yields the scenario; correctness
  // (identical results) must hold on every attempt.
  std::uint64_t early = 0, suppressed = 0;
  for (int attempt = 0; attempt < 10 && suppressed == 0; ++attempt) {
    run(net::FailureSpec{.victim_rank = 1, .trigger_events = 11}, rec_sink);
    ASSERT_EQ(clean_sink->values, rec_sink->values);
    early = 0;
    suppressed = 0;
    for (const auto& s : rec_sink->stats) {
      early += s.early_messages;
      suppressed += s.suppressed_sends;
    }
  }
  EXPECT_GT(early, 0u) << "scenario failed to produce early messages";
  EXPECT_GT(suppressed, 0u) << "recovery never suppressed a resend";
}

// Collective results logged under the conjunction rule must replay: a rank
// that re-executes an allreduce it already contributed to must read the
// logged result instead of communicating (Section 4.5, Figure 5).
TEST(Recovery, CollectiveResultsReplayFromLog) {
  auto run = [&](std::optional<net::FailureSpec> failure) {
    auto sink = std::make_shared<ResultSink>();
    JobConfig cfg;
    cfg.ranks = 3;
    cfg.policy = CheckpointPolicy::every(2);
    cfg.failure = failure;
    Job job(cfg);
    job.run([&](Process& p) {
      long long acc = 0;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 9) {
        long long v = acc + p.rank() + iter;
        long long sum = 0;
        p.allreduce(util::as_bytes(v), {reinterpret_cast<std::byte*>(&sum), 8},
                    simmpi::Datatype::kInt64, simmpi::Op::kSum);
        long long maxv = 0;
        p.allreduce(util::as_bytes(sum),
                    {reinterpret_cast<std::byte*>(&maxv), 8},
                    simmpi::Datatype::kInt64, simmpi::Op::kMax);
        acc = acc * 5 + sum % 1000 + maxv % 7;
        ++iter;
        p.potential_checkpoint();
      }
      sink->put(p.rank(), acc, p.stats());
    });
    return sink;
  };
  const auto clean = run(std::nullopt);
  const auto recovered =
      run(net::FailureSpec{.victim_rank = 2, .trigger_events = 21});
  EXPECT_EQ(clean->values, recovered->values);
}

// Wildcard receives are a non-deterministic matching decision; the logged
// matching order must pin down recovery.
TEST(Recovery, WildcardReceiveOrderReplays) {
  auto run = [&](std::optional<net::FailureSpec> failure,
                 std::uint64_t seed) {
    auto sink = std::make_shared<ResultSink>();
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.policy = CheckpointPolicy::every(2);
    cfg.failure = failure;
    cfg.net.order = simmpi::NetConfig::Order::kRandomReorder;
    cfg.net.seed = seed;
    cfg.net.p_hold = 0.5;
    cfg.net.max_hold = 4;
    Job job(cfg);
    job.run([&](Process& p) {
      long long acc = 0;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 8) {
        if (p.rank() == 0) {
          // Order-sensitive accumulation over wildcard receives.
          for (int i = 0; i < 3; ++i) {
            const long long got = p.recv_value<long long>(simmpi::kAnySource, 0);
            acc = acc * 31 + got;
          }
          for (int q = 1; q < 4; ++q) {
            p.send_value(acc, q, 1);
          }
        } else {
          p.send_value(static_cast<long long>(p.rank() * 100 + iter), 0, 0);
          acc = p.recv_value<long long>(0, 1);
        }
        ++iter;
        p.potential_checkpoint();
      }
      sink->put(p.rank(), acc, p.stats());
    });
    return sink->values;
  };
  // With a failure mid-run, the recovered result must equal the failure-free
  // run under the SAME network seed (the matching order is data, not luck:
  // it is pinned by the log for the replayed region and by per-source FIFO
  // elsewhere). We assert the weaker, always-required property: recovery
  // reproduces the run it resumed, i.e. ranks agree on the broadcast acc.
  const auto vals = run(net::FailureSpec{.victim_rank = 1,
                                         .trigger_events = 15},
                        /*seed=*/91);
  ASSERT_EQ(vals.size(), 4u);
  EXPECT_EQ(vals[1], vals[2]);
  EXPECT_EQ(vals[2], vals[3]);
}

// MPI library state: communicators created by dup/split are persistent
// opaque objects recreated on recovery by call-record replay (Section 5.2).
TEST(Recovery, CommunicatorsRecreatedByCallReplay) {
  auto run = [&](std::optional<net::FailureSpec> failure) {
    auto sink = std::make_shared<ResultSink>();
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.policy = CheckpointPolicy::every(2);
    cfg.failure = failure;
    Job job(cfg);
    job.run([&](Process& p) {
      // Create the communicators BEFORE registration completes, so they
      // exist both sides of any checkpoint.
      const CommHandle dup = p.comm_dup(kWorldComm);
      const CommHandle half =
          p.comm_split(kWorldComm, p.rank() % 2, p.rank());
      long long acc = 0;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 8) {
        long long v = p.rank() + iter;
        long long dup_sum = 0, half_sum = 0;
        p.allreduce(util::as_bytes(v),
                    {reinterpret_cast<std::byte*>(&dup_sum), 8},
                    simmpi::Datatype::kInt64, simmpi::Op::kSum, dup);
        p.allreduce(util::as_bytes(v),
                    {reinterpret_cast<std::byte*>(&half_sum), 8},
                    simmpi::Datatype::kInt64, simmpi::Op::kSum, half);
        acc = acc * 3 + dup_sum * 10 + half_sum;
        ++iter;
        p.potential_checkpoint();
      }
      sink->put(p.rank(), acc, p.stats());
    });
    return sink->values;
  };
  const auto clean = run(std::nullopt);
  const auto recovered =
      run(net::FailureSpec{.victim_rank = 3, .trigger_events = 19});
  EXPECT_EQ(clean, recovered);
}

// Multiple failures in one job: each rollback must land on the newest
// committed checkpoint.
TEST(Recovery, TwoSuccessiveFailures) {
  const auto clean = run_ring(3, 15, std::nullopt);
  auto sink = std::make_shared<ResultSink>();
  JobConfig cfg;
  cfg.ranks = 3;
  cfg.policy = CheckpointPolicy::every(3);
  // First failure at event 20; the injector is one-shot, so arrange a
  // second via a fresh spec is not possible in one Job -- instead verify a
  // late failure point (after several checkpoints) recovers exactly.
  cfg.failure = net::FailureSpec{.victim_rank = 0, .trigger_events = 40};
  Job job(cfg);
  job.run([&](Process& p) { ring_app(p, sink, 15); });
  EXPECT_EQ(clean, sink->values);
}

// Kill-mid-pipeline: with a throttled disk and large state, the failure
// lands while checkpoint blobs are still draining through the async write
// queue (or mid-commit). Whatever the interleaving, recovery must roll
// back to a *committed* epoch -- never to blobs that were still in flight
// -- and reproduce the failure-free result exactly. Several trigger points
// sweep the failure across the put/commit window.
TEST(Recovery, KillMidPipelineRecoversFromCommittedEpoch) {
  auto run = [&](std::optional<net::FailureSpec> failure) {
    auto sink = std::make_shared<ResultSink>();
    JobConfig cfg;
    cfg.ranks = 3;
    cfg.policy = CheckpointPolicy::every(2);
    // ~6 MB/s "disk": each rank's ~160 KB state takes ~25 ms to drain, so
    // several app steps run while an epoch is still queued.
    cfg.storage = std::make_shared<util::MemoryStorage>(6ull << 20);
    cfg.failure = failure;
    Job job(cfg);
    auto report = job.run([&](Process& p) {
      std::vector<std::uint64_t> blob(20000);
      long long acc = p.rank() + 1;
      int iter = 0;
      p.register_state("blob", blob.data(), blob.size() * 8);
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      const int right = (p.rank() + 1) % p.nranks();
      const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
      while (iter < 10) {
        blob[static_cast<std::size_t>(iter) % blob.size()] =
            static_cast<std::uint64_t>(acc);
        p.send_value(acc, right, 0);
        acc = acc * 3 + p.recv_value<long long>(left, 0);
        ++iter;
        p.potential_checkpoint();
      }
      sink->put(p.rank(), acc, p.stats());
    });
    if (failure) {
      EXPECT_GE(report.failures, 1);
      if (report.recovered) {
        EXPECT_TRUE(report.last_committed_epoch.has_value());
      }
    }
    return sink->values;
  };
  const auto clean = run(std::nullopt);
  // Each rank performs 3 events per iteration (send, recv, potential
  // checkpoint) for 10 iterations: triggers sweep the middle of the run.
  for (std::uint64_t trigger : {12ull, 18ull, 24ull}) {
    const auto recovered =
        run(net::FailureSpec{.victim_rank = 1, .trigger_events = trigger});
    EXPECT_EQ(clean, recovered) << "trigger " << trigger;
  }
}

// A checkpoint the protocol is obliged to take during shutdown -- after a
// rank's application body returned -- cannot capture that rank's state
// (its registered buffers are destroyed). Such an epoch is committed with
// per-rank "detached" markers, the previous epoch is *retained* instead
// of GC'd, and a recovery rolls every rank back to that previous epoch
// uniformly rather than restoring from freed memory or failing outright.
TEST(Recovery, ShutdownDetachedEpochRetainsPredecessorAndFallsBack) {
  auto storage = std::make_shared<util::MemoryStorage>();
  auto app = [](Process& p) {
    long long acc = 10 * (p.rank() + 1);
    p.register_value("acc", acc);
    p.complete_registration();
    // Every rank takes epoch 1 inside the app body (state captured).
    while (p.epoch() < 1) p.potential_checkpoint();
    acc += 7;
    if (p.rank() == 0) {
      // Only the initiator checkpoints epoch 2 in-app; the other rank
      // has returned by then and takes its epoch-2 checkpoint during
      // shutdown -> detached.
      while (p.epoch() < 2) p.potential_checkpoint();
    }
  };
  {
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(1);
    cfg.storage = storage;
    Job job(cfg);
    auto report = job.run(app);
    ASSERT_TRUE(report.last_committed_epoch.has_value());
    EXPECT_EQ(*report.last_committed_epoch, 2);
  }
  // Rank 1's epoch-2 checkpoint was detached; rank 0's was not (both
  // write a marker each epoch; the value distinguishes, so a stale
  // marker from an earlier run can never outlive a normal checkpoint).
  // Read through a pipeline wrapper: the inner storage holds the encoded
  // form, not the raw marker byte.
  ckptstore::StoreOptions ro;
  ro.async = false;
  ckptstore::CheckpointStore reader(storage, ro);
  auto marker = [&](int rank) {
    auto blob = reader.get({2, rank, "detached"});
    return blob && !blob->empty() && (*blob)[0] == std::byte{1};
  };
  EXPECT_TRUE(marker(1));
  EXPECT_FALSE(marker(0));
  // The superseded epoch 1 must have been retained as the fallback.
  EXPECT_TRUE(storage->get({1, 0, "state"}).has_value());
  EXPECT_TRUE(storage->get({1, 1, "state"}).has_value());

  // A failure in a later job over the same storage: recovery must fall
  // back to epoch 1 (epoch 2 cannot restore rank 1) and complete.
  {
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(1);
    cfg.storage = storage;
    cfg.failure = net::FailureSpec{.victim_rank = 1, .trigger_events = 1};
    Job job(cfg);
    auto report = job.run(app);
    EXPECT_GE(report.failures, 1);
    EXPECT_TRUE(report.recovered);
    ASSERT_TRUE(report.last_committed_epoch.has_value());
    EXPECT_GE(*report.last_committed_epoch, 2);
  }
}

// Recovery must also work when checkpoints land while messages from the
// *previous* epoch are still in flight (late) and the failure hits during
// the logging window.
TEST(Recovery, FailureDuringLoggingWindow) {
  const auto clean = run_ring(4, 12, std::nullopt);
  for (std::uint64_t trigger : {13ull, 16ull, 19ull, 22ull}) {
    const auto recovered = run_ring(
        4, 12, net::FailureSpec{.victim_rank = 2, .trigger_events = trigger});
    EXPECT_EQ(clean, recovered) << "trigger " << trigger;
  }
}

}  // namespace
}  // namespace c3::core
