// Crash-recovery matrix for the parallel checkpoint pipeline.
//
// Every cell of (epoch phase x failing rank x lane state) injects a
// deterministic fault while epoch 2 is being written through per-rank
// writer lanes, simulates the process dying (the store is destroyed, the
// surviving backend reopened by a fresh store), and asserts the paper's
// recovery contract:
//
//   1. recovery always lands on a *committed* epoch;
//   2. every section of that epoch reads back CRC-clean and bit-exact;
//   3. a torn blob of the aborted epoch is detected, never silently served;
//   4. re-execution of the aborted epoch stores and commits correctly;
//   5. no blob a committed manifest references is ever GC'd, even with
//      lanes draining out of order.
//
// Phases: kill after the N-th backend put (lane state: N encodes done,
// the rest queued or in flight), torn write on rank k's lane, kill
// between lane flushes at the commit barrier, kill at the commit-marker
// write itself.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckptstore/store.hpp"
#include "replica/replicated_storage.hpp"
#include "statesave/checkpoint.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

#include "ckpt_test_util.hpp"

namespace c3::ckptstore {
namespace {

using util::BlobKey;
using util::Bytes;
using testutil::random_bytes;

constexpr int kRanks = 4;
constexpr std::size_t kHeapBytes = 32 * 1024;

/// Deterministic per-(epoch, rank) state container: a large heap section
/// whose dirty prefix varies by epoch (so consecutive epochs delta) and a
/// churning protocol section.
Bytes make_state_blob(int epoch, int rank) {
  statesave::CheckpointBuilder b;
  Bytes heap = random_bytes(kHeapBytes, 1000 + static_cast<unsigned>(rank));
  for (std::size_t i = 0; i < 2048; ++i) {
    heap[i] = static_cast<std::byte>(epoch * 131 + rank * 17 +
                                     static_cast<int>(i));
  }
  b.add_section("heap", std::move(heap));
  util::Writer w;
  w.put<std::int32_t>(epoch);
  w.put<std::int32_t>(rank);
  b.add_section("protocol", w.take());
  return b.finish();
}

StoreOptions laned_opts() {
  StoreOptions o;
  o.async = true;
  o.writer_lanes = kRanks;
  o.queue_max_blobs = 16;
  return o;
}

/// One matrix cell: how epoch 2 dies.
struct Scenario {
  std::string name;
  util::FaultPlan plan;       ///< armed on the backend before epoch 2
  int hook_kill_after_lane = -1;  ///< throw after this lane flushes (commit)
};

std::vector<Scenario> all_scenarios() {
  std::vector<Scenario> cells;
  // Phase A -- kill after the N-th encoded put reaches the backend, for
  // every lane state from "nothing durable" to "all blobs durable, commit
  // marker missing".
  for (int puts = 0; puts <= kRanks; ++puts) {
    Scenario s;
    s.name = "kill-after-" + std::to_string(puts) + "-puts";
    s.plan.fail_after_puts = puts;
    if (puts == kRanks) s.plan.fail_on_commit = true;  // all blobs landed
    cells.push_back(std::move(s));
  }
  // Phase B -- torn write on rank k's lane: a truncated blob of the
  // aborted epoch survives on the backend.
  for (int rank = 0; rank < kRanks; ++rank) {
    for (const std::size_t keep : {std::size_t{0}, std::size_t{37},
                                   std::size_t{4096}}) {
      Scenario s;
      s.name = "torn-rank-" + std::to_string(rank) + "-keep-" +
               std::to_string(keep);
      s.plan.torn_write_rank = rank;
      s.plan.torn_keep_bytes = keep;
      cells.push_back(std::move(s));
    }
  }
  // Phase C -- all writes durable, the initiator dies *between lane
  // flushes* at the commit barrier (lane state: lanes 0..l drained and
  // confirmed, the rest drained but unconfirmed).
  for (int lane = 0; lane < kRanks; ++lane) {
    Scenario s;
    s.name = "kill-between-flush-lane-" + std::to_string(lane);
    s.hook_kill_after_lane = lane;
    cells.push_back(std::move(s));
  }
  return cells;
}

TEST(CkptFaultMatrix, EveryCellRecoversToCommittedEpoch) {
  for (const Scenario& sc : all_scenarios()) {
    SCOPED_TRACE(sc.name);
    auto inner = std::make_shared<util::MemoryStorage>();
    auto faulty = std::make_shared<util::FaultInjectingStorage>(inner);

    StoreOptions opts = laned_opts();
    // Arm the between-lane-flush kill lazily so epoch 1's commit flushes
    // cleanly; the hook only fires once armed_hook flips.
    auto armed_hook = std::make_shared<bool>(false);
    if (sc.hook_kill_after_lane >= 0) {
      const auto kill_lane = static_cast<std::size_t>(sc.hook_kill_after_lane);
      opts.after_lane_flush = [armed_hook, kill_lane](std::size_t lane) {
        if (*armed_hook && lane == kill_lane) {
          throw util::InjectedFault("injected kill between lane flushes");
        }
      };
    }

    // --- Epoch 1 commits cleanly on all ranks.
    auto store = std::make_unique<CheckpointStore>(faulty, opts);
    for (int r = 0; r < kRanks; ++r) {
      store->put({1, r, "state"}, make_state_blob(1, r));
    }
    store->commit(1);
    ASSERT_EQ(store->committed_epoch(), 1);

    // --- Epoch 2 dies mid-flight at this cell's fault point.
    faulty->arm(sc.plan);
    *armed_hook = true;
    bool fault_fired = false;
    try {
      for (int r = 0; r < kRanks; ++r) {
        store->put({2, r, "state"}, make_state_blob(2, r));
      }
      store->commit(2);
    } catch (const util::InjectedFault&) {
      fault_fired = true;
    }
    ASSERT_TRUE(fault_fired) << "the cell's fault never fired";

    // --- The process dies: destroy the store (lanes drain/join), then
    // reopen the surviving backend with a fresh store and a fresh (empty)
    // delta index, as a restarted job would.
    store.reset();
    faulty->disarm();
    *armed_hook = false;
    store = std::make_unique<CheckpointStore>(faulty, opts);

    // 1. Recovery lands on a committed epoch -- never the aborted one.
    const auto committed = store->committed_epoch();
    ASSERT_TRUE(committed.has_value());
    ASSERT_EQ(*committed, 1)
        << "an epoch with missing/torn blobs must never be the recovery "
           "point";

    // 2. Every section of the committed epoch is CRC-clean and bit-exact.
    for (int r = 0; r < kRanks; ++r) {
      auto back = store->get({1, r, "state"});
      ASSERT_TRUE(back.has_value()) << "rank " << r;
      ASSERT_EQ(*back, make_state_blob(1, r)) << "rank " << r;
    }

    // 3. A torn blob is detected (CorruptionError) or absent -- never
    // silently served as a valid checkpoint.
    if (sc.plan.torn_write_rank >= 0) {
      try {
        auto torn = store->get({2, sc.plan.torn_write_rank, "state"});
        if (torn.has_value()) {
          EXPECT_NE(*torn, make_state_blob(2, sc.plan.torn_write_rank))
              << "a torn blob read back as the full checkpoint";
        }
      } catch (const util::CorruptionError&) {
        // Detected -- the desired outcome for a non-trivial tear.
      }
    }

    // 4. Recovery abandons the aborted epoch and re-executes it; the
    // rewritten epoch commits and reads back exactly.
    store->drop_epoch(2);
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_FALSE(inner->get({2, r, "state"}).has_value())
          << "aborted blob survived drop_epoch, rank " << r;
    }
    for (int r = 0; r < kRanks; ++r) {
      store->put({2, r, "state"}, make_state_blob(2, r));
    }
    store->commit(2);
    ASSERT_EQ(store->committed_epoch(), 2);

    // 5. GC interlock under the fresh index: epoch 3 deltas against 2, so
    // dropping 2 must defer until nothing references it -- even though
    // lanes commit their blobs in whatever order they drain.
    for (int r = 0; r < kRanks; ++r) {
      store->put({3, r, "state"}, make_state_blob(3, r));
    }
    store->commit(3);
    store->drop_epoch(2);
    const auto stats = store->storage_stats();
    ASSERT_GT(stats.ref_chunks, 0u)
        << "epoch 3 stored no references; the GC-interlock leg is vacuous";
    for (int r = 0; r < kRanks; ++r) {
      ASSERT_TRUE(inner->get({2, r, "state"}).has_value())
          << "a blob referenced by the committed epoch 3 manifest was "
             "GC'd, rank " << r;
      auto back = store->get({3, r, "state"});
      ASSERT_TRUE(back.has_value()) << "rank " << r;
      ASSERT_EQ(*back, make_state_blob(3, r)) << "rank " << r;
    }
  }
}

// Kill-and-wipe cell: the fault does not just kill the process -- it takes
// the victim rank's entire backend holding with it (node-local disk dies
// with the node). With an erasure-coded replica tier stacked between the
// pipeline and the backend, recovery must still land on the committed
// epoch and read the wiped rank's sections back byte-identically, rebuilt
// from the surviving peers' parity.
TEST(CkptFaultMatrix, KillAndWipeRecoversByteIdenticalFromParity) {
  auto inner = std::make_shared<util::MemoryStorage>();
  auto faulty = std::make_shared<util::FaultInjectingStorage>(inner);
  replica::ReplicaConfig rc;
  rc.group_size = 2;  // 4 ranks -> 2 groups; parity lives in the other group
  rc.parity_k = 1;
  auto tier =
      std::make_shared<replica::ReplicatedStorage>(faulty, kRanks, rc);
  const StoreOptions opts = laned_opts();

  // --- Epoch 1 commits cleanly (parity persisted with it).
  auto store = std::make_unique<CheckpointStore>(tier, opts);
  for (int r = 0; r < kRanks; ++r) {
    store->put({1, r, "state"}, make_state_blob(1, r));
  }
  store->commit(1);
  ASSERT_EQ(store->committed_epoch(), 1);

  // --- Epoch 2 dies mid-flight AND rank 1's whole holding -- every epoch,
  // data and hosted parity alike -- is wiped when the fault fires.
  util::FaultPlan plan;
  plan.fail_after_puts = 2;
  plan.wipe_rank_on_fault = 1;
  faulty->arm(plan);
  bool fault_fired = false;
  try {
    for (int r = 0; r < kRanks; ++r) {
      store->put({2, r, "state"}, make_state_blob(2, r));
    }
    store->commit(2);
  } catch (const util::InjectedFault&) {
    fault_fired = true;
  }
  ASSERT_TRUE(fault_fired) << "the kill-and-wipe fault never fired";
  store.reset();
  faulty->disarm();

  // --- Restart: fresh pipeline AND fresh replica tier over the surviving
  // backend. Rank 1's blobs are gone from the backend itself...
  ASSERT_FALSE(inner->get({1, 1, "state"}).has_value())
      << "the wipe never reached the backend";
  auto tier2 =
      std::make_shared<replica::ReplicatedStorage>(faulty, kRanks, rc);
  store = std::make_unique<CheckpointStore>(tier2, opts);
  const auto committed = store->committed_epoch();
  ASSERT_TRUE(committed.has_value());
  ASSERT_EQ(*committed, 1);
  // ...yet every rank's committed sections read back bit-exact, the wiped
  // rank's reconstructed from its parity group.
  for (int r = 0; r < kRanks; ++r) {
    auto back = store->get({1, r, "state"});
    ASSERT_TRUE(back.has_value()) << "rank " << r;
    ASSERT_EQ(*back, make_state_blob(1, r)) << "rank " << r;
  }
  EXPECT_GE(tier2->storage_stats().reconstruct_reads, 1u)
      << "rank 1 read back without touching the reconstruction path";
  // Reconstruction healed the backend: rank 1's blobs are durable again.
  EXPECT_TRUE(inner->get({1, 1, "state"}).has_value());

  // --- The restarted job re-executes epoch 2 and moves on.
  store->drop_epoch(2);
  for (int r = 0; r < kRanks; ++r) {
    store->put({2, r, "state"}, make_state_blob(2, r));
  }
  store->commit(2);
  ASSERT_EQ(store->committed_epoch(), 2);
}

TEST(CkptFaultMatrix, KillDuringRecoveryRedrop) {
  // A second crash while recovery is re-dropping the aborted epoch: the
  // drop's flush kills between lanes. The *next* restart must still land
  // on the committed epoch and be able to finish the cleanup.
  auto inner = std::make_shared<util::MemoryStorage>();
  auto faulty = std::make_shared<util::FaultInjectingStorage>(inner);
  StoreOptions opts = laned_opts();
  auto armed_hook = std::make_shared<bool>(false);
  opts.after_lane_flush = [armed_hook](std::size_t lane) {
    if (*armed_hook && lane == 1) {
      throw util::InjectedFault("second crash during recovery");
    }
  };
  auto store = std::make_unique<CheckpointStore>(faulty, opts);
  for (int r = 0; r < kRanks; ++r) {
    store->put({1, r, "state"}, make_state_blob(1, r));
  }
  store->commit(1);
  util::FaultPlan plan;
  plan.fail_after_puts = 2;
  faulty->arm(plan);
  try {
    for (int r = 0; r < kRanks; ++r) {
      store->put({2, r, "state"}, make_state_blob(2, r));
    }
    store->commit(2);
    FAIL() << "first crash did not fire";
  } catch (const util::InjectedFault&) {
  }
  store.reset();
  faulty->disarm();

  // First recovery attempt: crashes again inside drop_epoch's flush.
  store = std::make_unique<CheckpointStore>(faulty, opts);
  *armed_hook = true;
  try {
    store->put({2, 0, "state"}, make_state_blob(2, 0));  // re-execution began
    store->drop_epoch(2);
  } catch (const util::InjectedFault&) {
  }
  store.reset();
  *armed_hook = false;

  // Second recovery attempt: must still see epoch 1 and finish cleanly.
  store = std::make_unique<CheckpointStore>(faulty, opts);
  ASSERT_EQ(store->committed_epoch(), 1);
  for (int r = 0; r < kRanks; ++r) {
    auto back = store->get({1, r, "state"});
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(*back, make_state_blob(1, r));
  }
  store->drop_epoch(2);
  for (int r = 0; r < kRanks; ++r) {
    store->put({2, r, "state"}, make_state_blob(2, r));
  }
  store->commit(2);
  ASSERT_EQ(store->committed_epoch(), 2);
}

}  // namespace
}  // namespace c3::ckptstore
