// Edge-case semantics of the simulated MPI runtime: degenerate communicator
// sizes, zero-length payloads, request lifecycle corners, deep communicator
// chains, and mixed non-blocking patterns.
#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"

namespace c3::simmpi {
namespace {

TEST(Edge, SingleRankCollectivesAreLocal) {
  Runtime rt(1);
  rt.run([](Api& api) {
    api.barrier(api.world());
    std::int64_t v = 5, out = 0;
    api.allreduce(api.world(), util::as_bytes(v),
                  {reinterpret_cast<std::byte*>(&out), 8}, Datatype::kInt64,
                  Op::kSum);
    EXPECT_EQ(out, 5);
    std::int64_t g = 0;
    api.allgather(api.world(), util::as_bytes(v),
                  {reinterpret_cast<std::byte*>(&g), 8});
    EXPECT_EQ(g, 5);
    std::int64_t a2a = 0;
    api.alltoall(api.world(), util::as_bytes(v),
                 {reinterpret_cast<std::byte*>(&a2a), 8});
    EXPECT_EQ(a2a, 5);
    std::int64_t sc = 0;
    api.scan(api.world(), util::as_bytes(v),
             {reinterpret_cast<std::byte*>(&sc), 8}, Datatype::kInt64,
             Op::kSum);
    EXPECT_EQ(sc, 5);
  });
}

TEST(Edge, ZeroLengthCollectives) {
  Runtime rt(3);
  rt.run([](Api& api) {
    api.bcast(api.world(), {}, 0);
    api.allgather(api.world(), {}, {});
    api.gather(api.world(), {}, {}, 1);
  });
}

TEST(Edge, DeepCommDupChain) {
  Runtime rt(3);
  rt.run([](Api& api) {
    Comm c = api.world();
    for (int depth = 0; depth < 8; ++depth) {
      c = api.comm_dup(c);
      EXPECT_EQ(c.size(), 3);
      EXPECT_EQ(c.rank(), api.world_rank());
    }
    // The deepest communicator still works for traffic.
    std::int32_t v = api.world_rank(), sum = 0;
    api.allreduce(c, util::as_bytes(v), {reinterpret_cast<std::byte*>(&sum), 4},
                  Datatype::kInt32, Op::kSum);
    EXPECT_EQ(sum, 3);
  });
}

TEST(Edge, SplitOfSplit) {
  Runtime rt(8);
  rt.run([](Api& api) {
    // First split: evens/odds; second split within each: low/high.
    Comm half = api.comm_split(api.world(), api.world_rank() % 2,
                               api.world_rank());
    Comm quarter = api.comm_split(half, half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    std::int32_t v = api.world_rank(), sum = 0;
    api.allreduce(quarter, util::as_bytes(v),
                  {reinterpret_cast<std::byte*>(&sum), 4}, Datatype::kInt32,
                  Op::kSum);
    // Members of each quarter are world ranks {0,2},{4,6},{1,3},{5,7}.
    const int base = api.world_rank() % 2;
    const int group = (api.world_rank() / 2) / 2;
    const int expect = (base + 4 * group) + (base + 4 * group + 2);
    EXPECT_EQ(sum, expect);
  });
}

TEST(Edge, WaitOnCompletedSendIsIdempotentUntilFreed) {
  Runtime rt(2);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      const std::int32_t v = 1;
      Request r = api.isend(api.world(), util::as_bytes(v), 1, 0);
      EXPECT_TRUE(r.complete());
      api.wait(r);  // wait on an already-complete request is fine
      EXPECT_TRUE(r.complete());
    } else {
      std::int32_t v = 0;
      api.recv(api.world(), {reinterpret_cast<std::byte*>(&v), 4}, 0, 0);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Edge, ManyOutstandingIrecvsCompleteInPostOrder) {
  Runtime rt(2);
  constexpr int kN = 32;
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      for (std::int32_t i = 0; i < kN; ++i) {
        api.send(api.world(), util::as_bytes(i), 1, 0);
      }
    } else {
      std::vector<std::int32_t> got(kN, -1);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(api.irecv(
            api.world(),
            {reinterpret_cast<std::byte*>(&got[static_cast<std::size_t>(i)]), 4},
            0, 0));
      }
      api.waitall(reqs);
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i)
            << "posted receives must match same-tag messages in post order";
      }
    }
  });
}

TEST(Edge, ScanWithMaxOperator) {
  Runtime rt(5);
  rt.run([](Api& api) {
    // Values 4,1,3,0,2 by rank -> inclusive max-scan 4,4,4,4,4? No:
    // rank r's value is (7 * r) % 5: 0,2,4,1,3 -> scan max: 0,2,4,4,4.
    const std::int64_t mine = (7 * api.world_rank()) % 5;
    std::int64_t out = -1;
    api.scan(api.world(), util::as_bytes(mine),
             {reinterpret_cast<std::byte*>(&out), 8}, Datatype::kInt64,
             Op::kMax);
    const std::int64_t expect[5] = {0, 2, 4, 4, 4};
    EXPECT_EQ(out, expect[api.world_rank()]);
  });
}

TEST(Edge, ReduceWithProdAndFloat) {
  Runtime rt(3);
  rt.run([](Api& api) {
    const float mine = static_cast<float>(api.world_rank() + 2);  // 2,3,4
    float out = 0;
    api.reduce(api.world(), util::as_bytes(mine),
               {reinterpret_cast<std::byte*>(&out), 4}, Datatype::kFloat,
               Op::kProd, 2);
    if (api.world_rank() == 2) EXPECT_FLOAT_EQ(out, 24.0f);
  });
}

TEST(Edge, BitwiseOpsOnIntegers) {
  Runtime rt(3);
  rt.run([](Api& api) {
    const std::int32_t mine = 1 << api.world_rank();  // 1,2,4
    std::int32_t ored = 0, anded = 0;
    api.allreduce(api.world(), util::as_bytes(mine),
                  {reinterpret_cast<std::byte*>(&ored), 4}, Datatype::kInt32,
                  Op::kBor);
    EXPECT_EQ(ored, 7);
    const std::int32_t mask = 6 | (1 << api.world_rank());
    api.allreduce(api.world(), util::as_bytes(mask),
                  {reinterpret_cast<std::byte*>(&anded), 4}, Datatype::kInt32,
                  Op::kBand);
    EXPECT_EQ(anded, 6);
  });
}

TEST(Edge, ProbeSpecificSourceLeavesOthersQueued) {
  Runtime rt(3);
  rt.run([](Api& api) {
    if (api.world_rank() == 0) {
      // Wait until both messages are available, then probe selectively.
      std::int32_t from1 = 0, from2 = 0;
      ProbeInfo info2 = api.probe(api.world(), 2, kAnyTag);
      EXPECT_EQ(info2.source, 2);
      api.recv(api.world(), {reinterpret_cast<std::byte*>(&from2), 4}, 2,
               kAnyTag);
      EXPECT_EQ(from2, 22);
      api.recv(api.world(), {reinterpret_cast<std::byte*>(&from1), 4}, 1,
               kAnyTag);
      EXPECT_EQ(from1, 11);
    } else {
      const std::int32_t v = api.world_rank() * 11;
      api.send(api.world(), util::as_bytes(v), 0, 5);
    }
  });
}

TEST(Edge, RuntimeIsReusableAcrossRuns) {
  Runtime rt(2);
  for (int round = 0; round < 3; ++round) {
    rt.run([round](Api& api) {
      std::int32_t v = round, sum = 0;
      api.allreduce(api.world(), util::as_bytes(v),
                    {reinterpret_cast<std::byte*>(&sum), 4}, Datatype::kInt32,
                    Op::kSum);
      EXPECT_EQ(sum, 2 * round);
    });
  }
}

TEST(Edge, RankErrorPropagatesOutOfRun) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Api& api) {
    if (api.world_rank() == 1) {
      throw std::runtime_error("application bug");
    }
    // Rank 0 blocks forever; the abort must wake it.
    std::int32_t v;
    api.recv(api.world(), {reinterpret_cast<std::byte*>(&v), 4}, 1, 0);
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace c3::simmpi
