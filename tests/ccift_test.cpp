// CCIFT precompiler: lexing, parsing, checkpoint-reachability analysis,
// the instrumentation transformation (paper Section 5.1 / Figure 6), and
// the runtime ABI the emitted code targets.
#include <gtest/gtest.h>

#include <string>

#include "ccift/analysis.hpp"
#include "ccift/emit.hpp"
#include "ccift/lexer.hpp"
#include "ccift/parser.hpp"
#include "ccift/runtime_abi.hpp"
#include "ccift/transform.hpp"

namespace c3::ccift {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

// ------------------------------------------------------------------ lexer

TEST(Lexer, TokenizesIdentifiersKeywordsNumbers) {
  auto tokens = lex("int x = 42;");
  ASSERT_EQ(tokens.size(), 6u);  // int x = 42 ; EOF
  EXPECT_TRUE(tokens[0].is_keyword("int"));
  EXPECT_TRUE(tokens[1].is_ident());
  EXPECT_TRUE(tokens[2].is_punct("="));
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_TRUE(tokens[4].is_punct(";"));
  EXPECT_EQ(tokens[5].kind, TokenKind::kEof);
}

TEST(Lexer, MaximalMunchOperators) {
  auto tokens = lex("a <<= b >> c <= d -> e ++f");
  std::vector<std::string> ops;
  for (const auto& t : tokens) {
    if (t.kind == TokenKind::kPunct) ops.push_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"<<=", ">>", "<=", "->", "++"}));
}

TEST(Lexer, SkipsComments) {
  auto tokens = lex("int a; // trailing\n/* block\ncomment */ int b;");
  std::size_t idents = 0;
  for (const auto& t : tokens) {
    if (t.is_ident()) ++idents;
  }
  EXPECT_EQ(idents, 2u);
}

TEST(Lexer, PreservesPreprocessorLines) {
  auto tokens = lex("#include <stdio.h>\nint x;");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "#include <stdio.h>");
}

TEST(Lexer, FloatLiteralsWithExponents) {
  auto tokens = lex("1.5e-3 0x1F 2.0f");
  EXPECT_EQ(tokens[0].text, "1.5e-3");
  EXPECT_EQ(tokens[1].text, "0x1F");
  EXPECT_EQ(tokens[2].text, "2.0f");
}

TEST(Lexer, StringAndCharLiteralsWithEscapes) {
  auto tokens = lex(R"("a\"b" 'c')");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, R"("a\"b")");
  EXPECT_EQ(tokens[1].kind, TokenKind::kCharLit);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"oops"), ParseError);
}

TEST(Lexer, TracksLineNumbers) {
  auto tokens = lex("int a;\nint b;");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[3].line, 2);
}

// ----------------------------------------------------------------- parser

TEST(Parser, FunctionWithParamsAndBody) {
  auto unit = parse("int add(int a, int b) { return a + b; }");
  ASSERT_EQ(unit.functions.size(), 1u);
  const auto& fn = unit.functions[0];
  EXPECT_EQ(fn.name, "add");
  EXPECT_EQ(fn.return_type, "int");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[1].name, "b");
  ASSERT_TRUE(fn.body != nullptr);
  EXPECT_EQ(fn.body->body.size(), 1u);
  EXPECT_EQ(fn.body->body[0]->kind, StmtKind::kReturn);
}

TEST(Parser, GlobalsWithInitializersAndArrays) {
  auto unit = parse("int counter = 7;\ndouble table[100];\nint *ptr;");
  ASSERT_EQ(unit.globals.size(), 3u);
  EXPECT_EQ(unit.globals[0].decl.name, "counter");
  ASSERT_TRUE(unit.globals[0].decl.init != nullptr);
  EXPECT_EQ(unit.globals[1].decl.array_dims.size(), 1u);
  EXPECT_EQ(unit.globals[1].decl.array_dims[0], "100");
  EXPECT_EQ(unit.globals[2].decl.pointer, "*");
}

TEST(Parser, ControlFlowShapes) {
  auto unit = parse(R"(
    void f(int n) {
      int i;
      for (i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        while (n > 0) { n--; }
      }
      return;
    })");
  const auto& body = unit.functions[0].body->body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0]->kind, StmtKind::kDecl);
  EXPECT_EQ(body[1]->kind, StmtKind::kFor);
  EXPECT_EQ(body[2]->kind, StmtKind::kReturn);
}

TEST(Parser, SingleStatementBodiesNormalizedToBlocks) {
  auto unit = parse("void f(int n) { if (n) n--; else n++; while(n) n--; }");
  const auto& body = unit.functions[0].body->body;
  EXPECT_EQ(body[0]->then_branch->kind, StmtKind::kBlock);
  EXPECT_EQ(body[0]->else_branch->kind, StmtKind::kBlock);
  EXPECT_EQ(body[1]->body.front()->kind, StmtKind::kBlock);
}

TEST(Parser, ExpressionPrecedence) {
  auto unit = parse("int f(void) { return 1 + 2 * 3; }");
  const auto& ret = unit.functions[0].body->body[0];
  // 1 + (2 * 3): root is '+', rhs is '*'.
  ASSERT_EQ(ret->expr->kind, ExprKind::kBinary);
  EXPECT_EQ(ret->expr->text, "+");
  EXPECT_EQ(ret->expr->rhs->text, "*");
}

TEST(Parser, CallsIndexMembersCasts) {
  auto unit = parse(
      "void f(void) { g(a[1], b->c, (double)d, sizeof(int), h.k); }");
  const auto& call = unit.functions[0].body->body[0]->expr;
  ASSERT_EQ(call->kind, ExprKind::kCall);
  EXPECT_EQ(call->args.size(), 5u);
  EXPECT_EQ(call->args[0]->kind, ExprKind::kIndex);
  EXPECT_EQ(call->args[1]->kind, ExprKind::kMember);
  EXPECT_EQ(call->args[2]->kind, ExprKind::kCast);
  EXPECT_EQ(call->args[3]->kind, ExprKind::kSizeof);
  EXPECT_EQ(call->args[4]->kind, ExprKind::kMember);
}

TEST(Parser, SyntaxErrorsThrow) {
  EXPECT_THROW(parse("int f( { }"), ParseError);
  EXPECT_THROW(parse("int 5x;"), ParseError);
  EXPECT_THROW(parse("void f(void) { if }"), ParseError);
}

TEST(Parser, EmitRoundTripCompilesShape) {
  const std::string src = R"(
    int total = 0;
    int square(int x) { return x * x; }
    void run(int n) {
      int i;
      for (i = 0; i < n; i++) { total += square(i); }
    })";
  auto unit = parse(src);
  const std::string emitted = emit_unit(unit);
  // Emitted source must re-parse to the same shape.
  auto unit2 = parse(emitted);
  EXPECT_EQ(unit2.functions.size(), unit.functions.size());
  EXPECT_EQ(unit2.globals.size(), unit.globals.size());
  EXPECT_EQ(emit_unit(unit2), emitted) << "emitter must be a fixed point";
}

// --------------------------------------------------------------- analysis

TEST(Analysis, CheckpointReachabilityIsTransitive) {
  auto unit = parse(R"(
    void leaf(void) { potentialCheckpoint(); }
    void middle(void) { leaf(); }
    void outer(void) { middle(); }
    void unrelated(void) { }
  )");
  const auto a = analyze(unit);
  EXPECT_TRUE(a.checkpointable.count("leaf"));
  EXPECT_TRUE(a.checkpointable.count("middle"));
  EXPECT_TRUE(a.checkpointable.count("outer"));
  EXPECT_FALSE(a.checkpointable.count("unrelated"));
}

TEST(Analysis, RecursionHandled) {
  auto unit = parse(R"(
    void a(int n) { if (n) b(n - 1); }
    void b(int n) { a(n); potentialCheckpoint(); }
  )");
  const auto an = analyze(unit);
  EXPECT_TRUE(an.checkpointable.count("a"));
  EXPECT_TRUE(an.checkpointable.count("b"));
}

TEST(Analysis, CollectsGlobals) {
  auto unit = parse("int a; double b[4]; char c;");
  const auto an = analyze(unit);
  EXPECT_EQ(an.globals, (std::vector<std::string>{"a", "b", "c"}));
}

// ---------------------------------------------------------- transformation

TEST(Transform, InsertsFigure6Instrumentation) {
  const std::string out = transform_source(R"(
    void work(void) {
      int x = 1;
      potentialCheckpoint();
      x = x + 1;
    })");
  // PS push/label/pop around the checkpoint, VDS push for the local, and a
  // restart dispatch at function entry.
  EXPECT_TRUE(contains(out, "ccift_ps_push(1);"));
  EXPECT_TRUE(contains(out, "potentialCheckpoint()"));
  EXPECT_TRUE(contains(out, "__ccift_label_1_work: ccift_resume();"));
  EXPECT_TRUE(contains(out, "ccift_ps_pop();"));
  EXPECT_TRUE(contains(out, "ccift_vds_push(&x, sizeof(x));"));
  EXPECT_TRUE(contains(out, "if (ccift_restoring())"));
  EXPECT_TRUE(contains(out, "goto __ccift_label_1_work;"));
}

TEST(Transform, CheckpointLabelAfterCallButCallLabelBefore) {
  const std::string out = transform_source(R"(
    void inner(void) { potentialCheckpoint(); }
    void outer(void) { inner(); }
  )");
  // In inner: label comes AFTER potentialCheckpoint (resume past it).
  const auto ckpt_pos = out.find("potentialCheckpoint()");
  const auto inner_label = out.find("__ccift_label_1_inner: ccift_resume();");
  ASSERT_NE(ckpt_pos, std::string::npos);
  ASSERT_NE(inner_label, std::string::npos);
  EXPECT_LT(ckpt_pos, inner_label);
  // In outer: label comes BEFORE the call to inner (re-invoke and descend).
  const auto outer_label = out.find("__ccift_label_1_outer: ccift_resume();");
  const auto inner_call = out.find("inner();", outer_label);
  ASSERT_NE(outer_label, std::string::npos);
  ASSERT_NE(inner_call, std::string::npos);
  EXPECT_LT(outer_label, inner_call);
}

TEST(Transform, OnlyCheckpointableFunctionsInstrumented) {
  const std::string out = transform_source(R"(
    void helper(int v) { v = v * 2; }
    void work(void) { helper(1); potentialCheckpoint(); }
  )");
  // helper cannot reach a checkpoint: no dispatch, no labels inside it.
  EXPECT_FALSE(contains(out, "__ccift_label_1_helper"));
  // The call to helper inside work is not a checkpointable site either.
  EXPECT_EQ(count_of(out, "ccift_ps_push"), 1u);
}

TEST(Transform, DecomposesNestedCalls) {
  const std::string out = transform_source(R"(
    int produce(void) { potentialCheckpoint(); return 1; }
    void work(void) {
      int y = produce() + produce();
    })");
  // Two hoisted temporaries, each a standalone instrumented call site.
  EXPECT_TRUE(contains(out, "__ccift_t0"));
  EXPECT_TRUE(contains(out, "__ccift_t1"));
  EXPECT_EQ(count_of(out, "ccift_ps_push"), 3u)  // 1 in produce + 2 in work
      << out;
}

TEST(Transform, DecomposesReturnOfCall) {
  const std::string out = transform_source(R"(
    int produce(void) { potentialCheckpoint(); return 1; }
    int work(void) { return produce() * 2; }
  )");
  // Hoisted as `int t; t = produce();` so the call is a labelable site.
  EXPECT_TRUE(contains(out, "int __ccift_t0;"));
  EXPECT_TRUE(contains(out, "__ccift_t0 = produce()"));
  EXPECT_TRUE(contains(out, "return __ccift_t0 * 2;"));
}

TEST(Transform, RewritesWhileConditionWithCall) {
  const std::string out = transform_source(R"(
    int step(void) { potentialCheckpoint(); return 0; }
    void work(void) {
      while (step()) { }
    })");
  // while becomes for(;;) { t = step(); if (!(t)) break; ... }.
  EXPECT_TRUE(contains(out, "for (; ; )"));
  EXPECT_TRUE(contains(out, "if (!(__ccift_t0))"));
  EXPECT_TRUE(contains(out, "break;"));
}

TEST(Transform, RejectsShortCircuitCalls) {
  EXPECT_THROW(transform_source(R"(
    int step(void) { potentialCheckpoint(); return 0; }
    void work(int a) { if (a && step()) { } }
  )"),
               util::UsageError);
}

TEST(Transform, VdsPopsOnReturnAndBlockExit) {
  const std::string out = transform_source(R"(
    void work(int n) {
      int a;
      {
        int b;
        if (n) { return; }
      }
      potentialCheckpoint();
    })");
  // The inner return pops both a and b (2); the inner block pops b (1); the
  // function end pops a (1).
  EXPECT_TRUE(contains(out, "ccift_vds_pop(2);"));
  EXPECT_GE(count_of(out, "ccift_vds_pop(1);"), 2u);
}

TEST(Transform, BreakPopsLoopScopes) {
  const std::string out = transform_source(R"(
    void work(int n) {
      while (n) {
        int local;
        if (n > 2) { break; }
        potentialCheckpoint();
      }
    })");
  const auto brk = out.find("break;");
  ASSERT_NE(brk, std::string::npos);
  const auto pop_before = out.rfind("ccift_vds_pop(1);", brk);
  EXPECT_NE(pop_before, std::string::npos)
      << "break must pop the loop body's declarations first:\n" << out;
}

TEST(Transform, EmitsGlobalRegistration) {
  const std::string out = transform_source(R"(
    int counter;
    double grid[64];
    void work(void) { potentialCheckpoint(); }
  )");
  EXPECT_TRUE(contains(out, "void ccift_register_globals(void)"));
  EXPECT_TRUE(contains(
      out, "ccift_register_global(\"counter\", &counter, sizeof(counter));"));
  EXPECT_TRUE(contains(
      out, "ccift_register_global(\"grid\", &grid, sizeof(grid));"));
}

TEST(Transform, OutputReparses) {
  const std::string out = transform_source(R"(
    int total;
    int produce(int k) { potentialCheckpoint(); return k; }
    void work(int n) {
      int i;
      for (i = 0; i < n; i++) {
        total = total + produce(i);
      }
    })");
  // The instrumented output contains labels/gotos our C-subset parser does
  // not model, so instead of re-parsing, sanity-check structural pairing.
  EXPECT_EQ(count_of(out, "ccift_ps_push"), count_of(out, "ccift_ps_pop"));
  EXPECT_GE(count_of(out, "ccift_vds_push"), 1u);
}

// ------------------------------------------------------- MPI facade mode

TEST(Parser, RegisteredTypedefNamesParseAsBaseTypes) {
  auto unit = parse("void f(void) { MPI_Status st; MPI_Comm c; int x; }",
                    mpi_opaque_types());
  const auto& body = unit.functions.at(0).body->body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0]->kind, StmtKind::kDecl);
  EXPECT_EQ(body[0]->text, "MPI_Status");
  EXPECT_EQ(body[1]->text, "MPI_Comm");
}

TEST(Transform, MpiFacadeLabelsBlockingMpiCalls) {
  TransformOptions options;
  options.mpi_facade = true;
  const std::string out = transform_source(R"(
    int main(int argc, char **argv) {
      double v;
      int i;
      MPI_Init(&argc, &argv);
      for (i = 0; i < 4; i++) {
        MPI_Send(&v, 1, MPI_DOUBLE, 1, 0, MPI_COMM_WORLD);
        MPI_Recv(&v, 1, MPI_DOUBLE, 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
      MPI_Finalize();
      return 0;
    })", options);
  // The program never calls potentialCheckpoint, yet the facade's blocking
  // entry points are checkpoint sites: both get PS labels, MPI_Init and
  // MPI_Finalize (never checkpoint) do not.
  EXPECT_EQ(count_of(out, "ccift_ps_pop();"), 2u) << out;
  EXPECT_TRUE(contains(out, "__ccift_label_1_main: ccift_resume();"));
  EXPECT_TRUE(contains(out, "__ccift_label_2_main: ccift_resume();"));
  EXPECT_TRUE(contains(out, "if (ccift_restoring())"));
  // Self-contained C: the ABI prelude is part of the emitted unit.
  EXPECT_TRUE(contains(out, "void ccift_ps_push(int label);"));
}

TEST(Transform, MpiFacadeRenamesMain) {
  TransformOptions options;
  options.mpi_facade = true;
  options.rename_main = "c3mpi_app_main";
  const std::string out = transform_source(R"(
    int main(int argc, char **argv) {
      MPI_Barrier(MPI_COMM_WORLD);
      return 0;
    })", options);
  EXPECT_TRUE(contains(out, "int c3mpi_app_main(int argc, char** argv)"));
  EXPECT_FALSE(contains(out, "int main("));
  EXPECT_TRUE(contains(out, "__ccift_label_1_c3mpi_app_main"));
}

TEST(Transform, DispatchPlacedAfterPrologueDeclarations) {
  const std::string out = transform_source(R"(
    void work(void) {
      int a;
      double grid[8];
      potentialCheckpoint();
    })");
  // The restart dispatch must come after the prologue's VDS pushes, so a
  // re-entered frame rebuilds the descriptor shape the checkpoint saved.
  const auto push_a = out.find("ccift_vds_push(&a, sizeof(a));");
  const auto push_grid = out.find("ccift_vds_push(&grid, sizeof(grid));");
  const auto dispatch = out.find("if (ccift_restoring())");
  ASSERT_NE(push_a, std::string::npos);
  ASSERT_NE(push_grid, std::string::npos);
  ASSERT_NE(dispatch, std::string::npos);
  EXPECT_LT(push_a, dispatch);
  EXPECT_LT(push_grid, dispatch);
}

// --------------------------------------------------------- runtime ABI

// Simulate the emitted idiom end-to-end against the real ABI: run an
// "instrumented" nest, capture at the checkpoint, then restore and verify
// the dispatch path and VDS values.
TEST(RuntimeAbi, EmittedIdiomSavesAndRestores) {
  statesave::SaveContext ctx;
  util::Bytes checkpoint_blob;

  {
    RuntimeBinding binding(ctx);
    int outer_var = 5;
    ccift_vds_push(&outer_var, sizeof(outer_var));
    ccift_ps_push(1);  // call site of 'inner' in 'outer'
    {
      int inner_var = 7;
      ccift_vds_push(&inner_var, sizeof(inner_var));
      ccift_ps_push(2);  // potentialCheckpoint site in 'inner'
      {                  // potentialCheckpoint() body:
        statesave::CheckpointBuilder b;
        ctx.capture(b);
        checkpoint_blob = b.finish();
      }
      ccift_ps_pop();
      ccift_vds_pop(1);
    }
    ccift_ps_pop();
    ccift_vds_pop(1);
    EXPECT_EQ(ctx.ps().depth(), 0u);
    EXPECT_EQ(ctx.vds().depth(), 0u);
  }

  // "Restart": rebuild the activation stack by consuming PS entries, then
  // restore VDS values into the re-pushed variables.
  {
    RuntimeBinding binding(ctx);
    statesave::CheckpointView view(checkpoint_blob);
    ctx.begin_restore(view);
    ASSERT_EQ(ccift_restoring(), 1);
    EXPECT_EQ(ccift_ps_next(), 1);  // outer jumps to its call site
    int outer_var = 0;
    ccift_vds_push(&outer_var, sizeof(outer_var));
    ASSERT_EQ(ccift_restoring(), 1);
    EXPECT_EQ(ccift_ps_next(), 2);  // inner jumps past the checkpoint
    int inner_var = 0;
    ccift_vds_push(&inner_var, sizeof(inner_var));
    EXPECT_EQ(ccift_restoring(), 0);
    ctx.finish_restore();
    EXPECT_EQ(outer_var, 5);
    EXPECT_EQ(inner_var, 7);
    ccift_vds_pop(2);
  }
}

TEST(RuntimeAbi, UnboundThreadThrows) {
  EXPECT_THROW(ccift_ps_push(1), util::UsageError);
}

}  // namespace
}  // namespace c3::ccift
