// Concurrency stress for the parallel checkpoint path: N rank threads
// putting through N writer lanes while commits, drops and reads interleave,
// plus direct churn on the sharded BufferPool from many threads hitting the
// same size classes. Built to run under ThreadSanitizer (the CI tsan job);
// iteration counts are bounded so the instrumented run stays fast.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ckptstore/store.hpp"
#include "statesave/checkpoint.hpp"
#include "util/buffer_pool.hpp"
#include "util/rng.hpp"

#include "ckpt_test_util.hpp"

namespace c3 {
namespace {

using util::BlobKey;
using util::Bytes;
using testutil::random_bytes;

TEST(CkptStress, SharedPoolSameSizeClasses) {
  // Many threads acquire/release buffers from the *same* size classes --
  // the exact contention pattern of N rank threads framing messages while
  // N writer lanes recycle compression scratch. Under TSan this validates
  // the per-class shard locking; everywhere it validates accounting.
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;
  util::BufferPool pool;
  std::atomic<std::uint64_t> bytes_touched{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(0xBEEF + static_cast<std::uint64_t>(t));
      // All threads draw from the same few classes on purpose.
      const std::size_t sizes[] = {64, 600, 4096, 4096, 65536};
      std::uint64_t local = 0;
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t n = sizes[rng.next_u64() % std::size(sizes)];
        Bytes b = pool.acquire(n);
        ASSERT_EQ(b.size(), n);
        b[0] = static_cast<std::byte>(i);       // touch both ends: a stale
        b[n - 1] = static_cast<std::byte>(t);   // size would trip ASan/TSan
        local += n;
        pool.release(std::move(b));
      }
      bytes_touched.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, kThreads * kItersPerThread);
  EXPECT_GT(stats.hits, stats.acquires / 2)
      << "same-class churn must recycle, not allocate";
  EXPECT_GT(bytes_touched.load(), 0u);
}

TEST(CkptStress, RankThreadsAndWriterLanes) {
  // N rank threads checkpoint concurrently through a laned store over an
  // unthrottled backend while the "initiator" thread interleaves commits,
  // superseded-epoch drops and cold reads. Exercises, under TSan: lane
  // queues, the phase-2 meta_mu_ interlock (delta index + refs + drops),
  // the sharded pool recycling blobs from all lanes, and concurrent
  // backend access.
  constexpr int kRanks = 4;
  constexpr int kEpochs = 12;
  constexpr std::size_t kStateBytes = 64 * 1024;
  auto inner = std::make_shared<util::MemoryStorage>();
  ckptstore::StoreOptions o;
  o.writer_lanes = kRanks;
  o.queue_max_blobs = 4;
  o.full_interval = 4;
  ckptstore::CheckpointStore store(inner, o);

  // Per-rank persistent state; each epoch mutates a rank-dependent slice,
  // giving every lane a mix of delta refs and inline chunks.
  std::vector<Bytes> state(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    state[r] = random_bytes(kStateBytes, 77 + static_cast<unsigned>(r));
  }
  auto blob_for = [&](int epoch, int rank) {
    statesave::CheckpointBuilder b;
    b.add_section("heap", state[rank]);
    util::Writer w;
    w.put<std::int32_t>(epoch);
    b.add_section("protocol", w.take());
    return b.finish();
  };

  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    std::vector<Bytes> expected(kRanks);
    std::vector<std::thread> ranks;
    ranks.reserve(kRanks);
    for (int r = 0; r < kRanks; ++r) {
      // Mutate a slice whose position depends on (epoch, rank).
      const std::size_t off =
          (static_cast<std::size_t>(epoch) * 7919 + static_cast<std::size_t>(r) * 104729) %
          (kStateBytes - 512);
      for (std::size_t i = 0; i < 512; ++i) {
        state[r][off + i] = static_cast<std::byte>(epoch + r + static_cast<int>(i));
      }
      expected[r] = blob_for(epoch, r);
      ranks.emplace_back([&, r] {
        store.put({epoch, r, "state"}, Bytes(expected[r]));
        // Every rank also reads a peer's previous epoch mid-churn: get()
        // flushes all lanes, racing the other ranks' enqueues.
        if (epoch > 1) {
          const int peer = (r + 1) % kRanks;
          try {
            auto back = store.get({epoch - 1, peer, "state"});
            if (back.has_value()) {
              EXPECT_FALSE(back->empty());
            }
          } catch (const util::CorruptionError&) {
            // The previous epoch is drop-requested by now: it may be gone,
            // or retained solely for its inline chunks with its own refs
            // no longer resolvable. Reading it is best-effort by design;
            // only the *committed* epoch (checked below) must always read.
          }
        }
      });
    }
    for (auto& th : ranks) th.join();
    store.commit(epoch);
    if (epoch > 1) store.drop_epoch(epoch - 1);
    // The committed epoch always reads back bit-exact for every rank.
    for (int r = 0; r < kRanks; ++r) {
      auto back = store.get({epoch, r, "state"});
      ASSERT_TRUE(back.has_value()) << "epoch " << epoch << " rank " << r;
      ASSERT_EQ(*back, expected[r]) << "epoch " << epoch << " rank " << r;
    }
  }
  // Steady state must have recycled blob buffers across lanes.
  EXPECT_GT(store.pool().stats().hits, 0u);
  // And the per-lane accounting saw every rank's writes.
  const auto lanes = store.lane_stats();
  ASSERT_EQ(lanes.size(), static_cast<std::size_t>(kRanks));
  for (const auto& lane : lanes) {
    EXPECT_EQ(lane.puts, static_cast<std::uint64_t>(kEpochs));
  }
}

}  // namespace
}  // namespace c3
