// The three paper applications: numerical sanity, determinism across
// instrumentation levels (the protocol must never change results), and
// exact recovery from injected failures.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <mutex>

#include "apps/cg.hpp"
#include "apps/laplace.hpp"
#include "apps/neurosys.hpp"
#include "core/job.hpp"

namespace c3::apps {
namespace {

using core::InstrumentLevel;
using core::Job;
using core::JobConfig;
using core::Process;

template <typename Result>
struct Collected {
  std::mutex mu;
  Result root;  ///< rank 0's result
  void put(int rank, const Result& r) {
    std::lock_guard lock(mu);
    if (rank == 0) root = r;
  }
};

// ------------------------------------------------------------------- CG

CgResult run_cg_job(int ranks, std::size_t n, int iters, InstrumentLevel level,
                    std::optional<net::FailureSpec> failure = std::nullopt) {
  auto collected = std::make_shared<Collected<CgResult>>();
  JobConfig cfg;
  cfg.ranks = ranks;
  cfg.level = level;
  cfg.policy = core::CheckpointPolicy::every(3);
  cfg.failure = failure;
  Job job(cfg);
  job.run([&](Process& p) {
    CgConfig app;
    app.n = n;
    app.iterations = iters;
    app.checkpoints = (level == InstrumentLevel::kFull ||
                       level == InstrumentLevel::kNoAppState);
    collected->put(p.rank(), run_cg(p, app));
  });
  return collected->root;
}

TEST(CgApp, ConvergesOnSpdSystem) {
  const auto r = run_cg_job(4, 64, 40, InstrumentLevel::kRaw);
  EXPECT_LT(r.residual, 1e-8) << "CG failed to converge on an SPD matrix";
  EXPECT_EQ(r.iterations_done, 40);
  EXPECT_TRUE(std::isfinite(r.checksum));
}

TEST(CgApp, ResultIndependentOfRankCount) {
  const auto r2 = run_cg_job(2, 48, 30, InstrumentLevel::kRaw);
  const auto r4 = run_cg_job(4, 48, 30, InstrumentLevel::kRaw);
  // Identical allgather/allreduce arithmetic order is not guaranteed across
  // layouts; require agreement to tight tolerance.
  EXPECT_NEAR(r2.checksum, r4.checksum, 1e-9 * std::abs(r2.checksum) + 1e-12);
}

TEST(CgApp, ProtocolLevelsPreserveResult) {
  const auto raw = run_cg_job(3, 45, 25, InstrumentLevel::kRaw);
  const auto pb = run_cg_job(3, 45, 25, InstrumentLevel::kPiggybackOnly);
  const auto full = run_cg_job(3, 45, 25, InstrumentLevel::kFull);
  EXPECT_EQ(raw.checksum, pb.checksum)
      << "piggybacking must be invisible to the application";
  EXPECT_EQ(raw.checksum, full.checksum)
      << "checkpointing must be invisible to the application";
}

TEST(CgApp, RecoversExactlyFromFailure) {
  const auto clean = run_cg_job(3, 36, 24, InstrumentLevel::kFull);
  const auto recovered =
      run_cg_job(3, 36, 24, InstrumentLevel::kFull,
                 net::FailureSpec{.victim_rank = 1, .trigger_events = 60});
  EXPECT_EQ(clean.checksum, recovered.checksum);
  EXPECT_EQ(clean.residual, recovered.residual);
}

TEST(CgApp, RaggedBlockRowsWork) {
  // 50 rows over 4 ranks: 13/13/12/12 -- exercises the non-divisible path.
  const auto r = run_cg_job(4, 50, 30, InstrumentLevel::kFull);
  EXPECT_LT(r.residual, 1e-6);
}

// -------------------------------------------------------------- Laplace

LaplaceResult run_laplace_job(int ranks, std::size_t n, int iters,
                              InstrumentLevel level,
                              std::optional<net::FailureSpec> failure =
                                  std::nullopt) {
  auto collected = std::make_shared<Collected<LaplaceResult>>();
  JobConfig cfg;
  cfg.ranks = ranks;
  cfg.level = level;
  cfg.policy = core::CheckpointPolicy::every(5);
  cfg.failure = failure;
  Job job(cfg);
  job.run([&](Process& p) {
    LaplaceConfig app;
    app.n = n;
    app.iterations = iters;
    app.checkpoints = (level == InstrumentLevel::kFull ||
                       level == InstrumentLevel::kNoAppState);
    collected->put(p.rank(), run_laplace(p, app));
  });
  return collected->root;
}

TEST(LaplaceApp, HeatSpreadsFromTopEdge) {
  const auto r = run_laplace_job(4, 32, 200, InstrumentLevel::kRaw);
  // The interior warms up: checksum strictly between 0 and the edge total.
  EXPECT_GT(r.checksum, 100.0 * 32);  // more than just the heated edge
  EXPECT_LT(r.checksum, 100.0 * 32 * 32);
  // Jacobi contraction: later deltas must be small.
  EXPECT_LT(r.max_delta, 1.0);
}

TEST(LaplaceApp, ResultIndependentOfRankCount) {
  const auto r1 = run_laplace_job(1, 24, 80, InstrumentLevel::kRaw);
  const auto r3 = run_laplace_job(3, 24, 80, InstrumentLevel::kRaw);
  // The stencil arithmetic is identical; only the final checksum allreduce
  // groups partial sums differently (floating-point non-associativity).
  EXPECT_NEAR(r1.checksum, r3.checksum,
              1e-12 * std::abs(r1.checksum) + 1e-12);
}

TEST(LaplaceApp, ProtocolLevelsPreserveResult) {
  const auto raw = run_laplace_job(4, 24, 60, InstrumentLevel::kRaw);
  const auto full = run_laplace_job(4, 24, 60, InstrumentLevel::kFull);
  EXPECT_EQ(raw.checksum, full.checksum);
}

TEST(LaplaceApp, RecoversExactlyFromFailure) {
  const auto clean = run_laplace_job(4, 24, 50, InstrumentLevel::kFull);
  for (std::uint64_t trigger : {30ull, 75ull, 140ull}) {
    const auto recovered = run_laplace_job(
        4, 24, 50, InstrumentLevel::kFull,
        net::FailureSpec{.victim_rank = 2, .trigger_events = trigger});
    EXPECT_EQ(clean.checksum, recovered.checksum) << "trigger " << trigger;
  }
}

// ------------------------------------------------------------- Neurosys

NeurosysResult run_neurosys_job(int ranks, std::size_t neurons, int iters,
                                InstrumentLevel level,
                                std::optional<net::FailureSpec> failure =
                                    std::nullopt) {
  auto collected = std::make_shared<Collected<NeurosysResult>>();
  JobConfig cfg;
  cfg.ranks = ranks;
  cfg.level = level;
  cfg.policy = core::CheckpointPolicy::every(4);
  cfg.failure = failure;
  Job job(cfg);
  job.run([&](Process& p) {
    NeurosysConfig app;
    app.neurons = neurons;
    app.iterations = iters;
    app.checkpoints = (level == InstrumentLevel::kFull ||
                       level == InstrumentLevel::kNoAppState);
    collected->put(p.rank(), run_neurosys(p, app));
  });
  return collected->root;
}

TEST(NeurosysApp, PotentialsStayBounded) {
  const auto r = run_neurosys_job(4, 128, 60, InstrumentLevel::kRaw);
  // tanh drive + leak keeps potentials in a modest range; the checksum of
  // 128 neurons must reflect that.
  EXPECT_LT(std::abs(r.checksum), 128.0 * 3.0);
  EXPECT_TRUE(std::isfinite(r.root_probe));
}

TEST(NeurosysApp, ResultIndependentOfRankCount) {
  const auto r2 = run_neurosys_job(2, 96, 40, InstrumentLevel::kRaw);
  const auto r3 = run_neurosys_job(3, 96, 40, InstrumentLevel::kRaw);
  EXPECT_NEAR(r2.checksum, r3.checksum,
              1e-9 * std::abs(r2.checksum) + 1e-12);
}

TEST(NeurosysApp, ProtocolLevelsPreserveResult) {
  const auto raw = run_neurosys_job(4, 64, 30, InstrumentLevel::kRaw);
  const auto pb = run_neurosys_job(4, 64, 30, InstrumentLevel::kPiggybackOnly);
  const auto full = run_neurosys_job(4, 64, 30, InstrumentLevel::kFull);
  EXPECT_EQ(raw.checksum, pb.checksum);
  EXPECT_EQ(raw.checksum, full.checksum);
}

TEST(NeurosysApp, RecoversExactlyFromFailure) {
  const auto clean = run_neurosys_job(3, 60, 24, InstrumentLevel::kFull);
  for (std::uint64_t trigger : {40ull, 90ull}) {
    const auto recovered = run_neurosys_job(
        3, 60, 24, InstrumentLevel::kFull,
        net::FailureSpec{.victim_rank = 0, .trigger_events = trigger});
    EXPECT_EQ(clean.checksum, recovered.checksum) << "trigger " << trigger;
    EXPECT_EQ(clean.root_probe, recovered.root_probe);
  }
}

TEST(NeurosysApp, CollectiveHeavyProfile) {
  // Per paper: 5 allgathers + 1 gather per iteration. Verify the traffic
  // profile through process stats (on any rank; use root).
  auto stats = std::make_shared<Collected<core::ProcessStats>>();
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.level = InstrumentLevel::kRaw;
  Job job(cfg);
  constexpr int kIters = 10;
  job.run([&](Process& p) {
    NeurosysConfig app;
    app.neurons = 32;
    app.iterations = kIters;
    app.checkpoints = false;
    run_neurosys(p, app);
    stats->put(p.rank(), p.stats());
  });
  const auto collectives = stats->root.app_collectives;
  // kRaw passthrough does not count in ProcessStats; use simmpi-level
  // counting instead via a full-level run.
  (void)collectives;
  auto stats2 = std::make_shared<Collected<core::ProcessStats>>();
  JobConfig cfg2;
  cfg2.ranks = 2;
  cfg2.level = InstrumentLevel::kPiggybackOnly;
  Job job2(cfg2);
  job2.run([&](Process& p) {
    NeurosysConfig app;
    app.neurons = 32;
    app.iterations = kIters;
    app.checkpoints = false;
    run_neurosys(p, app);
    stats2->put(p.rank(), p.stats());
  });
  // 5 allgathers + 1 gather per iteration, plus the final allreduce and
  // the initial nothing: 6 per iter + 1.
  EXPECT_EQ(stats2->root.app_collectives,
            static_cast<std::uint64_t>(6 * kIters + 1));
}

}  // namespace
}  // namespace c3::apps
