// EventLog serialization and ReplayLog consumption semantics.
#include <gtest/gtest.h>

#include "core/logrec.hpp"

namespace c3::core {
namespace {

util::Bytes payload_of(std::initializer_list<int> vals) {
  util::Bytes b;
  for (int v : vals) b.push_back(static_cast<std::byte>(v));
  return b;
}

TEST(EventLog, EmptyRoundTrip) {
  EventLog log;
  ReplayLog replay(log.serialize());
  EXPECT_TRUE(replay.recvs_exhausted());
  EXPECT_TRUE(replay.nondets_exhausted());
  EXPECT_TRUE(replay.collectives_exhausted());
  EXPECT_FALSE(replay.take_nondet().has_value());
  EXPECT_FALSE(replay.take_collective().has_value());
  EXPECT_FALSE(replay.take_recv(0, 0).has_value());
}

TEST(EventLog, NondetFifoOrder) {
  EventLog log;
  log.add_nondet(10);
  log.add_nondet(20);
  log.add_nondet(30);
  ReplayLog replay(log.serialize());
  EXPECT_EQ(replay.take_nondet(), 10u);
  EXPECT_EQ(replay.take_nondet(), 20u);
  EXPECT_EQ(replay.take_nondet(), 30u);
  EXPECT_FALSE(replay.take_nondet().has_value());
}

TEST(EventLog, CollectiveFifoOrder) {
  EventLog log;
  log.add_collective(payload_of({1}));
  log.add_collective(payload_of({2, 2}));
  ReplayLog replay(log.serialize());
  EXPECT_EQ(replay.take_collective()->size(), 1u);
  EXPECT_EQ(replay.take_collective()->size(), 2u);
  EXPECT_TRUE(replay.collectives_exhausted());
}

TEST(EventLog, RecvMatchedByPatternInOrder) {
  EventLog log;
  // Two patterns interleaved; per-pattern order must be preserved.
  log.add_recv({.pattern_src = 1, .pattern_tag = 5, .src = 1, .tag = 5,
                .message_id = 0, .cls = MessageClass::kLate,
                .payload = payload_of({1})});
  log.add_recv({.pattern_src = 2, .pattern_tag = 5, .src = 2, .tag = 5,
                .message_id = 0, .cls = MessageClass::kIntraEpoch,
                .payload = {}});
  log.add_recv({.pattern_src = 1, .pattern_tag = 5, .src = 1, .tag = 5,
                .message_id = 1, .cls = MessageClass::kLate,
                .payload = payload_of({2})});
  ReplayLog replay(log.serialize());

  auto a = replay.take_recv(1, 5);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->message_id, 0u);
  EXPECT_EQ(a->payload, payload_of({1}));

  auto b = replay.take_recv(1, 5);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->message_id, 1u);

  auto c = replay.take_recv(2, 5);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->cls, MessageClass::kIntraEpoch);

  EXPECT_FALSE(replay.take_recv(1, 5).has_value());
  EXPECT_TRUE(replay.recvs_exhausted());
}

TEST(EventLog, WildcardPatternIsItsOwnKey) {
  EventLog log;
  log.add_recv({.pattern_src = simmpi::kAnySource,
                .pattern_tag = simmpi::kAnyTag, .src = 3, .tag = 7,
                .message_id = 4, .cls = MessageClass::kIntraEpoch,
                .payload = {}});
  ReplayLog replay(log.serialize());
  // A concrete pattern does not consume the wildcard entry...
  EXPECT_FALSE(replay.take_recv(3, 7).has_value());
  // ...but the wildcard pattern does, and reveals the concrete match.
  auto e = replay.take_recv(simmpi::kAnySource, simmpi::kAnyTag);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->src, 3);
  EXPECT_EQ(e->tag, 7);
}

TEST(EventLog, LatePayloadSurvivesSerialization) {
  EventLog log;
  util::Bytes big(10000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(i & 0xFF);
  }
  log.add_recv({.pattern_src = 0, .pattern_tag = 0, .src = 0, .tag = 0,
                .message_id = 9, .cls = MessageClass::kLate, .payload = big});
  ReplayLog replay(log.serialize());
  auto e = replay.take_recv(0, 0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->payload, big);
}

TEST(EventLog, ClearEmptiesEverything) {
  EventLog log;
  log.add_nondet(1);
  log.add_collective(payload_of({1}));
  log.add_recv({.pattern_src = 0, .pattern_tag = 0, .src = 0, .tag = 0,
                .message_id = 0, .cls = MessageClass::kLate,
                .payload = payload_of({1})});
  log.clear();
  EXPECT_EQ(log.recv_count(), 0u);
  EXPECT_EQ(log.nondet_count(), 0u);
  EXPECT_EQ(log.collective_count(), 0u);
}

TEST(ReplayLog, BadMagicThrows) {
  util::Bytes garbage(16, std::byte{0x42});
  EXPECT_THROW(ReplayLog{garbage}, util::CorruptionError);
}

}  // namespace
}  // namespace c3::core
