// The segmented large-message path and the bandwidth-optimal collectives.
// Messages framed above the buffer pool's largest size class ship as pooled
// fragments reassembled at the destination inbox; allreduce switches to a
// ring reduce-scatter + allgather and bcast/reduce chunk-pipeline above
// their cutovers. These tests pin down byte-exact delivery, steady-state
// allocation behaviour (no oversize heap allocations, no per-send pool
// growth), agreement between the tuned and naive algorithms, and exact
// recovery when a failure lands in the middle of a segmented allreduce.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "core/job.hpp"
#include "core/process.hpp"
#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"
#include "util/buffer_pool.hpp"

namespace c3::simmpi {
namespace {

constexpr std::size_t kClassMax = util::BufferPool::kMaxClassBytes;

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(
        static_cast<std::uint8_t>(seed + i * 131 + (i >> 9)));
  }
  return v;
}

// Sizes straddling the fragmentation threshold: just below, exactly at,
// just above, and several fragments with a ragged tail.
const std::size_t kSweep[] = {kClassMax - 64, kClassMax, kClassMax + 1,
                              3 * kClassMax + 4097, 5 * kClassMax};

TEST(LargeMessage, SegmentedSendIsByteIdentical) {
  for (bool reorder : {false, true}) {
    NetConfig cfg;
    if (reorder) {
      cfg.order = NetConfig::Order::kRandomReorder;
      cfg.seed = 29;
      cfg.p_hold = 0.6;
      cfg.max_hold = 5;
    }
    Runtime rt(2, cfg);
    rt.run([&](Api& api) {
      int round = 0;
      for (std::size_t n : kSweep) {
        const auto seed = static_cast<std::uint8_t>(round * 17 + 3);
        if (api.world_rank() == 0) {
          auto data = pattern_bytes(n, seed);
          api.send(api.world(), data, 1, round);
        } else {
          std::vector<std::byte> got(n);
          Status st = api.recv(api.world(), got, 0, round);
          EXPECT_EQ(st.size, n);
          EXPECT_EQ(got, pattern_bytes(n, seed)) << "size " << n;
        }
        ++round;
      }
      // Every fragment must have come from a pool size class.
      EXPECT_EQ(api.runtime().fabric().stats().oversize_allocs.load(), 0u);
    });
  }
}

TEST(LargeMessage, SegmentedProbeSeesLogicalSize) {
  Runtime rt(2);
  rt.run([](Api& api) {
    const std::size_t n = 2 * kClassMax + 999;
    if (api.world_rank() == 0) {
      auto data = pattern_bytes(n, 5);
      api.send(api.world(), data, 1, 0);
    } else {
      ProbeInfo info = api.probe(api.world(), 0, 0);
      EXPECT_EQ(info.size, n);
      auto [wire, st] = api.recv_any(api.world(), 0, 0);
      EXPECT_EQ(st.size, n);
      ASSERT_EQ(wire.size(), n);
      EXPECT_EQ(0, std::memcmp(wire.data(), pattern_bytes(n, 5).data(), n));
      api.runtime().fabric().release_buffer(std::move(wire));
    }
  });
}

TEST(LargeMessage, SteadyStateSegmentedSendsAllocateNothing) {
  Runtime rt(2);
  rt.run([](Api& api) {
    const std::size_t n = 4 * kClassMax + 1234;
    auto& fabric = api.runtime().fabric();
    auto round_trip = [&](int rounds, Tag base) {
      for (int i = 0; i < rounds; ++i) {
        if (api.world_rank() == 0) {
          auto data = pattern_bytes(n, static_cast<std::uint8_t>(i));
          api.send(api.world(), data, 1, base + i);
          std::byte ack{};
          api.recv(api.world(), {&ack, 1}, 1, base + i);
        } else {
          std::vector<std::byte> got(n);
          api.recv(api.world(), got, 0, base + i);
          std::byte ack{1};
          api.send(api.world(), {&ack, 1}, 0, base + i);
        }
      }
    };
    // Warm the pool, then require the steady state to recycle every
    // fragment: zero fresh allocations, zero oversize allocations.
    round_trip(3, 0);
    api.barrier(api.world());
    const std::uint64_t allocs = fabric.stats().allocs.load();
    round_trip(5, 100);
    api.barrier(api.world());
    EXPECT_EQ(fabric.stats().allocs.load(), allocs);
    EXPECT_EQ(fabric.stats().oversize_allocs.load(), 0u);
  });
}

// ------------------------------------------------------------ collectives

struct AlgoParam {
  int ranks;
  bool reorder;
};

class TunedCollectives : public ::testing::TestWithParam<AlgoParam> {
 protected:
  // Runtime is neither copyable nor movable (it holds a mutex and
  // atomics), so it can only leave this function as a prvalue; callers
  // apply force_naive() after construction.
  Runtime make_runtime() const {
    NetConfig cfg;
    if (GetParam().reorder) {
      cfg.order = NetConfig::Order::kRandomReorder;
      cfg.seed = 41;
      cfg.p_hold = 0.6;
      cfg.max_hold = 5;
    }
    return Runtime(GetParam().ranks, cfg);
  }
  // Cutovers at SIZE_MAX force the binomial reduce+bcast baselines.
  static void force_naive(Runtime& rt) {
    rt.coll_tuning().ring_allreduce_min_bytes = SIZE_MAX;
    rt.coll_tuning().pipeline_min_bytes = SIZE_MAX;
  }
  int ranks() const { return GetParam().ranks; }
};

std::vector<std::int64_t> allreduce_input(int rank, std::size_t elems) {
  std::vector<std::int64_t> v(elems);
  for (std::size_t i = 0; i < elems; ++i) {
    v[i] = static_cast<std::int64_t>(i % 97) * (rank + 1) - rank * 3;
  }
  return v;
}

TEST_P(TunedCollectives, RingAllreduceMatchesNaive) {
  // Counts chosen to exercise ragged chunk partitions (not divisible by p)
  // and, at 786432 elements (6 MiB), ring steps large enough that each
  // chunk itself takes the segmented path.
  for (std::size_t elems : {16384ull, 16411ull, 786432ull}) {
    std::vector<std::vector<std::int64_t>> results(2);
    for (int naive = 0; naive < 2; ++naive) {
      auto rt = make_runtime();
    if (naive == 1) force_naive(rt);
      std::mutex mu;
      auto& slot = results[static_cast<std::size_t>(naive)];
      rt.run([&](Api& api) {
        auto in = allreduce_input(api.world_rank(), elems);
        std::vector<std::int64_t> out(elems);
        api.allreduce(api.world(),
                      {reinterpret_cast<const std::byte*>(in.data()),
                       elems * 8},
                      {reinterpret_cast<std::byte*>(out.data()), elems * 8},
                      Datatype::kInt64, Op::kSum);
        std::lock_guard lock(mu);
        if (slot.empty()) {
          slot = out;
        } else {
          EXPECT_EQ(slot, out) << "ranks disagree, elems " << elems;
        }
      });
    }
    EXPECT_EQ(results[0], results[1]) << "tuned vs naive, elems " << elems;
    // Cross-check one element analytically.
    std::int64_t expect = 0;
    for (int r = 0; r < ranks(); ++r) expect += allreduce_input(r, 2)[1];
    EXPECT_EQ(results[0][1], expect);
  }
}

TEST_P(TunedCollectives, RingAllreduceUserOpMatchesNaive) {
  const std::size_t elems = 65536;  // 512 KiB of int64, above the cutover
  std::vector<std::vector<std::int64_t>> results(2);
  for (int naive = 0; naive < 2; ++naive) {
    auto rt = make_runtime();
    if (naive == 1) force_naive(rt);
    std::mutex mu;
    auto& slot = results[static_cast<std::size_t>(naive)];
    rt.run([&](Api& api) {
      // The op must be associative and commutative (as MPI requires):
      // componentwise (max of the low bits, sum of the high bits).
      OpHandle op = api.op_create(
          [](const std::byte* in, std::byte* inout, std::size_t count) {
            const auto* a = reinterpret_cast<const std::int64_t*>(in);
            auto* b = reinterpret_cast<std::int64_t*>(inout);
            for (std::size_t i = 0; i < count; ++i) {
              b[i] = std::max(b[i] & 0xffff, a[i] & 0xffff) |
                     (((b[i] >> 16) + (a[i] >> 16)) << 16);
            }
          });
      auto in = allreduce_input(api.world_rank(), elems);
      std::vector<std::int64_t> out(elems);
      api.allreduce_user(api.world(),
                         {reinterpret_cast<const std::byte*>(in.data()),
                          elems * 8},
                         {reinterpret_cast<std::byte*>(out.data()), elems * 8},
                         8, op);
      api.op_free(op);
      std::lock_guard lock(mu);
      if (slot.empty()) {
        slot = out;
      } else {
        EXPECT_EQ(slot, out);
      }
    });
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST_P(TunedCollectives, PipelinedBcastFromEveryRoot) {
  auto rt = make_runtime();
  const int p = ranks();
  // 1 MiB + a ragged tail: several pipeline chunks, last one partial.
  const std::size_t n = kClassMax + 777;
  rt.run([&](Api& api) {
    for (Rank root = 0; root < p; ++root) {
      const auto seed = static_cast<std::uint8_t>(root * 29 + 1);
      std::vector<std::byte> buf = (api.world_rank() == root)
                                       ? pattern_bytes(n, seed)
                                       : std::vector<std::byte>(n);
      api.bcast(api.world(), buf, root);
      EXPECT_EQ(buf, pattern_bytes(n, seed)) << "root " << root;
    }
  });
}

TEST_P(TunedCollectives, PipelinedReduceMatchesNaive) {
  const std::size_t elems = 131072;  // 1 MiB of int64: pipelined path
  std::vector<std::vector<std::int64_t>> results(2);
  for (int naive = 0; naive < 2; ++naive) {
    auto rt = make_runtime();
    if (naive == 1) force_naive(rt);
    std::mutex mu;
    auto& slot = results[static_cast<std::size_t>(naive)];
    rt.run([&](Api& api) {
      const Rank root = ranks() - 1;
      auto in = allreduce_input(api.world_rank(), elems);
      std::vector<std::int64_t> out(elems);
      api.reduce(api.world(),
                 {reinterpret_cast<const std::byte*>(in.data()), elems * 8},
                 {reinterpret_cast<std::byte*>(out.data()), elems * 8},
                 Datatype::kInt64, Op::kSum, root);
      if (api.world_rank() == root) {
        std::lock_guard lock(mu);
        slot = out;
      }
    });
  }
  EXPECT_EQ(results[0], results[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TunedCollectives,
    ::testing::Values(AlgoParam{2, false}, AlgoParam{3, false},
                      AlgoParam{4, false}, AlgoParam{5, true},
                      AlgoParam{4, true}, AlgoParam{8, false}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.ranks) +
             (info.param.reorder ? "_reorder" : "_fifo");
    });

}  // namespace
}  // namespace c3::simmpi

// --------------------------------------------------- failure + recovery

namespace c3::core {
namespace {

struct ResultSink {
  std::mutex mu;
  std::vector<long long> values;
  void put(int rank, long long v) {
    std::lock_guard lock(mu);
    if (values.size() <= static_cast<std::size_t>(rank)) {
      values.resize(static_cast<std::size_t>(rank) + 1);
    }
    values[static_cast<std::size_t>(rank)] = v;
  }
};

/// Iterated large allreduce: each round allreduces a 3 MiB registered
/// buffer (the ring chunks at 2 ranks are 1.5 MiB, so every step takes the
/// segmented path) and folds the result back into local state. The final
/// checksum is deterministic, so a run with an injected failure must
/// reproduce the clean run bit-for-bit.
void big_allreduce_app(Process& p, std::shared_ptr<ResultSink> sink,
                       int iters, std::size_t elems) {
  std::vector<long long> buf(elems), out(elems);
  for (std::size_t i = 0; i < elems; ++i) {
    buf[i] = p.rank() + 1 + static_cast<long long>(i % 11);
  }
  int iter = 0;
  p.register_state("buf", buf.data(), buf.size() * sizeof(long long));
  p.register_value("iter", iter);
  p.complete_registration();
  const int right = (p.rank() + 1) % p.nranks();
  const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
  const std::span<std::byte> out_b{reinterpret_cast<std::byte*>(out.data()),
                                   out.size() * sizeof(long long)};
  while (iter < iters) {
    p.allreduce({reinterpret_cast<const std::byte*>(buf.data()),
                 buf.size() * sizeof(long long)},
                out_b, simmpi::Datatype::kInt64, simmpi::Op::kSum);
    for (std::size_t i = 0; i < elems; ++i) {
      buf[i] = out[i] / p.nranks() + static_cast<long long>((i + iter) % 7);
    }
    // Segmented p2p under the protocol: ship the whole rank-specific buffer
    // one hop around the ring (the piggyback rides fragment 0; the receive
    // side reassembles, and on the logging path concatenates into the log),
    // then fold the neighbour's data in so the checksum depends on it.
    p.send({reinterpret_cast<const std::byte*>(buf.data()),
            buf.size() * sizeof(long long)},
           right, /*tag=*/7);
    p.recv(out_b, left, /*tag=*/7);
    for (std::size_t i = 0; i < elems; ++i) {
      buf[i] += out[i] % 3;
    }
    ++iter;
    p.potential_checkpoint();
  }
  // Unsigned mix: the fold is a wraparound hash, and signed overflow
  // would be UB.
  unsigned long long checksum = 1469598103934665603ull;
  for (long long v : buf) {
    checksum = checksum * 31u + static_cast<unsigned long long>(v);
  }
  sink->put(p.rank(), static_cast<long long>(checksum));
}

std::vector<long long> run_big_allreduce(
    int ranks, int iters, std::size_t elems,
    std::optional<net::FailureSpec> failure, int* executions = nullptr) {
  auto sink = std::make_shared<ResultSink>();
  JobConfig cfg;
  cfg.ranks = ranks;
  cfg.policy = CheckpointPolicy::every(2);
  cfg.failure = failure;
  Job job(cfg);
  auto report = job.run([&](Process& p) {
    big_allreduce_app(p, sink, iters, elems);
  });
  if (executions) *executions = report.executions;
  return sink->values;
}

TEST(LargeMessageRecovery, KillMidAllreduceRecoversExactly) {
  // 3 MiB per rank: big enough that the ring chunks fragment, small enough
  // for the TSan lane. 4 events per iteration (allreduce, send, recv,
  // checkpoint hook), so the trigger sweep walks the failure point across
  // checkpoint boundaries; the sweep must find at least one scenario where
  // a committed checkpoint actually rolled back (executions >= 2).
  const std::size_t elems = 3u << 18;  // 3 MiB of int64
  const int iters = 6;
  const auto clean = run_big_allreduce(2, iters, elems, std::nullopt);
  bool rolled_back = false;
  for (std::uint64_t trigger = 9; trigger <= 21 && !rolled_back;
       trigger += 2) {
    int executions = 0;
    const auto recovered = run_big_allreduce(
        2, iters, elems,
        net::FailureSpec{.victim_rank = 1, .trigger_events = trigger},
        &executions);
    EXPECT_EQ(clean, recovered) << "divergence at trigger " << trigger;
    rolled_back = executions >= 2;
  }
  EXPECT_TRUE(rolled_back) << "no trigger produced a rollback";
}

}  // namespace
}  // namespace c3::core
