// End-to-end validation of the precompiler's output: the instrumented
// source must be *real, compilable C*. Each case is transformed, prefixed
// with the ccift runtime ABI declarations, and handed to the system C
// compiler in syntax-check mode. (Jumping over declarations is legal in C
// -- the variables are simply uninitialized until the VDS restore -- which
// is exactly the paper's model; these tests compile as C, not C++.)
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "ccift/transform.hpp"

namespace c3::ccift {
namespace {

const char* kAbiPrelude = R"(
typedef unsigned long size_t;
void ccift_ps_push(int label);
void ccift_ps_pop(void);
int ccift_restoring(void);
int ccift_ps_next(void);
void ccift_restore_error(void);
void ccift_resume(void);
void ccift_vds_push(void* addr, size_t size);
void ccift_vds_pop(int count);
void ccift_register_global(const char* name, void* addr, size_t size);
void potentialCheckpoint(void);
)";

bool has_cc() {
  static const int rc = std::system("cc --version > /dev/null 2>&1");
  return rc == 0;
}

/// Transform `source` and run `cc -x c -fsyntax-only` on the result.
::testing::AssertionResult compiles_as_c(const std::string& source) {
  const std::string transformed = transform_source(source);
  // PID-unique names: ctest runs each test case in its own process, in
  // parallel, so a per-process counter alone would collide.
  static int counter = 0;
  const std::string path = "/tmp/c3_ccift_compile_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(counter++) + ".c";
  {
    std::ofstream out(path);
    out << kAbiPrelude << transformed;
  }
  const std::string cmd =
      "cc -x c -std=c11 -fsyntax-only -Wall -Werror=implicit-function-"
      "declaration " +
      path + " 2> " + path + ".err";
  const int rc = std::system(cmd.c_str());
  if (rc == 0) {
    std::remove(path.c_str());
    std::remove((path + ".err").c_str());
    return ::testing::AssertionSuccess();
  }
  std::ifstream err(path + ".err");
  std::string diagnostics((std::istreambuf_iterator<char>(err)),
                          std::istreambuf_iterator<char>());
  return ::testing::AssertionFailure()
         << "compiler rejected instrumented output of:\n"
         << source << "\n--- instrumented ---\n"
         << transformed << "\n--- diagnostics ---\n"
         << diagnostics;
}

#define SKIP_WITHOUT_CC() \
  if (!has_cc()) GTEST_SKIP() << "no system C compiler available"

TEST(CcifCompile, SimpleCheckpointFunction) {
  SKIP_WITHOUT_CC();
  EXPECT_TRUE(compiles_as_c(R"(
    void work(void) {
      int x = 1;
      potentialCheckpoint();
      x = x + 1;
    })"));
}

TEST(CcifCompile, NestedCallChain) {
  SKIP_WITHOUT_CC();
  EXPECT_TRUE(compiles_as_c(R"(
    void leaf(void) { potentialCheckpoint(); }
    void middle(int depth) { if (depth > 0) { leaf(); } }
    void outer(void) {
      int i;
      for (i = 0; i < 10; i++) { middle(i); }
    })"));
}

TEST(CcifCompile, DecomposedExpressions) {
  SKIP_WITHOUT_CC();
  EXPECT_TRUE(compiles_as_c(R"(
    int produce(int k) { potentialCheckpoint(); return k * 2; }
    int work(int n) {
      int total = produce(n) + produce(n + 1);
      total += produce(total);
      return produce(total) * 3;
    })"));
}

TEST(CcifCompile, LoopConditionRewrite) {
  SKIP_WITHOUT_CC();
  EXPECT_TRUE(compiles_as_c(R"(
    int step(void) { potentialCheckpoint(); return 0; }
    void work(int n) {
      while (step() < n) { n--; }
      int i;
      for (i = 0; step() < n; i++) { n--; }
    })"));
}

TEST(CcifCompile, GlobalsAndRegistration) {
  SKIP_WITHOUT_CC();
  EXPECT_TRUE(compiles_as_c(R"(
    int iteration;
    double grid[64];
    double *cursor;
    void work(void) {
      iteration = iteration + 1;
      potentialCheckpoint();
    })"));
}

TEST(CcifCompile, ScopesBreaksReturns) {
  SKIP_WITHOUT_CC();
  EXPECT_TRUE(compiles_as_c(R"(
    void work(int n) {
      int outer_var = n;
      while (n > 0) {
        int loop_var = n * 2;
        if (loop_var > 10) { break; }
        if (loop_var < 0) { continue; }
        {
          int inner = loop_var + outer_var;
          if (inner == 42) { return; }
        }
        potentialCheckpoint();
        n--;
      }
    })"));
}

TEST(CcifCompile, MixedInstrumentedAndPlainFunctions) {
  SKIP_WITHOUT_CC();
  EXPECT_TRUE(compiles_as_c(R"(
    int plain_helper(int v) { return v * v; }
    void checkpointer(void) { potentialCheckpoint(); }
    void work(int n) {
      int a = plain_helper(n);
      checkpointer();
      a = plain_helper(a);
    })"));
}

TEST(CcifCompile, PointerAndArrayLocals) {
  SKIP_WITHOUT_CC();
  EXPECT_TRUE(compiles_as_c(R"(
    void work(int n) {
      double values[16];
      double *p = values;
      int i;
      for (i = 0; i < 16; i++) { values[i] = i * 1.5; }
      p = p + 1;
      potentialCheckpoint();
      values[0] = *p;
    })"));
}

}  // namespace
}  // namespace c3::ccift
