// Piggyback codec and message classification (paper Section 4.2).
#include <gtest/gtest.h>

#include "core/piggyback.hpp"
#include "util/error.hpp"

namespace c3::core {
namespace {

TEST(PiggybackCodec, FullRoundTrip) {
  Piggyback pb{.epoch = 1234, .logging = true, .message_id = 987654};
  util::Writer w;
  encode_piggyback(PiggybackMode::kFull, pb, w);
  EXPECT_EQ(w.size(), piggyback_size(PiggybackMode::kFull));
  util::Reader r(w.bytes());
  const Piggyback back = decode_piggyback(PiggybackMode::kFull, r);
  EXPECT_EQ(back.epoch, 1234);
  EXPECT_TRUE(back.logging);
  EXPECT_EQ(back.message_id, 987654u);
}

TEST(PiggybackCodec, PackedRoundTripKeepsColorAndId) {
  for (std::int32_t epoch : {0, 1, 2, 3, 41, 1000}) {
    for (bool logging : {false, true}) {
      Piggyback pb{.epoch = epoch, .logging = logging, .message_id = 123456};
      util::Writer w;
      encode_piggyback(PiggybackMode::kPacked, pb, w);
      EXPECT_EQ(w.size(), 4u) << "packed mode must be one 32-bit word";
      util::Reader r(w.bytes());
      const Piggyback back = decode_piggyback(PiggybackMode::kPacked, r);
      EXPECT_EQ(back.color(), pb.color());
      EXPECT_EQ(back.logging, logging);
      EXPECT_EQ(back.message_id, 123456u);
    }
  }
}

TEST(PiggybackCodec, PackedMaxMessageId) {
  Piggyback pb{.epoch = 0, .logging = false, .message_id = kMaxPackedMessageId};
  util::Writer w;
  encode_piggyback(PiggybackMode::kPacked, pb, w);
  util::Reader r(w.bytes());
  EXPECT_EQ(decode_piggyback(PiggybackMode::kPacked, r).message_id,
            kMaxPackedMessageId);
}

TEST(PiggybackCodec, PackedOverflowThrows) {
  Piggyback pb{.epoch = 0, .logging = false,
               .message_id = kMaxPackedMessageId + 1};
  util::Writer w;
  EXPECT_THROW(encode_piggyback(PiggybackMode::kPacked, pb, w),
               util::UsageError);
}

TEST(Classification, ByEpochMatchesDefinition1) {
  EXPECT_EQ(classify_by_epoch(0, 1), MessageClass::kLate);
  EXPECT_EQ(classify_by_epoch(1, 1), MessageClass::kIntraEpoch);
  EXPECT_EQ(classify_by_epoch(2, 1), MessageClass::kEarly);
}

// Property sweep: the packed color rule must agree with the direct epoch
// comparison in every state the protocol can reach (epochs differ by at
// most one; a receiver one epoch ahead of the sender is logging iff it has
// not finished collecting late messages -- the rule's precondition).
class ClassificationAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClassificationAgreement, PackedAgreesWithEpochs) {
  const int receiver_epoch = std::get<0>(GetParam());
  const int delta = std::get<1>(GetParam());  // sender - receiver: -1, 0, +1
  const int sender_epoch = receiver_epoch + delta;
  if (sender_epoch < 0) return;

  const auto by_epoch = classify_by_epoch(sender_epoch, receiver_epoch);
  // Reachable logging states: a receiver with a sender one epoch behind is
  // still logging (it cannot have stopped before hearing from everyone);
  // a receiver one epoch behind the sender has not checkpointed and is
  // therefore not logging.
  const bool receiver_logging = (delta == -1);
  const auto packed = classify((sender_epoch & 1) != 0,
                               (receiver_epoch & 1) != 0, receiver_logging);
  EXPECT_EQ(packed, by_epoch)
      << "sender epoch " << sender_epoch << ", receiver epoch "
      << receiver_epoch;
}

INSTANTIATE_TEST_SUITE_P(
    EpochSweep, ClassificationAgreement,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 100, 101),
                       ::testing::Values(-1, 0, 1)));

// Intra-epoch classification is independent of the logging flag.
TEST(Classification, IntraEpochIgnoresLogging) {
  EXPECT_EQ(classify(true, true, true), MessageClass::kIntraEpoch);
  EXPECT_EQ(classify(true, true, false), MessageClass::kIntraEpoch);
  EXPECT_EQ(classify(false, false, true), MessageClass::kIntraEpoch);
  EXPECT_EQ(classify(false, false, false), MessageClass::kIntraEpoch);
}

TEST(Classification, ColorMismatchUsesLoggingFlag) {
  EXPECT_EQ(classify(false, true, true), MessageClass::kLate);
  EXPECT_EQ(classify(true, false, true), MessageClass::kLate);
  EXPECT_EQ(classify(false, true, false), MessageClass::kEarly);
  EXPECT_EQ(classify(true, false, false), MessageClass::kEarly);
}

}  // namespace
}  // namespace c3::core
