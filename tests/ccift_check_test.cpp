// ccift --check: the violation corpus under tests/ccift_check_corpus/.
//
// Each fixture is a small program seeded with exactly one checkpoint-safety
// violation; the checker must report exactly the intended check ID at the
// expected line and nothing else. Clean programs and suppressed findings
// round out the contract scripts/check_lint.py gates CI on.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ccift/check.hpp"
#include "ccift/transform.hpp"
#include "util/error.hpp"

namespace {

using c3::ccift::CheckInput;
using c3::ccift::CheckOptions;
using c3::ccift::CheckReport;
using c3::ccift::CheckSeverity;
using c3::ccift::Finding;
using c3::ccift::run_checks;

CheckInput load_fixture(const std::string& name) {
  const std::string path =
      std::string(C3_SOURCE_DIR) + "/tests/ccift_check_corpus/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open corpus fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return CheckInput{name, buf.str()};
}

std::vector<Finding> unsuppressed(const CheckReport& report) {
  std::vector<Finding> out;
  for (const auto& f : report.findings) {
    if (!f.suppressed) out.push_back(f);
  }
  return out;
}

struct CorpusCase {
  const char* file;
  const char* id;
  int line;
  CheckSeverity severity;
};

TEST(CciftCheckCorpus, EachFixtureTripsExactlyItsIntendedCheck) {
  const CorpusCase cases[] = {
      {"ck001_unbounded_loop.c", "CK001", 7, CheckSeverity::kError},
      {"ck002_unregistered_extern.c", "CK002", 7, CheckSeverity::kError},
      {"ck003_nondet_time.c", "CK003", 6, CheckSeverity::kError},
      {"ck004_escape_local.c", "CK004", 8, CheckSeverity::kError},
      {"ck005_setjmp.c", "CK005", 8, CheckSeverity::kError},
      {"ck005_goto.c", "CK005", 10, CheckSeverity::kError},
      {"ck005_vla.c", "CK005", 4, CheckSeverity::kError},
      {"ck006_static_local.c", "CK006", 4, CheckSeverity::kError},
      {"ck007_no_checkpoint.c", "CK007", 5, CheckSeverity::kWarning},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.file);
    const CheckReport report = run_checks({load_fixture(c.file)});
    ASSERT_EQ(report.files.size(), 1u);
    EXPECT_EQ(report.files[0].mode, "ast");
    const auto live = unsuppressed(report);
    ASSERT_EQ(live.size(), 1u) << report.to_text();
    EXPECT_EQ(live[0].id, c.id);
    EXPECT_EQ(live[0].line, c.line);
    EXPECT_EQ(live[0].severity, c.severity);
    EXPECT_EQ(live[0].file, c.file);
  }
}

TEST(CciftCheckCorpus, CleanProgramReportsNothing) {
  const CheckReport report = run_checks({load_fixture("clean.c")});
  EXPECT_TRUE(report.findings.empty()) << report.to_text();
  EXPECT_EQ(report.unsuppressed_errors(), 0u);
  EXPECT_EQ(report.unsuppressed_warnings(), 0u);
}

TEST(CciftCheckCorpus, SuppressionAnnotationWaivesTheFinding) {
  const CheckReport report = run_checks({load_fixture("suppressed.c")});
  // The finding stays in the report (the JSON records what was waived)...
  ASSERT_EQ(report.findings.size(), 1u) << report.to_text();
  EXPECT_EQ(report.findings[0].id, "CK003");
  EXPECT_TRUE(report.findings[0].suppressed);
  // ...but it no longer gates.
  EXPECT_EQ(report.unsuppressed_errors(), 0u);
  EXPECT_EQ(report.suppressed(), 1u);
}

TEST(CciftCheckCorpus, WholeProgramViewClearsCk002WhenDefinerIsAnalyzed) {
  // Alone, the extern reference is an unregistered-global error; together
  // with the unit that defines the global, the program is complete and the
  // finding disappears (Section 5.1.2: the precompiler sees every file).
  const CheckReport alone =
      run_checks({load_fixture("ck002_unregistered_extern.c")});
  ASSERT_EQ(unsuppressed(alone).size(), 1u);
  EXPECT_EQ(unsuppressed(alone)[0].id, "CK002");

  const CheckReport whole =
      run_checks({load_fixture("ck002_unregistered_extern.c"),
                  load_fixture("ck002_definer.c")});
  EXPECT_TRUE(whole.findings.empty()) << whole.to_text();
}

TEST(CciftCheckCorpus, CppFileDegradesToLexicalScanAndStillCatchesCalls) {
  const CheckReport report =
      run_checks({load_fixture("lexical_nondet.cpp")});
  ASSERT_EQ(report.files.size(), 1u);
  EXPECT_EQ(report.files[0].mode, "lexical");
  EXPECT_FALSE(report.files[0].note.empty());
  const auto live = unsuppressed(report);
  ASSERT_EQ(live.size(), 1u) << report.to_text();
  EXPECT_EQ(live[0].id, "CK003");
  EXPECT_EQ(live[0].line, 9);
}

TEST(CciftCheckReport, JsonCarriesFindingsAndCounts) {
  const CheckReport report =
      run_checks({load_fixture("ck006_static_local.c")});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"id\": \"CK006\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed_errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"ast\""), std::string::npos);
}

TEST(CciftCheckReport, TextDiagnosticsNameFileLineAndId) {
  const CheckReport report =
      run_checks({load_fixture("ck001_unbounded_loop.c")});
  const std::string text = report.to_text();
  EXPECT_NE(text.find("ck001_unbounded_loop.c:7: error:"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[CK001]"), std::string::npos);
}

TEST(CciftCheckMpi, MpiFacadeSeedsCheckpointSitesAndOpaqueTypes) {
  // Under --mpi a loop over MPI_Send crosses a checkpoint site, so the
  // same program that would be CK001+CK007 without the facade is clean.
  const std::string src = R"(int rounds;
void exchange(MPI_Comm comm) {
  int i;
  int payload;
  payload = 0;
  for (i = 0; i < rounds; i++) {
    MPI_Send(&payload, 1, MPI_INT, 0, 0, comm);
  }
}
int main(void) {
  rounds = 4;
  exchange(0);
  return 0;
}
)";
  CheckOptions mpi;
  mpi.mpi_facade = true;
  const CheckReport with_facade = run_checks({{"prog.c", src}}, mpi);
  EXPECT_TRUE(with_facade.findings.empty()) << with_facade.to_text();
}

// Satellite (b): the transformer itself refuses constructs it would
// mis-handle, with the same stable IDs in the message.
TEST(CciftTransformDiagnostics, StaticLocalInCheckpointableFunctionIsCk006) {
  const std::string src = R"(void tick(void) {
  static int calls;
  calls = calls + 1;
  potentialCheckpoint();
}
)";
  try {
    c3::ccift::transform_source(src);
    FAIL() << "expected UsageError";
  } catch (const c3::util::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("[CK006]"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("calls"), std::string::npos);
  }
}

TEST(CciftTransformDiagnostics, GotoInCheckpointableFunctionIsCk005) {
  const std::string src = R"(void spin(void) {
again:
  potentialCheckpoint();
  goto again;
}
)";
  try {
    c3::ccift::transform_source(src);
    FAIL() << "expected UsageError";
  } catch (const c3::util::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("[CK005]"), std::string::npos)
        << e.what();
  }
}

TEST(CciftTransformDiagnostics, StaticLocalOutsideCheckpointPathIsAllowed) {
  // A static local in a non-checkpointable helper transforms fine (the
  // checker still reports it as a CK006 *warning*).
  const std::string src = R"(int helper(void) {
  static int memo;
  memo = memo + 1;
  return memo;
}
void work(void) {
  int x;
  x = helper();
  potentialCheckpoint();
}
)";
  const std::string out = c3::ccift::transform_source(src);
  EXPECT_NE(out.find("static int memo"), std::string::npos) << out;

  const CheckReport report = run_checks({{"prog.c", src}});
  bool saw_warning = false;
  for (const auto& f : report.findings) {
    if (f.id == "CK006" && f.severity == CheckSeverity::kWarning) {
      saw_warning = true;
    }
  }
  EXPECT_TRUE(saw_warning) << report.to_text();
}

TEST(CciftTransformDiagnostics, ExternAndConstGlobalsAreNotRegistered) {
  const std::string src = R"(extern int remote_total;
const double scale = 2.0;
int local_total;
void work(void) {
  local_total = local_total + 1;
  potentialCheckpoint();
}
)";
  const std::string out = c3::ccift::transform_source(src);
  EXPECT_NE(out.find("ccift_register_global(\"local_total\""),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("ccift_register_global(\"remote_total\""),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("ccift_register_global(\"scale\""), std::string::npos)
      << out;
  // The declarations themselves survive with their qualifiers.
  EXPECT_NE(out.find("extern int remote_total;"), std::string::npos);
  EXPECT_NE(out.find("const double scale = 2.0;"), std::string::npos);
}

}  // namespace
