// Tests for the simulated transport: reliability, per-source FIFO under
// adversarial reordering, cross-source interleaving, and abort wakeups.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "net/delivery.hpp"
#include "net/failure.hpp"
#include "net/transport.hpp"

namespace c3::net {
namespace {

Packet make_packet(int src, int dst, int tag, std::uint64_t seq,
                   std::uint8_t marker = 0) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.context = 0;
  p.tag = tag;
  p.seq = seq;
  p.payload = {std::byte{marker}};
  return p;
}

TEST(FifoDelivery, DeliversInOrder) {
  Fabric fabric(2, FifoDelivery{});
  for (std::uint64_t i = 0; i < 10; ++i) {
    fabric.send(make_packet(0, 1, 0, i));
  }
  auto got = fabric.inbox(1).drain();
  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(got[i].seq, i);
}

TEST(FifoDelivery, MultipleSourcesAllArrive) {
  Fabric fabric(4, FifoDelivery{});
  for (int src = 0; src < 3; ++src) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      fabric.send(make_packet(src, 3, 0, i));
    }
  }
  auto got = fabric.inbox(3).drain();
  EXPECT_EQ(got.size(), 15u);
}

TEST(Fabric, StatsCountPacketsAndBytes) {
  Fabric fabric(2, FifoDelivery{});
  Packet p = make_packet(0, 1, 0, 0);
  p.payload.resize(100);
  fabric.send(std::move(p));
  fabric.send(make_packet(0, 1, 0, 1));
  EXPECT_EQ(fabric.stats().packets.load(), 2u);
  EXPECT_EQ(fabric.stats().payload_bytes.load(), 101u);
}

TEST(Fabric, SendToInvalidRankThrows) {
  Fabric fabric(2, FifoDelivery{});
  EXPECT_THROW(fabric.send(make_packet(0, 5, 0, 0)), util::UsageError);
  EXPECT_THROW(fabric.send(make_packet(0, -1, 0, 0)), util::UsageError);
}

class ReorderTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReorderTest, ReliableAndPerSourceFifo) {
  RandomReorderDelivery policy(GetParam(), /*p_hold=*/0.7, /*max_hold=*/6);
  Fabric fabric(3, policy);
  constexpr std::uint64_t kPerSource = 50;
  // Interleave sends from two sources to rank 2.
  for (std::uint64_t i = 0; i < kPerSource; ++i) {
    fabric.send(make_packet(0, 2, 0, i));
    fabric.send(make_packet(1, 2, 0, i));
  }
  std::vector<Packet> got;
  while (got.size() < 2 * kPerSource) {
    for (auto& p : fabric.inbox(2).drain()) got.push_back(std::move(p));
  }
  // Reliability: everything arrives exactly once.
  std::map<int, std::vector<std::uint64_t>> by_src;
  for (const auto& p : got) by_src[p.src].push_back(p.seq);
  ASSERT_EQ(by_src[0].size(), kPerSource);
  ASSERT_EQ(by_src[1].size(), kPerSource);
  // Non-overtaking: per-source sequence numbers are strictly increasing.
  for (const auto& [src, seqs] : by_src) {
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], i) << "per-source FIFO violated for src " << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderTest,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull));

// Reordering is statistical per seed; require that it happens at least once
// across a set of seeds (a policy that never reorders would defeat the
// adversarial tests built on top of it).
TEST(Reorder, CrossSourceReorderingHappensAcrossSeeds) {
  constexpr int kRounds = 30;
  int inversions = 0;
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    RandomReorderDelivery policy(seed, /*p_hold=*/0.9, /*max_hold=*/8);
    Fabric fabric(3, policy);
    for (int round = 0; round < kRounds; ++round) {
      fabric.send(make_packet(0, 2, 0, static_cast<std::uint64_t>(round), 0));
      fabric.send(make_packet(1, 2, 0, static_cast<std::uint64_t>(round), 1));
    }
    std::vector<Packet> got;
    while (got.size() < 2 * kRounds) {
      for (auto& p : fabric.inbox(2).drain()) got.push_back(std::move(p));
    }
    std::map<std::pair<int, std::uint64_t>, std::size_t> pos;
    for (std::size_t i = 0; i < got.size(); ++i) {
      pos[{got[i].src, got[i].seq}] = i;
    }
    for (int round = 0; round < kRounds; ++round) {
      const auto r = static_cast<std::uint64_t>(round);
      // Inversion: src 1's packet of round k (sent after src 0's) delivered
      // before src 0's packet of the same round.
      if (pos[{1, r}] < pos[{0, r}]) ++inversions;
    }
  }
  EXPECT_GT(inversions, 0);
}

TEST(Inbox, WaitReturnsOnDelivery) {
  Fabric fabric(2, FifoDelivery{});
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    fabric.inbox(1).wait(std::chrono::microseconds(500000),
                         fabric.abort_flag());
    got.store(!fabric.inbox(1).drain().empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fabric.send(make_packet(0, 1, 0, 0));
  receiver.join();
  EXPECT_TRUE(got.load());
}

TEST(Inbox, AbortWakesWaiter) {
  Fabric fabric(2, FifoDelivery{});
  std::atomic<bool> woke{false};
  std::thread receiver([&] {
    // Long timeout: only the abort should end this quickly.
    fabric.inbox(1).wait(std::chrono::microseconds(10'000'000),
                         fabric.abort_flag());
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  fabric.abort();
  receiver.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(woke.load());
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_TRUE(fabric.aborted());
}

// Regression for the lost-wakeup window: abort() used to store the stop
// flag and notify without holding the wait lock, so a receiver between its
// predicate check and the actual park could miss the signal and eat the
// full wait_for timeout. Race the two paths with no alignment sleep: the
// receiver must always return promptly. Before the fix this test's total
// time blows past the bound whenever the race window is hit.
TEST(Inbox, AbortDuringParkNeverEatsTimeout) {
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kRounds = 200;
  for (int i = 0; i < kRounds; ++i) {
    Fabric fabric(2, FifoDelivery{});
    std::thread receiver([&] {
      fabric.inbox(1).wait(std::chrono::microseconds(2'000'000),
                           fabric.abort_flag());
    });
    // No sleep: abort races the receiver's predicate-check-to-park window.
    fabric.abort();
    receiver.join();
  }
  // 200 rounds of prompt wakeups finish in well under one un-eaten 2 s
  // timeout; a single lost wakeup busts the bound.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));
}

TEST(Fabric, SendBatchDeliversAllInOrder) {
  Fabric fabric(4, FifoDelivery{});
  // One batch fanning out to three destinations, several packets each.
  std::vector<Packet> batch;
  for (std::uint64_t i = 0; i < 5; ++i) {
    for (int dst = 1; dst < 4; ++dst) {
      batch.push_back(make_packet(0, dst, 0, i));
    }
  }
  fabric.send_batch(batch);
  EXPECT_TRUE(batch.empty());  // capacity handed back to the caller
  EXPECT_EQ(fabric.stats().batches.load(), 1u);
  EXPECT_EQ(fabric.stats().packets.load(), 15u);
  for (int dst = 1; dst < 4; ++dst) {
    auto got = fabric.inbox(dst).drain();
    ASSERT_EQ(got.size(), 5u) << "dst " << dst;
    for (std::uint64_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, i) << "per-source FIFO violated for dst " << dst;
    }
  }
}

TEST(Fabric, SendBatchPreservesOrderAgainstPlainSends) {
  Fabric fabric(2, FifoDelivery{});
  fabric.send(make_packet(0, 1, 0, 0));
  std::vector<Packet> batch;
  batch.push_back(make_packet(0, 1, 0, 1));
  batch.push_back(make_packet(0, 1, 0, 2));
  fabric.send_batch(batch);
  fabric.send(make_packet(0, 1, 0, 3));
  auto got = fabric.inbox(1).drain();
  ASSERT_EQ(got.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].seq, i);
}

TEST(Fabric, SendBatchUnderReorderStaysPerSourceFifo) {
  RandomReorderDelivery policy(7, /*p_hold=*/0.7, /*max_hold=*/5);
  Fabric fabric(3, policy);
  constexpr std::uint64_t kPer = 20;
  std::vector<Packet> batch;
  for (std::uint64_t i = 0; i < kPer; ++i) {
    batch.push_back(make_packet(0, 2, 0, i));
    fabric.send_batch(batch);
    fabric.send(make_packet(1, 2, 0, i));
  }
  std::vector<Packet> got;
  while (got.size() < 2 * kPer) {
    for (auto& p : fabric.inbox(2).drain()) got.push_back(std::move(p));
  }
  std::map<int, std::vector<std::uint64_t>> by_src;
  for (const auto& p : got) by_src[p.src].push_back(p.seq);
  ASSERT_EQ(by_src[0].size(), kPer);
  ASSERT_EQ(by_src[1].size(), kPer);
  for (const auto& [src, seqs] : by_src) {
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], i) << "per-source FIFO violated for src " << src;
    }
  }
}

TEST(Fabric, SendBatchFromInvalidSrcThrows) {
  Fabric fabric(2, FifoDelivery{});
  std::vector<Packet> batch;
  batch.push_back(make_packet(-1, 1, 0, 0));
  EXPECT_THROW(fabric.send_batch(batch), util::UsageError);
}

TEST(Fabric, WakeupsCountOnlyParkedReceivers) {
  Fabric fabric(2, FifoDelivery{});
  // Busy receiver: nobody parked, so deliveries never notify.
  for (std::uint64_t i = 0; i < 10; ++i) fabric.send(make_packet(0, 1, 0, i));
  (void)fabric.inbox(1).drain();
  EXPECT_EQ(fabric.stats().wakeups.load(), 0u);
  // Parked receiver: the delivery must notify exactly once.
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    fabric.inbox(1).wait(std::chrono::microseconds(2'000'000),
                         fabric.abort_flag());
    got.store(!fabric.inbox(1).drain().empty());
  });
  while (fabric.stats().wakeups.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    fabric.send(make_packet(0, 1, 0, 100));
  }
  receiver.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(fabric.stats().wakeups.load(), 1u);
}

TEST(FailureInjector, FiresExactlyOnceAtTrigger) {
  FailureInjector inj(FailureSpec{.victim_rank = 1, .trigger_events = 3});
  EXPECT_FALSE(inj.on_event(0));  // wrong rank never counts
  EXPECT_FALSE(inj.on_event(1));  // 1
  EXPECT_FALSE(inj.on_event(1));  // 2
  EXPECT_TRUE(inj.on_event(1));   // 3 -> fire
  EXPECT_TRUE(inj.fired());
  EXPECT_FALSE(inj.on_event(1));  // one-shot
}

TEST(FailureInjector, DisabledNeverFires) {
  FailureInjector inj;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.on_event(0));
  EXPECT_FALSE(inj.fired());
}

}  // namespace
}  // namespace c3::net
